//! bora-cluster integration: the cluster tier driven through the public
//! workspace API, end to end.
//!
//! The crate-level tests pin the ring's placement math (proptests) and
//! the failover state machine (fault injection); this file covers the
//! seams between crates: `bora::multi` swarm fan-out routed through
//! [`ClusterBackend`], the cluster-level k-way merged stream, and an
//! elastic join resharding live data without disturbing readers.

use bora::{SwarmBackend, SwarmSpec};
use bora_cluster::{
    swarm_query, ClusterBackend, ClusterClientConfig, ClusterTierConfig, LocalCluster, RingConfig,
    RoutePolicy,
};
use ros_msgs::sensor_msgs::Imu;
use ros_msgs::Time;
use rosbag::{BagWriter, BagWriterOptions};
use simfs::{IoCtx, MemStorage};

const TOPICS: [&str; 2] = ["/imu", "/odom"];

/// Stage `robots` mission containers with distinct, recognizable content
/// per robot (seq numbers offset by robot id), returning their roots.
fn stage_fleet(staging: &MemStorage, robots: u32, msgs_per_robot: u32) -> Vec<String> {
    let mut ctx = IoCtx::new();
    let mut roots = Vec::new();
    for robot in 0..robots {
        let bag = format!("/stage/robot{robot}.bag");
        let mut w =
            BagWriter::create(staging, &bag, BagWriterOptions::default(), &mut ctx).unwrap();
        for tick in 0..msgs_per_robot {
            let t = Time::from_nanos(1_000_000_000 + tick as u64 * 5_000_000);
            let mut imu = Imu::default();
            imu.header.seq = robot * 1_000_000 + tick;
            imu.header.stamp = t;
            imu.linear_acceleration.x = robot as f64;
            w.write_ros_message(TOPICS[(tick % 2) as usize], t, &imu, &mut ctx).unwrap();
        }
        w.close(&mut ctx).unwrap();
        let root = format!("/fleet/robot{robot}");
        bora::duplicate(staging, &bag, staging, &root, &Default::default(), &mut ctx).unwrap();
        roots.push(root);
    }
    roots
}

fn start_cluster(
    staging: &MemStorage,
    roots: &[String],
    nodes: u32,
) -> LocalCluster<std::sync::Arc<simfs::ClusterStorage>> {
    let cluster = LocalCluster::start(ClusterTierConfig {
        nodes,
        ring: RingConfig { vnodes: 64, replication: 2 },
        ..ClusterTierConfig::default()
    });
    let refs: Vec<&str> = roots.iter().map(String::as_str).collect();
    cluster.provision(staging, &refs).unwrap();
    cluster
}

/// `bora::multi`'s swarm fan-out, rewired through the cluster router:
/// every robot's answer must equal a directly routed read, and the
/// whole swarm must keep answering identically after a node death.
#[test]
fn swarm_fan_out_routes_through_cluster_and_survives_node_death() {
    let staging = MemStorage::new();
    let roots = stage_fleet(&staging, 5, 120);
    let cluster = start_cluster(&staging, &roots, 3);
    let client = cluster.client(ClusterClientConfig::default());

    let spec = SwarmSpec::topics(&["/imu"]);
    let swarm = swarm_query(&client, &roots, &spec).unwrap();
    assert_eq!(swarm.per_robot.len(), roots.len());

    // Each robot's lane equals the directly routed read — same messages,
    // same order — and carries that robot's distinct content.
    for (robot, (root, lane)) in roots.iter().zip(&swarm.per_robot).enumerate() {
        let direct = client.read(root, &["/imu"]).unwrap();
        assert_eq!(lane.len(), direct.len(), "robot {robot} lane length");
        for (got, want) in lane.iter().zip(&direct) {
            assert_eq!(got.topic, want.topic);
            assert_eq!(got.time, want.time);
            assert_eq!(got.data, want.data);
        }
        assert!(!lane.is_empty(), "robot {robot} returned no messages");
    }
    assert!(swarm.makespan_ns > 0, "swarm must account wall time");

    // The backend trait is public: a single-robot query through it
    // matches the fan-out's lane for that robot.
    let backend = ClusterBackend { client: &client };
    let (solo, _) = backend.query_robot(&roots[0], &spec, roots.len() as u32).unwrap();
    assert_eq!(solo.len(), swarm.per_robot[0].len());

    // Kill the node holding robot 0; the identical swarm keeps working.
    let victim = client.owner(&roots[0]).unwrap();
    cluster.kill(victim);
    let after = swarm_query(&client, &roots, &spec).unwrap();
    for (robot, (before, now)) in swarm.per_robot.iter().zip(&after.per_robot).enumerate() {
        assert_eq!(before.len(), now.len(), "robot {robot} after node death");
        for (b, n) in before.iter().zip(now) {
            assert_eq!(b.data, n.data, "robot {robot} bytes changed after failover");
        }
    }
    cluster.shutdown();
}

/// The cluster-level merged stream yields one chronological sequence
/// over many containers: `(time, lane)` ordered, byte-identical to
/// merging the per-container routed reads by the same rule.
#[test]
fn merged_stream_is_chronological_and_matches_materialized_reads() {
    let staging = MemStorage::new();
    let roots = stage_fleet(&staging, 4, 90);
    let cluster = start_cluster(&staging, &roots, 3);
    let client =
        cluster.client(ClusterClientConfig { policy: RoutePolicy::Spread, ..Default::default() });

    let refs: Vec<&str> = roots.iter().map(String::as_str).collect();
    let merged: Vec<_> =
        client.read_stream_multi(&refs, &TOPICS, None).unwrap().collect::<Result<_, _>>().unwrap();

    // Expected: per-lane routed reads, k-way merged by (time, lane).
    let mut expected = Vec::new();
    for (lane, root) in roots.iter().enumerate() {
        for m in client.read(root, &TOPICS).unwrap() {
            expected.push((m.time, lane, m));
        }
    }
    expected.sort_by_key(|(t, lane, _)| (*t, *lane));

    assert_eq!(merged.len(), expected.len());
    let mut last = (Time::from_nanos(0), 0usize);
    for (got, (time, lane, want)) in merged.iter().zip(&expected) {
        assert_eq!(got.time, want.time);
        assert_eq!(got.topic, want.topic);
        assert_eq!(got.data, want.data);
        assert!((*time, *lane) >= last, "merge emitted out of (time, lane) order");
        last = (*time, *lane);
    }
    cluster.shutdown();
}

/// An elastic join reshards live data with minimal movement: only
/// containers whose replica set gained the new node change holders, and
/// every read answers identically before and after the migration.
#[test]
fn join_resharding_moves_minimally_and_preserves_reads() {
    let staging = MemStorage::new();
    let roots = stage_fleet(&staging, 8, 60);
    let cluster = start_cluster(&staging, &roots, 3);
    let client = cluster.client(ClusterClientConfig::default());

    let before_reads: Vec<_> = roots.iter().map(|r| client.read(r, &["/imu"]).unwrap()).collect();
    let before_dir: std::collections::BTreeMap<String, Vec<u32>> =
        cluster.directory().into_iter().collect();

    let joined = cluster.join().unwrap();
    let after_dir: std::collections::BTreeMap<String, Vec<u32>> =
        cluster.directory().into_iter().collect();

    let mut gained = 0usize;
    for (container, holders) in &after_dir {
        let old = &before_dir[container];
        if holders.contains(&joined) {
            gained += 1;
        } else {
            // Minimal movement: a container the new node did not gain
            // keeps its holder set untouched.
            assert_eq!(holders, old, "{container} moved without involving the joined node");
        }
    }
    // The new node takes roughly its share — and not everything.
    let placements = after_dir.values().map(Vec::len).sum::<usize>();
    assert!(gained > 0, "a 4th node joined but gained no containers");
    assert!(
        gained <= placements.div_ceil(2),
        "join moved {gained} of {placements} placements — far more than its share"
    );

    // A router built after the join sees the new topology; every
    // container still answers byte-identically.
    let client = cluster.client(ClusterClientConfig::default());
    for (root, before) in roots.iter().zip(&before_reads) {
        let after = client.read(root, &["/imu"]).unwrap();
        assert_eq!(&after, before, "{root} read changed across reshard");
    }
    cluster.shutdown();
}
