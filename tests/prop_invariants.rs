//! Cross-crate property tests: for arbitrary (small) workloads, the BORA
//! pipeline is lossless and its indices stay consistent.

use proptest::prelude::*;

use bora::{BoraBag, OrganizerOptions, TimeIndex, TopicIndexEntry};
use ros_msgs::sensor_msgs::Imu;
use ros_msgs::{MessageDescriptor, RosMessage, Time};
use rosbag::{BagReader, BagWriter, BagWriterOptions};
use simfs::{IoCtx, MemStorage, Storage};

/// A synthetic message event: (topic index, time-nanos, payload seed).
type Event = (usize, u64, u8);

fn arb_events() -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec((0usize..4, 0u64..200_000_000_000, any::<u8>()), 1..120).prop_map(
        |mut v| {
            // Bags are recorded chronologically.
            v.sort_by_key(|e| e.1);
            v
        },
    )
}

const TOPICS: [&str; 4] = ["/imu", "/tf", "/camera/rgb/image_color", "/odom"];

fn build_bag(fs: &MemStorage, events: &[Event], chunk_size: usize) -> u64 {
    let mut ctx = IoCtx::new();
    let mut w = BagWriter::create(
        fs,
        "/p.bag",
        BagWriterOptions { chunk_size, ..Default::default() },
        &mut ctx,
    )
    .unwrap();
    let desc = MessageDescriptor::of::<Imu>();
    let conns: Vec<u32> = TOPICS.iter().map(|t| w.add_connection(t, &desc)).collect();
    for &(ti, ns, seed) in events {
        let mut imu = Imu::default();
        imu.header.seq = seed as u32;
        imu.header.stamp = Time::from_nanos(ns);
        imu.linear_acceleration.x = seed as f64;
        w.write_message(conns[ti], Time::from_nanos(ns), &imu.to_bytes(), &mut ctx).unwrap();
    }
    let s = w.close(&mut ctx).unwrap();
    s.message_count
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Writing a bag and reading it back yields every message, in time
    /// order, regardless of chunking.
    #[test]
    fn bag_round_trip_lossless(events in arb_events(), chunk_size in 256usize..8192) {
        let fs = MemStorage::new();
        let n = build_bag(&fs, &events, chunk_size);
        prop_assert_eq!(n as usize, events.len());

        let mut ctx = IoCtx::new();
        let r = BagReader::open(&fs, "/p.bag", &mut ctx).unwrap();
        prop_assert_eq!(r.index().message_count() as usize, events.len());
        let msgs = r.read_messages(&TOPICS, &mut ctx).unwrap();
        prop_assert_eq!(msgs.len(), events.len());
        for w in msgs.windows(2) {
            prop_assert!(w[0].time <= w[1].time);
        }
    }

    /// Duplication into a container loses nothing: per-topic counts and
    /// payload bytes match the baseline exactly.
    #[test]
    fn organizer_is_lossless(events in arb_events(), threads in 1usize..5) {
        let fs = MemStorage::new();
        build_bag(&fs, &events, 2048);
        let mut ctx = IoCtx::new();
        bora::organizer::duplicate(
            &fs, "/p.bag", &fs, "/c",
            &OrganizerOptions { distributor_threads: threads, ..OrganizerOptions::default() },
            &mut ctx,
        ).unwrap();

        let baseline = BagReader::open(&fs, "/p.bag", &mut ctx).unwrap();
        let bag = BoraBag::open(&fs, "/c", &mut ctx).unwrap();
        prop_assert_eq!(bag.verify(&mut ctx).unwrap() as usize, events.len());

        for t in TOPICS {
            let base = baseline.read_messages(&[t], &mut ctx).unwrap();
            let ours = bag.read_topic(t, &mut ctx).unwrap();
            prop_assert_eq!(base.len(), ours.len());
            for (a, b) in base.iter().zip(&ours) {
                prop_assert_eq!(a.time, b.time);
                prop_assert_eq!(&a.data, &b.data);
            }
        }
    }

    /// For any window, the BORA time query equals the baseline time query.
    #[test]
    fn time_queries_equivalent(
        events in arb_events(),
        bounds in (0u64..220_000_000_000, 0u64..220_000_000_000),
    ) {
        let (a, b) = bounds;
        let (start, end) = (Time::from_nanos(a.min(b)), Time::from_nanos(a.max(b)));
        let fs = MemStorage::new();
        build_bag(&fs, &events, 2048);
        let mut ctx = IoCtx::new();
        bora::organizer::duplicate(&fs, "/p.bag", &fs, "/c", &OrganizerOptions::default(), &mut ctx).unwrap();
        let baseline = BagReader::open(&fs, "/p.bag", &mut ctx).unwrap();
        let bag = BoraBag::open(&fs, "/c", &mut ctx).unwrap();

        let base = baseline.read_messages_time(&TOPICS, start, end, &mut ctx).unwrap();
        let ours = bag.read_topics_time(&TOPICS, start, end, &mut ctx).unwrap();
        prop_assert_eq!(base.len(), ours.len());
        for (x, y) in base.iter().zip(&ours) {
            prop_assert_eq!(x.time, y.time);
            prop_assert_eq!(&x.data, &y.data);
        }
    }

    /// The coarse time index never misses an entry: its candidate range is
    /// a superset of the exact matches, for arbitrary windows and widths.
    #[test]
    fn coarse_index_is_superset(
        times in prop::collection::vec(0u64..100_000_000_000, 1..200),
        window_ns in 1_000_000u64..20_000_000_000,
        query in (0u64..110_000_000_000, 1u64..30_000_000_000),
    ) {
        let mut times = times;
        times.sort_unstable();
        let entries: Vec<TopicIndexEntry> = times
            .iter()
            .enumerate()
            .map(|(i, &ns)| TopicIndexEntry { time: Time::from_nanos(ns), offset: i as u64, len: 1 })
            .collect();
        let ti = TimeIndex::build(&entries, window_ns);
        let start = Time::from_nanos(query.0);
        let end = Time::from_nanos(query.0 + query.1);

        let exact: Vec<usize> = entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.time >= start && e.time < end)
            .map(|(i, _)| i)
            .collect();
        match ti.candidate_entries(start, end) {
            Some((first, last)) => {
                for i in &exact {
                    prop_assert!((first as usize..last as usize).contains(i));
                }
            }
            None => prop_assert!(exact.is_empty(), "index missed {} entries", exact.len()),
        }
    }

    /// simfs path normalization is idempotent and component-stable.
    /// (`.`/`..` components are rejected by design, so exclude them.)
    #[test]
    fn path_normalization_idempotent(
        parts in prop::collection::vec(
            "[a-z0-9._-]{1,8}".prop_filter("dot components are rejected", |p| p != "." && p != ".."),
            1..6,
        )
    ) {
        let raw = format!("//{}/", parts.join("//"));
        let n1 = simfs::path::normalize(&raw).unwrap();
        let n2 = simfs::path::normalize(&n1).unwrap();
        prop_assert_eq!(&n1, &n2);
        prop_assert_eq!(n1.split('/').filter(|c| !c.is_empty()).count(), parts.len());
    }

    /// Topic-name encoding for container directories is bijective over
    /// ROS topic names (slash-separated non-empty components; literal
    /// `%` allowed since we escape it).
    #[test]
    fn topic_encoding_bijective(topic in "(/[a-z][a-z0-9_%]{0,6}){1,4}") {
        let enc = bora::layout::encode_topic(&topic);
        prop_assert!(!enc.contains('/'));
        prop_assert_eq!(bora::layout::decode_topic(&enc), topic);
    }

    /// MemStorage append/read semantics under arbitrary interleavings.
    #[test]
    fn mem_storage_append_semantics(chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..20)) {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let mut expected = Vec::new();
        for c in &chunks {
            let off = fs.append("/f", c, &mut ctx).unwrap();
            prop_assert_eq!(off as usize, expected.len());
            expected.extend_from_slice(c);
        }
        prop_assert_eq!(fs.read_all("/f", &mut ctx).unwrap(), expected);
    }
}
