//! Live-ingest integration: the full serve stack over an ingest root.
//!
//! The acceptance property: a query issued mid-ingest over
//! `OP_READ_STREAM` — while messages still sit in the WAL and memtable —
//! returns **byte-identical** results to the same query after seal and
//! compaction, including across a power cut injected between the seal
//! and the compaction.

use std::sync::Arc;

use bora_ingest::{IngestConfig, IngestStore};
use bora_serve::{
    IngestBatching, IngestClient, MemTransport, ServeClient, Server, ServerConfig, WireMessage,
};
use ros_msgs::Time;
use simfs::{FaultyStorage, IoCtx, MemStorage, PowerCut};

const ROOT: &str = "/live";
const TOPICS: [&str; 2] = ["/imu", "/cam"];

fn cfg() -> IngestConfig {
    IngestConfig { wal_shards: 2, group_commit: 1, window_ns: 1_000, block: None }
}

/// Deterministic workload: (topic, time, payload) in append order,
/// per-topic chronological.
fn script(n: u64) -> Vec<(&'static str, Time, Vec<u8>)> {
    let mut out = Vec::new();
    for i in 0..n {
        out.push(("/imu", Time::from_nanos(i * 10), vec![i as u8; 6]));
        if i % 2 == 0 {
            out.push(("/cam", Time::from_nanos(i * 10 + 3), vec![0xA0 | i as u8; 11]));
        }
    }
    out
}

/// Collect a full `READ_STREAM` answer as wire messages.
fn stream_all<C: bora_serve::Connection>(
    client: &mut ServeClient<C>,
    container: &str,
) -> Vec<WireMessage> {
    client.read_stream(container, &TOPICS).unwrap().collect::<Result<Vec<_>, _>>().unwrap()
}

#[test]
fn mid_ingest_stream_is_byte_identical_across_seal_and_compaction() {
    let fs = Arc::new(MemStorage::new());
    let mut ctx = IoCtx::new();
    drop(IngestStore::create(Arc::clone(&fs), ROOT, cfg(), &mut ctx).unwrap());

    let server = Server::start(Arc::clone(&fs), ServerConfig::default());
    let transport = MemTransport::new(Arc::clone(&server));
    let mut client = ServeClient::connect(&transport).unwrap();

    // Append everything through the wire; messages now live only in the
    // WAL + memtable.
    let batch: Vec<WireMessage> = script(8)
        .into_iter()
        .map(|(t, time, data)| WireMessage { topic: t.into(), time, data })
        .collect();
    let n = batch.len() as u64;
    let (appended, epoch) = client.append(ROOT, batch).unwrap();
    assert_eq!(appended, n);
    assert!(epoch > 0);

    // The mid-ingest query: served purely from the live layers.
    let live = stream_all(&mut client, ROOT);
    assert_eq!(live.len(), n as usize);
    for pair in live.windows(2) {
        assert!(pair[0].time <= pair[1].time, "stream must stay chronological");
    }

    // Seal: same bytes, now served from sealed segments.
    let (_, pending) = client.seal(ROOT, false).unwrap();
    assert_eq!(pending, 1, "one sealed batch awaiting compaction");
    assert_eq!(stream_all(&mut client, ROOT), live);

    // Compact: same bytes, now served from the committed container.
    let (_, pending) = client.seal(ROOT, true).unwrap();
    assert_eq!(pending, 0, "compaction drained the sealed backlog");
    assert_eq!(stream_all(&mut client, ROOT), live);

    // Buffered `Read` over the same query agrees with the stream frames.
    let buffered = client.read(ROOT, &TOPICS).unwrap();
    assert_eq!(buffered, live);

    // Topics through the wire see the live/compacted union.
    assert_eq!(client.topics(ROOT).unwrap(), vec!["/cam".to_owned(), "/imu".to_owned()]);
    server.shutdown();
}

#[test]
fn power_cut_between_seal_and_compact_recovers_byte_identically() {
    let disk = Arc::new(MemStorage::new());
    let faulty = Arc::new(FaultyStorage::new(Arc::clone(&disk)));
    let mut ctx = IoCtx::new();
    drop(IngestStore::create(Arc::clone(&disk), ROOT, cfg(), &mut ctx).unwrap());

    let server = Server::start(Arc::clone(&faulty), ServerConfig::default());
    let transport = MemTransport::new(Arc::clone(&server));
    let mut client = ServeClient::connect(&transport).unwrap();

    let batch: Vec<WireMessage> = script(6)
        .into_iter()
        .map(|(t, time, data)| WireMessage { topic: t.into(), time, data })
        .collect();
    let n = batch.len();
    client.append(ROOT, batch).unwrap();
    let reference = stream_all(&mut client, ROOT);
    assert_eq!(reference.len(), n);

    // Seal commits; then the power dies two mutations into compaction,
    // tearing the last write.
    client.seal(ROOT, false).unwrap();
    // `arm_power_cut` resets the mutation counter: the cut fires two
    // mutating ops into the compaction, tearing the last write.
    faulty.arm_power_cut(PowerCut { after_mutations: 2, torn_bytes: Some(1) });
    client.seal(ROOT, true).expect_err("compaction must abort at the power cut");
    server.shutdown();
    drop(client);
    drop(server);

    // "Reboot": a fresh server over the surviving medium. Recovery runs
    // inside the server's first touch of the root.
    let server = Server::start(Arc::clone(&disk), ServerConfig::default());
    let transport = MemTransport::new(Arc::clone(&server));
    let mut client = ServeClient::connect(&transport).unwrap();

    let recovered = stream_all(&mut client, ROOT);
    assert_eq!(recovered, reference, "sealed data must survive the cut byte-identically");

    // And the interrupted compaction completes from the recovered state.
    let (_, pending) = client.seal(ROOT, true).unwrap();
    assert_eq!(pending, 0);
    assert_eq!(stream_all(&mut client, ROOT), reference);
    server.shutdown();
}

#[test]
fn ingest_client_batches_writes() {
    let fs = Arc::new(MemStorage::new());
    let mut ctx = IoCtx::new();
    drop(IngestStore::create(Arc::clone(&fs), ROOT, cfg(), &mut ctx).unwrap());

    let server = Server::start(Arc::clone(&fs), ServerConfig::default());
    let transport = MemTransport::new(Arc::clone(&server));
    let conn = ServeClient::connect(&transport).unwrap();
    let mut writer =
        IngestClient::new(conn, ROOT, IngestBatching { max_msgs: 4, max_bytes: 1 << 20 });

    let script = script(10);
    let total = script.len() as u64;
    for (topic, time, data) in &script {
        writer.write(topic, *time, data).unwrap();
    }
    // 16 messages with max_msgs=4: everything except the final partial
    // batch is already durable.
    assert!(writer.appended() >= total - 3);
    assert_eq!(u64::from(u32::try_from(writer.buffered()).unwrap()) + writer.appended(), total);
    writer.flush().unwrap();
    assert_eq!(writer.appended(), total);
    let (_, pending) = writer.seal(true).unwrap();
    assert_eq!(pending, 0);

    let mut client = writer.finish().unwrap();
    let served = stream_all(&mut client, ROOT);
    assert_eq!(served.len(), script.len());
    let expected: Vec<(String, u64, Vec<u8>)> = {
        let mut all: Vec<_> =
            served.iter().map(|m| (m.topic.clone(), m.time.as_nanos(), m.data.clone())).collect();
        all.sort();
        all
    };
    let mut sent: Vec<(String, u64, Vec<u8>)> =
        script.into_iter().map(|(t, time, data)| (t.to_owned(), time.as_nanos(), data)).collect();
    sent.sort();
    assert_eq!(expected, sent, "every staged message reached the store exactly once");
    server.shutdown();
}
