//! bora-obs integration: spans and metrics flow end to end through the
//! real stack — bag record, organizer import, baseline and BORA opens,
//! queries, and the serve layer's TRACE wire op.
//!
//! Tracing state (the enabled flag, ring buffers, drain) is process-wide,
//! so every test here serializes on one lock and keeps its assertions
//! inclusive (`contains`) rather than exact-count.

use bora_repro::*;

use bora::{BoraBag, BoraFs, BoraFsOptions};
use bora_serve::{MemTransport, ServeClient, Server, ServerConfig};
use ros_msgs::sensor_msgs::Imu;
use ros_msgs::Time;
use rosbag::{BagReader, BagWriter, BagWriterOptions};
use simfs::{DeviceModel, IoCtx, MemStorage, Storage, TimedStorage};
use std::sync::{Arc, Mutex, MutexGuard};

static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn trace_lock() -> MutexGuard<'static, ()> {
    TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn record_bag<S: Storage>(fs: &S, path: &str, ctx: &mut IoCtx) {
    let mut writer = BagWriter::create(fs, path, BagWriterOptions::default(), ctx).unwrap();
    for tick in 0..500u32 {
        let t = Time::from_nanos(1_000_000_000 * 50 + tick as u64 * 10_000_000);
        let mut imu = Imu::default();
        imu.header.seq = tick;
        imu.header.stamp = t;
        writer.write_ros_message("/imu", t, &imu, ctx).unwrap();
    }
    writer.close(ctx).unwrap();
}

#[test]
fn spans_cover_the_full_open_and_query_path() {
    let _guard = trace_lock();
    bora_obs::set_enabled(true);
    bora_obs::drain(); // discard anything a previous test left behind

    let fs = TimedStorage::new(MemStorage::new(), DeviceModel::nvme_ext4());
    let mut ctx = IoCtx::new();
    record_bag(&fs, "/robot/obs.bag", &mut ctx);

    // Baseline open scans chunks; BORA open hashes the directory listing.
    let mut bctx = IoCtx::new();
    let reader = BagReader::open(&fs, "/robot/obs.bag", &mut bctx).unwrap();
    reader.read_messages(&["/imu"], &mut bctx).unwrap();

    let borafs =
        BoraFs::mount(&fs, "/mnt/bora", "/backend", BoraFsOptions::default(), &mut ctx).unwrap();
    borafs.import_bag(&fs, "/robot/obs.bag", "obs.bag", &mut ctx).unwrap();

    let before = bora_obs::snapshot();
    let mut octx = IoCtx::new();
    let bag = BoraBag::open(&fs, &borafs.container_root("obs.bag"), &mut octx).unwrap();
    let open_virt = octx.elapsed_ns();
    bag.read_topics_time(&["/imu"], Time::new(51, 0), Time::new(52, 0), &mut octx).unwrap();

    bora_obs::set_enabled(false);
    let events = bora_obs::drain();
    for required in [
        "rosbag.open",
        "rosbag.open.chunk_scan",
        "rosbag.open.index_build",
        "rosbag.read_messages",
        "bora.organize",
        "bora.open",
        "bora.open.tag_rebuild",
        "bora.open.meta_read",
        "bora.open.manifest_load",
        "bora.tindex.load",
        "bora.read_topics_time",
        "fs.read_at",
        "fs.append",
    ] {
        assert!(events.iter().any(|e| e.name == required), "missing span {required}");
    }

    // The acceptance criterion: the open's children partition its virtual
    // cost, and that cost is exactly what the cost model charged.
    let virt_of = |name: &str| -> u64 {
        events.iter().filter(|e| e.name == name).filter_map(|e| e.virt_ns).sum()
    };
    assert_eq!(
        virt_of("bora.open"),
        virt_of("bora.open.tag_rebuild")
            + virt_of("bora.open.meta_read")
            + virt_of("bora.open.manifest_load")
    );
    assert_eq!(virt_of("bora.open"), open_virt);

    // Nesting is visible in the recorded paths.
    assert!(events.iter().any(|e| e.path == "bora.open;bora.open.tag_rebuild"));
    assert!(events
        .iter()
        .any(|e| e.name == "fs.read_at" && e.path.starts_with("bora.read_topics_time;")));

    // Counters run even with tracing off; the open bumped them.
    let delta = bora_obs::snapshot().delta_since(&before);
    assert!(delta.counters.iter().any(|(k, v)| k == "bora.open.count" && *v >= 1));

    // Exporters accept the real event stream.
    let json = bora_obs::chrome_trace(&events, bora_obs::dropped());
    assert!(json.contains("\"bora.open.tag_rebuild\""));
    let folded = bora_obs::folded_stacks(&events);
    assert!(folded.contains("bora.open;bora.open.tag_rebuild"));
}

#[test]
fn serve_trace_op_returns_chrome_json_with_request_spans() {
    let _guard = trace_lock();
    bora_obs::set_enabled(true);
    bora_obs::drain();

    let fs = Arc::new(MemStorage::new());
    let mut ctx = IoCtx::new();
    record_bag(&*fs, "/hs.bag", &mut ctx);
    bora::organizer::duplicate(
        &*fs,
        "/hs.bag",
        &*fs,
        "/srv0",
        &bora::OrganizerOptions::default(),
        &mut ctx,
    )
    .unwrap();

    let server = Server::start(Arc::clone(&fs), ServerConfig::default());
    let transport = MemTransport::new(Arc::clone(&server));
    let mut client = ServeClient::connect(&transport).unwrap();
    client.open("/srv0").unwrap();
    client.read("/srv0", &["/imu"]).unwrap();

    // TRACE is control-plane: answered inline, and it drains globally.
    let json = client.trace().unwrap();
    bora_obs::set_enabled(false);
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("\"serve.open\""));
    assert!(json.contains("\"serve.read\""));

    // Queue-wait telemetry rides the existing STATS op.
    let snap = client.stats().unwrap();
    assert!(snap.queue_wait_p99_ns >= snap.queue_wait_mean_ns);

    client.shutdown().unwrap();
    server.shutdown();
}
