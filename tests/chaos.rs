//! Acceptance sweep for the chaos layer (DESIGN.md §16): every scripted
//! fault scenario runs against a live 3-node cluster with both a sealed
//! container and a live ingest root, under one fixed seed, twice.
//!
//! What this buys, in one test run:
//!
//! * **volume** — the sweep injects well over 200 scheduled faults
//!   (drops, delays, duplicates, reorders, truncations, partitions)
//!   across the four scenarios, so the hardened paths (deadlines, retry
//!   budgets, breakers, partition-aware heal) all actually fire;
//! * **safety** — zero invariant violations: no acked append lost, no
//!   byte diverges from the fault-free baseline, heal refuses minority
//!   views and then converges, breakers re-close;
//! * **determinism** — the replay of each `(scenario, seed)` reproduces
//!   the exact same outcome digest and violation list, which is what
//!   makes any future violation *debuggable* instead of a flake.

use bora_chaos::{run_scenario, Scenario};

/// The same fixed seed the CI `chaos` job and the README one-liner use.
const SEED: u64 = 0xb0ba;

/// Floor on scheduled faults across one sweep. The scenarios currently
/// inject ~250 under this seed; the margin absorbs drift when op
/// scripts are retuned, while still guaranteeing the sweep is an actual
/// storm and not three dropped frames.
const MIN_FAULTS: u64 = 200;

#[test]
fn fixed_seed_sweep_holds_invariants_and_replays() {
    let mut total_faults = 0u64;
    let mut summaries = Vec::new();
    for scenario in Scenario::all() {
        let first = run_scenario(scenario, SEED);
        let replay = run_scenario(scenario, SEED);

        assert!(
            first.violations.is_empty(),
            "{}: invariant violations:\n  {}",
            scenario.name(),
            first.violations.join("\n  ")
        );
        assert!(
            replay.violations.is_empty(),
            "{}: replay-only violations (nondeterministic bug!):\n  {}",
            scenario.name(),
            replay.violations.join("\n  ")
        );
        assert_eq!(
            first.replay_key(),
            replay.replay_key(),
            "{}: same seed must replay to the same outcome digest",
            scenario.name()
        );
        assert!(
            first.faults_injected > 0,
            "{}: a chaos scenario that injects nothing tests nothing",
            scenario.name()
        );
        // Ops must both fail (chaos is real) and succeed (the hardening
        // works); a scenario pinned at either extreme is miswired.
        assert!(first.ops_ok > 0, "{}: no op ever succeeded", scenario.name());
        assert!(
            first.ops_ok < first.ops_attempted,
            "{}: {} faults but every op succeeded?",
            scenario.name(),
            first.faults_injected
        );
        total_faults += first.faults_injected;
        summaries.push(format!(
            "{:<16} faults={:<4} ops={}/{} acked={} digest={:016x}",
            scenario.name(),
            first.faults_injected,
            first.ops_ok,
            first.ops_attempted,
            first.acked_batches,
            first.outcome_digest
        ));
    }
    println!("chaos sweep (seed {SEED:#x}):");
    for s in &summaries {
        println!("  {s}");
    }
    assert!(
        total_faults >= MIN_FAULTS,
        "sweep injected only {total_faults} faults (< {MIN_FAULTS}); \
         the scenarios have gone soft"
    );
}

/// Different seeds must produce different failure schedules — otherwise
/// the seed knob is decorative and CI only ever explores one storm.
#[test]
fn different_seeds_diverge() {
    let a = run_scenario(Scenario::DupDelay, 1);
    let b = run_scenario(Scenario::DupDelay, 2);
    assert!(a.violations.is_empty(), "seed 1: {:?}", a.violations);
    assert!(b.violations.is_empty(), "seed 2: {:?}", b.violations);
    // The op script is seed-independent, so identical fault *counts*
    // can coincide; the injected schedule (what got hit, when) must not.
    assert_ne!(
        (a.faults_injected, a.outcome_digest),
        (b.faults_injected, b.outcome_digest),
        "seeds 1 and 2 produced the same storm"
    );
}
