//! Fleet-wide observability, end to end: trace context crossing the
//! wire, server-side spans parenting under the originating client span,
//! hedged losers and abandoned failover attempts marked cancelled, the
//! untraced path staying byte-identical, and the cluster telemetry
//! plane aggregating per-node registries.
//!
//! Tracing state is process-wide; every test that touches it serializes
//! on one lock (same idiom as `tests/obs.rs`).

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use bora_cluster::{
    ClusterClientConfig, ClusterTelemetry, ClusterTierConfig, HedgeConfig, LocalCluster, RingConfig,
};
use bora_obs::SpanEvent;
use bora_serve::{Request, TRACE_CTX_LEN};
use ros_msgs::sensor_msgs::Imu;
use ros_msgs::Time;
use rosbag::{BagWriter, BagWriterOptions};
use simfs::{IoCtx, MemStorage};

static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn trace_lock() -> MutexGuard<'static, ()> {
    TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Stage `n` small containers on a fresh staging filesystem.
fn stage(n: usize) -> (MemStorage, Vec<String>) {
    let staging = MemStorage::new();
    let mut ctx = IoCtx::new();
    let mut roots = Vec::new();
    for i in 0..n {
        let bag = format!("/stage/m{i}.bag");
        let mut w =
            BagWriter::create(&staging, &bag, BagWriterOptions::default(), &mut ctx).unwrap();
        for tick in 0..40u32 {
            let t = Time::from_nanos(1_000_000_000 + tick as u64 * 5_000_000);
            let mut imu = Imu::default();
            imu.header.seq = tick;
            imu.header.stamp = t;
            w.write_ros_message("/imu", t, &imu, &mut ctx).unwrap();
        }
        w.close(&mut ctx).unwrap();
        let root = format!("/fleet/m{i}");
        bora::duplicate(&staging, &bag, &staging, &root, &Default::default(), &mut ctx).unwrap();
        roots.push(root);
    }
    (staging, roots)
}

fn three_node_cluster(
    staging: &MemStorage,
    roots: &[String],
) -> LocalCluster<std::sync::Arc<simfs::ClusterStorage>> {
    let cluster = LocalCluster::start(ClusterTierConfig {
        nodes: 3,
        ring: RingConfig { vnodes: 64, replication: 2 },
        ..ClusterTierConfig::default()
    });
    let refs: Vec<&str> = roots.iter().map(String::as_str).collect();
    cluster.provision(staging, &refs).unwrap();
    cluster
}

/// Walk `ev`'s parent chain to its root. Panics (with context) on a
/// dangling parent reference — the exact defect this suite exists to
/// catch.
fn root_of<'a>(ev: &'a SpanEvent, by_id: &'a HashMap<u64, &'a SpanEvent>) -> &'a SpanEvent {
    let mut cur = ev;
    let mut hops = 0;
    while cur.parent_span != 0 {
        cur = by_id.get(&cur.parent_span).unwrap_or_else(|| {
            panic!(
                "span {} ({}, node {}) references missing parent {}",
                cur.span_id, cur.name, cur.node, cur.parent_span
            )
        });
        hops += 1;
        assert!(hops < 64, "parent chain cycle at {}", cur.name);
    }
    cur
}

/// The PR's acceptance scenario: a 3-node cluster under a query mix with
/// hedging forced on and a failover injected mid-run. Every server-side
/// span must resolve, through the wire-propagated context, to a client
/// root span; hedged losers and abandoned attempts must be visible as
/// cancelled siblings; and the per-node Chrome traces must merge into
/// one causally-linked timeline.
#[test]
fn server_spans_parent_under_client_roots_across_hedge_and_failover() {
    let _guard = trace_lock();
    bora_obs::set_enabled(true);
    bora_obs::drain();

    let (staging, roots) = stage(3);
    let cluster = three_node_cluster(&staging, &roots);
    // Zero hedge threshold: every read immediately issues its second leg,
    // so loser legs are guaranteed, not timing-dependent.
    let client = cluster.client(ClusterClientConfig {
        hedge: Some(HedgeConfig { min_threshold: Duration::ZERO, factor: 0.0 }),
        ..ClusterClientConfig::default()
    });

    for root in &roots {
        client.open(root).unwrap();
        client.topics(root).unwrap();
        assert_eq!(client.read(root, &["/imu"]).unwrap().len(), 40);
    }
    // Injected failover: kill one replica of roots[0] and read again —
    // the dead attempt cancels, the surviving replica answers.
    let victim = client.replicas(&roots[0])[0];
    cluster.kill(victim);
    assert_eq!(client.read(&roots[0], &["/imu"]).unwrap().len(), 40);
    // A non-hedged op against the dead owner takes the with_failover
    // path, leaving a cancelled `cluster.attempt` sibling.
    client.topics(&roots[0]).unwrap();

    bora_obs::set_enabled(false);
    let events = bora_obs::drain();
    cluster.shutdown();

    let by_id: HashMap<u64, &SpanEvent> = events.iter().map(|e| (e.span_id, e)).collect();
    let server_events: Vec<&SpanEvent> = events.iter().filter(|e| e.node != 0).collect();
    assert!(!server_events.is_empty(), "no server-side spans recorded");
    for ev in &server_events {
        assert_ne!(ev.trace_id, 0, "server span {} lost its trace id", ev.name);
        let root = root_of(ev, &by_id);
        assert_eq!(
            root.node, 0,
            "server span {} (node {}) roots at {} (node {}), not at a client span",
            ev.name, ev.node, root.name, root.node
        );
        assert!(
            root.name.starts_with("cluster."),
            "server span {} roots at {:?}, not a cluster op",
            ev.name,
            root.name
        );
        assert_eq!(ev.trace_id, root.trace_id, "trace id must be stable along the chain");
    }
    // Queue-wait split crosses the wire too, as a server-side child.
    assert!(
        server_events.iter().any(|e| e.name == "serve.queue_wait" && e.parent_span != 0),
        "no parented serve.queue_wait spans"
    );

    // Hedged losers: both legs traced, winner ended, loser cancelled.
    let legs: Vec<&SpanEvent> = events.iter().filter(|e| e.name == "cluster.hedge_leg").collect();
    assert!(legs.iter().any(|e| e.cancelled), "no hedge leg marked cancelled");
    assert!(legs.iter().any(|e| !e.cancelled), "no hedge leg won");
    // Injected failover: the dead node's attempt shows up cancelled.
    assert!(
        events.iter().any(|e| e.name == "cluster.attempt" && e.cancelled),
        "failover left no cancelled attempt span"
    );

    // Per-node exports merge into one causally-linked timeline: the same
    // parent/child references resolve inside the merged document.
    let mut nodes: Vec<u32> = events.iter().map(|e| e.node).collect();
    nodes.sort_unstable();
    nodes.dedup();
    assert!(nodes.len() >= 3, "expected client + at least two server lanes, got {nodes:?}");
    let parts: Vec<String> = nodes
        .iter()
        .map(|n| {
            let lane: Vec<SpanEvent> = events.iter().filter(|e| e.node == *n).cloned().collect();
            bora_obs::chrome_trace(&lane, 0)
        })
        .collect();
    let merged = bora_obs::merge_chrome_traces(&parts);
    assert!(merged.contains("\"client\""), "merged trace lost the client lane");
    assert!(merged.contains("\"node-0\""), "merged trace lost the node lanes");
    for ev in &server_events {
        assert!(
            merged.contains(&format!("\"span_id\":{},", ev.parent_span)),
            "merged trace cannot resolve parent {} of {}",
            ev.parent_span,
            ev.name
        );
    }
}

/// With tracing disabled there is no sampling, no context, no spans —
/// and the bytes on the wire are exactly the untraced encoding.
#[test]
fn untraced_path_is_byte_identical_and_span_free() {
    let _guard = trace_lock();
    bora_obs::set_enabled(false);
    bora_obs::drain();

    // Wire level: encode_traced(None) is the identity.
    let req = Request::Read {
        container: "/fleet/m0".into(),
        topics: vec!["/imu".into()],
        range: Some((Time::new(1, 0), Time::new(2, 0))),
    };
    assert_eq!(req.encode_traced(None), req.encode(), "untraced frames must not change");
    assert_eq!(req.encode_traced(bora_obs::current_context()), req.encode());

    // End to end: a full query mix with tracing off records nothing.
    let (staging, roots) = stage(1);
    let cluster = three_node_cluster(&staging, &roots);
    let client = cluster.client(ClusterClientConfig::default());
    client.open(&roots[0]).unwrap();
    client.read(&roots[0], &["/imu"]).unwrap();
    cluster.shutdown();
    assert!(bora_obs::drain().is_empty(), "tracing off must record no spans");
}

/// Compatibility both ways: a plain frame (old client) decodes on a
/// traced server with no context, and a new client with tracing off
/// emits frames an old server's plain decoder accepts.
#[test]
fn plain_and_traced_peers_interoperate() {
    let req = Request::Topics { container: "/fleet/m1".into() };

    // Old client → new server: no context, same request.
    let (decoded, ctx) = Request::decode_traced(&req.encode()).unwrap();
    assert_eq!(decoded, req);
    assert_eq!(ctx, None);

    // New client (tracing off) → old server: the plain decoder accepts
    // the frame because it IS the plain frame.
    assert_eq!(Request::decode(&req.encode_traced(None)).unwrap(), req);

    // A traced frame is exactly header + plain frame, so the header cost
    // is fixed and the inner bytes stay canonical.
    let ctx = bora_obs::TraceContext { trace_id: 7, parent_span: 9, sampled: true };
    let traced = req.encode_traced(Some(ctx));
    assert_eq!(traced.len(), req.encode().len() + TRACE_CTX_LEN);
    assert_eq!(&traced[TRACE_CTX_LEN..], req.encode().as_slice());
}

/// A context with the sampling bit off crosses the wire but must not
/// produce spans on the receiving side.
#[test]
fn unsampled_context_is_carried_but_not_adopted() {
    let _guard = trace_lock();
    bora_obs::set_enabled(true);
    bora_obs::drain();

    let off = bora_obs::TraceContext { trace_id: 42, parent_span: 43, sampled: false };
    let req = Request::Stats;
    let (_, decoded) = Request::decode_traced(&req.encode_traced(Some(off))).unwrap();
    assert_eq!(decoded, Some(off), "the bit travels; the receiver decides");

    // Adoption filters it: spans recorded under it are fresh roots, not
    // children of the unsampled remote span.
    {
        let _g = bora_obs::adopt_context(decoded);
        assert_eq!(bora_obs::current_context(), None);
        let sp = bora_obs::span("fleet.unsampled_child");
        drop(sp);
    }
    bora_obs::set_enabled(false);
    let events = bora_obs::drain();
    let ev = events.iter().find(|e| e.name == "fleet.unsampled_child").unwrap();
    assert_eq!(ev.parent_span, 0, "unsampled context must not parent local spans");
    assert_ne!(ev.trace_id, 42, "unsampled trace id must not leak into local roots");
}

/// The telemetry plane against a live cluster: scraping all nodes sums
/// counters across exactly the nodes that served, and a second scrape's
/// deltas reflect only the traffic in between.
#[test]
fn cluster_telemetry_aggregates_live_nodes_and_tracks_deltas() {
    let (staging, roots) = stage(2);
    let cluster = three_node_cluster(&staging, &roots);
    let client = cluster.client(ClusterClientConfig::default());
    for root in &roots {
        client.topics(root).unwrap();
        client.read(root, &["/imu"]).unwrap();
    }

    let telemetry = ClusterTelemetry::new(client.clone());
    let first = telemetry.scrape();
    assert_eq!(first.reports.len(), 3, "all three nodes must answer");
    assert!(first.unreachable.is_empty());
    // Each `topics` and `read` hit exactly one replica; the cluster-wide
    // sum sees all of them regardless of placement.
    let topics_hist = first.aggregate.hist("serve.op.topics.wall_ns").unwrap();
    assert_eq!(topics_hist.count, 2, "two topics calls cluster-wide");
    assert_eq!(first.aggregate.hist("serve.op.read.wall_ns").unwrap().count, 2);
    // Per-node counts split the same total.
    let per_node: u64 = first
        .reports
        .iter()
        .filter_map(|(_, r)| r.hist("serve.op.read.wall_ns"))
        .map(|h| h.count)
        .sum();
    assert_eq!(per_node, 2);

    // Quiet interval → second scrape's read delta is empty; one more
    // read → third scrape shows exactly it.
    let second = telemetry.scrape();
    let read_delta = |scrape: &bora_cluster::ClusterScrape| -> u64 {
        scrape
            .deltas
            .iter()
            .flat_map(|(_, d)| d.iter())
            .filter(|(name, _)| name == "serve.op.read.wall_ns.count")
            .map(|&(_, v)| v)
            .sum()
    };
    assert_eq!(read_delta(&second), 0, "no traffic, no delta");
    client.read(&roots[0], &["/imu"]).unwrap();
    let third = telemetry.scrape();
    assert_eq!(read_delta(&third), 1, "exactly the one read since the last scrape");

    // METRICS is control-plane: even a node that has begun shutting down
    // still answers the poller (an overloaded or dying node is exactly
    // the one telemetry must not go blind on).
    let victim = cluster.node_ids()[0];
    cluster.kill(victim);
    let after = telemetry.scrape();
    assert_eq!(
        after.reports.len(),
        3,
        "shutting-down nodes still answer METRICS; unreachable: {:?}",
        after.unreachable
    );
    cluster.shutdown();
}

/// A node whose transport is dead degrades the scrape to an
/// `unreachable` row instead of killing the sweep.
#[test]
fn unreachable_nodes_degrade_the_scrape_not_the_sweep() {
    use bora_cluster::{ClusterClient, Ring, RingConfig};
    use bora_serve::TcpTransport;
    use std::sync::{Arc, RwLock};

    // Port from the ephemeral range bound to nothing: connects are
    // refused immediately.
    let dead = {
        let sock = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        sock.local_addr().unwrap()
        // listener dropped here — the port is free again
    };
    let ring = Arc::new(RwLock::new(Ring::with_nodes(RingConfig::default(), 1)));
    let client = ClusterClient::new(ring, [(0u32, TcpTransport::new(dead))], Default::default());
    let telemetry = ClusterTelemetry::new(client);
    let scrape = telemetry.scrape();
    assert!(scrape.reports.is_empty());
    assert_eq!(scrape.unreachable.len(), 1);
    assert_eq!(scrape.unreachable[0].0, 0);
    assert_eq!(scrape.aggregate.nodes, 0);
    // The render degrades gracefully too.
    let table = bora_cluster::render_top(&scrape);
    assert!(table.contains("node 0: unreachable"), "{table}");
}
