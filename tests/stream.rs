//! Streaming query pipeline: differential tests against the materializing
//! merge, tie-break stability, bounded residency, and the zero-copy claim.
//!
//! The heap merge is the primary read path (`read_topics` is a thin
//! `collect()` over it), so these tests pin its equivalence to the old
//! linear-scan merge — byte-for-byte, including the order of simultaneous
//! timestamps — and the properties the materializing path never had:
//! peak resident bytes bounded by the readahead window, and payload
//! delivery without copies.

use proptest::prelude::*;

use bora::{merge_streams_heap, merge_streams_linear, BoraBag, OrganizerOptions, StreamOptions};
use ros_msgs::sensor_msgs::Imu;
use ros_msgs::{MessageDescriptor, RosMessage, Time};
use rosbag::{BagWriter, BagWriterOptions};
use simfs::{IoCtx, MemStorage};

/// A synthetic message event: (topic index, time-nanos, payload seed).
type Event = (usize, u64, u8);

const TOPICS: [&str; 4] = ["/imu", "/tf", "/camera/rgb/image_color", "/odom"];

/// Events with a deliberately tiny time domain so simultaneous timestamps
/// across topics are common, not a corner case.
fn arb_colliding_events() -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec((0usize..4, 0u64..40, any::<u8>()), 1..150).prop_map(|mut v| {
        for e in v.iter_mut() {
            e.1 *= 1_000_000_000; // whole seconds: collisions survive Time's (sec, nsec) split
        }
        v.sort_by_key(|e| e.1);
        v
    })
}

fn build_container(fs: &MemStorage, events: &[Event]) {
    let mut ctx = IoCtx::new();
    let mut w = BagWriter::create(
        fs,
        "/p.bag",
        BagWriterOptions { chunk_size: 2048, ..Default::default() },
        &mut ctx,
    )
    .unwrap();
    let desc = MessageDescriptor::of::<Imu>();
    let conns: Vec<u32> = TOPICS.iter().map(|t| w.add_connection(t, &desc)).collect();
    for &(ti, ns, seed) in events {
        let mut imu = Imu::default();
        imu.header.seq = seed as u32;
        imu.header.stamp = Time::from_nanos(ns);
        imu.linear_acceleration.x = seed as f64;
        w.write_message(conns[ti], Time::from_nanos(ns), &imu.to_bytes(), &mut ctx).unwrap();
    }
    w.close(&mut ctx).unwrap();
    bora::organizer::duplicate(fs, "/p.bag", fs, "/c", &OrganizerOptions::default(), &mut ctx)
        .unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The streaming heap merge and the retired linear-scan merge produce
    /// byte-identical sequences — same times, same payloads, same order
    /// for simultaneous timestamps — for arbitrary workloads and stream
    /// tunings.
    #[test]
    fn streaming_merge_equals_linear_merge(
        events in arb_colliding_events(),
        readahead in 256usize..16384,
        threads in 1usize..5,
    ) {
        let fs = MemStorage::new();
        build_container(&fs, &events);
        let mut ctx = IoCtx::new();
        let bag = BoraBag::open(&fs, "/c", &mut ctx).unwrap();

        // Reference: per-topic reads merged by the old linear scan.
        let per_topic: Vec<Vec<rosbag::reader::MessageRecord>> = TOPICS
            .iter()
            .map(|t| bag.read_topic(t, &mut ctx).unwrap())
            .collect();
        let linear = merge_streams_linear(per_topic.clone(), &mut ctx);
        let heap = merge_streams_heap(per_topic, &mut ctx);
        prop_assert_eq!(linear.len(), events.len());
        prop_assert_eq!(heap.len(), linear.len());

        // Streaming path, driven message-by-message.
        let opts = StreamOptions { readahead_bytes: readahead, prefetch_threads: threads };
        let mut stream = bag.stream_topics(&TOPICS, opts, &mut ctx).unwrap();
        let mut streamed = Vec::new();
        while let Some(m) = stream.next_msg(&mut ctx).unwrap() {
            streamed.push((m.topic.to_string(), m.time, m.payload().to_vec()));
        }

        prop_assert_eq!(streamed.len(), linear.len());
        for ((s, l), h) in streamed.iter().zip(&linear).zip(&heap) {
            prop_assert_eq!(&s.0, &l.topic);
            prop_assert_eq!(s.1, l.time);
            prop_assert_eq!(&s.2, &l.data);
            prop_assert_eq!(&l.topic, &h.topic);
            prop_assert_eq!(l.time, h.time);
            prop_assert_eq!(&l.data, &h.data);
        }
        for w in streamed.windows(2) {
            prop_assert!(w[0].1 <= w[1].1, "stream must stay chronological");
        }
    }

    /// Time-bounded streams equal the materializing time query for any
    /// window (which itself is differential-tested against the baseline
    /// reader in prop_invariants.rs).
    #[test]
    fn streaming_time_window_equals_materializing(
        events in arb_colliding_events(),
        bounds in (0u64..45_000_000_000, 0u64..45_000_000_000),
    ) {
        let (a, b) = bounds;
        let (start, end) = (Time::from_nanos(a.min(b)), Time::from_nanos(a.max(b)));
        let fs = MemStorage::new();
        build_container(&fs, &events);
        let mut ctx = IoCtx::new();
        let bag = BoraBag::open(&fs, "/c", &mut ctx).unwrap();

        let reference = bag.read_topics_time(&TOPICS, start, end, &mut ctx).unwrap();
        let opts = StreamOptions { readahead_bytes: 1024, prefetch_threads: 2 };
        let mut stream = bag.stream_topics_time(&TOPICS, start, end, opts, &mut ctx).unwrap();
        let mut got = Vec::new();
        while let Some(m) = stream.next_msg(&mut ctx).unwrap() {
            got.push(m);
        }
        prop_assert_eq!(got.len(), reference.len());
        for (m, r) in got.iter().zip(&reference) {
            prop_assert_eq!(&*m.topic, r.topic.as_str());
            prop_assert_eq!(m.time, r.time);
            prop_assert_eq!(m.payload(), r.data.as_slice());
        }
    }
}

/// Write `count` messages on each of `topics`, all at the same sequence of
/// timestamps, with the payload encoding (topic, i) so order is checkable.
fn build_simultaneous(fs: &MemStorage, topics: &[&str], count: u32) {
    let mut ctx = IoCtx::new();
    let mut w = BagWriter::create(fs, "/p.bag", BagWriterOptions::default(), &mut ctx).unwrap();
    let desc = MessageDescriptor::of::<Imu>();
    let conns: Vec<u32> = topics.iter().map(|t| w.add_connection(t, &desc)).collect();
    for i in 0..count {
        for (ti, &conn) in conns.iter().enumerate() {
            let mut imu = Imu::default();
            imu.header.seq = (ti as u32) << 16 | i;
            imu.header.stamp = Time::new(i, 0);
            w.write_message(conn, Time::new(i, 0), &imu.to_bytes(), &mut ctx).unwrap();
        }
    }
    w.close(&mut ctx).unwrap();
    bora::organizer::duplicate(fs, "/p.bag", fs, "/c", &OrganizerOptions::default(), &mut ctx)
        .unwrap();
}

/// For simultaneous timestamps, the merge yields messages in the order the
/// caller requested the topics — the same stable first-requested-wins rule
/// the linear merge had — and flipping the request order flips the ties.
#[test]
fn simultaneous_timestamps_follow_requested_topic_order() {
    let fs = MemStorage::new();
    build_simultaneous(&fs, &["/a", "/b", "/c"], 8);
    let mut ctx = IoCtx::new();
    let bag = BoraBag::open(&fs, "/c", &mut ctx).unwrap();

    for order in [["/a", "/b", "/c"], ["/c", "/a", "/b"]] {
        let mut stream = bag.stream_topics(&order, StreamOptions::default(), &mut ctx).unwrap();
        let mut got = Vec::new();
        while let Some(m) = stream.next_msg(&mut ctx).unwrap() {
            got.push((m.time, m.topic.to_string()));
        }
        assert_eq!(got.len(), 24);
        for (i, chunk) in got.chunks(3).enumerate() {
            for (j, (time, topic)) in chunk.iter().enumerate() {
                assert_eq!(*time, Time::new(i as u32, 0));
                assert_eq!(topic, order[j], "tie order must follow the request order");
            }
        }
    }
}

/// Peak resident bytes track the readahead window, not the result size:
/// the whole point of streaming. The bound is `k × (readahead + one run)`
/// — a run may overshoot the window by up to one window plus one message.
#[test]
fn peak_resident_bytes_bounded_by_readahead_window() {
    let fs = MemStorage::new();
    // Two topics × 300 Imu messages ≈ 2 × 300 × ~330B ≈ 200 KB of data.
    build_simultaneous(&fs, &["/a", "/b"], 300);
    let mut ctx = IoCtx::new();
    let bag = BoraBag::open(&fs, "/c", &mut ctx).unwrap();

    let readahead = 4096usize;
    let opts = StreamOptions { readahead_bytes: readahead, prefetch_threads: 2 };
    let mut stream = bag.stream_topics(&["/a", "/b"], opts, &mut ctx).unwrap();
    let mut total_bytes = 0usize;
    while let Some(m) = stream.next_msg(&mut ctx).unwrap() {
        total_bytes += m.payload().len();
    }
    let stats = stream.stats();
    assert_eq!(stats.delivered, 600);
    let per_cursor_bound = 2 * readahead + 1024; // window + one overshooting run
    assert!(
        stats.peak_resident_bytes <= 2 * per_cursor_bound,
        "peak resident {} exceeds k×window bound {}",
        stats.peak_resident_bytes,
        2 * per_cursor_bound
    );
    assert!(
        stats.peak_resident_bytes < total_bytes / 2,
        "peak resident {} should be far below the {}B result set",
        stats.peak_resident_bytes,
        total_bytes
    );
    assert!(stats.refills > 2, "a bounded window must refill as the stream drains");
}

/// Borrowing payloads copies nothing; only explicit materialization
/// (`to_record`) moves bytes — and the telemetry counter proves it.
#[test]
fn payload_access_is_zero_copy() {
    let fs = MemStorage::new();
    build_simultaneous(&fs, &["/a", "/b"], 50);
    let mut ctx = IoCtx::new();
    let bag = BoraBag::open(&fs, "/c", &mut ctx).unwrap();

    let before = bora_obs::counter("stream.bytes_copied").get();
    let mut stream = bag.stream_topics(&["/a", "/b"], StreamOptions::default(), &mut ctx).unwrap();
    let mut checksum = 0u64;
    let mut last: Option<bora::StreamMessage> = None;
    while let Some(m) = stream.next_msg(&mut ctx).unwrap() {
        checksum = checksum.wrapping_add(m.payload().iter().map(|&b| b as u64).sum::<u64>());
        last = Some(m);
    }
    assert!(checksum > 0);
    assert_eq!(bora_obs::counter("stream.bytes_copied").get(), before, "payload() must not copy");

    let m = last.unwrap();
    let rec = m.to_record();
    assert_eq!(
        bora_obs::counter("stream.bytes_copied").get(),
        before + rec.data.len() as u64,
        "to_record() copies exactly the payload"
    );
}

/// An abandoned stream explicitly folds its prefetch I/O into the caller's
/// clock via `charge_into`; the fold is idempotent.
#[test]
fn abandoned_stream_charges_once() {
    let fs = MemStorage::new();
    build_simultaneous(&fs, &["/a", "/b"], 100);
    let mut ctx = IoCtx::new();
    let bag = BoraBag::open(&fs, "/c", &mut ctx).unwrap();

    let mut ctx2 = IoCtx::new();
    let mut stream = bag.stream_topics(&["/a", "/b"], StreamOptions::default(), &mut ctx2).unwrap();
    for _ in 0..5 {
        stream.next_msg(&mut ctx2).unwrap().unwrap();
    }
    let before = ctx2.elapsed_ns();
    stream.charge_into(&mut ctx2);
    let after_once = ctx2.elapsed_ns();
    assert!(after_once > before, "prefetch I/O must land on the clock");
    stream.charge_into(&mut ctx2);
    assert_eq!(ctx2.elapsed_ns(), after_once, "charge_into is idempotent");
    drop(stream);
    let _ = ctx;
}
