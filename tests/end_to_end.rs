//! Cross-crate integration: the full lifecycle a downstream user runs —
//! record → duplicate → open → query → export — with every result checked
//! against the baseline reader, across storage backends.

use bora_repro::*;

use bora::{BoraBag, BoraFs, BoraFsOptions, OrganizerOptions};
use ros_msgs::{RosDuration, RosMessage, Time};
use rosbag::{BagReader, BagWriterOptions};
use simfs::{ClusterConfig, ClusterStorage, DeviceModel, IoCtx, MemStorage, Storage, TimedStorage};
use workloads::tum::{generate_bag, topic, GenOptions};
use workloads::Application;

fn tiny_opts() -> GenOptions {
    GenOptions {
        count_scale: 0.03,
        payload_scale: 0.005,
        seed: 99,
        writer: BagWriterOptions { chunk_size: 64 * 1024, ..Default::default() },
        ..Default::default()
    }
}

/// The full lifecycle on a given backend.
fn lifecycle_on<S: Storage>(fs: &S) {
    let mut ctx = IoCtx::new();
    let bag = generate_bag(fs, "/hs.bag", &tiny_opts(), &mut ctx).expect("generate");
    bora::organizer::duplicate(fs, "/hs.bag", fs, "/c", &OrganizerOptions::default(), &mut ctx)
        .expect("duplicate");

    let baseline = BagReader::open(fs, "/hs.bag", &mut ctx).expect("baseline open");
    let bora_bag = BoraBag::open(fs, "/c", &mut ctx).expect("bora open");

    // Container self-check.
    assert_eq!(bora_bag.verify(&mut ctx).expect("verify"), bag.message_count);

    // Every topic: identical payload streams through both paths.
    for spec in &workloads::tum::TUM_TOPICS {
        let base = baseline.read_messages(&[spec.name], &mut ctx).unwrap();
        let ours = bora_bag.read_topic(spec.name, &mut ctx).unwrap();
        assert_eq!(base.len(), ours.len(), "count mismatch on {}", spec.name);
        for (a, b) in base.iter().zip(&ours) {
            assert_eq!(a.time, b.time);
            assert_eq!(a.data, b.data);
        }
    }

    // Every application's multi-topic query agrees too.
    for app in workloads::APPLICATIONS {
        let topics = app.topics(3);
        let base = baseline.read_messages(&topics, &mut ctx).unwrap();
        let ours = bora_bag.read_topics(&topics, &mut ctx).unwrap();
        assert_eq!(base.len(), ours.len(), "{}", app.abbrev());
    }
}

#[test]
fn lifecycle_mem() {
    lifecycle_on(&MemStorage::new());
}

#[test]
fn lifecycle_timed_ext4() {
    lifecycle_on(&TimedStorage::new(MemStorage::new(), DeviceModel::nvme_ext4()));
}

#[test]
fn lifecycle_pvfs_cluster() {
    lifecycle_on(&ClusterStorage::new(ClusterConfig::pvfs4()));
}

#[test]
fn lifecycle_lustre_cluster() {
    lifecycle_on(&ClusterStorage::new(ClusterConfig::tianhe_lustre()));
}

#[test]
fn lifecycle_on_real_disk() {
    let dir = std::env::temp_dir().join(format!("bora-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let fs = simfs::LocalStorage::new(&dir).expect("local storage");
    lifecycle_on(&fs);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lifecycle_through_plfs_middleware() {
    // The unmodified stack also runs over the PLFS-style middleware.
    let fs = plfs_lite::PlfsStorage::new(MemStorage::new());
    let mut ctx = IoCtx::new();
    let bag = generate_bag(&fs, "/hs.bag", &tiny_opts(), &mut ctx).expect("generate");
    let reader = BagReader::open(&fs, "/hs.bag", &mut ctx).expect("open");
    assert_eq!(reader.index().message_count(), bag.message_count);
    let imu = reader.read_messages(&[topic::IMU], &mut ctx).unwrap();
    assert!(!imu.is_empty());
}

#[test]
fn time_window_queries_agree_across_full_staircase() {
    let fs = MemStorage::new();
    let mut ctx = IoCtx::new();
    generate_bag(&fs, "/hs.bag", &tiny_opts(), &mut ctx).unwrap();
    bora::organizer::duplicate(&fs, "/hs.bag", &fs, "/c", &OrganizerOptions::default(), &mut ctx)
        .unwrap();
    let baseline = BagReader::open(&fs, "/hs.bag", &mut ctx).unwrap();
    let bora_bag = BoraBag::open(&fs, "/c", &mut ctx).unwrap();
    let (t0, t_end) = bora_bag.time_range();
    let topics = Application::RobotSlam.topics(0);

    // Paper's stair-step: fixed start, end grows by 5 s steps past EOF.
    let mut w = 0.0f64;
    loop {
        w += 5.0;
        let end = t0 + RosDuration::from_sec_f64(w);
        let base = baseline.read_messages_time(&topics, t0, end, &mut ctx).unwrap();
        let ours = bora_bag.read_topics_time(&topics, t0, end, &mut ctx).unwrap();
        assert_eq!(base.len(), ours.len(), "window {w}s");
        for (a, b) in base.iter().zip(&ours) {
            assert_eq!((a.time, &a.data), (b.time, &b.data), "window {w}s");
        }
        if end > t_end + RosDuration::from_sec_f64(10.0) {
            break;
        }
    }
}

#[test]
fn export_import_round_trip_preserves_everything() {
    let fs = MemStorage::new();
    let mut ctx = IoCtx::new();
    generate_bag(&fs, "/hs.bag", &tiny_opts(), &mut ctx).unwrap();

    let bora_fs =
        BoraFs::mount(&fs, "/front", "/back", BoraFsOptions::default(), &mut ctx).unwrap();
    bora_fs.import_bag(&fs, "/hs.bag", "hs.bag", &mut ctx).unwrap();
    bora_fs.export_bag("hs.bag", &fs, "/roundtrip.bag", &mut ctx).unwrap();

    // The exported bag, read with the plain reader, yields the same
    // message multiset as the original (order may legitimately differ for
    // identical timestamps across topics, so compare sorted digests).
    let orig = BagReader::open(&fs, "/hs.bag", &mut ctx).unwrap();
    let back = BagReader::open(&fs, "/roundtrip.bag", &mut ctx).unwrap();
    let all_topics: Vec<&str> = orig.topics().into_iter().collect();
    let mut a: Vec<(Time, String)> = orig
        .read_messages(&all_topics, &mut ctx)
        .unwrap()
        .into_iter()
        .map(|m| (m.time, ros_msgs::md5::hex_digest(&m.data)))
        .collect();
    let all_topics_b: Vec<&str> = back.topics().into_iter().collect();
    let mut b: Vec<(Time, String)> = back
        .read_messages(&all_topics_b, &mut ctx)
        .unwrap()
        .into_iter()
        .map(|m| (m.time, ros_msgs::md5::hex_digest(&m.data)))
        .collect();
    a.sort();
    b.sort();
    assert_eq!(a, b);
}

#[test]
fn typed_payloads_survive_the_whole_pipeline() {
    use ros_msgs::sensor_msgs::{CameraInfo, Image, Imu};
    use ros_msgs::tf2_msgs::TfMessage;
    use ros_msgs::visualization_msgs::MarkerArray;

    let fs = MemStorage::new();
    let mut ctx = IoCtx::new();
    generate_bag(&fs, "/hs.bag", &tiny_opts(), &mut ctx).unwrap();
    bora::organizer::duplicate(&fs, "/hs.bag", &fs, "/c", &OrganizerOptions::default(), &mut ctx)
        .unwrap();
    let bag = BoraBag::open(&fs, "/c", &mut ctx).unwrap();

    for spec in &workloads::tum::TUM_TOPICS {
        let msgs = bag.read_topic(spec.name, &mut ctx).unwrap();
        assert!(!msgs.is_empty(), "{} empty", spec.name);
        let m = &msgs[msgs.len() / 2];
        match spec.id {
            'A' | 'B' => {
                let img = Image::from_bytes(&m.data).unwrap();
                assert!(img.geometry_is_consistent());
            }
            'C' | 'D' => {
                let ci = CameraInfo::from_bytes(&m.data).unwrap();
                assert_eq!(ci.distortion_model, "plumb_bob");
            }
            'E' => {
                let arr = MarkerArray::from_bytes(&m.data).unwrap();
                assert_eq!(arr.markers.len(), 2);
            }
            'F' => {
                let imu = Imu::from_bytes(&m.data).unwrap();
                assert_eq!(imu.linear_acceleration.z, 9.81);
            }
            'G' => {
                let tf = TfMessage::from_bytes(&m.data).unwrap();
                assert_eq!(tf.transforms.len(), 2);
            }
            _ => unreachable!(),
        }
    }
}
