//! bora-serve integration: the full protocol stack over both transports,
//! error mapping, and backend fault injection.
//!
//! The deterministic concurrency scenarios (hot cache, eviction churn,
//! overload shedding) live in `tests/concurrency.rs`; this file covers
//! the seams those skip: real TCP framing, protocol-level errors, and a
//! faulty storage backend under the running service.

use bora_repro::*;

use bora::{BoraBag, OrganizerOptions};
use bora_serve::{
    spawn_tcp_listener, ClientError, ErrorCode, MemTransport, RetryClient, RetryPolicy,
    ServeClient, Server, ServerConfig, TcpTransport,
};
use simfs::{FaultKind, FaultRule, FaultyStorage, IoCtx, MemStorage, Storage};
use std::sync::Arc;
use workloads::tum::GenOptions;

/// One generated Handheld-SLAM bag organized into `n` containers
/// `/srv0..`, on any storage backend.
fn build_containers<S: simfs::Storage>(fs: &S, n: usize) -> Vec<String> {
    let mut ctx = IoCtx::new();
    let opts = GenOptions {
        count_scale: 0.05,
        payload_scale: 0.003,
        seed: 0x5e,
        writer: rosbag::BagWriterOptions { chunk_size: 64 * 1024, ..Default::default() },
        ..Default::default()
    };
    workloads::tum::generate_bag(fs, "/hs.bag", &opts, &mut ctx).unwrap();
    (0..n)
        .map(|k| {
            let root = format!("/srv{k}");
            bora::organizer::duplicate(
                fs,
                "/hs.bag",
                fs,
                &root,
                &OrganizerOptions::default(),
                &mut ctx,
            )
            .unwrap();
            root
        })
        .collect()
}

#[test]
fn tcp_transport_end_to_end() {
    let fs = Arc::new(MemStorage::new());
    let roots = build_containers(&*fs, 2);
    let mut ctx = IoCtx::new();
    let direct = BoraBag::open(Arc::clone(&fs), &roots[0], &mut ctx).unwrap();
    let expected_imu = direct.read_topic("/imu", &mut ctx).unwrap().len();
    let mut expected_topics: Vec<String> = direct.topics().into_iter().map(str::to_owned).collect();
    expected_topics.sort();
    drop(direct);

    let server = Server::start(Arc::clone(&fs), ServerConfig::default());
    let listener = spawn_tcp_listener(Arc::clone(&server), "127.0.0.1:0".parse().unwrap()).unwrap();
    let transport = TcpTransport::new(listener.addr());

    // Several clients over real sockets, concurrently.
    std::thread::scope(|scope| {
        for worker in 0..3 {
            let transport = &transport;
            let roots = &roots;
            let expected_topics = &expected_topics;
            scope.spawn(move || {
                let mut client = ServeClient::connect(transport).unwrap();
                for round in 0..3 {
                    let root = &roots[(worker + round) % roots.len()];
                    assert_eq!(&client.topics(root).unwrap(), expected_topics);
                    let msgs = client.read(root, &["/imu"]).unwrap();
                    assert_eq!(msgs.len(), expected_imu);
                    // Messages arrive time-ordered through the wire too.
                    for pair in msgs.windows(2) {
                        assert!(pair[0].time <= pair[1].time);
                    }
                }
            });
        }
    });

    let mut client = ServeClient::connect(&transport).unwrap();
    let stat = client.stat(&roots[0]).unwrap();
    assert!(stat.messages > 0);
    assert!(stat.topics as usize >= expected_topics.len());

    // The container's raw metadata survives the trip byte-exact.
    let meta_bytes = client.meta(&roots[0]).unwrap();
    let meta = bora::ContainerMeta::decode(&meta_bytes).unwrap();
    assert_eq!(meta.message_count(), stat.messages);

    let snap = client.stats().unwrap();
    assert_eq!(snap.shed, 0);
    assert!(snap.cache_hits > 0);

    // SHUTDOWN over TCP stops the acceptor; join must not hang.
    client.shutdown().unwrap();
    listener.join();
    server.shutdown();
}

#[test]
fn unknown_container_and_topic_map_to_typed_errors() {
    let fs = Arc::new(MemStorage::new());
    let roots = build_containers(&*fs, 1);

    let server = Server::start(Arc::clone(&fs), ServerConfig::default());
    let transport = MemTransport::new(Arc::clone(&server));
    let mut client = ServeClient::connect(&transport).unwrap();

    // A path that does not exist at all fails at the storage layer...
    match client.topics("/nonexistent") {
        Err(ClientError::Server { code: ErrorCode::Io, .. }) => {}
        other => panic!("expected Io, got {other:?}"),
    }
    // ...while an existing directory with no container layout inside is
    // diagnosed as such.
    {
        let mut ctx = IoCtx::new();
        fs.mkdir_all("/empty", &mut ctx).unwrap();
    }
    match client.topics("/empty") {
        Err(ClientError::Server { code: ErrorCode::NotAContainer, .. }) => {}
        other => panic!("expected NotAContainer, got {other:?}"),
    }
    match client.read(&roots[0], &["/no/such/topic"]) {
        Err(ClientError::Server { code: ErrorCode::UnknownTopic, .. }) => {}
        other => panic!("expected UnknownTopic, got {other:?}"),
    }
    // The connection survives server-side errors.
    assert!(!client.topics(&roots[0]).unwrap().is_empty());
    server.shutdown();
}

#[test]
fn backend_fault_becomes_protocol_error_without_poisoning_the_cache() {
    let fs = Arc::new(FaultyStorage::new(MemStorage::new()));
    let roots = build_containers(&*fs, 2);

    let server = Server::start(
        Arc::clone(&fs),
        ServerConfig {
            workers: 2,
            queue_capacity: 16,
            cache_capacity: 4,
            ..ServerConfig::default()
        },
    );
    let transport = MemTransport::new(Arc::clone(&server));
    let mut client = ServeClient::connect(&transport).unwrap();

    // Warm /srv0; count its messages while the backend is healthy.
    let healthy = client.read(&roots[0], &["/imu"]).unwrap().len();
    assert!(healthy > 0);
    let warm_snap = client.stats().unwrap();
    assert_eq!(warm_snap.cache_len, 1);

    // Fault every read under /srv1: the cold open must fail cleanly.
    // (`BoraBag::open` folds a failed metadata read into NotAContainer —
    // from the opener's seat an unreadable container and a missing one
    // look the same.)
    fs.inject(FaultRule {
        kind: FaultKind::Reads,
        path_contains: Some("/srv1".into()),
        ..FaultRule::default()
    });
    match client.open(&roots[1]) {
        Err(ClientError::Server { code: ErrorCode::NotAContainer, .. }) => {}
        other => panic!("expected NotAContainer error, got {other:?}"),
    }
    // The failed open must not leave a half-built handle behind.
    let snap = client.stats().unwrap();
    assert_eq!(snap.cache_len, 1, "failed open must not be cached");

    // The healthy container is unaffected while the fault is live, and
    // the pool keeps serving (same client, same workers).
    assert_eq!(client.read(&roots[0], &["/imu"]).unwrap().len(), healthy);

    // Fault cleared: the service recovers without a restart.
    fs.clear_faults();
    let (_, cached) = client.open(&roots[1]).unwrap();
    assert!(!cached, "the faulted open must not have cached anything");
    assert_eq!(client.read(&roots[1], &["/imu"]).unwrap().len(), healthy);

    // Now fault the *data* path of the already-cached /srv0: the READ
    // fails with a typed error, but the cached handle itself is fine —
    // once the backend recovers, the same handle serves correct data.
    fs.inject(FaultRule {
        kind: FaultKind::Reads,
        path_contains: Some("/srv0/imu".into()),
        ..FaultRule::default()
    });
    match client.read(&roots[0], &["/imu"]) {
        Err(ClientError::Server { code: ErrorCode::Io, .. }) => {}
        other => panic!("expected Io error, got {other:?}"),
    }
    fs.clear_faults();
    let before = client.stats().unwrap().cache_hits;
    assert_eq!(client.read(&roots[0], &["/imu"]).unwrap().len(), healthy);
    let after = client.stats().unwrap();
    assert!(after.cache_hits > before, "recovery read must come from the cached handle");

    server.shutdown();
}

#[test]
fn retry_client_completes_query_mix_under_transient_faults() {
    let fs = Arc::new(FaultyStorage::new(MemStorage::new()));
    let roots = build_containers(&*fs, 2);

    let server = Server::start(Arc::clone(&fs), ServerConfig::default());
    let policy = RetryPolicy {
        max_attempts: 10,
        base_delay_ms: 0, // schedule shape is unit-tested; keep this test fast
        max_delay_ms: 0,
        ..RetryPolicy::default()
    };
    let mut client = RetryClient::new(MemTransport::new(Arc::clone(&server)), policy);

    // Warm both containers while the backend is healthy: a cold open
    // under a read fault folds into NotAContainer, which is (correctly)
    // permanent — transient faults are only recoverable on warm handles.
    let healthy = client.read(&roots[0], &["/imu"]).unwrap().len();
    assert!(healthy > 0);
    assert_eq!(client.read(&roots[1], &["/imu"]).unwrap().len(), healthy);

    // Transient backend trouble: the next few reads touching /srv0's
    // data die with Io, then the medium heals (max_failures expires the
    // rule). The retry client must absorb all of it.
    fs.inject(FaultRule {
        kind: FaultKind::Reads,
        path_contains: Some("/srv0/imu".into()),
        max_failures: Some(3),
        ..FaultRule::default()
    });

    let global_before = bora_obs::counter("serve.retries").get();
    for round in 0..4 {
        let root = &roots[round % roots.len()];
        // Zero client-visible errors across the whole mix: every call
        // either succeeds first try or converges through retries.
        assert!(!client.topics(root).unwrap().is_empty());
        assert_eq!(client.read(root, &["/imu"]).unwrap().len(), healthy);
        assert!(client.stat(root).unwrap().messages > 0);
    }
    assert!(client.retries() > 0, "the injected faults must have forced retries");
    assert!(
        bora_obs::counter("serve.retries").get() > global_before,
        "retries must be visible in telemetry"
    );

    server.shutdown();
}

#[test]
fn streaming_read_is_byte_identical_to_buffered_read() {
    let fs = Arc::new(MemStorage::new());
    let roots = build_containers(&*fs, 1);

    let server = Server::start(Arc::clone(&fs), ServerConfig::default());
    let transport = MemTransport::new(Arc::clone(&server));
    let mut client = ServeClient::connect(&transport).unwrap();

    let topics: Vec<String> = client.topics(&roots[0]).unwrap();
    let refs: Vec<&str> = topics.iter().map(String::as_str).collect();

    // Whole-container query: every topic, both framings.
    let buffered = client.read(&roots[0], &refs).unwrap();
    assert!(!buffered.is_empty());
    let streamed: Vec<_> =
        client.read_stream(&roots[0], &refs).unwrap().map(|m| m.unwrap()).collect();
    assert_eq!(streamed.len(), buffered.len());
    for (s, b) in streamed.iter().zip(&buffered) {
        assert_eq!(s.topic, b.topic);
        assert_eq!(s.time, b.time);
        assert_eq!(s.data, b.data);
    }

    // Time-windowed query through both framings.
    let stat = client.stat(&roots[0]).unwrap();
    let mid = ros_msgs::Time::from_nanos((stat.start.as_nanos() + stat.end.as_nanos()) / 2);
    let buffered = client.read_time(&roots[0], &refs, stat.start, mid).unwrap();
    let streamed: Vec<_> = client
        .read_stream_time(&roots[0], &refs, stat.start, mid)
        .unwrap()
        .map(|m| m.unwrap())
        .collect();
    assert_eq!(streamed.len(), buffered.len());
    for (s, b) in streamed.iter().zip(&buffered) {
        assert_eq!((&s.topic, s.time, &s.data), (&b.topic, b.time, &b.data));
    }

    // The streamed result is chunked on the wire; metrics must have seen
    // the op under its own name.
    let snap = client.stats().unwrap();
    assert!(snap.op("read_stream").map(|o| o.count).unwrap_or(0) >= 2);

    server.shutdown();
}

#[test]
fn streamed_reads_survive_transient_faults_via_retry() {
    let fs = Arc::new(FaultyStorage::new(MemStorage::new()));
    let roots = build_containers(&*fs, 2);

    let server = Server::start(Arc::clone(&fs), ServerConfig::default());
    let policy = RetryPolicy {
        max_attempts: 10,
        base_delay_ms: 0,
        max_delay_ms: 0,
        ..RetryPolicy::default()
    };
    let mut client = RetryClient::new(MemTransport::new(Arc::clone(&server)), policy);

    // Warm handles while healthy; capture the expected bytes.
    let healthy = client.read(&roots[0], &["/imu"]).unwrap();
    assert!(!healthy.is_empty());
    assert_eq!(client.read(&roots[1], &["/imu"]).unwrap().len(), healthy.len());

    // A burst of transient read faults on /srv0's data: the streamed read
    // fails mid-stream with a terminal error frame, the retry layer
    // re-issues the whole query, and the client sees zero errors and
    // byte-identical results.
    fs.inject(FaultRule {
        kind: FaultKind::Reads,
        path_contains: Some("/srv0/imu".into()),
        max_failures: Some(3),
        ..FaultRule::default()
    });
    for round in 0..4 {
        let root = &roots[round % roots.len()];
        let streamed = client.read_streamed(root, &["/imu"]).unwrap();
        assert_eq!(streamed.len(), healthy.len());
        for (s, b) in streamed.iter().zip(&healthy) {
            assert_eq!((&s.topic, s.time, &s.data), (&b.topic, b.time, &b.data));
        }
    }
    assert!(client.retries() > 0, "the injected faults must have forced retries");

    server.shutdown();
}

#[test]
fn abandoned_stream_releases_pin_and_keeps_connection_usable() {
    let fs = Arc::new(MemStorage::new());
    let roots = build_containers(&*fs, 1);

    let server = Server::start(Arc::clone(&fs), ServerConfig::default());
    let transport = MemTransport::new(Arc::clone(&server));
    let mut client = ServeClient::connect(&transport).unwrap();

    let expected = client.read(&roots[0], &["/imu"]).unwrap().len();
    assert!(expected > 3);

    // Take a few messages, then drop the iterator mid-stream. Drop drains
    // the remaining frames, so the very next request on the same
    // connection must pair with its own response.
    {
        let mut stream = client.read_stream(&roots[0], &["/imu"]).unwrap();
        for _ in 0..3 {
            stream.next().unwrap().unwrap();
        }
        assert_eq!(stream.received(), 3);
    }
    assert_eq!(client.read(&roots[0], &["/imu"]).unwrap().len(), expected);

    // The worker finished (or aborted) the stream: its cache pin must be
    // gone. Poll briefly — the release happens on a worker thread.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while server.cache_pins(&roots[0]) != 0 {
        assert!(std::time::Instant::now() < deadline, "stream pin never released");
        std::thread::yield_now();
    }

    server.shutdown();
}

#[test]
fn client_hangup_mid_stream_aborts_server_side() {
    use bora_serve::{Request, Response};

    let fs = Arc::new(MemStorage::new());
    let roots = build_containers(&*fs, 1);
    let server = Server::start(Arc::clone(&fs), ServerConfig::default());

    // Emulate a transport whose peer vanishes after the first frame:
    // `emit` returns false, submit_streamed drops the reply channel, and
    // the worker's next send aborts the merge.
    let mut frames = 0u32;
    let completed = server.submit_streamed(
        Request::ReadStream {
            container: roots[0].clone(),
            topics: vec!["/imu".into()],
            range: None,
        },
        &mut |resp| {
            frames += 1;
            assert!(matches!(resp, Response::StreamChunk(_) | Response::StreamEnd { .. }));
            false // client gone after the first frame
        },
    );
    assert!(!completed, "an abandoned stream must report incompleteness");
    assert_eq!(frames, 1);

    // The abort must release the cache pin and leave the server healthy.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while server.cache_pins(&roots[0]) != 0 {
        assert!(std::time::Instant::now() < deadline, "aborted stream pin never released");
        std::thread::yield_now();
    }
    match server.submit(Request::Stat { container: roots[0].clone() }) {
        Response::Stat(s) => assert!(s.messages > 0),
        other => panic!("server unhealthy after aborted stream: {other:?}"),
    }

    server.shutdown();
}

#[test]
fn server_evicts_cached_handle_on_checksum_failure() {
    let fs = Arc::new(MemStorage::new());
    let roots = build_containers(&*fs, 1);

    let server = Server::start(Arc::clone(&fs), ServerConfig::default());
    let transport = MemTransport::new(Arc::clone(&server));
    let mut client = ServeClient::connect(&transport).unwrap();

    let healthy = client.read(&roots[0], &["/imu"]).unwrap().len();
    assert!(healthy > 0);
    assert_eq!(client.stats().unwrap().cache_len, 1);

    // Flip one byte of the committed data file behind the server's back:
    // the next read fails the lazy manifest CRC.
    let data = format!("{}/imu/data", roots[0]);
    let mut ctx = IoCtx::new();
    let byte = fs.read_at(&data, 0, 1, &mut ctx).unwrap()[0];
    fs.write_at(&data, 0, &[byte ^ 0xFF], &mut ctx).unwrap();

    let evicted_before = bora_obs::counter("serve.evict_checksum").get();
    match client.read(&roots[0], &["/imu"]) {
        Err(ClientError::Server { code: ErrorCode::ChecksumMismatch, .. }) => {}
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
    assert_eq!(client.stats().unwrap().cache_len, 0, "poisoned handle must be evicted");
    assert!(bora_obs::counter("serve.evict_checksum").get() > evicted_before);

    // Restore the medium: the service recovers on a fresh handle. Had the
    // poisoned handle survived in the cache, it would keep /imu
    // quarantined and answer Corrupt forever — this read proves eviction.
    fs.write_at(&data, 0, &[byte], &mut ctx).unwrap();
    assert_eq!(client.read(&roots[0], &["/imu"]).unwrap().len(), healthy);

    server.shutdown();
}
