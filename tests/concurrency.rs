//! Concurrency: shared containers and bags must serve many threads
//! correctly (the swarm scenario runs one process per bag, but nothing in
//! the design forbids many readers of one container).

use bora_repro::*;

use bora::{BoraBag, OrganizerOptions};
use bora_serve::{ClientError, MemTransport, ServeClient, Server, ServerConfig};
use ros_msgs::RosDuration;
use rosbag::BagReader;
use simfs::{DirEntry, FsResult, IoCtx, MemStorage, Metadata, Storage};
use std::sync::{Arc, Condvar, Mutex};
use workloads::tum::{generate_bag, GenOptions, TUM_TOPICS};

fn setup() -> Arc<MemStorage> {
    let fs = Arc::new(MemStorage::new());
    let mut ctx = IoCtx::new();
    let opts = GenOptions {
        count_scale: 0.05,
        payload_scale: 0.003,
        seed: 0xC0,
        writer: rosbag::BagWriterOptions { chunk_size: 64 * 1024, ..Default::default() },
        ..Default::default()
    };
    generate_bag(fs.as_ref(), "/hs.bag", &opts, &mut ctx).unwrap();
    bora::organizer::duplicate(
        fs.as_ref(),
        "/hs.bag",
        fs.as_ref(),
        "/c",
        &OrganizerOptions::default(),
        &mut ctx,
    )
    .unwrap();
    fs
}

#[test]
fn many_threads_share_one_bora_bag() {
    let fs = setup();
    let mut ctx = IoCtx::new();
    let bag = Arc::new(BoraBag::open(Arc::clone(&fs), "/c", &mut ctx).unwrap());

    let expected: Vec<(String, usize)> = TUM_TOPICS
        .iter()
        .map(|t| {
            let n = bag.read_topic(t.name, &mut ctx).unwrap().len();
            (t.name.to_owned(), n)
        })
        .collect();

    let mut handles = Vec::new();
    for worker in 0..8 {
        let bag = Arc::clone(&bag);
        let expected = expected.clone();
        handles.push(std::thread::spawn(move || {
            let mut ctx = IoCtx::new();
            for round in 0..5 {
                let (name, n) = &expected[(worker + round) % expected.len()];
                let msgs = bag.read_topic(name, &mut ctx).unwrap();
                assert_eq!(msgs.len(), *n, "worker {worker} round {round} on {name}");
                for pair in msgs.windows(2) {
                    assert!(pair[0].time <= pair[1].time);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn many_threads_share_one_baseline_reader() {
    // The baseline reader has interior state (the compressed-chunk cache);
    // it must stay consistent under concurrent readers.
    let fs = setup();
    let mut ctx = IoCtx::new();
    let reader = Arc::new(BagReader::open(Arc::clone(&fs), "/hs.bag", &mut ctx).unwrap());
    let total = reader.index().message_count();

    let mut handles = Vec::new();
    for _ in 0..6 {
        let reader = Arc::clone(&reader);
        handles.push(std::thread::spawn(move || {
            let mut ctx = IoCtx::new();
            let all: Vec<&str> = TUM_TOPICS.iter().map(|t| t.name).collect();
            let msgs = reader.read_messages(&all, &mut ctx).unwrap();
            assert_eq!(msgs.len() as u64, total);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn concurrent_time_windows_partition_cleanly() {
    let fs = setup();
    let mut ctx = IoCtx::new();
    let bag = Arc::new(BoraBag::open(Arc::clone(&fs), "/c", &mut ctx).unwrap());
    let (t0, t_end) = bag.time_range();
    let span_s = (t_end - t0).as_sec_f64();

    // Partition the bag into 6 disjoint windows queried concurrently;
    // their union must equal one full query.
    let full = bag
        .read_topics_time(&["/imu"], t0, t_end + RosDuration::from_sec_f64(1.0), &mut ctx)
        .unwrap()
        .len();

    let slices = 6;
    let mut handles = Vec::new();
    for k in 0..slices {
        let bag = Arc::clone(&bag);
        let s = t0 + RosDuration::from_sec_f64(span_s * k as f64 / slices as f64);
        let e = if k == slices - 1 {
            t_end + RosDuration::from_sec_f64(1.0)
        } else {
            t0 + RosDuration::from_sec_f64(span_s * (k + 1) as f64 / slices as f64)
        };
        handles.push(std::thread::spawn(move || {
            let mut ctx = IoCtx::new();
            bag.read_topic_time("/imu", s, e, &mut ctx).unwrap().len()
        }));
    }
    let sum: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(sum, full, "disjoint windows must tile the stream exactly");
}

#[test]
fn parallel_duplications_into_distinct_roots() {
    let fs = setup();
    let mut handles = Vec::new();
    for k in 0..4 {
        let fs = Arc::clone(&fs);
        handles.push(std::thread::spawn(move || {
            let mut ctx = IoCtx::new();
            bora::organizer::duplicate(
                fs.as_ref(),
                "/hs.bag",
                fs.as_ref(),
                &format!("/par{k}"),
                &OrganizerOptions::default(),
                &mut ctx,
            )
            .unwrap();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut ctx = IoCtx::new();
    let mut digests = Vec::new();
    for k in 0..4 {
        let data = fs.read_all(&format!("/par{k}/imu/data"), &mut ctx).unwrap();
        digests.push(ros_msgs::md5::hex_digest(&data));
    }
    assert!(digests.windows(2).all(|w| w[0] == w[1]), "parallel duplicates must agree");
}

// ------------------------------------------------------------ bora-serve
//
// The serving layer's whole point is concurrency: many clients, one
// handle cache, a bounded queue. These scenarios drive it through real
// clients over the in-process transport.

/// Duplicate the seed container into `n` serving roots `/srv0..`.
fn serve_roots(fs: &Arc<MemStorage>, n: usize) -> Vec<String> {
    let mut ctx = IoCtx::new();
    (0..n)
        .map(|k| {
            let root = format!("/srv{k}");
            bora::organizer::duplicate(
                fs.as_ref(),
                "/hs.bag",
                fs.as_ref(),
                &root,
                &OrganizerOptions::default(),
                &mut ctx,
            )
            .unwrap();
            root
        })
        .collect()
}

#[test]
fn serve_many_clients_all_hit_the_hot_cache() {
    let fs = setup();
    let roots = serve_roots(&fs, 2);
    let mut ctx = IoCtx::new();
    let expected_imu = BoraBag::open(Arc::clone(&fs), &roots[0], &mut ctx)
        .unwrap()
        .read_topic("/imu", &mut ctx)
        .unwrap()
        .len();

    let server = Server::start(
        Arc::clone(&fs),
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 4,
            ..ServerConfig::default()
        },
    );
    let transport = MemTransport::new(Arc::clone(&server));

    // Warm both containers first: two racing cold opens would both count
    // as misses (correct, but it would make the arithmetic below fuzzy).
    let mut warm = ServeClient::connect(&transport).unwrap();
    for root in &roots {
        let (_, cached) = warm.open(root).unwrap();
        assert!(!cached);
    }

    const CLIENTS: usize = 6;
    const ROUNDS: usize = 5;
    std::thread::scope(|scope| {
        for worker in 0..CLIENTS {
            let transport = &transport;
            let roots = &roots;
            scope.spawn(move || {
                let mut client = ServeClient::connect(transport).unwrap();
                for round in 0..ROUNDS {
                    let root = &roots[(worker + round) % roots.len()];
                    let topics = client.topics(root).unwrap();
                    assert!(topics.iter().any(|t| t == "/imu"));
                    let msgs = client.read(root, &["/imu"]).unwrap();
                    assert_eq!(msgs.len(), expected_imu, "client {worker} round {round}");
                }
            });
        }
    });

    let snap = ServeClient::connect(&transport).unwrap().stats().unwrap();
    server.shutdown();
    // Working set (2) fits the cache (4): each container is opened once,
    // every request after the warmup hits.
    assert_eq!(snap.cache_misses, roots.len() as u64);
    assert_eq!(snap.cache_evictions, 0);
    assert_eq!(snap.shed, 0);
    let swarm = (CLIENTS * ROUNDS * 2) as u64;
    assert_eq!(snap.total_requests(), swarm + roots.len() as u64);
    assert_eq!(snap.cache_hits, swarm);
}

#[test]
fn serve_evicts_when_working_set_exceeds_cache() {
    let fs = setup();
    let roots = serve_roots(&fs, 4);
    let mut ctx = IoCtx::new();
    let expected_imu = BoraBag::open(Arc::clone(&fs), &roots[0], &mut ctx)
        .unwrap()
        .read_topic("/imu", &mut ctx)
        .unwrap()
        .len();

    let server = Server::start(
        Arc::clone(&fs),
        ServerConfig {
            workers: 3,
            queue_capacity: 64,
            cache_capacity: 2,
            ..ServerConfig::default()
        },
    );
    let transport = MemTransport::new(Arc::clone(&server));

    const CLIENTS: usize = 4;
    const ROUNDS: usize = 6;
    std::thread::scope(|scope| {
        for worker in 0..CLIENTS {
            let transport = &transport;
            let roots = &roots;
            scope.spawn(move || {
                let mut client = ServeClient::connect(transport).unwrap();
                for round in 0..ROUNDS {
                    // Stride so every client sweeps all four containers.
                    let root = &roots[(worker + round) % roots.len()];
                    let msgs = client.read(root, &["/imu"]).unwrap();
                    assert_eq!(msgs.len(), expected_imu, "client {worker} round {round}");
                }
            });
        }
    });

    let snap = ServeClient::connect(&transport).unwrap().stats().unwrap();
    server.shutdown();
    // Four containers cannot fit a 2-slot cache: churn is forced, yet
    // every query above still saw correct data.
    assert!(snap.cache_misses > roots.len() as u64, "churn must force re-opens");
    assert!(snap.cache_evictions > 0);
    // Capacity bounds the idle footprint; pins bound the in-flight one.
    // The last insert may have found every other entry pinned (one pin
    // per worker), in which case the cache stays over capacity until the
    // next insert evicts.
    assert!(snap.cache_len <= 2 + 3, "cache len {} exceeds capacity + workers", snap.cache_len);
    assert_eq!(snap.total_requests(), (CLIENTS * ROUNDS) as u64);
    assert_eq!(
        snap.cache_hits + snap.cache_misses,
        (CLIENTS * ROUNDS) as u64,
        "every lookup is a hit or a miss"
    );
}

/// A storage wrapper whose reads can be held at a gate: lets a test park
/// the worker pool deterministically to fill the bounded queue.
#[derive(Clone)]
struct GatedStorage {
    inner: Arc<MemStorage>,
    gate: Arc<Gate>,
}

struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
}

struct GateState {
    open: bool,
    waiting: usize,
}

impl Gate {
    fn new() -> Arc<Self> {
        Arc::new(Gate {
            state: Mutex::new(GateState { open: true, waiting: 0 }),
            cv: Condvar::new(),
        })
    }
    fn close(&self) {
        self.state.lock().unwrap().open = false;
    }
    fn open_all(&self) {
        self.state.lock().unwrap().open = true;
        self.cv.notify_all();
    }
    fn pass(&self) {
        let mut s = self.state.lock().unwrap();
        if s.open {
            return;
        }
        s.waiting += 1;
        while !s.open {
            s = self.cv.wait(s).unwrap();
        }
        s.waiting -= 1;
    }
    /// Spin until `n` threads are parked at the gate.
    fn wait_for_waiters(&self, n: usize) {
        while self.state.lock().unwrap().waiting < n {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
}

impl Storage for GatedStorage {
    fn create(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.inner.create(path, ctx)
    }
    fn append(&self, path: &str, data: &[u8], ctx: &mut IoCtx) -> FsResult<u64> {
        self.inner.append(path, data, ctx)
    }
    fn write_at(&self, path: &str, offset: u64, data: &[u8], ctx: &mut IoCtx) -> FsResult<()> {
        self.inner.write_at(path, offset, data, ctx)
    }
    fn read_at(&self, path: &str, offset: u64, len: usize, ctx: &mut IoCtx) -> FsResult<Vec<u8>> {
        self.gate.pass();
        self.inner.read_at(path, offset, len, ctx)
    }
    fn len(&self, path: &str, ctx: &mut IoCtx) -> FsResult<u64> {
        self.inner.len(path, ctx)
    }
    fn exists(&self, path: &str, ctx: &mut IoCtx) -> bool {
        self.inner.exists(path, ctx)
    }
    fn stat(&self, path: &str, ctx: &mut IoCtx) -> FsResult<Metadata> {
        self.inner.stat(path, ctx)
    }
    fn mkdir_all(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.inner.mkdir_all(path, ctx)
    }
    fn read_dir(&self, path: &str, ctx: &mut IoCtx) -> FsResult<Vec<DirEntry>> {
        self.inner.read_dir(path, ctx)
    }
    fn remove_file(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.inner.remove_file(path, ctx)
    }
    fn remove_dir_all(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.inner.remove_dir_all(path, ctx)
    }
    fn rename(&self, from: &str, to: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.inner.rename(from, to, ctx)
    }
    fn flush(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.inner.flush(path, ctx)
    }
}

#[test]
fn serve_overload_sheds_requests_instead_of_hanging() {
    let fs = setup();
    let roots = serve_roots(&fs, 1);
    let root = roots[0].clone();
    let gate = Gate::new();
    let gated = GatedStorage { inner: Arc::clone(&fs), gate: Arc::clone(&gate) };

    // One worker, one queue slot: the third concurrent data request has
    // nowhere to go.
    let server = Server::start(
        gated,
        ServerConfig {
            workers: 1,
            queue_capacity: 1,
            cache_capacity: 2,
            ..ServerConfig::default()
        },
    );
    let transport = MemTransport::new(Arc::clone(&server));

    // Warm the cache while the gate is open, so the stall below happens
    // on data reads, not inside the container open.
    let mut warm = ServeClient::connect(&transport).unwrap();
    let (_, cached) = warm.open(&root).unwrap();
    assert!(!cached);

    gate.close();

    // Request A occupies the single worker (parked at the gate)...
    let a = std::thread::spawn({
        let transport = MemTransport::new(Arc::clone(&server));
        let root = root.clone();
        move || ServeClient::connect(&transport).unwrap().read(&root, &["/imu"]).unwrap().len()
    });
    gate.wait_for_waiters(1);

    // ...request B fills the one queue slot...
    let b = std::thread::spawn({
        let transport = MemTransport::new(Arc::clone(&server));
        let root = root.clone();
        move || ServeClient::connect(&transport).unwrap().read(&root, &["/imu"]).unwrap().len()
    });
    while server.stats().queue_depth < 1 {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    // ...and request C must come back Overloaded immediately, not hang.
    let mut c = ServeClient::connect(&transport).unwrap();
    match c.read(&root, &["/imu"]) {
        Err(ClientError::Overloaded) => {}
        other => panic!("expected Overloaded, got {other:?}"),
    }

    // The control plane bypasses the queue: a saturated server is still
    // observable, and reports the saturation.
    let snap = c.stats().unwrap();
    assert_eq!(snap.shed, 1);
    assert_eq!(snap.queue_depth, 1);
    assert_eq!(snap.queue_capacity, 1);

    // Release the gate: the stalled and queued requests complete intact.
    gate.open_all();
    let (na, nb) = (a.join().unwrap(), b.join().unwrap());
    assert!(na > 0);
    assert_eq!(na, nb);

    let snap = c.stats().unwrap();
    assert_eq!(snap.shed, 1, "no further shedding once the queue drained");
    assert_eq!(snap.queue_depth, 0);
    server.shutdown();
}
