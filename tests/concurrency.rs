//! Concurrency: shared containers and bags must serve many threads
//! correctly (the swarm scenario runs one process per bag, but nothing in
//! the design forbids many readers of one container).

use bora_repro::*;

use bora::{BoraBag, OrganizerOptions};
use ros_msgs::{RosDuration, Time};
use rosbag::BagReader;
use simfs::{IoCtx, MemStorage, Storage};
use std::sync::Arc;
use workloads::tum::{generate_bag, GenOptions, TUM_TOPICS};

fn setup() -> Arc<MemStorage> {
    let fs = Arc::new(MemStorage::new());
    let mut ctx = IoCtx::new();
    let opts = GenOptions {
        count_scale: 0.05,
        payload_scale: 0.003,
        seed: 0xC0,
        writer: rosbag::BagWriterOptions { chunk_size: 64 * 1024, ..Default::default() },
        ..Default::default()
    };
    generate_bag(fs.as_ref(), "/hs.bag", &opts, &mut ctx).unwrap();
    bora::organizer::duplicate(
        fs.as_ref(),
        "/hs.bag",
        fs.as_ref(),
        "/c",
        &OrganizerOptions::default(),
        &mut ctx,
    )
    .unwrap();
    fs
}

#[test]
fn many_threads_share_one_bora_bag() {
    let fs = setup();
    let mut ctx = IoCtx::new();
    let bag = Arc::new(BoraBag::open(Arc::clone(&fs), "/c", &mut ctx).unwrap());

    let expected: Vec<(String, usize)> = TUM_TOPICS
        .iter()
        .map(|t| {
            let n = bag.read_topic(t.name, &mut ctx).unwrap().len();
            (t.name.to_owned(), n)
        })
        .collect();

    let mut handles = Vec::new();
    for worker in 0..8 {
        let bag = Arc::clone(&bag);
        let expected = expected.clone();
        handles.push(std::thread::spawn(move || {
            let mut ctx = IoCtx::new();
            for round in 0..5 {
                let (name, n) = &expected[(worker + round) % expected.len()];
                let msgs = bag.read_topic(name, &mut ctx).unwrap();
                assert_eq!(msgs.len(), *n, "worker {worker} round {round} on {name}");
                for pair in msgs.windows(2) {
                    assert!(pair[0].time <= pair[1].time);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn many_threads_share_one_baseline_reader() {
    // The baseline reader has interior state (the compressed-chunk cache);
    // it must stay consistent under concurrent readers.
    let fs = setup();
    let mut ctx = IoCtx::new();
    let reader = Arc::new(BagReader::open(Arc::clone(&fs), "/hs.bag", &mut ctx).unwrap());
    let total = reader.index().message_count();

    let mut handles = Vec::new();
    for _ in 0..6 {
        let reader = Arc::clone(&reader);
        handles.push(std::thread::spawn(move || {
            let mut ctx = IoCtx::new();
            let all: Vec<&str> = TUM_TOPICS.iter().map(|t| t.name).collect();
            let msgs = reader.read_messages(&all, &mut ctx).unwrap();
            assert_eq!(msgs.len() as u64, total);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn concurrent_time_windows_partition_cleanly() {
    let fs = setup();
    let mut ctx = IoCtx::new();
    let bag = Arc::new(BoraBag::open(Arc::clone(&fs), "/c", &mut ctx).unwrap());
    let (t0, t_end) = bag.time_range();
    let span_s = (t_end - t0).as_sec_f64();

    // Partition the bag into 6 disjoint windows queried concurrently;
    // their union must equal one full query.
    let full = bag
        .read_topics_time(&["/imu"], t0, t_end + RosDuration::from_sec_f64(1.0), &mut ctx)
        .unwrap()
        .len();

    let slices = 6;
    let mut handles = Vec::new();
    for k in 0..slices {
        let bag = Arc::clone(&bag);
        let s = t0 + RosDuration::from_sec_f64(span_s * k as f64 / slices as f64);
        let e = if k == slices - 1 {
            t_end + RosDuration::from_sec_f64(1.0)
        } else {
            t0 + RosDuration::from_sec_f64(span_s * (k + 1) as f64 / slices as f64)
        };
        handles.push(std::thread::spawn(move || {
            let mut ctx = IoCtx::new();
            bag.read_topic_time("/imu", s, e, &mut ctx).unwrap().len()
        }));
    }
    let sum: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(sum, full, "disjoint windows must tile the stream exactly");
}

#[test]
fn parallel_duplications_into_distinct_roots() {
    let fs = setup();
    let mut handles = Vec::new();
    for k in 0..4 {
        let fs = Arc::clone(&fs);
        handles.push(std::thread::spawn(move || {
            let mut ctx = IoCtx::new();
            bora::organizer::duplicate(
                fs.as_ref(),
                "/hs.bag",
                fs.as_ref(),
                &format!("/par{k}"),
                &OrganizerOptions::default(),
                &mut ctx,
            )
            .unwrap();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut ctx = IoCtx::new();
    let mut digests = Vec::new();
    for k in 0..4 {
        let data = fs.read_all(&format!("/par{k}/imu/data"), &mut ctx).unwrap();
        digests.push(ros_msgs::md5::hex_digest(&data));
    }
    assert!(digests.windows(2).all(|w| w[0] == w[1]), "parallel duplicates must agree");
}
