//! The paper's qualitative claims, asserted as tests.
//!
//! These run the same experiment code the `repro` binary uses, at tiny
//! scale, and check *who wins and roughly by how much* — the reproduction
//! contract from DESIGN.md. Absolute times are modeled; orderings and
//! coarse factors are the assertions.

use bench::env::{setup_bag, Platform, ScaleConfig};
use bench::experiments::common::{
    baseline_query, baseline_query_time, bora_query, bora_query_time,
};
use ros_msgs::RosDuration;
use workloads::tum::{spec, topic};

fn scales() -> ScaleConfig {
    ScaleConfig::tiny()
}

/// Fig. 2: filesystem append beats every database engine; the TSDB is
/// worst by a wide margin (paper: 51.8x / 93.6x / 3,694.6x slower).
#[test]
fn fig2_fs_beats_all_engines_tsdb_worst() {
    let table = bench::experiments::fig2::run_with_count(2_000);
    let times: Vec<f64> = table.rows.iter().map(|r| r[1].parse::<f64>().unwrap()).collect();
    let (ext4, kv, sql, tsdb) = (times[0], times[1], times[2], times[3]);
    assert!(kv > ext4 * 10.0, "KV should be >10x slower than Ext4");
    assert!(sql > kv, "SQL slower than KV");
    assert!(tsdb > sql * 5.0, "TSDB worst by a wide margin");
}

/// Fig. 3: PLFS makes both bag writes and topic reads slower, not faster.
#[test]
fn fig3_plfs_hurts_bags() {
    let tables = bench::experiments::fig3::run(&scales());
    for t in &tables {
        // Rows alternate plain, PLFS; every PLFS row must be slower.
        for pair in t.rows.chunks(2) {
            let plain: f64 = pair[0][2].parse().unwrap();
            let plfs: f64 = pair[1][2].parse().unwrap();
            // Margin note: since the baseline reader caches uncompressed
            // chunks (one big read per chunk instead of three small reads
            // per message), PLFS's per-op penalty applies to far fewer
            // ops — the direction survives, the old ≥30% margin does not.
            assert!(plfs > plain * 1.05, "{}: PLFS {plfs} ms should exceed plain {plain} ms", t.id);
        }
    }
}

/// §II + Fig. 10: BORA's open is orders of magnitude cheaper than the
/// baseline full-scan open.
#[test]
fn open_is_orders_of_magnitude_cheaper() {
    let env = setup_bag(Platform::ext4(), 2.9, &scales());
    let base = baseline_query(&env, &[topic::IMU], 1);
    let ours = bora_query(&env, &[topic::IMU], 1);
    assert!(
        base.open_ns > ours.open_ns * 20,
        "baseline open {} vs bora {}",
        base.open_ns,
        ours.open_ns
    );
}

/// Fig. 10: query-by-topic is faster under BORA for every Table II topic,
/// and results are identical.
#[test]
fn fig10_bora_wins_every_topic() {
    let env = setup_bag(Platform::ext4(), 2.9, &scales());
    for id in ['A', 'B', 'C', 'E', 'F'] {
        let t = spec(id).name;
        let base = baseline_query(&env, &[t], 1);
        let ours = bora_query(&env, &[t], 1);
        assert_eq!(base.messages, ours.messages);
        // Margin note: with the baseline reader caching uncompressed
        // chunks (one chunk read instead of three small reads per
        // message), the camera topics still win by ≥1.2x, while the
        // high-rate topics (E, F) are dominated by per-message FUSE
        // delivery — identical for both readers — so only the win
        // *direction* is asserted there. Uniform wins are the claim.
        let margin = if matches!(id, 'E' | 'F') { 1.01 } else { 1.15 };
        assert!(
            base.total_ns() as f64 > ours.total_ns() as f64 * margin,
            "topic {t}: baseline {} vs bora {}",
            base.total_ns(),
            ours.total_ns()
        );
    }
}

/// Figs. 11/12: all four applications improve on both filesystems.
#[test]
fn fig11_every_application_improves() {
    for platform in [Platform::ext4(), Platform::xfs()] {
        let env = setup_bag(platform, 2.9, &scales());
        for app in workloads::APPLICATIONS {
            let topics = app.topics(1);
            let base = baseline_query(&env, &topics, 1);
            let ours = bora_query(&env, &topics, 1);
            assert_eq!(base.messages, ours.messages);
            assert!(base.total_ns() > ours.total_ns(), "{} should improve", app.abbrev());
        }
    }
}

/// Fig. 13: the win on time-range queries *grows* as the window shrinks
/// (the baseline pays the full-bag indexing regardless of window size).
#[test]
fn fig13_small_windows_win_more() {
    let env = setup_bag(Platform::ext4(), 2.9, &scales());
    let (t0, t_end) = bench::experiments::common::bag_time_range(&env);
    let t = spec('C').name;

    let small_end = t0 + RosDuration::from_sec_f64(5.0);
    let base_s = baseline_query_time(&env, &[t], t0, small_end);
    let ours_s = bora_query_time(&env, &[t], t0, small_end);
    let small_speedup = base_s.total_ns() as f64 / ours_s.total_ns() as f64;

    let base_f = baseline_query_time(&env, &[t], t0, t_end + RosDuration::from_sec_f64(1.0));
    let ours_f = bora_query_time(&env, &[t], t0, t_end + RosDuration::from_sec_f64(1.0));
    let full_speedup = base_f.total_ns() as f64 / ours_f.total_ns() as f64;

    assert!(small_speedup > full_speedup, "small {small_speedup:.2} vs full {full_speedup:.2}");
    assert!(full_speedup > 1.0, "BORA still ahead at full coverage");
}

/// Fig. 15: on the PVFS cluster BORA still wins, and the camera_info
/// topic benefits disproportionately (paper: 30x from open elimination).
#[test]
fn fig15_cluster_wins_and_camera_info_outlier() {
    let env = setup_bag(Platform::pvfs(), 2.9, &scales());
    let cam = spec('C').name;
    let img = spec('A').name;

    let base_cam = baseline_query(&env, &[cam], 1);
    let ours_cam = bora_query(&env, &[cam], 1);
    let cam_speedup = base_cam.total_ns() as f64 / ours_cam.total_ns() as f64;

    let base_img = baseline_query(&env, &[img], 1);
    let ours_img = bora_query(&env, &[img], 1);
    let img_speedup = base_img.total_ns() as f64 / ours_img.total_ns() as f64;

    assert!(cam_speedup > 1.0 && img_speedup > 1.0);
    assert!(
        cam_speedup >= img_speedup * 0.9,
        "small-topic speedup ({cam_speedup:.2}) should not trail the image topic ({img_speedup:.2}) materially"
    );
}

/// Fig. 9: the one-time capture cost is bounded — BORA's reorganizing
/// copy must not exceed ~2x a plain copy, and BORA→BORA must be
/// comparable to a plain copy (paper: ≈ native speed).
#[test]
fn fig9_capture_overhead_is_bounded() {
    let tables = bench::experiments::fig9::run(&scales());
    for t in &tables {
        for group in t.rows.chunks(3) {
            let plain: f64 = group[0][2].parse().unwrap();
            let capture: f64 = group[1][2].parse().unwrap();
            let b2b: f64 = group[2][2].parse().unwrap();
            assert!(
                capture < plain * 3.0,
                "{} {}: capture {capture} vs plain {plain}",
                group[0][0],
                group[0][1]
            );
            assert!(
                b2b < plain * 2.0,
                "{} BORA-to-BORA {b2b} should be close to plain {plain}",
                group[0][0]
            );
        }
    }
}

/// Table I: tag table construction stays in the tens of milliseconds even
/// at 10,000 topics (paper: 29.9 ms).
#[test]
fn table1_hash_build_stays_cheap() {
    let table = bench::experiments::table1::run_up_to(10_000);
    for row in &table.rows {
        let real_ms: f64 = row[2].parse().unwrap();
        assert!(real_ms < 200.0, "{} topics took {real_ms} ms", row[0]);
    }
}
