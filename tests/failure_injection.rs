//! Failure injection across the stack: every layer must turn storage
//! faults into typed errors — no panics, no silent corruption — and leave
//! recoverable state behind where the design promises it (WAL checksums,
//! bag reindex, container verify).

use bora_repro::*;

use bora::{BoraBag, OrganizerOptions};
use dbsim::InsertEngine;
use ros_msgs::sensor_msgs::Imu;
use ros_msgs::Time;
use rosbag::{BagReader, BagWriter, BagWriterOptions};
use simfs::{FaultKind, FaultRule, FaultyStorage, IoCtx, MemStorage, Storage};
use std::sync::Arc;

fn fail_writes_after(n: u64) -> FaultRule {
    FaultRule { kind: FaultKind::Writes, after_ops: n, ..FaultRule::default() }
}

fn build_small_bag<S: Storage>(fs: &S, n: u32) {
    let mut ctx = IoCtx::new();
    let mut w = BagWriter::create(
        fs,
        "/b.bag",
        BagWriterOptions { chunk_size: 2048, ..Default::default() },
        &mut ctx,
    )
    .unwrap();
    for i in 0..n {
        let mut imu = Imu::default();
        imu.header.seq = i;
        imu.header.stamp = Time::new(i, 0);
        w.write_ros_message("/imu", Time::new(i, 0), &imu, &mut ctx).unwrap();
    }
    w.close(&mut ctx).unwrap();
}

#[test]
fn bag_writer_reports_write_failures() {
    let fs = FaultyStorage::new(MemStorage::new());
    let mut ctx = IoCtx::new();
    let mut w = BagWriter::create(
        &fs,
        "/b.bag",
        BagWriterOptions { chunk_size: 1024, ..Default::default() },
        &mut ctx,
    )
    .unwrap();
    fs.inject(fail_writes_after(1));
    let mut imu = Imu::default();
    let mut failed = false;
    for i in 0..200u32 {
        imu.header.seq = i;
        if w.write_ros_message("/imu", Time::new(i, 0), &imu, &mut ctx).is_err() {
            failed = true;
            break;
        }
    }
    assert!(failed, "writer must surface the injected failure");
}

#[test]
fn interrupted_recording_is_reindexable() {
    // Write through a faulty layer that dies mid-recording; whatever
    // chunks made it to storage must be recoverable by reindex.
    let inner = MemStorage::new();
    {
        let fs = FaultyStorage::new(&inner);
        let mut ctx = IoCtx::new();
        let mut w = BagWriter::create(
            &fs,
            "/b.bag",
            BagWriterOptions { chunk_size: 1024, ..Default::default() },
            &mut ctx,
        )
        .unwrap();
        fs.inject(fail_writes_after(6)); // several chunk flushes succeed
        let mut imu = Imu::default();
        for i in 0..500u32 {
            imu.header.seq = i;
            if w.write_ros_message("/imu", Time::new(i, 0), &imu, &mut ctx).is_err() {
                break;
            }
        }
        // writer dropped without close()
    }
    let mut ctx = IoCtx::new();
    assert!(BagReader::open(&inner, "/b.bag", &mut ctx).is_err(), "unclosed bag must not open");
    let report = rosbag::reindex(&inner, "/b.bag", &mut ctx).expect("reindex");
    assert!(report.messages_recovered > 0);
    let r = BagReader::open(&inner, "/b.bag", &mut ctx).expect("open after recovery");
    assert_eq!(r.index().message_count(), report.messages_recovered);
}

#[test]
fn organizer_fails_cleanly_midway() {
    let inner = MemStorage::new();
    build_small_bag(&inner, 300);
    let fs = FaultyStorage::new(&inner);
    fs.inject(FaultRule {
        kind: FaultKind::Writes,
        path_contains: Some("/c".into()),
        after_ops: 3,
        ..FaultRule::default()
    });
    let mut ctx = IoCtx::new();
    let result = bora::organizer::duplicate(
        &fs,
        "/b.bag",
        &fs,
        "/c",
        &OrganizerOptions::default(),
        &mut ctx,
    );
    assert!(result.is_err(), "duplicate must fail, not silently truncate");
    // Crash-atomic commit: the failed capture never exposes a root at
    // all — only staging debris, which fsck classifies as Torn and
    // sweeps on rollback.
    fs.clear_faults();
    assert!(!inner.exists("/c", &mut ctx), "no half-committed root may appear");
    let report = bora::fsck::check(&inner, "/c", &mut ctx).unwrap();
    assert_eq!(report.state, bora::FsckState::Torn);
    let outcome = bora::fsck::repair::<_, MemStorage>(
        &inner,
        "/c",
        None,
        &OrganizerOptions::default(),
        &mut ctx,
    )
    .unwrap();
    assert_eq!(outcome, bora::RepairOutcome::RolledBack);
    assert!(!inner.exists("/c.staging", &mut ctx), "rollback sweeps the debris");
}

#[test]
fn silent_write_corruption_is_caught_by_manifest_crc() {
    // A write that lands corrupted on the medium (bit-rot in transit)
    // does not fail the capture — the corruption is silent. The MANIFEST
    // CRC, computed from the in-memory payload, catches it at read time
    // and fsck repairs the one damaged topic from the source bag.
    let inner = MemStorage::new();
    build_small_bag(&inner, 100);
    let fs = FaultyStorage::new(&inner);
    fs.inject(FaultRule {
        kind: FaultKind::Writes,
        path_contains: Some("data".into()),
        corrupt_with: Some(0x40),
        max_failures: Some(1),
        ..FaultRule::default()
    });
    let mut ctx = IoCtx::new();
    bora::organizer::duplicate(&fs, "/b.bag", &fs, "/c", &OrganizerOptions::default(), &mut ctx)
        .expect("corruption is silent; the capture itself succeeds");

    let bag = BoraBag::open(&inner, "/c", &mut ctx).unwrap();
    match bag.read_topic("/imu", &mut ctx) {
        Err(bora::BoraError::ChecksumMismatch { .. }) => {}
        other => panic!("expected checksum mismatch, got {other:?}"),
    }

    let report = bora::fsck::check(&inner, "/c", &mut ctx).unwrap();
    assert_eq!(report.state, bora::FsckState::Corrupt);
    let outcome = bora::fsck::repair(
        &inner,
        "/c",
        Some((&inner, "/b.bag")),
        &OrganizerOptions::default(),
        &mut ctx,
    )
    .unwrap();
    assert!(matches!(outcome, bora::RepairOutcome::RepairedTopics(_)), "got {outcome:?}");
    let healed = BoraBag::open(&inner, "/c", &mut ctx).unwrap();
    assert_eq!(healed.read_topic("/imu", &mut ctx).unwrap().len(), 100);
}

#[test]
fn bora_read_corruption_is_detected_by_verify() {
    let inner = MemStorage::new();
    build_small_bag(&inner, 200);
    let mut ctx = IoCtx::new();
    bora::organizer::duplicate(
        &inner,
        "/b.bag",
        &inner,
        "/c",
        &OrganizerOptions::default(),
        &mut ctx,
    )
    .unwrap();

    // Corrupt reads of the index file: decode or verify must notice.
    let fs = FaultyStorage::new(&inner);
    fs.inject(FaultRule {
        kind: FaultKind::Reads,
        path_contains: Some("tindex".into()),
        corrupt_with: Some(0x80),
        ..FaultRule::default()
    });
    let bag = BoraBag::open(&fs, "/c", &mut ctx).unwrap();
    let res = bag.load_time_index("/imu", &mut ctx);
    assert!(res.is_err(), "corrupted tindex magic must be rejected, got {res:?}");
}

#[test]
fn wal_checksum_catches_injected_corruption() {
    let fs = Arc::new(FaultyStorage::new(MemStorage::new()));
    let mut ctx = IoCtx::new();
    let mut db = dbsim::TsdbStore::create(Arc::clone(&fs), "/ts", &mut ctx).unwrap();
    let msgs = workloads::tum::fig2_tf_messages(20, 9);
    for m in &msgs {
        db.insert_tf(m, &mut ctx).unwrap();
    }
    // Corrupt WAL reads and replay: the checksum must fail loudly.
    fs.inject(FaultRule {
        kind: FaultKind::Reads,
        path_contains: Some("wal".into()),
        corrupt_with: Some(0x01),
        ..FaultRule::default()
    });
    let replay = dbsim::wal::Wal::replay(&Arc::clone(&fs), "/ts/wal", &mut ctx);
    assert!(replay.is_err(), "WAL replay must detect corruption");
}

#[test]
fn metadata_faults_do_not_panic_open_paths() {
    let inner = MemStorage::new();
    build_small_bag(&inner, 50);
    let mut ctx = IoCtx::new();
    bora::organizer::duplicate(
        &inner,
        "/b.bag",
        &inner,
        "/c",
        &OrganizerOptions::default(),
        &mut ctx,
    )
    .unwrap();
    let fs = FaultyStorage::new(&inner);
    fs.inject(FaultRule { kind: FaultKind::Metadata, ..FaultRule::default() });
    assert!(BoraBag::open(&fs, "/c", &mut ctx).is_err());
    assert!(BagReader::open(&fs, "/b.bag", &mut ctx).is_err());
}
