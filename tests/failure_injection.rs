//! Failure injection across the stack: every layer must turn storage
//! faults into typed errors — no panics, no silent corruption — and leave
//! recoverable state behind where the design promises it (WAL checksums,
//! bag reindex, container verify).

use bora_repro::*;

use bora::{BoraBag, OrganizerOptions};
use dbsim::InsertEngine;
use ros_msgs::sensor_msgs::Imu;
use ros_msgs::Time;
use rosbag::{BagReader, BagWriter, BagWriterOptions};
use simfs::{FaultKind, FaultRule, FaultyStorage, IoCtx, MemStorage, Storage};
use std::sync::Arc;

fn fail_writes_after(n: u64) -> FaultRule {
    FaultRule { kind: FaultKind::Writes, path_contains: None, after_ops: n, corrupt_with: None }
}

fn build_small_bag<S: Storage>(fs: &S, n: u32) {
    let mut ctx = IoCtx::new();
    let mut w = BagWriter::create(
        fs,
        "/b.bag",
        BagWriterOptions { chunk_size: 2048, ..Default::default() },
        &mut ctx,
    )
    .unwrap();
    for i in 0..n {
        let mut imu = Imu::default();
        imu.header.seq = i;
        imu.header.stamp = Time::new(i, 0);
        w.write_ros_message("/imu", Time::new(i, 0), &imu, &mut ctx).unwrap();
    }
    w.close(&mut ctx).unwrap();
}

#[test]
fn bag_writer_reports_write_failures() {
    let fs = FaultyStorage::new(MemStorage::new());
    let mut ctx = IoCtx::new();
    let mut w = BagWriter::create(
        &fs,
        "/b.bag",
        BagWriterOptions { chunk_size: 1024, ..Default::default() },
        &mut ctx,
    )
    .unwrap();
    fs.inject(fail_writes_after(1));
    let mut imu = Imu::default();
    let mut failed = false;
    for i in 0..200u32 {
        imu.header.seq = i;
        if w.write_ros_message("/imu", Time::new(i, 0), &imu, &mut ctx).is_err() {
            failed = true;
            break;
        }
    }
    assert!(failed, "writer must surface the injected failure");
}

#[test]
fn interrupted_recording_is_reindexable() {
    // Write through a faulty layer that dies mid-recording; whatever
    // chunks made it to storage must be recoverable by reindex.
    let inner = MemStorage::new();
    {
        let fs = FaultyStorage::new(&inner);
        let mut ctx = IoCtx::new();
        let mut w = BagWriter::create(
            &fs,
            "/b.bag",
            BagWriterOptions { chunk_size: 1024, ..Default::default() },
            &mut ctx,
        )
        .unwrap();
        fs.inject(fail_writes_after(6)); // several chunk flushes succeed
        let mut imu = Imu::default();
        for i in 0..500u32 {
            imu.header.seq = i;
            if w.write_ros_message("/imu", Time::new(i, 0), &imu, &mut ctx).is_err() {
                break;
            }
        }
        // writer dropped without close()
    }
    let mut ctx = IoCtx::new();
    assert!(BagReader::open(&inner, "/b.bag", &mut ctx).is_err(), "unclosed bag must not open");
    let report = rosbag::reindex(&inner, "/b.bag", &mut ctx).expect("reindex");
    assert!(report.messages_recovered > 0);
    let r = BagReader::open(&inner, "/b.bag", &mut ctx).expect("open after recovery");
    assert_eq!(r.index().message_count(), report.messages_recovered);
}

#[test]
fn organizer_fails_cleanly_midway() {
    let inner = MemStorage::new();
    build_small_bag(&inner, 300);
    let fs = FaultyStorage::new(&inner);
    fs.inject(FaultRule {
        kind: FaultKind::Writes,
        path_contains: Some("/c/".into()),
        after_ops: 3,
        corrupt_with: None,
    });
    let mut ctx = IoCtx::new();
    let result = bora::organizer::duplicate(
        &fs,
        "/b.bag",
        &fs,
        "/c",
        &OrganizerOptions::default(),
        &mut ctx,
    );
    assert!(result.is_err(), "duplicate must fail, not silently truncate");
    // The half-built container must not pass verify/open as healthy with
    // the full message count.
    fs.clear_faults();
    if let Ok(bag) = BoraBag::open(&inner, "/c", &mut ctx) {
        // An Err from verify (detected corruption) is also acceptable.
        if let Ok(n) = bag.verify(&mut ctx) {
            assert!(n < 300, "a partially written container cannot verify all messages");
        }
    }
}

#[test]
fn bora_read_corruption_is_detected_by_verify() {
    let inner = MemStorage::new();
    build_small_bag(&inner, 200);
    let mut ctx = IoCtx::new();
    bora::organizer::duplicate(
        &inner,
        "/b.bag",
        &inner,
        "/c",
        &OrganizerOptions::default(),
        &mut ctx,
    )
    .unwrap();

    // Corrupt reads of the index file: decode or verify must notice.
    let fs = FaultyStorage::new(&inner);
    fs.inject(FaultRule {
        kind: FaultKind::Reads,
        path_contains: Some("tindex".into()),
        after_ops: 0,
        corrupt_with: Some(0x80),
    });
    let bag = BoraBag::open(&fs, "/c", &mut ctx).unwrap();
    let res = bag.load_time_index("/imu", &mut ctx);
    assert!(res.is_err(), "corrupted tindex magic must be rejected, got {res:?}");
}

#[test]
fn wal_checksum_catches_injected_corruption() {
    let fs = Arc::new(FaultyStorage::new(MemStorage::new()));
    let mut ctx = IoCtx::new();
    let mut db = dbsim::TsdbStore::create(Arc::clone(&fs), "/ts", &mut ctx).unwrap();
    let msgs = workloads::tum::fig2_tf_messages(20, 9);
    for m in &msgs {
        db.insert_tf(m, &mut ctx).unwrap();
    }
    // Corrupt WAL reads and replay: the checksum must fail loudly.
    fs.inject(FaultRule {
        kind: FaultKind::Reads,
        path_contains: Some("wal".into()),
        after_ops: 0,
        corrupt_with: Some(0x01),
    });
    let replay = dbsim::wal::Wal::replay(&Arc::clone(&fs), "/ts/wal", &mut ctx);
    assert!(replay.is_err(), "WAL replay must detect corruption");
}

#[test]
fn metadata_faults_do_not_panic_open_paths() {
    let inner = MemStorage::new();
    build_small_bag(&inner, 50);
    let mut ctx = IoCtx::new();
    bora::organizer::duplicate(
        &inner,
        "/b.bag",
        &inner,
        "/c",
        &OrganizerOptions::default(),
        &mut ctx,
    )
    .unwrap();
    let fs = FaultyStorage::new(&inner);
    fs.inject(FaultRule {
        kind: FaultKind::Metadata,
        path_contains: None,
        after_ops: 0,
        corrupt_with: None,
    });
    assert!(BoraBag::open(&fs, "/c", &mut ctx).is_err());
    assert!(BagReader::open(&fs, "/b.bag", &mut ctx).is_err());
}
