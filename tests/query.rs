//! bora-query integration: the declarative query layer driven through
//! the serve wire protocol and the cluster router, end to end.
//!
//! The crate-level tests pin the compiler (parser/planner proptests) and
//! the executor (plan-vs-naive equivalence); this file covers the seams:
//! `OP_QUERY` over a running server, error mapping that keeps the
//! connection alive, and the distributed partial-aggregate protocol
//! returning byte-identical results whether one node or three execute.

use std::sync::Arc;

use bora_cluster::{ClusterClientConfig, ClusterTierConfig, LocalCluster, RingConfig};
use bora_query::encode_rows;
use bora_serve::{ClientError, ErrorCode, MemTransport, ServeClient, Server, ServerConfig};
use ros_msgs::sensor_msgs::Imu;
use ros_msgs::Time;
use rosbag::{BagWriter, BagWriterOptions};
use simfs::{IoCtx, MemStorage};

/// One container of IMU data with a recognizable signal: 200 messages,
/// 2 Hz, `angular_velocity.x = tick`, so every window aggregate has a
/// hand-checkable value.
fn stage_container(fs: &MemStorage, root: &str, ticks: u32, seq_base: u32) {
    let mut ctx = IoCtx::new();
    let bag = format!("/stage{root}.bag");
    let mut w = BagWriter::create(fs, &bag, BagWriterOptions::default(), &mut ctx).unwrap();
    for tick in 0..ticks {
        let t = Time::from_nanos(1_000_000_000 + tick as u64 * 500_000_000);
        let mut imu = Imu::default();
        imu.header.seq = seq_base + tick;
        imu.header.stamp = t;
        imu.angular_velocity.x = tick as f64;
        w.write_ros_message("/imu", t, &imu, &mut ctx).unwrap();
    }
    w.close(&mut ctx).unwrap();
    bora::duplicate(fs, &bag, fs, root, &Default::default(), &mut ctx).unwrap();
}

const AGG_SQL: &str = "SELECT window, count(), mean(angular_velocity.x), \
                       min(angular_velocity.x), max(angular_velocity.x) \
                       FROM '/imu' WHERE time < 60.0 WINDOW 5s";

#[test]
fn serve_query_streams_rows_and_survives_bad_statements() {
    let fs = Arc::new(MemStorage::new());
    stage_container(&fs, "/c/m0", 200, 0);

    let server = Server::start(Arc::clone(&fs), ServerConfig::default());
    let transport = MemTransport::new(Arc::clone(&server));
    let mut client = ServeClient::connect(&transport).unwrap();

    // The served result equals the local cursor over the same container.
    let mut ctx = IoCtx::new();
    let bag = bora::BoraBag::open(Arc::clone(&fs), "/c/m0", &mut ctx).unwrap();
    let p = bora_query::prepare(AGG_SQL).unwrap();
    let mut cur = p.cursor_bag(&bag, false, &mut ctx).unwrap();
    let want_cols = cur.columns();
    let want_rows = cur.collect_rows().unwrap();
    assert!(!want_rows.is_empty(), "test container produced no windows");

    let got = client.query("/c/m0", AGG_SQL).unwrap();
    assert_eq!(got.columns, want_cols);
    assert_eq!(got.rows, want_rows);
    assert_eq!(got.rows_total, want_rows.len() as u64);
    assert!(got.explain.is_empty(), "plain query must not carry a plan");
    assert!(got.wire_bytes > 0);

    // EXPLAIN: plan only, nothing executes.
    let plan = client.query("/c/m0", &format!("EXPLAIN {AGG_SQL}")).unwrap();
    assert!(plan.rows.is_empty() && plan.rows_total == 0);
    assert!(plan.explain.contains("pushdown=on"), "{}", plan.explain);

    // EXPLAIN ANALYZE: same rows as the plain query plus the annotated
    // plan, whose reported group count matches what actually arrived.
    let analyzed = client.query("/c/m0", &format!("EXPLAIN ANALYZE {AGG_SQL}")).unwrap();
    assert_eq!(analyzed.rows, want_rows);
    assert!(
        analyzed.explain.contains(&format!("groups={}", want_rows.len())),
        "{}",
        analyzed.explain
    );

    // A statement fault maps to BadQuery with a caret diagnostic — and
    // the connection stays usable for the next (valid) statement.
    for bad in ["SELECT FROM '/imu'", "SELECT count() FROM '/imu' WINDOW 0s", "garbage"] {
        match client.query("/c/m0", bad) {
            Err(ClientError::Server { code: ErrorCode::BadQuery, message }) => {
                assert!(message.contains('^'), "no caret in: {message}");
            }
            other => panic!("expected BadQuery for {bad:?}, got {other:?}"),
        }
    }
    let again = client.query("/c/m0", AGG_SQL).unwrap();
    assert_eq!(again.rows, want_rows, "connection unusable after BadQuery");

    client.shutdown().unwrap();
}

/// The distributed plan ships partial aggregates and merges at the
/// router: one node owning everything and three nodes sharding it must
/// return byte-identical result rows.
#[test]
fn distributed_aggregate_is_byte_identical_across_cluster_sizes() {
    let staging = MemStorage::new();
    let roots: Vec<String> = (0..4).map(|k| format!("/fleet/m{k}")).collect();
    for (k, root) in roots.iter().enumerate() {
        stage_container(&staging, root, 120 + 20 * k as u32, 10_000 * k as u32);
    }
    let refs: Vec<&str> = roots.iter().map(String::as_str).collect();

    let run = |nodes: u32| {
        let cluster = LocalCluster::start(ClusterTierConfig {
            nodes,
            ring: RingConfig { vnodes: 64, replication: 2 },
            ..ClusterTierConfig::default()
        });
        cluster.provision(&staging, &refs).unwrap();
        let client = cluster.client(ClusterClientConfig::default());
        let agg = client.query_multi(&refs, AGG_SQL).unwrap();
        let rows = client
            .query_multi(&refs, "SELECT time, angular_velocity.x FROM '/imu' LIMIT 50")
            .unwrap();
        cluster.shutdown();
        (agg, rows)
    };

    let (agg1, rows1) = run(1);
    let (agg3, rows3) = run(3);

    assert!(!agg1.rows.is_empty());
    assert_eq!(encode_rows(&agg1.rows), encode_rows(&agg3.rows), "aggregate result diverged");
    assert_eq!(agg1.columns, agg3.columns);

    // Non-aggregate: rows concatenated in container order, global LIMIT
    // re-applied at the router.
    assert_eq!(rows1.rows.len(), 50);
    assert_eq!(encode_rows(&rows1.rows), encode_rows(&rows3.rows), "row-ship result diverged");

    // Independent cross-check: the first container's share recomputed
    // locally against the staged copy.
    let mut ctx = IoCtx::new();
    let bag = bora::BoraBag::open(&staging, &roots[0], &mut ctx).unwrap();
    let p = bora_query::prepare("SELECT count() FROM '/imu'").unwrap();
    let want = p.cursor_bag(&bag, false, &mut ctx).unwrap().collect_rows().unwrap();

    let cluster = LocalCluster::start(ClusterTierConfig::default());
    cluster.provision(&staging, &refs).unwrap();
    let client = cluster.client(ClusterClientConfig::default());
    let got = client.query(&roots[0], "SELECT count() FROM '/imu'").unwrap();
    assert_eq!(got.rows, want);

    // Router-side compile failure: same BadQuery shape a node answers
    // with, without ever touching the wire.
    match client.query(&roots[0], "SELECT count( FROM '/imu'") {
        Err(ClientError::Server { code: ErrorCode::BadQuery, .. }) => {}
        other => panic!("expected BadQuery from the router, got {other:?}"),
    }
    cluster.shutdown();
}
