//! Crash consistency of the container commit path: a deterministic
//! power-cut sweep over every mutating storage op of a capture, plus
//! property tests that `bora fsck` verdicts are stable and repair is
//! idempotent.
//!
//! The invariant under test is the acceptance bar for the commit
//! protocol: **no crash point may yield a container that opens Clean but
//! returns wrong or partial data.** A crash mid-capture leaves either
//! nothing (the cut landed before the staging directory) or staging
//! debris that fsck classifies as Torn; repair rolls forward from the
//! source bag to a container byte-identical to an uncrashed capture.

use bora::{fsck, BoraBag, BoraError, FsckState, Manifest, OrganizerOptions, RepairOutcome};
use proptest::prelude::*;
use ros_msgs::{md5, sensor_msgs::Imu, Time};
use rosbag::{BagWriter, BagWriterOptions};
use simfs::{FaultyStorage, IoCtx, MemStorage, PowerCutSchedule, Storage};

const SRC: &str = "/src.bag";
const DST: &str = "/c/slam";
const TOPICS: [&str; 2] = ["/imu", "/odom"];

fn source_bag_bytes(messages_per_topic: u32) -> Vec<u8> {
    let fs = MemStorage::new();
    let mut ctx = IoCtx::new();
    let mut w = BagWriter::create(
        &fs,
        SRC,
        BagWriterOptions { chunk_size: 2048, ..Default::default() },
        &mut ctx,
    )
    .unwrap();
    for i in 0..messages_per_topic {
        let mut imu = Imu::default();
        imu.header.seq = i;
        imu.header.stamp = Time::new(i, 0);
        for topic in TOPICS {
            w.write_ros_message(topic, Time::new(i, 0), &imu, &mut ctx).unwrap();
        }
    }
    w.close(&mut ctx).unwrap();
    fs.read_all(SRC, &mut ctx).unwrap()
}

fn fresh_disk(bag_bytes: &[u8]) -> FaultyStorage<MemStorage> {
    let fs = MemStorage::new();
    let mut ctx = IoCtx::new();
    fs.append(SRC, bag_bytes, &mut ctx).unwrap();
    FaultyStorage::new(fs)
}

/// MD5 over (path, content) in MANIFEST order: equal digests mean the
/// containers are byte-identical file for file.
fn container_digest<S: Storage>(storage: &S, root: &str, ctx: &mut IoCtx) -> String {
    let manifest = Manifest::load(storage, root, ctx).unwrap().expect("committed ⇒ MANIFEST");
    let mut acc = Vec::new();
    for e in manifest.entries() {
        acc.extend_from_slice(e.path.as_bytes());
        acc.push(0);
        acc.extend_from_slice(&storage.read_all(&format!("{root}/{}", e.path), ctx).unwrap());
    }
    md5::hex_digest(&acc)
}

#[test]
fn every_crash_point_recovers_to_byte_identical_clean() {
    let bag_bytes = source_bag_bytes(15);
    let opts = OrganizerOptions::default();

    // Probe run: size the sweep, fix the reference digest and counts.
    let probe = fresh_disk(&bag_bytes);
    let mut ctx = IoCtx::new();
    bora::organizer::duplicate(&probe, SRC, &probe, DST, &opts, &mut ctx).unwrap();
    let total = probe.mutations();
    assert!(total > 4, "sweep needs a non-trivial capture, got {total} mutations");
    let reference = container_digest(probe.inner(), DST, &mut ctx);
    let reference_msgs =
        BoraBag::open(probe.inner(), DST, &mut ctx).unwrap().read_topic("/imu", &mut ctx).unwrap();

    let (mut torn_seen, mut unstarted_seen) = (0u64, 0u64);
    for cut in PowerCutSchedule::sweep(total) {
        let faulty = fresh_disk(&bag_bytes);
        let mut ctx = IoCtx::new();
        faulty.arm_power_cut(cut);
        bora::organizer::duplicate(&faulty, SRC, &faulty, DST, &opts, &mut ctx)
            .expect_err("armed cut must abort the capture");

        // "Reboot": the wrapper is dead; inspect the surviving medium.
        let disk = faulty.inner();
        match fsck::check(disk, DST, &mut ctx) {
            // Nothing reached the medium — the capture never started.
            Err(BoraError::NotAContainer(_)) => {
                unstarted_seen += 1;
                bora::organizer::duplicate(disk, SRC, disk, DST, &opts, &mut ctx).unwrap();
            }
            Ok(report) => {
                // The commit rename is the last mutation, so a crashed
                // capture can never present a committed root — Torn
                // (staging debris only) is the sole legal verdict.
                assert_eq!(
                    report.state,
                    FsckState::Torn,
                    "crash at mutation {} must not yield a {:?} root",
                    cut.after_mutations,
                    report.state
                );
                torn_seen += 1;
                // Rollback alone must also be a legal exit (idempotent
                // with the roll-forward below): classify → roll forward.
                let outcome = fsck::repair(disk, DST, Some((disk, SRC)), &opts, &mut ctx).unwrap();
                assert_eq!(outcome, RepairOutcome::RolledForward);
            }
            Err(e) => panic!("fsck failed at mutation {}: {e}", cut.after_mutations),
        }

        assert!(fsck::check(disk, DST, &mut ctx).unwrap().is_clean());
        assert_eq!(
            container_digest(disk, DST, &mut ctx),
            reference,
            "recovered container must be byte-identical (crash at mutation {})",
            cut.after_mutations
        );
        let msgs =
            BoraBag::open(disk, DST, &mut ctx).unwrap().read_topic("/imu", &mut ctx).unwrap();
        assert_eq!(msgs.len(), reference_msgs.len());
    }
    assert!(torn_seen > 0, "the sweep must hit mid-capture crash points");
    assert!(unstarted_seen > 0, "the sweep must hit the pre-staging crash point");
}

#[test]
fn rollback_without_source_leaves_no_debris() {
    let bag_bytes = source_bag_bytes(10);
    let faulty = fresh_disk(&bag_bytes);
    let mut ctx = IoCtx::new();
    // Crash halfway through the capture.
    let probe = fresh_disk(&bag_bytes);
    bora::organizer::duplicate(&probe, SRC, &probe, DST, &OrganizerOptions::default(), &mut ctx)
        .unwrap();
    let half = probe.mutations() / 2;
    faulty.arm_power_cut(simfs::PowerCut { after_mutations: half, torn_bytes: Some(1) });
    bora::organizer::duplicate(&faulty, SRC, &faulty, DST, &OrganizerOptions::default(), &mut ctx)
        .expect_err("cut mid-capture");
    let disk = faulty.inner();
    let outcome =
        fsck::repair::<_, MemStorage>(disk, DST, None, &OrganizerOptions::default(), &mut ctx)
            .unwrap();
    assert_eq!(outcome, RepairOutcome::RolledBack);
    assert!(!disk.exists(&format!("{DST}.staging"), &mut ctx), "debris swept");
    assert!(!disk.exists(DST, &mut ctx), "rollback does not invent a container");
}

/// Build a committed container and return its manifest-relative paths.
fn committed_container(messages_per_topic: u32) -> (MemStorage, Vec<String>, String) {
    let fs = MemStorage::new();
    let mut ctx = IoCtx::new();
    let bytes = source_bag_bytes(messages_per_topic);
    fs.append(SRC, &bytes, &mut ctx).unwrap();
    bora::organizer::duplicate(&fs, SRC, &fs, DST, &OrganizerOptions::default(), &mut ctx).unwrap();
    let paths: Vec<String> = Manifest::load(&fs, DST, &mut ctx)
        .unwrap()
        .unwrap()
        .entries()
        .iter()
        .map(|e| e.path.clone())
        .collect();
    let digest = container_digest(&fs, DST, &mut ctx);
    (fs, paths, digest)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Flip one byte anywhere in any manifest-tracked file: fsck verdicts
    /// are stable across re-runs, repair converges to a byte-identical
    /// Clean container, and repairing again is a no-op.
    #[test]
    fn fsck_verdict_stable_and_repair_idempotent(
        file_sel in 0usize..1 << 16,
        offset_sel in 0usize..1 << 16,
        xor in 1u8..=255,
    ) {
        let (fs, paths, reference) = committed_container(8);
        let mut ctx = IoCtx::new();
        let rel = &paths[file_sel % paths.len()];
        let full = format!("{DST}/{rel}");
        let len = fs.len(&full, &mut ctx).unwrap() as usize;
        prop_assert!(len > 0, "manifest-tracked files are never empty");
        let offset = (offset_sel % len) as u64;
        let byte = fs.read_at(&full, offset, 1, &mut ctx).unwrap()[0];
        fs.write_at(&full, offset, &[byte ^ xor], &mut ctx).unwrap();

        // Verdicts are stable: re-running check changes nothing.
        let r1 = fsck::check(&fs, DST, &mut ctx).unwrap();
        let r2 = fsck::check(&fs, DST, &mut ctx).unwrap();
        prop_assert_eq!(r1.state, FsckState::Corrupt);
        prop_assert_eq!(r1.state, r2.state);
        prop_assert_eq!(r1.damages.len(), r2.damages.len());

        // Repair converges...
        let outcome = fsck::repair(
            &fs, DST, Some((&fs, SRC)), &OrganizerOptions::default(), &mut ctx,
        ).unwrap();
        prop_assert!(
            matches!(outcome, RepairOutcome::RepairedTopics(_) | RepairOutcome::RolledForward),
            "unexpected outcome {:?}", outcome
        );
        prop_assert!(fsck::check(&fs, DST, &mut ctx).unwrap().is_clean());
        prop_assert_eq!(container_digest(&fs, DST, &mut ctx), reference);

        // ...and is idempotent: a second repair finds nothing to do.
        let again = fsck::repair(
            &fs, DST, Some((&fs, SRC)), &OrganizerOptions::default(), &mut ctx,
        ).unwrap();
        prop_assert_eq!(again, RepairOutcome::AlreadyClean);
    }
}
