//! Live ingest walkthrough: query a recording while it is still being
//! written.
//!
//! ```text
//! cargo run --example live_ingest
//! ```
//!
//! The BORA container is a post-mission format: the organizer rewrites a
//! finished bag. bora-ingest removes the "finished" part — appends land
//! in a CRC-framed WAL and an in-memory segment per topic, seals freeze
//! those into sorted segment files, and background compaction folds them
//! into an ordinary container generation. Readers never care: an MVCC
//! snapshot pins {container, sealed segments, frozen memtable} and the
//! k-way merge serves the same bytes no matter which layer holds them.
//!
//! This example starts a server over a live ingest root, streams appends
//! through the batching writer while a concurrent analyst runs a
//! mid-recording `READ_STREAM` query, then seals + compacts and shows the
//! mid-recording answer was a byte-identical prefix of the final one.

use std::sync::Arc;

use bora_serve::{
    IngestBatching, IngestClient, MemTransport, ServeClient, Server, ServerConfig, WireMessage,
};
use ros_msgs::Time;
use simfs::{IoCtx, MemStorage};

const ROOT: &str = "/live/mission";
const TOPICS: [&str; 2] = ["/imu", "/camera/info"];

/// The recorded timeline: globally increasing timestamps, 100 Hz IMU with
/// a camera-info message every fifth tick.
fn timeline(ticks: u64) -> Vec<(&'static str, Time, Vec<u8>)> {
    let mut out = Vec::new();
    for i in 0..ticks {
        let t = Time::from_nanos(1_000_000_000 + i * 10_000_000);
        out.push(("/imu", t, vec![i as u8; 32]));
        if i % 5 == 0 {
            let t = Time::from_nanos(1_000_000_000 + i * 10_000_000 + 1);
            out.push(("/camera/info", t, vec![0xC0 | (i % 16) as u8; 96]));
        }
    }
    out
}

fn main() {
    // --- 1. A live ingest root, served like any container. ---
    let fs = Arc::new(MemStorage::new());
    let mut ctx = IoCtx::new();
    bora_ingest::IngestStore::create(
        Arc::clone(&fs),
        ROOT,
        bora_ingest::IngestConfig::default(),
        &mut ctx,
    )
    .expect("create ingest root");
    let server = Server::start(Arc::clone(&fs), ServerConfig::default());
    let transport = MemTransport::new(Arc::clone(&server));

    let script = timeline(400);
    let half = script.len() / 2;

    // --- 2. Record the first half through the batching writer. ---
    let conn = ServeClient::connect(&transport).expect("writer connect");
    let mut recorder = IngestClient::new(conn, ROOT, IngestBatching::default());
    for (topic, t, data) in &script[..half] {
        recorder.write(topic, *t, data).expect("append");
    }
    recorder.flush().expect("group commit");
    println!("recorder: {} messages durable (epoch moves per batch)", recorder.appended());

    // --- 3. A mid-recording query: served from WAL + memtable only. ---
    let mut analyst = ServeClient::connect(&transport).expect("analyst connect");
    let mid: Vec<WireMessage> = analyst
        .read_stream(ROOT, &TOPICS)
        .expect("mid-recording stream")
        .collect::<Result<Vec<_>, _>>()
        .expect("stream frames");
    println!("mid-recording query: {} messages, all still in the live layers", mid.len());
    assert_eq!(mid.len(), half);
    assert!(mid.windows(2).all(|p| p[0].time <= p[1].time), "stream is chronological");

    // --- 4. Recording continues; then seal + compact in the background. ---
    for (topic, t, data) in &script[half..] {
        recorder.write(topic, *t, data).expect("append");
    }
    recorder.flush().expect("group commit");
    let (epoch, pending) = recorder.seal(true).expect("seal + compact");
    println!("sealed + compacted at epoch {epoch}; {pending} sealed batches left behind");
    assert_eq!(pending, 0);

    // --- 5. Same query again: now served from the compacted container —
    // and the mid-recording answer is a byte-identical prefix of it. ---
    let full: Vec<WireMessage> = analyst
        .read_stream(ROOT, &TOPICS)
        .expect("post-compaction stream")
        .collect::<Result<Vec<_>, _>>()
        .expect("stream frames");
    assert_eq!(full.len(), script.len());
    assert_eq!(&full[..mid.len()], &mid[..], "layers must never change the bytes");
    println!(
        "post-compaction query: {} messages; first {} byte-identical to the live answer",
        full.len(),
        mid.len()
    );

    // --- 6. What the server saw. ---
    let snap = analyst.stats().expect("stats");
    for (op, s) in &snap.ops {
        if s.count > 0 {
            println!(
                "  {op:<12} n={:<4} wall mean {:>8.1} us",
                s.count,
                s.wall_mean_ns as f64 / 1e3
            );
        }
    }
    let mut writer_conn = recorder.finish().expect("writer finish");
    writer_conn.shutdown().expect("shutdown");
    server.shutdown();
    println!("done: a query mid-recording reads the same bytes the archive will hold");
}
