//! Observing a cluster: cross-node traces, fleet telemetry, SLOs, and
//! the slow-op log — the full observability plane in one walkthrough.
//!
//! ```text
//! cargo run --example observe_cluster
//! BORA_TRACE=1 BORA_TRACE_OUT=fleet.trace.json cargo run --example observe_cluster
//! ```
//!
//! With tracing on, the run writes a single Chrome trace (load it in
//! ui.perfetto.dev) where every server-side span — queue wait included —
//! parents under the client span that caused it, across all three node
//! lanes; hedged loser legs and abandoned failover attempts appear as
//! cancelled siblings.

use std::time::Duration;

use bora_cluster::{
    ClusterClientConfig, ClusterTelemetry, ClusterTierConfig, HedgeConfig, LocalCluster, RingConfig,
};
use bora_obs::SloTarget;
use ros_msgs::sensor_msgs::Imu;
use ros_msgs::Time;
use rosbag::{BagWriter, BagWriterOptions};
use simfs::{IoCtx, MemStorage};

fn main() {
    // Honour BORA_TRACE / BORA_TRACE_OUT from the environment.
    bora_obs::init_from_env();

    // --- 1. Stage three mission containers. ---
    let staging = MemStorage::new();
    let mut ctx = IoCtx::new();
    let mut roots = Vec::new();
    for robot in 0..3u32 {
        let bag = format!("/stage/robot{robot}.bag");
        let mut w =
            BagWriter::create(&staging, &bag, BagWriterOptions::default(), &mut ctx).unwrap();
        for tick in 0..300u32 {
            let t = Time::from_nanos(1_000_000_000 * 100 + tick as u64 * 10_000_000);
            let mut imu = Imu::default();
            imu.header.seq = tick;
            imu.header.stamp = t;
            w.write_ros_message("/imu", t, &imu, &mut ctx).unwrap();
        }
        w.close(&mut ctx).unwrap();
        let root = format!("/fleet/robot{robot}");
        bora::duplicate(&staging, &bag, &staging, &root, &Default::default(), &mut ctx).unwrap();
        roots.push(root);
    }

    // --- 2. A 3-node cluster, replicated 2×, with an aggressive slow-op
    //        threshold so the in-memory demo actually logs a tail. ---
    let cluster = LocalCluster::start(ClusterTierConfig {
        nodes: 3,
        ring: RingConfig { vnodes: 64, replication: 2 },
        server: bora_serve::ServerConfig {
            slow_op_threshold_ns: 100_000, // 100µs
            ..Default::default()
        },
        ..ClusterTierConfig::default()
    });
    let root_refs: Vec<&str> = roots.iter().map(String::as_str).collect();
    cluster.provision(&staging, &root_refs).unwrap();

    // Latency objectives, registered on every node: reads must keep
    // their p99 under 50ms, opens under 10ms.
    for id in cluster.node_ids() {
        let node = cluster.node(id).unwrap();
        node.server.set_slo_target("read", SloTarget::p99(50_000_000));
        node.server.set_slo_target("open", SloTarget::p99(10_000_000));
    }

    // --- 3. Traffic: hedged reads, plus one injected node death so the
    //        trace shows failover. ---
    let client = cluster.client(ClusterClientConfig {
        hedge: Some(HedgeConfig { min_threshold: Duration::from_micros(50), factor: 3.0 }),
        ..ClusterClientConfig::default()
    });
    for round in 0..10 {
        for root in &roots {
            client.topics(root).unwrap();
            let msgs = client.read(root, &["/imu"]).unwrap();
            assert_eq!(msgs.len(), 300);
            if round % 3 == 0 {
                client.stat(root).unwrap();
            }
        }
    }
    let victim = client.replicas(&roots[0])[0];
    println!("killing node {victim} mid-traffic...");
    cluster.kill(victim);
    client.topics(&roots[0]).unwrap(); // fails over; attempt span cancelled
    assert_eq!(client.read(&roots[0], &["/imu"]).unwrap().len(), 300);

    // --- 4. The telemetry plane: scrape every node, render `top`. ---
    let telemetry = ClusterTelemetry::new(client.clone());
    let scrape = telemetry.scrape();
    println!("\n=== bora-tool top (one scrape) ===");
    print!("{}", bora_cluster::render_top(&scrape));
    println!(
        "\ncluster-wide reads: {} (summed over {} nodes; hedged losers included)",
        scrape.aggregate.hist("serve.op.read.wall_ns").map(|h| h.count).unwrap_or(0),
        scrape.aggregate.nodes,
    );

    // --- 5. SLO verdicts per node. ---
    println!("\n=== SLO status ===");
    for id in cluster.node_ids() {
        let node = cluster.node(id).unwrap();
        for s in node.server.slo_statuses() {
            println!(
                "node {id} {:<6} p99 {:>9}ns (target {:>9}ns) samples {:>4} breached={} ({} total)",
                s.name, s.p99_ns, s.target.p99_ns, s.samples, s.breached, s.breaches
            );
        }
    }

    cluster.shutdown();

    // --- 6. One merged Chrome trace for the whole fleet run. ---
    match bora_obs::write_trace_if_enabled("fleet.trace.json") {
        Ok(Some(path)) => println!("\nmerged fleet trace written to {}", path.display()),
        Ok(None) => println!("\n(set BORA_TRACE=1 to capture the merged fleet trace)"),
        Err(e) => eprintln!("trace write failed: {e}"),
    }
}
