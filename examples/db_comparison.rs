//! The paper's Fig. 2 motivation, interactive: ingest the same TF stream
//! into a bag file and into three database engines, then run the query
//! each store is good at.
//!
//! ```text
//! cargo run --release --example db_comparison
//! ```

use std::sync::Arc;

use dbsim::{InsertEngine, KvStore, SqlStore, TsdbStore};
use ros_msgs::Time;
use simfs::{DeviceModel, IoCtx, MemStorage, TimedStorage};
use workloads::tum::fig2_tf_messages;

fn main() {
    let n = 10_000;
    let msgs = fig2_tf_messages(n, 42);
    println!("ingesting {n} TF messages into four stores...\n");

    // Filesystem baseline: one record append per incoming message, the
    // way `rosbag record` actually writes (same methodology as Fig. 2).
    use ros_msgs::RosMessage;
    use rosbag::record::{write_record, MessageDataHeader};
    let fs = Arc::new(TimedStorage::new(MemStorage::new(), DeviceModel::nvme_ext4()));
    let mut ctx = IoCtx::new();
    {
        use simfs::Storage as _;
        fs.create("/tf.bag", &mut ctx).unwrap();
        let mut record = Vec::with_capacity(256);
        for m in &msgs {
            record.clear();
            let header = MessageDataHeader { conn_id: 0, time: m.header.stamp }.to_header();
            write_record(&mut record, &header, &m.to_bytes());
            fs.append("/tf.bag", &record, &mut ctx).unwrap();
        }
    }
    let fs_ms = ctx.elapsed().as_secs_f64() * 1e3;

    // The engines.
    let mut kv_ctx = IoCtx::new();
    let kv_fs = Arc::new(TimedStorage::new(MemStorage::new(), DeviceModel::nvme_ext4()));
    let mut kv = KvStore::create(Arc::clone(&kv_fs), "/kv", &mut kv_ctx).unwrap();
    for m in &msgs {
        kv.insert_tf(m, &mut kv_ctx).unwrap();
    }

    let mut sql_ctx = IoCtx::new();
    let sql_fs = Arc::new(TimedStorage::new(MemStorage::new(), DeviceModel::nvme_ext4()));
    let mut sql = SqlStore::create(Arc::clone(&sql_fs), "/pg", &mut sql_ctx).unwrap();
    for m in &msgs {
        sql.insert_tf(m, &mut sql_ctx).unwrap();
    }

    let mut ts_ctx = IoCtx::new();
    let ts_fs = Arc::new(TimedStorage::new(MemStorage::new(), DeviceModel::nvme_ext4()));
    let mut tsdb = TsdbStore::create(Arc::clone(&ts_fs), "/influx", &mut ts_ctx).unwrap();
    for m in &msgs {
        tsdb.insert_tf(m, &mut ts_ctx).unwrap();
    }

    println!("{:22} {:>14}  {:>10}", "store", "ingest (ms)", "vs bag");
    for (name, ms) in [
        ("bag append (Ext4)", fs_ms),
        ("KV (Aerospike-like)", kv_ctx.elapsed().as_secs_f64() * 1e3),
        ("SQL (PostgreSQL-like)", sql_ctx.elapsed().as_secs_f64() * 1e3),
        ("TSDB (InfluxDB-like)", ts_ctx.elapsed().as_secs_f64() * 1e3),
    ] {
        println!("{name:22} {ms:>14.1}  {:>9.1}x", ms / fs_ms);
    }

    // Each store can still answer its native query — the paper's point is
    // not that databases are useless, but that their ingest cost is fatal
    // for high-rate robot streams.
    let lo = Time::new(100, 0).as_nanos() + 4_000_000_000;
    let hi = lo + 2_000_000_000;
    let sql_hits = sql.scan_ts_range(lo, hi).len();
    let ts_hits = tsdb.query_range("tf,child=base_link,frame=odom", lo, hi).len()
        + tsdb.query_range("tf,child=camera,frame=odom", lo, hi).len();
    println!("\nrange query [4 s, 6 s) of the stream:");
    println!("  SQL B-tree scan: {sql_hits} rows");
    println!("  TSDB shards:     {ts_hits} points");
    println!("  (the bag answers the same via BORA's time index — see example time_window_query)");
}
