//! Swarm analysis ("Bullet Time"): every robot's RGB camera at the same
//! instant, pulled from one bag per robot — the paper's §IV.E scenario on
//! the Tianhe-1A Lustre model.
//!
//! ```text
//! cargo run --release --example swarm_analysis
//! ```

use bora::BoraBag;
use ros_msgs::{RosDuration, Time};
use rosbag::BagReader;
use simfs::{run_parallel, ClusterConfig, ClusterStorage, IoCtx};
use workloads::swarm::generate_swarm;
use workloads::tum::{topic, GenOptions};

fn main() {
    let robots = 12;
    let fs = ClusterStorage::new(ClusterConfig::tianhe_lustre());
    let mut ctx = IoCtx::new();

    println!("generating a {robots}-robot swarm on the Lustre model...");
    let opts = GenOptions { count_scale: 0.05, payload_scale: 0.004, ..Default::default() };
    let swarm = generate_swarm(&fs, "/swarm", robots, 4, &opts, &mut ctx).expect("swarm");

    println!("duplicating each distinct bag into a BORA container...");
    let mut containers = Vec::new();
    for (i, path) in swarm.bag_paths.iter().enumerate() {
        let root = format!("/bora/robot{i}");
        bora::organizer::duplicate(
            &fs,
            path,
            &fs,
            &root,
            &bora::OrganizerOptions::default(),
            &mut ctx,
        )
        .expect("duplicate");
        containers.push(root);
    }

    // The multi-angle snapshot: RGB frames in a 2-second window around t0.
    let t0 = Time::new(101, 0);
    let window = (t0, t0 + RosDuration::from_sec_f64(2.0));
    println!(
        "\nall {robots} processes extract {} in [{}, {}) simultaneously\n",
        topic::RGB_IMAGE,
        window.0,
        window.1
    );

    // Baseline: every process opens its bag the traditional way.
    let base = run_parallel(robots, |robot, ctx| {
        let bag = &swarm.bag_paths[robot % swarm.bag_paths.len()];
        let reader = BagReader::open(&fs, bag, ctx).expect("open");
        let frames =
            reader.read_messages_time(&[topic::RGB_IMAGE], window.0, window.1, ctx).expect("query");
        assert!(!frames.is_empty());
    });

    // BORA: tag-manager open + coarse time index.
    let ours = run_parallel(robots, |robot, ctx| {
        let root = &containers[robot % containers.len()];
        let bag = BoraBag::open(&fs, root, ctx).expect("open");
        let frames = bag.read_topic_time(topic::RGB_IMAGE, window.0, window.1, ctx).expect("query");
        assert!(!frames.is_empty());
    });

    let base_ms = base.makespan().as_secs_f64() * 1e3;
    let ours_ms = ours.makespan().as_secs_f64() * 1e3;
    println!("swarm makespan (virtual, max over {robots} processes):");
    println!("  traditional rosbag on Lustre: {base_ms:.2} ms");
    println!("  BORA on Lustre:               {ours_ms:.2} ms  ({:.1}x)", base_ms / ours_ms);
    println!(
        "\naggregate storage seconds: baseline {:.2}, BORA {:.2}",
        base.total_ns() as f64 / 1e9,
        ours.total_ns() as f64 / 1e9
    );
}
