//! Query tour: two analyses from the ROS analysis literature, each
//! written twice — once as a declarative query, once as a hand-written
//! streaming consumer — asserted to agree, plus a look at what predicate
//! pushdown buys on a block-framed container.
//!
//! ```text
//! cargo run --release --example query_tour
//! ```
//!
//! 1. **Computation-graph extraction** (time-windowed topic activity, à
//!    la "Automatic Extraction of Time-windowed ROS Computation Graphs
//!    from ROS Bag Files"): per-topic message counts bucketed into
//!    30-second windows — `SELECT window, count() ... WINDOW 30s`.
//! 2. **Message-flow pairing** (à la "Message Flow Analysis with Complex
//!    Causal Links"): candidate causal links between `/cam` frames and
//!    the `/imu` readings within 120 ms of them — `JOIN ... WITHIN`.
//! 3. **Pushdown**: a selective time filter planned with pushdown on and
//!    off. Both return identical rows; the pushed plan decodes less than
//!    half the blocks. The annotated plan is written to
//!    `query_explain.json` for CI to validate.

use bora::{BlockCodec, BlockParams, BoraBag, OrganizerOptions};
use bora_query::{explain_json, ns_to_secs, prepare_with, PlanOptions, Row, Value};
use ros_msgs::sensor_msgs::{Image, Imu};
use ros_msgs::Time;
use rosbag::{BagWriter, BagWriterOptions};
use simfs::{IoCtx, MemStorage};

const WINDOW_NS: u64 = 30_000_000_000;
const WITHIN_NS: u64 = 120_000_000;

fn main() {
    let fs = MemStorage::new();
    let mut ctx = IoCtx::new();

    // A 400-second mission: 10 Hz IMU, 2 Hz camera (offset 1.3 ms so no
    // two topics ever share a timestamp), block-framed at 4 KiB.
    let mut w = BagWriter::create(&fs, "/m.bag", BagWriterOptions::default(), &mut ctx).unwrap();
    for tick in 0..4000u64 {
        let t = Time::from_nanos(1_000_000_000_000 + tick * 100_000_000);
        let mut imu = Imu::default();
        imu.header.seq = tick as u32;
        imu.header.stamp = t;
        imu.angular_velocity.x = (tick % 100) as f64 * 0.01;
        w.write_ros_message("/imu", t, &imu, &mut ctx).unwrap();
    }
    for frame in 0..800u64 {
        let t = Time::from_nanos(1_000_000_000_000 + frame * 500_000_000 + 1_300_000);
        let mut img = Image::default();
        img.header.seq = frame as u32;
        img.header.stamp = t;
        img.width = 640;
        img.height = 480;
        w.write_ros_message("/cam", t, &img, &mut ctx).unwrap();
    }
    w.close(&mut ctx).unwrap();
    let opts = OrganizerOptions {
        block: Some(BlockParams { codec: BlockCodec::Lzss, block_size: 4096 }),
        ..Default::default()
    };
    bora::duplicate(&fs, "/m.bag", &fs, "/c", &opts, &mut ctx).unwrap();
    let bag = BoraBag::open(&fs, "/c", &mut ctx).unwrap();

    // ---------------------------------------------- 1. computation graph
    println!("== time-windowed computation graph (30 s windows) ==");
    println!("{:>8}  {:>8}  {:>8}  {:>10}", "topic", "windows", "msgs", "mean rate");
    for topic in ["/imu", "/cam"] {
        let sql = format!("SELECT window, count() FROM '{topic}' WINDOW 30s");
        let p = prepare_with(&sql, &PlanOptions::default()).unwrap();
        let mut cur = p.cursor_bag(&bag, false, &mut ctx).unwrap();
        let rows = cur.collect_rows().unwrap();

        // The hand-written consumer: read the topic, bucket by window.
        let mut buckets = std::collections::BTreeMap::<u64, i64>::new();
        for m in bag.read_topic(topic, &mut ctx).unwrap() {
            *buckets.entry(m.time.as_nanos() / WINDOW_NS).or_default() += 1;
        }
        let expected: Vec<Row> = buckets
            .iter()
            .map(|(k, n)| vec![Value::Float(ns_to_secs(k * WINDOW_NS)), Value::Int(*n)])
            .collect();
        assert_eq!(rows, expected, "{topic}: query disagrees with the streaming consumer");

        let msgs: i64 = buckets.values().sum();
        println!(
            "{:>8}  {:>8}  {:>8}  {:>8.1}/s",
            topic,
            rows.len(),
            msgs,
            msgs as f64 / (rows.len() as f64 * ns_to_secs(WINDOW_NS)),
        );
    }

    // ------------------------------------------------- 2. message flow
    println!("\n== candidate causal links: /imu within 120 ms of each /cam frame ==");
    let sql = "SELECT left.time, right.time FROM '/imu' JOIN '/cam' WITHIN 120ms";
    let p = prepare_with(sql, &PlanOptions::default()).unwrap();
    let mut cur = p.cursor_bag(&bag, false, &mut ctx).unwrap();
    let rows = cur.collect_rows().unwrap();

    // Hand-written: every (imu, cam) pair within the window, emitted at
    // the arrival of the later member — i.e. ordered by (later, earlier).
    let imu = bag.read_topic("/imu", &mut ctx).unwrap();
    let cam = bag.read_topic("/cam", &mut ctx).unwrap();
    let mut pairs = Vec::new();
    for l in &imu {
        for r in &cam {
            let (lt, rt) = (l.time.as_nanos(), r.time.as_nanos());
            if lt.abs_diff(rt) <= WITHIN_NS {
                pairs.push((lt.max(rt), lt.min(rt), lt, rt));
            }
        }
    }
    pairs.sort();
    // `time` is the builtin's float rendering — ns_to_secs, the same
    // conversion the executor uses (it differs from sec + nsec·1e-9 in
    // the last ulp, and the comparison below is exact).
    let tv = |ns: u64| Value::Float(ns_to_secs(ns));
    let expected: Vec<Row> = pairs.iter().map(|(_, _, lt, rt)| vec![tv(*lt), tv(*rt)]).collect();
    assert_eq!(rows, expected, "join disagrees with the pairing consumer");
    println!(
        "{} links over {} frames ({:.1} per frame)",
        rows.len(),
        cam.len(),
        rows.len() as f64 / cam.len() as f64
    );

    // ---------------------------------------------------- 3. pushdown
    println!("\n== pushdown on a selective time filter ==");
    let sql = "EXPLAIN ANALYZE SELECT count() FROM '/imu' \
               WHERE time >= 1050.0 AND time < 1090.0";
    let run = |pushdown: bool, ctx: &mut IoCtx| {
        let p = prepare_with(sql, &PlanOptions { pushdown }).unwrap();
        let mut cur = p.cursor_bag(&bag, false, ctx).unwrap();
        let rows = cur.collect_rows().unwrap();
        let stats = cur.stats();
        (p, rows, stats)
    };
    let (p_on, rows_on, on) = run(true, &mut ctx);
    let (_, rows_off, off) = run(false, &mut ctx);
    assert_eq!(rows_on, rows_off, "pushdown changed the result");
    assert_eq!(rows_on, vec![vec![Value::Int(400)]], "40 s of 10 Hz IMU is 400 messages");
    println!("blocks decoded: {} with pushdown, {} without", on.block_decodes, off.block_decodes);
    assert!(
        on.block_decodes * 2 <= off.block_decodes,
        "pushdown skipped under half the decodes ({} vs {})",
        on.block_decodes,
        off.block_decodes
    );

    let json = explain_json(&p_on, Some(&on));
    std::fs::write("query_explain.json", &json).unwrap();
    println!("annotated plan written to query_explain.json ({} bytes)", json.len());
}
