//! Anatomy of the coarse-grain time index (paper Fig. 8).
//!
//! ```text
//! cargo run --release --example time_window_query
//! ```
//!
//! Shows the window arithmetic (`⌊start/W⌋ .. ⌈end/W⌉`), how many
//! candidate entries the coarse index hands to the fine filter, and how
//! the query cost scales with the window — versus the baseline, which
//! merge-sorts every timestamp of the topic no matter how small the
//! window is.

use bora::BoraBag;
use ros_msgs::{RosDuration, Time};
use rosbag::BagReader;
use simfs::{DeviceModel, IoCtx, MemStorage, TimedStorage};
use workloads::tum::{generate_bag, topic, GenOptions};

fn main() {
    let fs = TimedStorage::new(MemStorage::new(), DeviceModel::nvme_ext4());
    let mut ctx = IoCtx::new();
    let opts = GenOptions { count_scale: 0.5, payload_scale: 0.002, ..Default::default() };
    println!("generating bag...");
    generate_bag(&fs, "/hs.bag", &opts, &mut ctx).expect("generate");
    bora::organizer::duplicate(
        &fs,
        "/hs.bag",
        &fs,
        "/bora/hs",
        &bora::OrganizerOptions::default(),
        &mut ctx,
    )
    .expect("duplicate");

    let bag = BoraBag::open(&fs, "/bora/hs", &mut ctx).expect("open");
    let reader = BagReader::open(&fs, "/hs.bag", &mut ctx).expect("baseline open");
    let (t0, t_end) = bag.time_range();
    let total = bag.meta().topic(topic::IMU).unwrap().message_count;
    let tindex = bag.load_time_index(topic::IMU, &mut ctx).unwrap();
    println!(
        "topic {}: {} messages over [{t0}, {t_end}], {} non-empty windows of {} s\n",
        topic::IMU,
        total,
        tindex.len(),
        tindex.window_ns / 1_000_000_000
    );

    println!(
        "{:>10}  {:>6}..{:<6}  {:>10}  {:>8}  {:>12}  {:>12}  {:>8}",
        "window(s)", "slot", "slot", "candidates", "matches", "bora(ms)", "rosbag(ms)", "speedup"
    );
    for w in [1.0, 5.0, 25.0, 125.0] {
        let start = t0 + RosDuration::from_sec_f64(10.0);
        let end = start + RosDuration::from_sec_f64(w);
        let (lo, hi) = tindex.slot_range(start, end);
        let candidates = tindex.candidate_entries(start, end).map(|(a, b)| b - a).unwrap_or(0);

        let mut bctx = IoCtx::new();
        let got = bag.read_topic_time(topic::IMU, start, end, &mut bctx).unwrap();
        let mut rctx = IoCtx::new();
        let base = reader.read_messages_time(&[topic::IMU], start, end, &mut rctx).unwrap();
        assert_eq!(got.len(), base.len());

        println!(
            "{:>10.0}  {:>6}..{:<6}  {:>10}  {:>8}  {:>12.3}  {:>12.3}  {:>7.1}x",
            w,
            lo,
            hi,
            candidates,
            got.len(),
            bctx.elapsed().as_secs_f64() * 1e3,
            rctx.elapsed().as_secs_f64() * 1e3,
            rctx.elapsed_ns() as f64 / bctx.elapsed_ns().max(1) as f64,
        );
    }
    println!(
        "\nthe baseline merge-sorts all {total} index entries for every query; \
         BORA touches only the candidate windows."
    );
    let _ = Time::ZERO;
}
