//! Serving-layer walkthrough: one bora-serve process, many query clients.
//!
//! ```text
//! cargo run --example serve_queries
//! ```
//!
//! The paper's model is one analysis process opening one container. A
//! post-mission fleet workflow is the opposite shape — many analysts
//! hammering yesterday's few containers — and paying `BoraBag::open` per
//! query repays the tag-table build every time. bora-serve amortizes it:
//! this example stands up a server over three containers, runs a skewed
//! query mix through concurrent clients on the in-process transport, then
//! repeats a few queries over real TCP, and finally reads the server's
//! own STATS to show the cache doing its job.

use std::sync::Arc;

use bora_serve::{
    spawn_tcp_listener, MemTransport, ServeClient, Server, ServerConfig, TcpTransport,
};
use ros_msgs::sensor_msgs::Imu;
use ros_msgs::Time;
use rosbag::{BagWriter, BagWriterOptions};
use simfs::{IoCtx, MemStorage};

fn main() {
    let fs = Arc::new(MemStorage::new());
    let mut ctx = IoCtx::new();

    // --- 1. Three containers from one recorded mission. ---
    let mut writer = BagWriter::create(&*fs, "/mission.bag", BagWriterOptions::default(), &mut ctx)
        .expect("create bag");
    for tick in 0..2_000u32 {
        let t = Time::from_nanos(1_000_000_000 * 100 + tick as u64 * 10_000_000); // 100 Hz
        let mut imu = Imu::default();
        imu.header.seq = tick;
        imu.header.stamp = t;
        writer.write_ros_message("/imu", t, &imu, &mut ctx).expect("write imu");
    }
    writer.close(&mut ctx).expect("close bag");
    for day in 0..3 {
        bora::duplicate(
            &*fs,
            "/mission.bag",
            &*fs,
            &format!("/missions/day{day}"),
            &Default::default(),
            &mut ctx,
        )
        .expect("organize container");
    }

    // --- 2. Start the service: 4 workers, bounded queue, 2-slot cache. ---
    // The cache is deliberately smaller than the container count so the
    // STATS below show both hits and evictions.
    let server = Server::start(
        Arc::clone(&fs),
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 2,
            ..ServerConfig::default()
        },
    );
    let transport = MemTransport::new(Arc::clone(&server));

    // --- 3. Concurrent clients, 90% of traffic on day2 (the hot one). ---
    std::thread::scope(|scope| {
        for worker in 0..4 {
            let transport = &transport;
            scope.spawn(move || {
                let mut client = ServeClient::connect(transport).expect("connect");
                for round in 0..10 {
                    let root = if (worker + round) % 10 == 0 {
                        format!("/missions/day{}", round % 2) // the cold tail
                    } else {
                        "/missions/day2".to_owned()
                    };
                    let msgs = client.read(&root, &["/imu"]).expect("read");
                    assert_eq!(msgs.len(), 2_000);
                }
            });
        }
    });

    // --- 4. The same protocol over real TCP. ---
    let listener = spawn_tcp_listener(Arc::clone(&server), "127.0.0.1:0".parse().unwrap())
        .expect("bind listener");
    println!("serving on tcp://{}", listener.addr());
    let mut tcp_client =
        ServeClient::connect(&TcpTransport::new(listener.addr())).expect("tcp connect");
    let topics = tcp_client.topics("/missions/day2").expect("topics");
    let stat = tcp_client.stat("/missions/day2").expect("stat");
    println!(
        "over TCP: topics {:?}, {} messages, span [{} .. {}]",
        topics, stat.messages, stat.start, stat.end
    );
    let window = tcp_client
        .read_time("/missions/day2", &["/imu"], Time::new(105, 0), Time::new(106, 0))
        .expect("windowed read");
    println!("window [105 s, 106 s): {} messages", window.len());

    // --- 5. What the server saw: per-op latency and cache behaviour. ---
    let snap = tcp_client.stats().expect("stats");
    println!(
        "served {} requests | cache: {} hits / {} misses / {} evictions (hit rate {:.0}%)",
        snap.total_requests(),
        snap.cache_hits,
        snap.cache_misses,
        snap.cache_evictions,
        snap.cache_hit_rate() * 100.0
    );
    for (op, s) in &snap.ops {
        if s.count > 0 {
            println!(
                "  {op:<6} n={:<3} wall mean {:>7.1} us  p99 {:>7.1} us",
                s.count,
                s.wall_mean_ns as f64 / 1e3,
                s.wall_p99_ns as f64 / 1e3
            );
        }
    }

    // --- 6. Clean shutdown: workers drain, the TCP acceptor exits. ---
    tcp_client.shutdown().expect("shutdown");
    listener.join();
    server.shutdown();
    println!("server stopped");
}
