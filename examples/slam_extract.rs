//! SLAM front-end extraction: the paper's motivating workload.
//!
//! ```text
//! cargo run --release --example slam_extract
//! ```
//!
//! Generates a Handheld-SLAM-shaped bag (Table II composition), then runs
//! the Handheld SLAM extraction (depth + RGB image streams) two ways —
//! the traditional `rosbag` path and the BORA path — decoding the image
//! payloads and pairing depth/RGB frames by timestamp, as a real SLAM
//! front end would before feature extraction.

use bora::BoraBag;
use ros_msgs::sensor_msgs::Image;
use ros_msgs::RosMessage;
use rosbag::reader::MessageRecord;
use rosbag::BagReader;
use simfs::{DeviceModel, IoCtx, MemStorage, TimedStorage};
use workloads::tum::{generate_bag, topic, GenOptions};
use workloads::Application;

/// Pair depth and RGB frames whose stamps are within 20 ms — the standard
/// RGB-D association step.
fn associate(depth: &[MessageRecord], rgb: &[MessageRecord]) -> usize {
    const TOL_NS: u64 = 20_000_000;
    let mut pairs = 0;
    let mut j = 0usize;
    for d in depth {
        while j < rgb.len() && rgb[j].time.as_nanos() + TOL_NS < d.time.as_nanos() {
            j += 1;
        }
        if j < rgb.len() && rgb[j].time.as_nanos() <= d.time.as_nanos() + TOL_NS {
            pairs += 1;
        }
    }
    pairs
}

fn frame_stats(msgs: &[MessageRecord]) -> (usize, f64) {
    let mut bytes = 0usize;
    let mut mean_sum = 0.0f64;
    for m in msgs {
        let img = Image::from_bytes(&m.data).expect("image decodes");
        bytes += img.data.len();
        if !img.data.is_empty() {
            mean_sum += img.data.iter().map(|&b| b as f64).sum::<f64>() / img.data.len() as f64;
        }
    }
    (bytes, mean_sum / msgs.len().max(1) as f64)
}

fn main() {
    let fs = TimedStorage::new(MemStorage::new(), DeviceModel::nvme_ext4());
    let mut ctx = IoCtx::new();

    println!("generating Handheld-SLAM bag (Table II shape, reduced payloads)...");
    let opts = GenOptions { count_scale: 0.25, payload_scale: 0.002, ..Default::default() };
    let bag = generate_bag(&fs, "/hs.bag", &opts, &mut ctx).expect("generate");
    println!("  {} messages, {} bytes on disk", bag.message_count, bag.file_len);

    println!("duplicating into a BORA container...");
    bora::organizer::duplicate(
        &fs,
        "/hs.bag",
        &fs,
        "/bora/hs",
        &bora::OrganizerOptions::default(),
        &mut ctx,
    )
    .expect("duplicate");

    let topics = Application::HandheldSlam.topics(0);
    println!("Handheld SLAM requires: {topics:?}");

    // --- Traditional path. ---
    let mut base_ctx = IoCtx::new();
    let reader = BagReader::open(&fs, "/hs.bag", &mut base_ctx).expect("baseline open");
    let base_depth = reader.read_messages(&[topic::DEPTH_IMAGE], &mut base_ctx).unwrap();
    let base_rgb = reader.read_messages(&[topic::RGB_IMAGE], &mut base_ctx).unwrap();
    let base_ms = base_ctx.elapsed().as_secs_f64() * 1e3;

    // --- BORA path. ---
    let mut bora_ctx = IoCtx::new();
    let bbag = BoraBag::open(&fs, "/bora/hs", &mut bora_ctx).expect("bora open");
    let bora_depth = bbag.read_topic(topic::DEPTH_IMAGE, &mut bora_ctx).unwrap();
    let bora_rgb = bbag.read_topic(topic::RGB_IMAGE, &mut bora_ctx).unwrap();
    let bora_ms = bora_ctx.elapsed().as_secs_f64() * 1e3;

    assert_eq!(base_depth.len(), bora_depth.len());
    assert_eq!(base_rgb.len(), bora_rgb.len());

    let (dbytes, dmean) = frame_stats(&bora_depth);
    let (rbytes, rmean) = frame_stats(&bora_rgb);
    let pairs = associate(&bora_depth, &bora_rgb);

    println!("\nextraction results (identical for both paths):");
    println!("  depth frames: {} ({dbytes} bytes, mean intensity {dmean:.1})", bora_depth.len());
    println!("  rgb frames:   {} ({rbytes} bytes, mean intensity {rmean:.1})", bora_rgb.len());
    println!("  associated RGB-D pairs (±20 ms): {pairs}");

    println!("\nvirtual acquisition time:");
    println!("  traditional rosbag: {base_ms:.2} ms");
    println!("  BORA:               {bora_ms:.2} ms  ({:.2}x)", base_ms / bora_ms);
}
