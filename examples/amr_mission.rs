//! Warehouse AMR mission analysis: the structured-data-dominant regime.
//!
//! ```text
//! cargo run --release --example amr_mission
//! ```
//!
//! Generates a 60-second AMR mission (lidar, odometry, GPS, compressed
//! camera), imports it into BORA, then runs a "dock-approach replay":
//! odometry + lidar in a 10-second window, reconstructing the trajectory
//! and converting one laser sweep into a `PointCloud2` — the kind of
//! downstream processing the paper's pre-analysis workloads do.

use bora::BoraBag;
use ros_msgs::nav_msgs::Odometry;
use ros_msgs::sensor_msgs::{LaserScan, PointCloud2};
use ros_msgs::{RosMessage, Time};
use simfs::{DeviceModel, IoCtx, MemStorage, TimedStorage};
use workloads::amr::{dock_approach_topics, generate_amr_bag, topic, AmrOptions};

fn scan_to_cloud(scan: &LaserScan, pose: &Odometry) -> PointCloud2 {
    let mut pc = PointCloud2 {
        height: 1,
        fields: PointCloud2::xyz_layout(),
        point_step: 12,
        is_dense: true,
        ..Default::default()
    };
    pc.header = scan.header.clone();
    let (px, py) = (pose.pose.position.x as f32, pose.pose.position.y as f32);
    let mut n = 0u32;
    for (i, &r) in scan.ranges.iter().enumerate() {
        if r < scan.range_min || r > scan.range_max {
            continue;
        }
        let angle = scan.angle_min + scan.angle_increment * i as f32;
        for v in [px + r * angle.cos(), py + r * angle.sin(), 0.0f32] {
            pc.data.extend_from_slice(&v.to_le_bytes());
        }
        n += 1;
    }
    pc.width = n;
    pc.row_step = 12 * n;
    pc
}

fn main() {
    let fs = TimedStorage::new(MemStorage::new(), DeviceModel::nvme_ext4());
    let mut ctx = IoCtx::new();

    println!("recording a 60 s AMR mission...");
    let bag =
        generate_amr_bag(&fs, "/amr.bag", &AmrOptions::default(), &mut ctx).expect("generate");
    println!("  {} messages, {} bytes", bag.message_count, bag.file_len);
    for (t, n) in &bag.per_topic_counts {
        println!("    {t:22} {n:>6} msgs");
    }

    bora::organizer::duplicate(
        &fs,
        "/amr.bag",
        &fs,
        "/bora/amr",
        &bora::OrganizerOptions::default(),
        &mut ctx,
    )
    .expect("import");
    let bbag = BoraBag::open(&fs, "/bora/amr", &mut ctx).expect("open");

    // Dock-approach replay: odometry + lidar, [t0+20 s, t0+30 s).
    let (start, end) = workloads::amr::dock_window(Time::new(1_000, 0));
    let mut qctx = IoCtx::new();
    let msgs = bbag
        .read_topics_time(&dock_approach_topics(), start, end, &mut qctx)
        .expect("window query");
    println!(
        "\ndock-approach window [{start}, {end}): {} messages in {:.2} ms (virtual)",
        msgs.len(),
        qctx.elapsed().as_secs_f64() * 1e3
    );

    // Reconstruct the approach trajectory from the odometry stream.
    let odoms: Vec<Odometry> = msgs
        .iter()
        .filter(|m| m.topic == topic::ODOM)
        .map(|m| Odometry::from_bytes(&m.data).expect("odom decodes"))
        .collect();
    let scans: Vec<LaserScan> = msgs
        .iter()
        .filter(|m| m.topic == topic::SCAN)
        .map(|m| LaserScan::from_bytes(&m.data).expect("scan decodes"))
        .collect();
    let path_len: f64 = odoms
        .windows(2)
        .map(|w| {
            let dx = w[1].pose.position.x - w[0].pose.position.x;
            let dy = w[1].pose.position.y - w[0].pose.position.y;
            (dx * dx + dy * dy).sqrt()
        })
        .sum();
    println!("  trajectory: {} odometry samples, {path_len:.2} m travelled", odoms.len());

    // Build a point cloud from the mid-window sweep at the nearest pose.
    let scan = &scans[scans.len() / 2];
    let pose = odoms
        .iter()
        .min_by_key(|o| {
            (o.header.stamp.as_nanos() as i128 - scan.header.stamp.as_nanos() as i128)
                .unsigned_abs()
        })
        .expect("a pose near the scan");
    let cloud = scan_to_cloud(scan, pose);
    assert!(cloud.layout_is_consistent());
    println!(
        "  point cloud from sweep @ {}: {} points, {} bytes ({} fields)",
        scan.header.stamp,
        cloud.point_count(),
        cloud.data.len(),
        cloud.fields.len()
    );
}
