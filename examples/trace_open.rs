//! trace_open: record a synthetic bag, open it the baseline way and the
//! BORA way with tracing on, and write a Chrome `trace_event` JSON.
//!
//! ```text
//! BORA_TRACE=1 BORA_TRACE_OUT=trace_open.json cargo run --example trace_open
//! ```
//!
//! Load the output in `about://tracing` (Chrome) or <https://ui.perfetto.dev>.
//! The trace shows the paper's Fig. 4 side by side: the baseline
//! `rosbag.open` dominated by `chunk_scan` + `index_build`, and the BORA
//! `bora.open` whose children (`tag_rebuild`, `meta_read`,
//! `manifest_load`) partition its whole cost. The example also checks
//! that partition numerically: summing the children's virtual-ns charges
//! must reproduce the cost model's total for the open.

use bora::{BoraBag, BoraFs, BoraFsOptions};
use ros_msgs::sensor_msgs::Imu;
use ros_msgs::tf2_msgs::TfMessage;
use ros_msgs::Time;
use rosbag::{BagReader, BagWriter, BagWriterOptions};
use simfs::{DeviceModel, IoCtx, MemStorage, TimedStorage};

fn main() {
    // Honor BORA_TRACE/BORA_TRACE_OUT, but default tracing ON: producing a
    // trace is this example's whole point.
    bora_obs::init_from_env();
    bora_obs::set_enabled(true);

    let fs = TimedStorage::new(MemStorage::new(), DeviceModel::nvme_ext4());
    let mut ctx = IoCtx::new();

    // --- 1. Record a synthetic bag: 100 Hz IMU plus 10 Hz TF. ---
    let mut writer =
        BagWriter::create(&fs, "/robot/sample.bag", BagWriterOptions::default(), &mut ctx)
            .expect("create bag");
    for tick in 0..2_000u32 {
        let t = Time::from_nanos(1_000_000_000 * 100 + tick as u64 * 10_000_000);
        let mut imu = Imu::default();
        imu.header.seq = tick;
        imu.header.stamp = t;
        imu.linear_acceleration.z = 9.81;
        writer.write_ros_message("/imu", t, &imu, &mut ctx).expect("write imu");
        if tick % 10 == 0 {
            writer.write_ros_message("/tf", t, &TfMessage::default(), &mut ctx).expect("write tf");
        }
    }
    let summary = writer.close(&mut ctx).expect("close bag");
    println!("recorded {} messages in {} chunks", summary.message_count, summary.chunk_count);

    // --- 2. Baseline open: full chunk scan + in-memory index build. ---
    let mut base_ctx = IoCtx::new();
    let reader = BagReader::open(&fs, "/robot/sample.bag", &mut base_ctx).expect("baseline open");
    let baseline_open_ns = base_ctx.elapsed_ns();
    let n = reader.read_messages(&["/imu"], &mut base_ctx).expect("baseline read").len();
    println!("baseline: open {:.3} ms (virtual), read {} /imu messages", ms(baseline_open_ns), n);

    // --- 3. Import into a BORA mount, then the BORA-assisted open. ---
    let borafs = BoraFs::mount(&fs, "/mnt/bora", "/backend", BoraFsOptions::default(), &mut ctx)
        .expect("mount");
    borafs.import_bag(&fs, "/robot/sample.bag", "sample.bag", &mut ctx).expect("import");

    let mut open_ctx = IoCtx::new();
    let bag =
        BoraBag::open(&fs, &borafs.container_root("sample.bag"), &mut open_ctx).expect("bora open");
    let bora_open_ns = open_ctx.elapsed_ns();
    println!("bora:     open {:.3} ms (virtual)", ms(bora_open_ns));

    // A time-window query so the coarse time index shows up in the trace.
    let windowed = bag
        .read_topics_time(&["/imu"], Time::new(105, 0), Time::new(110, 0), &mut open_ctx)
        .expect("window query");
    println!("window query returned {} messages", windowed.len());

    // --- 4. Drain spans, check the Fig. 4b partition, export. ---
    let events = bora_obs::drain();
    let virt_of = |name: &str| -> u64 {
        events.iter().filter(|e| e.name == name).filter_map(|e| e.virt_ns).sum()
    };
    for required in
        ["rosbag.open", "rosbag.open.chunk_scan", "bora.open", "bora.tindex.load", "fs.read_at"]
    {
        assert!(events.iter().any(|e| e.name == required), "missing span {required}");
    }
    let open_total = virt_of("bora.open");
    let children = virt_of("bora.open.tag_rebuild")
        + virt_of("bora.open.meta_read")
        + virt_of("bora.open.manifest_load");
    assert_eq!(open_total, children, "bora.open children must partition the parent's virtual cost");
    assert_eq!(open_total, bora_open_ns, "span virt must match the cost model's open total");
    println!(
        "bora.open = tag_rebuild {:.3} ms + meta_read {:.3} ms + manifest_load {:.3} ms \
         (partition verified)",
        ms(virt_of("bora.open.tag_rebuild")),
        ms(virt_of("bora.open.meta_read")),
        ms(virt_of("bora.open.manifest_load"))
    );

    let json = bora_obs::chrome_trace(&events, bora_obs::dropped());
    let path = bora_obs::out_path_from_env()
        .unwrap_or_else(|| std::path::PathBuf::from("trace_open.json"));
    std::fs::write(&path, json).expect("write trace");
    println!("{} spans -> {}", events.len(), path.display());
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}
