//! Quickstart: record a bag, mount BORA, import, and query.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Walks the full lifecycle from the paper: a robot records messages into
//! an ordinary bag; the bag is copied onto a storage node through the BORA
//! front end (which reorganizes it into a container); analysis code then
//! opens it instantly and queries by topic and by time window.

use bora::{BoraFs, BoraFsOptions};
use ros_msgs::sensor_msgs::Imu;
use ros_msgs::tf2_msgs::TfMessage;
use ros_msgs::{RosMessage, Time};
use rosbag::{BagWriter, BagWriterOptions};
use simfs::{DeviceModel, IoCtx, MemStorage, TimedStorage};

fn main() {
    // A single-node "server": in-memory data, NVMe/Ext4 cost model.
    let fs = TimedStorage::new(MemStorage::new(), DeviceModel::nvme_ext4());
    let mut ctx = IoCtx::new();

    // --- 1. Record: what `rosbag record -O sample.bag /imu /tf` does. ---
    let mut writer =
        BagWriter::create(&fs, "/robot/sample.bag", BagWriterOptions::default(), &mut ctx)
            .expect("create bag");
    for tick in 0..1_000u32 {
        let t = Time::from_nanos(1_000_000_000 * 100 + tick as u64 * 10_000_000); // 100 Hz
        let mut imu = Imu::default();
        imu.header.seq = tick;
        imu.header.stamp = t;
        imu.linear_acceleration.z = 9.81;
        writer.write_ros_message("/imu", t, &imu, &mut ctx).expect("write imu");
        if tick % 10 == 0 {
            let tf = TfMessage::default();
            writer.write_ros_message("/tf", t, &tf, &mut ctx).expect("write tf");
        }
    }
    let summary = writer.close(&mut ctx).expect("close bag");
    println!(
        "recorded {} messages, {} chunks, {} bytes",
        summary.message_count, summary.chunk_count, summary.file_len
    );

    // --- 2. Mount BORA and import the bag (data duplication, Fig. 6). ---
    let bora = BoraFs::mount(&fs, "/mnt/bora", "/backend", BoraFsOptions::default(), &mut ctx)
        .expect("mount");
    let report = bora.import_bag(&fs, "/robot/sample.bag", "sample.bag", &mut ctx).expect("import");
    println!(
        "imported: {} topics, {} messages, scan {:.2} ms + distribute {:.2} ms",
        report.topics,
        report.messages,
        report.scan_ns as f64 / 1e6,
        report.distribute_ns as f64 / 1e6
    );

    // --- 3. Query by topic (Fig. 7): no scan, no iteration. ---
    let mut qctx = IoCtx::new();
    let msgs = bora.read_messages("sample.bag", &["/imu"], &mut qctx).expect("query");
    println!(
        "read {} /imu messages in {:.2} ms (virtual)",
        msgs.len(),
        qctx.elapsed().as_secs_f64() * 1e3
    );
    let first = Imu::from_bytes(&msgs[0].data).expect("decode");
    println!(
        "first IMU sample: az = {} m/s^2 at t = {}",
        first.linear_acceleration.z, msgs[0].time
    );

    // --- 4. Query by topic + time window (coarse-grain time index). ---
    let start = Time::new(102, 0);
    let end = Time::new(104, 0);
    let mut wctx = IoCtx::new();
    let windowed = bora
        .read_messages_time("sample.bag", &["/imu"], start, end, &mut wctx)
        .expect("window query");
    println!(
        "window [{start}, {end}): {} messages in {:.2} ms (virtual)",
        windowed.len(),
        wctx.elapsed().as_secs_f64() * 1e3
    );
    assert_eq!(windowed.len(), 200, "100 Hz x 2 s");

    // --- 5. Rebagging: export back to an ordinary .bag for sharing. ---
    let n = bora.export_bag("sample.bag", &fs, "/share/rebagged.bag", &mut ctx).expect("export");
    println!("exported {n} messages to /share/rebagged.bag (plain bag format)");
}
