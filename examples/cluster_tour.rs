//! Cluster-tier walkthrough: shard a fleet's containers over a
//! replicated node set, lose a node mid-traffic, and keep answering.
//!
//! ```text
//! cargo run --example cluster_tour
//! ```
//!
//! bora-serve scales one machine; this example stands up the tier above
//! it — four in-process serve nodes behind a consistent-hash ring — and
//! walks the cluster's whole lifecycle: provisioning, routed and swarm
//! queries, a node death with transparent failover, self-healing
//! re-replication, and an elastic join that moves only the minimal set
//! of containers.

use bora::SwarmSpec;
use bora_cluster::{
    swarm_query, ClusterClientConfig, ClusterTierConfig, LocalCluster, RingConfig, RoutePolicy,
};
use ros_msgs::sensor_msgs::Imu;
use ros_msgs::Time;
use rosbag::{BagWriter, BagWriterOptions};
use simfs::{IoCtx, MemStorage};

fn main() {
    // --- 1. Stage six robots' mission containers on a scratch fs. ---
    let staging = MemStorage::new();
    let mut ctx = IoCtx::new();
    let mut roots = Vec::new();
    for robot in 0..6u32 {
        let bag = format!("/stage/robot{robot}.bag");
        let mut w =
            BagWriter::create(&staging, &bag, BagWriterOptions::default(), &mut ctx).unwrap();
        for tick in 0..500u32 {
            let t = Time::from_nanos(1_000_000_000 * 100 + tick as u64 * 10_000_000);
            let mut imu = Imu::default();
            imu.header.seq = tick;
            imu.header.stamp = t;
            w.write_ros_message("/imu", t, &imu, &mut ctx).unwrap();
        }
        w.close(&mut ctx).unwrap();
        let root = format!("/fleet/robot{robot}");
        bora::duplicate(&staging, &bag, &staging, &root, &Default::default(), &mut ctx).unwrap();
        roots.push(root);
    }

    // --- 2. A 4-node cluster, every container replicated twice. ---
    let cluster = LocalCluster::start(ClusterTierConfig {
        nodes: 4,
        ring: RingConfig { vnodes: 64, replication: 2 },
        ..ClusterTierConfig::default()
    });
    let root_refs: Vec<&str> = roots.iter().map(String::as_str).collect();
    cluster.provision(&staging, &root_refs).unwrap();
    println!("placement (container -> replica set):");
    for (container, holders) in cluster.directory() {
        println!("  {container} -> {holders:?}");
    }

    // --- 3. A router with replica-spread reads and hedging enabled. ---
    let client = cluster.client(ClusterClientConfig {
        policy: RoutePolicy::Spread,
        hedge: Some(Default::default()),
        ..Default::default()
    });
    for (id, ping) in client.ping_all() {
        let p = ping.expect("node answers ping");
        println!(
            "node {id}: server_id={} uptime={:.1} ms queue_depth={}",
            p.server_id,
            p.uptime_ns as f64 / 1e6,
            p.queue_depth
        );
    }

    // --- 4. A swarm query routed through the cluster. ---
    let swarm = swarm_query(&client, &roots, &SwarmSpec::topics(&["/imu"])).unwrap();
    let swarm_msgs: usize = swarm.per_robot.iter().map(Vec::len).sum();
    println!(
        "swarm over {} robots: {} messages, makespan {:.2} ms",
        roots.len(),
        swarm_msgs,
        swarm.makespan_ns as f64 / 1e6
    );

    // --- 5. Kill a node mid-traffic: reads fail over to replicas. ---
    let victim = client.owner(&roots[0]).unwrap();
    let before = client.read(&roots[0], &["/imu"]).unwrap();
    cluster.kill(victim);
    let after = client.read(&roots[0], &["/imu"]).unwrap();
    assert_eq!(before, after);
    println!(
        "killed node {victim}; reads identical through failover ({} hops so far)",
        bora_obs::counter("cluster.failover").get()
    );

    // --- 6. Heal: drop the dead node, re-replicate what it held. ---
    let report = cluster.heal().unwrap();
    println!(
        "heal: removed {:?}, {} re-replication copies in {} batches",
        report.removed, report.copies, report.batches
    );

    // --- 7. Elastic join: a fresh node pulls only its share. ---
    let copies_before = bora_obs::counter("cluster.migrate.copies").get();
    let joined = cluster.join().unwrap();
    let moved = bora_obs::counter("cluster.migrate.copies").get() - copies_before;
    println!(
        "node {joined} joined; {moved} container copies moved (of {} placed)",
        roots.len() * 2
    );

    // The full fleet still answers, byte-identically.
    let final_read = client.read(&roots[0], &["/imu"]).unwrap();
    assert_eq!(final_read, before);
    println!("hedge threshold settled at {:?}", client.hedge_threshold());
    cluster.shutdown();
    println!("cluster stopped");
}
