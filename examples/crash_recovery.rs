//! Crash recovery: an interrupted recording is reindexed and then imported
//! into BORA — the operational path a robot fleet actually hits.
//!
//! ```text
//! cargo run --release --example crash_recovery
//! ```

use bora::BoraBag;
use ros_msgs::sensor_msgs::Imu;
use ros_msgs::Time;
use rosbag::record::{read_record, BagHeader, BAG_HEADER_RECORD_SIZE};
use rosbag::{BagReader, BagWriter, BagWriterOptions, MAGIC};
use simfs::{IoCtx, MemStorage, Storage};

fn main() {
    let fs = MemStorage::new();
    let mut ctx = IoCtx::new();

    // 1. A recording that never gets to close(): chunks are on disk but
    //    the header is a placeholder and the index section is missing.
    let mut w = BagWriter::create(
        &fs,
        "/flight.bag",
        BagWriterOptions { chunk_size: 4096, ..Default::default() },
        &mut ctx,
    )
    .expect("create");
    for i in 0..400u32 {
        let t = Time::new(50 + i / 20, (i % 20) * 50_000_000);
        let mut imu = Imu::default();
        imu.header.seq = i;
        imu.header.stamp = t;
        w.write_ros_message("/imu", t, &imu, &mut ctx).expect("write");
    }
    // Simulate the crash: strip the index section + zero the header,
    // then append half a record of garbage (power cut mid-write).
    let bytes = fs.read_all("/flight.bag", &mut ctx).unwrap();
    let mut cur: &[u8] = &bytes[MAGIC.len()..];
    let (h, _) = read_record(&mut cur).unwrap();
    let _ = BagHeader::from_header(&h); // placeholder header: index_pos = 0
    drop(w); // never closed
    let valid = bytes.len(); // writer flushed full chunks only
    let mut crashed = bytes[..valid].to_vec();
    crashed.extend_from_slice(&[0xDE, 0xAD, 0xBE]);
    fs.remove_file("/flight.bag", &mut ctx).unwrap();
    fs.append("/flight.bag", &crashed, &mut ctx).unwrap();
    let _ = BAG_HEADER_RECORD_SIZE;

    println!("crashed bag: {} bytes", fs.len("/flight.bag", &mut ctx).unwrap());
    match BagReader::open(&fs, "/flight.bag", &mut ctx) {
        Err(e) => println!("opening it fails, as expected: {e}"),
        Ok(_) => unreachable!("crashed bag should not open"),
    }

    // 2. Recover.
    let report = rosbag::reindex(&fs, "/flight.bag", &mut ctx).expect("reindex");
    println!(
        "reindex: recovered {} messages in {} chunks, discarded {} trailing bytes",
        report.messages_recovered, report.chunks_recovered, report.truncated_bytes
    );

    // 3. Business as usual: open, import into BORA, query.
    let r = BagReader::open(&fs, "/flight.bag", &mut ctx).expect("open after reindex");
    println!("reopened: {} messages indexed", r.index().message_count());

    bora::organizer::duplicate(
        &fs,
        "/flight.bag",
        &fs,
        "/bora/flight",
        &bora::OrganizerOptions::default(),
        &mut ctx,
    )
    .expect("import");
    let bag = BoraBag::open(&fs, "/bora/flight", &mut ctx).expect("bora open");
    let n = bag.verify(&mut ctx).expect("verify");
    let window =
        bag.read_topic_time("/imu", Time::new(55, 0), Time::new(60, 0), &mut ctx).expect("query");
    println!(
        "BORA container verified ({n} messages); [55 s, 60 s) window holds {} messages",
        window.len()
    );
}
