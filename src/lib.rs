//! Umbrella crate for the BORA (SC20) reproduction.
//!
//! This crate re-exports the workspace members so that examples and
//! integration tests can exercise the full system through one import.
//! See `DESIGN.md` at the repository root for the system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured record of every table and
//! figure.

pub use bora;
pub use bora_serve;
pub use dbsim;
pub use plfs_lite;
pub use ros_msgs;
pub use rosbag;
pub use simfs;
pub use workloads;
