//! Capacity-bounded LRU cache of open container handles.
//!
//! Opening a BORA container is cheap by design (Fig. 4b: one directory
//! listing plus a small metadata read) but not free — on a cost-model
//! backend it is several storage round trips. A serving process answers
//! many queries against few containers, so the cache keeps handles open
//! and amortizes that cost to zero for hot containers.
//!
//! Entries are **pinned** while a worker is using them: eviction skips
//! pinned entries, so a long `READ` keeps its handle even if a burst of
//! opens for other containers churns the rest of the cache. If every
//! entry is pinned the cache admits the newcomer anyway (transiently
//! exceeding capacity) rather than stalling the pool — capacity bounds
//! the *idle* footprint, pins bound the in-flight one.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use bora::{BoraBag, BoraResult, BufferPool};
use parking_lot::Mutex;
use simfs::{IoCtx, Storage};

/// Counters exposed through `STATS`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub len: u32,
    pub capacity: u32,
}

struct Entry<S> {
    bag: BoraBag<S>,
    pins: u32,
    /// Last-touch tick; smallest unpinned value is the eviction victim.
    touched: u64,
    /// Distinguishes re-inserted entries from the ones an outstanding pin
    /// refers to, so a stale pin release cannot unpin a successor entry
    /// that reused the same root after `invalidate`.
    generation: u64,
}

struct Inner<S> {
    entries: HashMap<String, Entry<S>>,
    /// Containers this server *owns* under a cluster placement (empty for
    /// a standalone server). Eviction takes non-preferred (replica-read)
    /// entries first, so failover and hedge traffic against replicas
    /// cannot churn the owner's working set out of its own cache.
    preferred: HashSet<String>,
    tick: u64,
    next_generation: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Thread-safe pinned LRU of `BoraBag` handles, keyed by container root.
pub struct HandleCache<S> {
    inner: Mutex<Inner<S>>,
    capacity: usize,
    /// Shared page cache attached to every handle this cache opens: all
    /// workers' data reads draw on ONE byte budget (`BORA_POOL_BYTES`)
    /// instead of per-handle buffers.
    pool: Option<Arc<BufferPool>>,
}

/// A cache lease: clones of the bag handle are cheap (`Arc`-backed tag
/// table and metadata), and the entry stays pinned until this guard drops.
pub struct PinnedBag<'a, S> {
    cache: &'a HandleCache<S>,
    root: String,
    generation: u64,
    bag: BoraBag<S>,
    /// Whether the handle was already cached (metrics want to distinguish
    /// amortized hits from cold opens).
    pub was_hit: bool,
}

impl<S> PinnedBag<'_, S> {
    pub fn bag(&self) -> &BoraBag<S> {
        &self.bag
    }
}

impl<S> Drop for PinnedBag<'_, S> {
    fn drop(&mut self) {
        let mut inner = self.cache.inner.lock();
        if let Some(e) = inner.entries.get_mut(&self.root) {
            if e.generation == self.generation {
                e.pins -= 1;
            }
        }
        // Entry gone or generation mismatch: `invalidate` removed the
        // entry this pin referred to (the bag stays alive through this
        // guard's clone) — nothing to release.
    }
}

impl<S: Storage + Clone> HandleCache<S> {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        HandleCache {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                preferred: HashSet::new(),
                tick: 0,
                next_generation: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            capacity,
            pool: None,
        }
    }

    /// Attach a shared buffer pool; handles opened from now on route
    /// their data reads through it.
    pub fn with_pool(mut self, pool: Arc<BufferPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    pub fn pool(&self) -> Option<&Arc<BufferPool>> {
        self.pool.as_ref()
    }

    /// Fetch `root` from the cache, opening it on miss. The returned guard
    /// pins the entry until dropped. `ctx` is charged only on miss (a hit
    /// performs no storage I/O — that is the whole point).
    pub fn get_or_open(
        &self,
        storage: &S,
        root: &str,
        ctx: &mut IoCtx,
    ) -> BoraResult<PinnedBag<'_, S>> {
        {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(e) = inner.entries.get_mut(root) {
                e.pins += 1;
                e.touched = tick;
                let (bag, generation) = (e.bag.clone(), e.generation);
                inner.hits += 1;
                return Ok(PinnedBag {
                    cache: self,
                    root: root.to_owned(),
                    generation,
                    bag,
                    was_hit: true,
                });
            }
            inner.misses += 1;
        }
        // Open outside the lock: a cold open is the slow path, and other
        // workers must keep hitting the cache while it runs. Two racing
        // misses for the same root both open; the second insert wins and
        // the first open is simply dropped when its pin releases — wasted
        // work, never a wrong answer.
        let mut bag = BoraBag::open(storage.clone(), root, ctx)?;
        if let Some(pool) = &self.pool {
            bag = bag.with_pool(Arc::clone(pool));
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        inner.next_generation += 1;
        let (tick, generation) = (inner.tick, inner.next_generation);
        let entry = inner.entries.entry(root.to_owned()).or_insert(Entry {
            bag: bag.clone(),
            pins: 0,
            touched: tick,
            generation,
        });
        entry.pins += 1;
        entry.touched = tick;
        let (bag, generation) = (entry.bag.clone(), entry.generation);
        self.evict_excess(&mut inner);
        Ok(PinnedBag { cache: self, root: root.to_owned(), generation, bag, was_hit: false })
    }

    /// Drop a container from the cache (e.g. after a backend fault made
    /// its handle suspect). Pinned users keep their clones; future
    /// requests re-open. Also drops the container's pages from the shared
    /// pool — a suspect handle's cached bytes are equally suspect.
    pub fn invalidate(&self, root: &str) -> bool {
        if let Some(pool) = &self.pool {
            pool.invalidate_prefix(root);
        }
        self.inner.lock().entries.remove(root).is_some()
    }

    /// Replace the preferred (owned) container set. Preferred entries are
    /// evicted only once every unpinned non-preferred entry is gone.
    pub fn set_preferred<I: IntoIterator<Item = String>>(&self, roots: I) {
        self.inner.lock().preferred = roots.into_iter().collect();
    }

    /// Outstanding pins on `root` (0 if not cached). Streaming reads hold
    /// a pin for the whole stream lifetime; tests use this to check the
    /// pin is released when a client abandons a stream mid-flight.
    pub fn pins(&self, root: &str) -> u32 {
        self.inner.lock().entries.get(root).map(|e| e.pins).unwrap_or(0)
    }

    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            len: inner.entries.len() as u32,
            capacity: self.capacity as u32,
        }
    }

    /// Evict least-recently-touched unpinned entries down to capacity,
    /// taking non-preferred (replica) entries before preferred (owned)
    /// ones regardless of recency.
    fn evict_excess(&self, inner: &mut Inner<S>) {
        while inner.entries.len() > self.capacity {
            let victim = inner
                .entries
                .iter()
                .filter(|(_, e)| e.pins == 0)
                .min_by_key(|(k, e)| (inner.preferred.contains(*k), e.touched))
                .map(|(k, _)| (k.clone(), inner.preferred.contains(k.as_str())));
            match victim {
                Some((k, preferred)) => {
                    inner.entries.remove(&k);
                    inner.evictions += 1;
                    if !preferred && !inner.preferred.is_empty() {
                        bora_obs::counter("serve.evict_replica").inc();
                    }
                }
                // Everything is pinned: run over capacity until pins drop.
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simfs::MemStorage;
    use std::sync::Arc;

    fn make_containers(n: usize) -> Arc<MemStorage> {
        use ros_msgs::{sensor_msgs::Imu, Time};
        use rosbag::{BagWriter, BagWriterOptions};
        let fs = Arc::new(MemStorage::new());
        let mut ctx = IoCtx::new();
        let mut w =
            BagWriter::create(&*fs, "/src.bag", BagWriterOptions::default(), &mut ctx).unwrap();
        for i in 0..20u32 {
            let mut imu = Imu::default();
            imu.header.stamp = Time::new(i, 0);
            w.write_ros_message("/imu", Time::new(i, 0), &imu, &mut ctx).unwrap();
        }
        w.close(&mut ctx).unwrap();
        for i in 0..n {
            bora::organizer::duplicate(
                &*fs,
                "/src.bag",
                &*fs,
                &format!("/c/bag{i}"),
                &bora::OrganizerOptions::default(),
                &mut ctx,
            )
            .unwrap();
        }
        fs
    }

    #[test]
    fn hit_miss_eviction_accounting() {
        let fs = make_containers(3);
        let cache: HandleCache<Arc<MemStorage>> = HandleCache::new(2);
        let mut ctx = IoCtx::new();

        assert!(!cache.get_or_open(&fs, "/c/bag0", &mut ctx).unwrap().was_hit);
        assert!(cache.get_or_open(&fs, "/c/bag0", &mut ctx).unwrap().was_hit);
        assert!(!cache.get_or_open(&fs, "/c/bag1", &mut ctx).unwrap().was_hit);
        // Third distinct container evicts the LRU (bag0: touched earlier).
        assert!(!cache.get_or_open(&fs, "/c/bag2", &mut ctx).unwrap().was_hit);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.len), (1, 3, 1, 2));
        // bag0 was evicted → miss again.
        assert!(!cache.get_or_open(&fs, "/c/bag0", &mut ctx).unwrap().was_hit);
    }

    #[test]
    fn pinned_entries_survive_eviction_pressure() {
        let fs = make_containers(3);
        let cache: HandleCache<Arc<MemStorage>> = HandleCache::new(1);
        let mut ctx = IoCtx::new();

        let pinned = cache.get_or_open(&fs, "/c/bag0", &mut ctx).unwrap();
        // Capacity 1 and bag0 pinned: bag1/bag2 run the cache over
        // capacity transiently but must not evict bag0.
        let p1 = cache.get_or_open(&fs, "/c/bag1", &mut ctx).unwrap();
        drop(p1);
        let p2 = cache.get_or_open(&fs, "/c/bag2", &mut ctx).unwrap();
        drop(p2);
        assert!(
            cache.get_or_open(&fs, "/c/bag0", &mut ctx).unwrap().was_hit,
            "pinned entry must not be evicted"
        );
        drop(pinned);
        // Unpinned now: the next distinct open can evict it.
        let _other = cache.get_or_open(&fs, "/c/bag1", &mut ctx).unwrap();
        assert!(cache.stats().evictions > 0);
    }

    #[test]
    fn preferred_entries_outlive_replica_entries() {
        let fs = make_containers(4);
        let cache: HandleCache<Arc<MemStorage>> = HandleCache::new(2);
        cache.set_preferred(["/c/bag0".to_owned()]);
        let mut ctx = IoCtx::new();

        // bag0 (owned) is the LRU, bag1 (replica) recently touched; the
        // next admission must still evict bag1, not the owned handle.
        cache.get_or_open(&fs, "/c/bag0", &mut ctx).unwrap();
        cache.get_or_open(&fs, "/c/bag1", &mut ctx).unwrap();
        cache.get_or_open(&fs, "/c/bag2", &mut ctx).unwrap();
        assert!(
            cache.get_or_open(&fs, "/c/bag0", &mut ctx).unwrap().was_hit,
            "owned entry must survive replica churn"
        );
        assert!(!cache.get_or_open(&fs, "/c/bag1", &mut ctx).unwrap().was_hit);

        // With only owned entries left they evict among themselves: the
        // preferred set degrades to plain LRU rather than pinning forever.
        cache.set_preferred(["/c/bag2".to_owned(), "/c/bag3".to_owned()]);
        cache.get_or_open(&fs, "/c/bag2", &mut ctx).unwrap();
        cache.get_or_open(&fs, "/c/bag3", &mut ctx).unwrap();
        assert_eq!(cache.stats().len, 2);
    }

    #[test]
    fn invalidate_forces_reopen() {
        let fs = make_containers(1);
        let cache: HandleCache<Arc<MemStorage>> = HandleCache::new(2);
        let mut ctx = IoCtx::new();
        let pinned = cache.get_or_open(&fs, "/c/bag0", &mut ctx).unwrap();
        assert!(cache.invalidate("/c/bag0"));
        assert!(!cache.invalidate("/c/bag0"), "second invalidate is a no-op");
        // The pinned clone still works after invalidation.
        assert_eq!(pinned.bag().topics(), vec!["/imu"]);
        drop(pinned);
        assert!(!cache.get_or_open(&fs, "/c/bag0", &mut ctx).unwrap().was_hit);
    }
}
