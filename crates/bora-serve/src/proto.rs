//! The bora-serve wire protocol: length-prefixed binary frames.
//!
//! Every message travels as one frame: a little-endian `u32` payload
//! length followed by the payload. The first payload byte is the opcode;
//! the rest is the operation's fields in fixed little-endian layouts
//! (strings are `u16` length + UTF-8, lists are `u16` count + elements).
//! There is no versioning handshake — both ends of a deployment ship
//! together — but unknown opcodes and truncated payloads decode to
//! [`ProtoError`] rather than panicking, so a malformed client cannot
//! take a worker down.
//!
//! The protocol is request/response with one extension: a `READ_STREAM`
//! request is answered by a *sequence* of frames — zero or more
//! [`Response::StreamChunk`]s as the server's k-way merge yields
//! messages, closed by a [`Response::StreamEnd`] (or a terminal
//! [`Response::Error`]). Everything else stays one-request/one-response,
//! and one outstanding request per connection keeps the backpressure
//! story honest: stream frames are produced no faster than the transport
//! accepts them, and a client that wants parallelism opens more
//! connections, which the server's bounded queue then sheds explicitly
//! via [`Response::Overloaded`].

use bora::block::{decode_frame, encode_frame};
use bora::BlockCodec;
use bora_obs::{HistSummary, TraceContext, BUCKETS};
use ros_msgs::Time;
use rosbag::MessageRecord;
use simfs::IoCtx;

/// Frame length prefix size (little-endian u32).
pub const FRAME_HEADER_LEN: usize = 4;

/// Upper bound on a single frame's payload; decoding rejects anything
/// larger so a corrupt length prefix cannot trigger a huge allocation.
pub const MAX_FRAME_LEN: u32 = 256 * 1024 * 1024;

// Request opcodes.
const OP_OPEN: u8 = 0x01;
const OP_TOPICS: u8 = 0x02;
const OP_META: u8 = 0x03;
const OP_READ: u8 = 0x04;
const OP_STAT: u8 = 0x05;
const OP_STATS: u8 = 0x06;
const OP_SHUTDOWN: u8 = 0x07;
const OP_TRACE: u8 = 0x08;
const OP_READ_STREAM: u8 = 0x09;
const OP_PING: u8 = 0x0A;
const OP_APPEND: u8 = 0x0B;
const OP_SEAL: u8 = 0x0C;
const OP_METRICS: u8 = 0x0D;

/// Optional trace-context prefix on a request payload: a client that is
/// tracing wraps the inner request as
/// `[0x0F, trace_id u64, parent_span u64, flags u8, inner payload…]`
/// (flags bit 0 = sampled). Untraced clients send the bare request, so
/// the untraced encoding is byte-identical to the pre-trace protocol —
/// old clients talk to new servers and vice versa. An old server sees
/// `0x0F` as an unknown opcode and answers with a clean [`ProtoError`]
/// error, which is why traced clients only prepend the header when a
/// context is actually present.
const OP_TRACE_CTX: u8 = 0x0F;

/// Bytes a trace-context prefix adds to a request payload.
pub const TRACE_CTX_LEN: usize = 1 + 8 + 8 + 1;

/// Optional deadline prefix on a request payload: a client with a
/// per-request budget wraps the (possibly trace-wrapped) payload as
/// `[0x10, budget_ns u64, inner payload…]`. The budget is *relative*
/// nanoseconds remaining at send time, not an absolute timestamp, so
/// no clock synchronisation is assumed — the server measures its own
/// queue wait against it and sheds work whose budget is already spent.
/// Like the trace prefix, the header is only prepended when a deadline
/// is actually set, so deadline-free traffic stays byte-identical to
/// the pre-deadline protocol.
const OP_DEADLINE: u8 = 0x10;

/// Bytes a deadline prefix adds to a request payload.
pub const DEADLINE_LEN: usize = 1 + 8;

/// Correlation prefix, outermost on both directions of the wire:
/// `[0x11, seq u32, inner payload…]`. The client stamps every request
/// with a per-connection sequence number and the server echoes it on
/// every frame it sends in answer (all chunks of a stream carry the
/// request's seq). This is what lets a client *reject* a stale frame —
/// a duplicated or reordered response surfacing after its request was
/// lost would otherwise be read as the answer to the *next* request,
/// and an ack credited to an append the server never saw. Uncorrelated
/// requests get uncorrelated responses, so plain peers interoperate
/// unchanged.
pub const OP_CORR: u8 = 0x11;

/// Bytes a correlation prefix adds to a payload.
pub const CORR_LEN: usize = 1 + 4;

/// `READ_STREAM2`: identical fields to `READ_STREAM`, but the request
/// opcode doubles as a capability bit — a client that sends it declares
/// it can decode [`Response::StreamChunkLz`] frames, so the server is
/// free to ship each chunk LZ-compressed. An old server answers the
/// unknown opcode with a clean `BadRequest` error, which is the client's
/// cue to fall back to plain `READ_STREAM` (see `ServeClient`).
const OP_READ_STREAM2: u8 = 0x12;

/// `QUERY`: execute a `bora-query` statement against a container and
/// stream the result back. Answered by one [`Response::QuerySchema`]
/// (column names), zero or more [`Response::QueryChunk`]s (row blobs,
/// `bora_query::wire` encoding), and a terminal [`Response::QueryEnd`]
/// carrying the row total and — for `EXPLAIN` / `EXPLAIN ANALYZE` — the
/// rendered plan. A malformed statement answers with
/// [`ErrorCode::BadQuery`] and the connection stays usable.
const OP_QUERY: u8 = 0x13;

/// Wrap `inner` in a correlation prefix carrying `seq`.
pub fn wrap_corr(seq: u32, inner: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(CORR_LEN + inner.len());
    buf.push(OP_CORR);
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(inner);
    buf
}

/// Split a payload into its correlation seq (if prefixed) and the inner
/// bytes. Payloads without the prefix — plain peers, pre-correlation
/// traffic — come back as `(None, payload)` untouched.
pub fn peel_corr(payload: &[u8]) -> (Option<u32>, &[u8]) {
    if payload.len() >= CORR_LEN && payload[0] == OP_CORR {
        let seq = u32::from_le_bytes(payload[1..CORR_LEN].try_into().unwrap());
        (Some(seq), &payload[CORR_LEN..])
    } else {
        (None, payload)
    }
}

/// Build a [`Response::StreamChunkLz`] from a message batch: the plain
/// chunk body is wrapped in one LZ `bora::block` frame. Frames that do
/// not shrink are stored raw inside the frame (the codec's built-in
/// fallback), so this never inflates a batch beyond the 13-byte frame
/// header. Compression cost is charged to `ctx` like any other
/// storage-layer compression.
pub fn compress_chunk(messages: &[WireMessage], ctx: &mut IoCtx) -> Response {
    let mut w = Writer { buf: Vec::new() };
    w.msgs(messages);
    Response::StreamChunkLz(encode_frame(BlockCodec::Lzss, &w.buf, ctx))
}

/// Decode a [`Response::StreamChunkLz`] frame back into its message
/// batch. The frame's CRC32C is verified over the stored bytes before
/// any decompression, so a corrupted chunk surfaces as a [`ProtoError`],
/// never as silently wrong messages.
pub fn decompress_chunk(frame: &[u8]) -> ProtoResult<Vec<WireMessage>> {
    // Client-side wall-clock work: the virtual-cost model meters the
    // server, so the charge sink here is a throwaway.
    let mut ctx = IoCtx::new();
    let (body, used) = decode_frame(frame, "stream-chunk", &mut ctx)
        .map_err(|e| ProtoError(format!("bad compressed chunk: {e}")))?;
    if used != frame.len() {
        return Err(ProtoError(format!(
            "{} trailing bytes after compressed chunk frame",
            frame.len() - used
        )));
    }
    let mut r = Reader::new(&body);
    let messages = r.msgs()?;
    r.finish()?;
    Ok(messages)
}

// Response opcodes (request opcode | 0x80, errors in 0xE0+).
const OP_OK_OPEN: u8 = 0x81;
const OP_OK_TOPICS: u8 = 0x82;
const OP_OK_META: u8 = 0x83;
const OP_OK_READ: u8 = 0x84;
const OP_OK_STAT: u8 = 0x85;
const OP_OK_STATS: u8 = 0x86;
const OP_OK_SHUTDOWN: u8 = 0x87;
const OP_OK_TRACE: u8 = 0x88;
const OP_OK_STREAM_CHUNK: u8 = 0x89;
const OP_OK_STREAM_END: u8 = 0x8A;
const OP_OK_PONG: u8 = 0x8B;
const OP_OK_APPENDED: u8 = 0x8C;
const OP_OK_SEALED: u8 = 0x8D;
const OP_OK_METRICS: u8 = 0x8E;
/// A `READ_STREAM2` chunk: one `bora::block` frame (codec tag,
/// uncompressed length, physical length, CRC32C) whose logical bytes are
/// the plain `StreamChunk` body. Reusing the storage-layer frame means
/// wire chunks inherit its per-frame raw fallback (incompressible
/// batches cost 13 bytes of header, not a blow-up) and its checksum —
/// a bit-flipped chunk decodes to a typed error, never to garbage
/// messages.
const OP_OK_STREAM_CHUNK_LZ: u8 = 0x8F;
const OP_OK_QUERY_SCHEMA: u8 = 0x93;
const OP_OK_QUERY_CHUNK: u8 = 0x94;
const OP_OK_QUERY_END: u8 = 0x95;
const OP_ERROR: u8 = 0xE0;
const OP_OVERLOADED: u8 = 0xEE;

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Open (or touch) a container, pulling it into the handle cache.
    Open { container: String },
    /// List a container's topics.
    Topics { container: String },
    /// Fetch the container's raw metadata (`ContainerMeta::encode` bytes).
    Meta { container: String },
    /// Read messages of `topics`, optionally restricted to `[start, end]`.
    Read { container: String, topics: Vec<String>, range: Option<(Time, Time)> },
    /// Like `Read`, but answered with a sequence of
    /// [`Response::StreamChunk`] frames written as the server-side merge
    /// yields messages, closed by [`Response::StreamEnd`]. The worker's
    /// cache pin is held for the stream's whole lifetime.
    ReadStream { container: String, topics: Vec<String>, range: Option<(Time, Time)> },
    /// Like `ReadStream`, but announces that this client decodes
    /// [`Response::StreamChunkLz`] — the server may answer with
    /// compressed chunk frames (it still may send plain `StreamChunk`s;
    /// the capability is permission, not obligation).
    ReadStream2 { container: String, topics: Vec<String>, range: Option<(Time, Time)> },
    /// Append live messages to an ingest root (`bora-ingest`). Messages
    /// must be per-topic chronological; the whole batch is acked as a
    /// unit once its WAL frames are group-committed. Appends are shed
    /// *before* reads under load: the queue admits them only while it is
    /// less than half full, so a recording robot cannot starve analysts.
    Append { container: String, messages: Vec<WireMessage> },
    /// Seal the ingest root's memtable into sorted segment files and, if
    /// `compact`, merge every sealed segment into the next container
    /// generation.
    Seal { container: String, compact: bool },
    /// Execute a `bora-query` statement against a container (live
    /// ingest roots included — the server reads an MVCC snapshot).
    /// `partial: true` asks for flattened partial-aggregate rows
    /// instead of final values — the distributed fragment mode; it is
    /// a [`ErrorCode::BadQuery`] error for non-aggregate statements.
    Query { container: String, sql: String, partial: bool },
    /// Summary numbers for one container.
    Stat { container: String },
    /// Server-wide metrics snapshot.
    Stats,
    /// Drain the server's span buffers as a Chrome trace JSON document.
    /// Control-plane (skips the data queue); empty unless the server runs
    /// with tracing enabled (`BORA_TRACE=1`).
    Trace,
    /// Liveness/health probe. Control-plane (skips the data queue), so a
    /// saturated server still answers in O(1) — which is exactly what a
    /// cluster health tracker needs: the reply's queue depth *is* the
    /// overload signal, not a timeout.
    Ping,
    /// Full metrics scrape: the node's registry (counters, gauges,
    /// histograms with buckets) plus its slow-op tail, versioned so a
    /// newer poller can reject a layout it does not understand.
    /// Control-plane (skips the data queue) — a telemetry poller must
    /// see an overloaded node, not be shed by it.
    Metrics,
    /// Stop accepting work and shut the pool down.
    Shutdown,
}

/// Reply to [`Request::Ping`]: identity plus the two numbers a cluster
/// health tracker keys routing decisions off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PingInfo {
    /// The serving node's stable identity within a cluster (0 for a
    /// standalone server).
    pub server_id: u32,
    /// Nanoseconds since the server process started its worker pool.
    pub uptime_ns: u64,
    /// Requests sitting in the bounded queue right now.
    pub queue_depth: u32,
}

/// Summary counters for one container (`STAT`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ContainerStat {
    pub topics: u32,
    pub messages: u64,
    pub data_bytes: u64,
    pub start: Time,
    pub end: Time,
}

/// One message returned by `READ`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireMessage {
    pub topic: String,
    pub time: Time,
    pub data: Vec<u8>,
}

impl From<MessageRecord> for WireMessage {
    fn from(m: MessageRecord) -> Self {
        WireMessage { topic: m.topic, time: m.time, data: m.data }
    }
}

/// Latency summary for one op kind inside a [`StatsSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpSummary {
    pub count: u64,
    /// Wall-clock nanoseconds, measured submit → response.
    pub wall_min_ns: u64,
    pub wall_mean_ns: u64,
    pub wall_p99_ns: u64,
    /// Virtual nanoseconds charged by the storage cost model.
    pub virt_mean_ns: u64,
}

/// Server-wide metrics snapshot (`STATS`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Summaries keyed by op name (`open`, `topics`, `meta`, `read`,
    /// `stat`), sorted by name for deterministic encoding.
    pub ops: Vec<(String, OpSummary)>,
    /// Requests rejected with [`Response::Overloaded`].
    pub shed: u64,
    /// Requests sitting in the queue right now.
    pub queue_depth: u32,
    /// Bound of the request queue.
    pub queue_capacity: u32,
    /// Mean time requests spent parked in the queue before a worker took
    /// them (the queue-wait share of `wall_mean_ns`).
    pub queue_wait_mean_ns: u64,
    pub queue_wait_p99_ns: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_evictions: u64,
    pub cache_len: u32,
    pub cache_capacity: u32,
}

impl StatsSnapshot {
    /// Total completed requests across all ops.
    pub fn total_requests(&self) -> u64 {
        self.ops.iter().map(|(_, s)| s.count).sum()
    }

    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    pub fn op(&self, name: &str) -> Option<&OpSummary> {
        self.ops.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }
}

/// Layout version of [`MetricsReport`]; bumped whenever the encoding
/// changes shape so pollers can reject reports they don't understand.
pub const METRICS_REPORT_VERSION: u32 = 1;

/// One entry of a node's slow-op ring (`METRICS`): an op that exceeded
/// the server's slow-op threshold, with enough identity to find its
/// spans in a merged trace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SlowOpEntry {
    /// Trace id of the request, 0 when the request was untraced.
    pub trace_id: u64,
    /// Op name (`read`, `append`, …).
    pub op: String,
    /// Container/shard the op targeted; empty for container-less ops.
    pub container: String,
    /// Worker wall time, queue wait excluded.
    pub wall_ns: u64,
    /// Time parked in the bounded queue before a worker picked it up.
    pub queue_wait_ns: u64,
    /// The reporting node's server id.
    pub server_id: u32,
}

/// Versioned snapshot of one node's metrics registry plus its slow-op
/// tail — the `METRICS` reply a [`crate::ServeClient`] hands to the
/// cluster telemetry poller. Histograms travel with their full bucket
/// content (sparsely: only non-zero buckets), so merged cluster-wide
/// percentiles are bucket-exact rather than averages of percentiles.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsReport {
    /// [`METRICS_REPORT_VERSION`] at encode time.
    pub version: u32,
    pub server_id: u32,
    /// Nanoseconds since the node's worker pool started.
    pub uptime_ns: u64,
    /// Sorted by name (registry order).
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub hists: Vec<(String, HistSummary)>,
    /// Most recent slow ops, oldest first, bounded by the server's ring.
    pub slow_ops: Vec<SlowOpEntry>,
}

impl MetricsReport {
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v).unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    pub fn hist(&self, name: &str) -> Option<&HistSummary> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }
}

/// Error category carried in an [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    NotAContainer = 1,
    UnknownTopic = 2,
    Corrupt = 3,
    Io = 4,
    BadRequest = 5,
    ShuttingDown = 6,
    /// A file's bytes failed CRC32C verification against the container
    /// MANIFEST. The server evicts the cached handle, so a retry reopens
    /// from the medium — transient read damage heals, persistent damage
    /// keeps answering with this code (then `bora fsck --repair`).
    ChecksumMismatch = 7,
    /// The request's propagated deadline budget was already spent when
    /// the server picked the job up, so it shed the work without doing
    /// it. Permanent by design: the budget is gone, and retrying or
    /// failing over cannot buy it back — the caller must either accept
    /// the miss or issue a fresh request with a fresh budget.
    DeadlineExceeded = 8,
    /// The `QUERY` statement failed to lex, parse, or plan. The message
    /// carries the position-annotated rendering; the request can never
    /// succeed as written, so the code is permanent — but the
    /// *connection* survives, exactly like any other request error.
    BadQuery = 9,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => ErrorCode::NotAContainer,
            2 => ErrorCode::UnknownTopic,
            3 => ErrorCode::Corrupt,
            4 => ErrorCode::Io,
            5 => ErrorCode::BadRequest,
            6 => ErrorCode::ShuttingDown,
            7 => ErrorCode::ChecksumMismatch,
            8 => ErrorCode::DeadlineExceeded,
            9 => ErrorCode::BadQuery,
            _ => return None,
        })
    }

    /// Whether retrying the same request may succeed without operator
    /// intervention. `Io` faults and checksum failures can heal (the
    /// server reopens the handle); a missing container, unknown topic,
    /// structural corruption, or a malformed request will fail the same
    /// way every time.
    pub fn is_transient(self) -> bool {
        match self {
            ErrorCode::Io | ErrorCode::ChecksumMismatch => true,
            ErrorCode::NotAContainer
            | ErrorCode::UnknownTopic
            | ErrorCode::Corrupt
            | ErrorCode::BadRequest
            | ErrorCode::ShuttingDown
            | ErrorCode::DeadlineExceeded
            | ErrorCode::BadQuery => false,
        }
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    Opened {
        stat: ContainerStat,
        cached: bool,
    },
    Topics(Vec<String>),
    /// Raw `ContainerMeta::encode` bytes; the client decodes them with
    /// `bora::ContainerMeta::decode`, reusing the container's own format.
    Meta(Vec<u8>),
    Read(Vec<WireMessage>),
    /// One batch of a `READ_STREAM` answer; more frames follow.
    StreamChunk(Vec<WireMessage>),
    /// One batch of a `READ_STREAM2` answer, carried as a
    /// `bora::block` frame wrapping the plain chunk body. Decode with
    /// [`decompress_chunk`]; produce with [`compress_chunk`].
    StreamChunkLz(Vec<u8>),
    /// Terminal frame of a `READ_STREAM` answer: total messages streamed.
    StreamEnd {
        messages: u64,
    },
    /// First frame of a `QUERY` answer: result column names.
    QuerySchema(Vec<String>),
    /// One batch of a `QUERY` answer: rows in the `bora_query::wire`
    /// blob encoding (opaque to this layer).
    QueryChunk(Vec<u8>),
    /// Terminal frame of a `QUERY` answer: total rows streamed, plus
    /// the rendered plan for `EXPLAIN` / `EXPLAIN ANALYZE` (empty
    /// otherwise).
    QueryEnd {
        rows: u64,
        explain: String,
    },
    /// Reply to [`Request::Append`]: messages durably written and the
    /// store's MVCC epoch after the batch.
    Appended {
        appended: u64,
        epoch: u64,
    },
    /// Reply to [`Request::Seal`]: the epoch after the operation and how
    /// many sealed batches still await compaction (0 right after a
    /// `compact: true` seal — the compaction-lag signal).
    Sealed {
        epoch: u64,
        sealed_segments: u32,
    },
    Stat(ContainerStat),
    Stats(StatsSnapshot),
    /// Full registry scrape (see [`Request::Metrics`]).
    Metrics(MetricsReport),
    /// Chrome `trace_event` JSON text drained from the server's span
    /// buffers (see [`Request::Trace`]).
    Trace(String),
    /// Health-probe reply (see [`Request::Ping`]).
    Pong(PingInfo),
    ShuttingDown,
    Error {
        code: ErrorCode,
        message: String,
    },
    /// The bounded request queue was full; retry later. Sent without
    /// queueing, so an overloaded server answers this in O(1).
    Overloaded,
}

/// Decode failure: the frame was structurally invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtoError {}

type ProtoResult<T> = Result<T, ProtoError>;

// ---------------------------------------------------------------- encoding

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new(op: u8) -> Self {
        Writer { buf: vec![op] }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn time(&mut self, t: Time) {
        self.u32(t.sec);
        self.u32(t.nsec);
    }
    fn str(&mut self, s: &str) {
        debug_assert!(s.len() <= u16::MAX as usize, "string field too long");
        self.u16(s.len() as u16);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }
    fn stat(&mut self, s: &ContainerStat) {
        self.u32(s.topics);
        self.u64(s.messages);
        self.u64(s.data_bytes);
        self.time(s.start);
        self.time(s.end);
    }
    fn msgs(&mut self, msgs: &[WireMessage]) {
        self.u32(msgs.len() as u32);
        for m in msgs {
            self.str(&m.topic);
            self.time(m.time);
            self.bytes(&m.data);
        }
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Histogram with sparse buckets: exact count/sum/min, then
    /// `(index, value)` pairs for the non-zero buckets only — a typical
    /// latency histogram occupies a dozen of the 64.
    fn hist(&mut self, h: &HistSummary) {
        self.u64(h.count);
        self.u64(h.sum);
        self.u64(h.min);
        let nonzero = h.buckets.iter().filter(|&&b| b != 0).count();
        self.u8(nonzero as u8);
        for (i, &b) in h.buckets.iter().enumerate() {
            if b != 0 {
                self.u8(i as u8);
                self.u64(b);
            }
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> ProtoResult<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(ProtoError(format!(
                "truncated frame: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> ProtoResult<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> ProtoResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> ProtoResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> ProtoResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn time(&mut self) -> ProtoResult<Time> {
        Ok(Time { sec: self.u32()?, nsec: self.u32()? })
    }
    fn str(&mut self) -> ProtoResult<String> {
        let len = self.u16()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| ProtoError("non-UTF8 string field".into()))
    }
    fn bytes(&mut self) -> ProtoResult<Vec<u8>> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }
    fn stat(&mut self) -> ProtoResult<ContainerStat> {
        Ok(ContainerStat {
            topics: self.u32()?,
            messages: self.u64()?,
            data_bytes: self.u64()?,
            start: self.time()?,
            end: self.time()?,
        })
    }
    fn msgs(&mut self) -> ProtoResult<Vec<WireMessage>> {
        let n = self.u32()? as usize;
        let mut messages = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            messages.push(WireMessage {
                topic: self.str()?,
                time: self.time()?,
                data: self.bytes()?,
            });
        }
        Ok(messages)
    }
    fn i64(&mut self) -> ProtoResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn hist(&mut self) -> ProtoResult<HistSummary> {
        let mut h = HistSummary {
            count: self.u64()?,
            sum: self.u64()?,
            min: self.u64()?,
            buckets: [0; BUCKETS],
        };
        let nonzero = self.u8()? as usize;
        for _ in 0..nonzero {
            let idx = self.u8()? as usize;
            if idx >= BUCKETS {
                return Err(ProtoError(format!("histogram bucket index {idx} out of range")));
            }
            h.buckets[idx] = self.u64()?;
        }
        Ok(h)
    }
    fn finish(self) -> ProtoResult<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError(format!("{} trailing bytes after payload", self.buf.len() - self.pos)))
        }
    }
}

impl Request {
    /// The container a data-plane request targets, if any.
    pub fn container(&self) -> Option<&str> {
        match self {
            Request::Open { container }
            | Request::Topics { container }
            | Request::Meta { container }
            | Request::Read { container, .. }
            | Request::ReadStream { container, .. }
            | Request::ReadStream2 { container, .. }
            | Request::Append { container, .. }
            | Request::Seal { container, .. }
            | Request::Query { container, .. }
            | Request::Stat { container } => Some(container),
            Request::Stats
            | Request::Metrics
            | Request::Trace
            | Request::Ping
            | Request::Shutdown => None,
        }
    }

    /// Human-readable op name, used as the metrics key.
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::Open { .. } => "open",
            Request::Topics { .. } => "topics",
            Request::Meta { .. } => "meta",
            Request::Read { .. } => "read",
            // Same op as ReadStream under a different chunk encoding, so
            // both share one metrics/SLO key.
            Request::ReadStream { .. } | Request::ReadStream2 { .. } => "read_stream",
            Request::Append { .. } => "append",
            Request::Seal { .. } => "seal",
            Request::Query { .. } => "query",
            Request::Stat { .. } => "stat",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Trace => "trace",
            Request::Ping => "ping",
            Request::Shutdown => "shutdown",
        }
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut w;
        match self {
            Request::Open { container } => {
                w = Writer::new(OP_OPEN);
                w.str(container);
            }
            Request::Topics { container } => {
                w = Writer::new(OP_TOPICS);
                w.str(container);
            }
            Request::Meta { container } => {
                w = Writer::new(OP_META);
                w.str(container);
            }
            Request::Read { container, topics, range }
            | Request::ReadStream { container, topics, range }
            | Request::ReadStream2 { container, topics, range } => {
                w = Writer::new(match self {
                    Request::Read { .. } => OP_READ,
                    Request::ReadStream { .. } => OP_READ_STREAM,
                    _ => OP_READ_STREAM2,
                });
                w.str(container);
                w.u16(topics.len() as u16);
                for t in topics {
                    w.str(t);
                }
                match range {
                    Some((start, end)) => {
                        w.u8(1);
                        w.time(*start);
                        w.time(*end);
                    }
                    None => w.u8(0),
                }
            }
            Request::Append { container, messages } => {
                w = Writer::new(OP_APPEND);
                w.str(container);
                w.msgs(messages);
            }
            Request::Seal { container, compact } => {
                w = Writer::new(OP_SEAL);
                w.str(container);
                w.u8(*compact as u8);
            }
            Request::Query { container, sql, partial } => {
                w = Writer::new(OP_QUERY);
                w.str(container);
                // u32 length: query text has no natural u16 bound.
                w.bytes(sql.as_bytes());
                w.u8(*partial as u8);
            }
            Request::Stat { container } => {
                w = Writer::new(OP_STAT);
                w.str(container);
            }
            Request::Stats => w = Writer::new(OP_STATS),
            Request::Metrics => w = Writer::new(OP_METRICS),
            Request::Trace => w = Writer::new(OP_TRACE),
            Request::Ping => w = Writer::new(OP_PING),
            Request::Shutdown => w = Writer::new(OP_SHUTDOWN),
        }
        w.buf
    }

    pub fn decode(payload: &[u8]) -> ProtoResult<Request> {
        let mut r = Reader::new(payload);
        let op = r.u8()?;
        let req = match op {
            OP_OPEN => Request::Open { container: r.str()? },
            OP_TOPICS => Request::Topics { container: r.str()? },
            OP_META => Request::Meta { container: r.str()? },
            OP_READ | OP_READ_STREAM | OP_READ_STREAM2 => {
                let container = r.str()?;
                let n = r.u16()? as usize;
                let mut topics = Vec::with_capacity(n);
                for _ in 0..n {
                    topics.push(r.str()?);
                }
                let range = match r.u8()? {
                    0 => None,
                    1 => Some((r.time()?, r.time()?)),
                    v => return Err(ProtoError(format!("bad range marker {v}"))),
                };
                match op {
                    OP_READ => Request::Read { container, topics, range },
                    OP_READ_STREAM => Request::ReadStream { container, topics, range },
                    _ => Request::ReadStream2 { container, topics, range },
                }
            }
            OP_APPEND => {
                let container = r.str()?;
                Request::Append { container, messages: r.msgs()? }
            }
            OP_SEAL => {
                let container = r.str()?;
                let compact = match r.u8()? {
                    0 => false,
                    1 => true,
                    v => return Err(ProtoError(format!("bad compact marker {v}"))),
                };
                Request::Seal { container, compact }
            }
            OP_QUERY => {
                let container = r.str()?;
                let sql = String::from_utf8(r.bytes()?)
                    .map_err(|_| ProtoError("query text is not UTF-8".into()))?;
                let partial = match r.u8()? {
                    0 => false,
                    1 => true,
                    v => return Err(ProtoError(format!("bad partial marker {v}"))),
                };
                Request::Query { container, sql, partial }
            }
            OP_STAT => Request::Stat { container: r.str()? },
            OP_STATS => Request::Stats,
            OP_METRICS => Request::Metrics,
            OP_TRACE => Request::Trace,
            OP_PING => Request::Ping,
            OP_SHUTDOWN => Request::Shutdown,
            other => return Err(ProtoError(format!("unknown request opcode {other:#04x}"))),
        };
        r.finish()?;
        Ok(req)
    }

    /// Encode with an optional trace-context prefix. With `ctx: None`
    /// the output is byte-identical to [`Request::encode`] — a client
    /// that isn't tracing is indistinguishable from one that predates
    /// tracing, which is what keeps old servers compatible.
    pub fn encode_traced(&self, ctx: Option<TraceContext>) -> Vec<u8> {
        let Some(c) = ctx else { return self.encode() };
        let inner = self.encode();
        let mut buf = Vec::with_capacity(TRACE_CTX_LEN + inner.len());
        buf.push(OP_TRACE_CTX);
        buf.extend_from_slice(&c.trace_id.to_le_bytes());
        buf.extend_from_slice(&c.parent_span.to_le_bytes());
        buf.push(c.sampled as u8);
        buf.extend_from_slice(&inner);
        buf
    }

    /// Decode a request payload, peeling the optional trace-context
    /// prefix. Plain payloads (old clients) decode to `(req, None)`.
    pub fn decode_traced(payload: &[u8]) -> ProtoResult<(Request, Option<TraceContext>)> {
        if payload.first() != Some(&OP_TRACE_CTX) {
            return Ok((Request::decode(payload)?, None));
        }
        if payload.len() < TRACE_CTX_LEN {
            return Err(ProtoError("truncated trace-context header".into()));
        }
        let trace_id = u64::from_le_bytes(payload[1..9].try_into().unwrap());
        let parent_span = u64::from_le_bytes(payload[9..17].try_into().unwrap());
        let flags = payload[17];
        if flags & !1 != 0 {
            return Err(ProtoError(format!("unknown trace-context flags {flags:#04x}")));
        }
        let ctx = TraceContext { trace_id, parent_span, sampled: flags & 1 != 0 };
        Ok((Request::decode(&payload[TRACE_CTX_LEN..])?, Some(ctx)))
    }

    /// Encode with both optional prefixes: the deadline header is the
    /// *outermost* layer, wrapping the (possibly trace-wrapped) payload.
    /// With both `None` the output is byte-identical to
    /// [`Request::encode`].
    pub fn encode_framed(&self, ctx: Option<TraceContext>, deadline_ns: Option<u64>) -> Vec<u8> {
        let inner = self.encode_traced(ctx);
        let Some(budget) = deadline_ns else { return inner };
        let mut buf = Vec::with_capacity(DEADLINE_LEN + inner.len());
        buf.push(OP_DEADLINE);
        buf.extend_from_slice(&budget.to_le_bytes());
        buf.extend_from_slice(&inner);
        buf
    }

    /// Decode a request payload, peeling the optional deadline prefix
    /// and then the optional trace-context prefix. Plain payloads (old
    /// clients) decode to `(req, None, None)`.
    #[allow(clippy::type_complexity)]
    pub fn decode_framed(
        payload: &[u8],
    ) -> ProtoResult<(Request, Option<TraceContext>, Option<u64>)> {
        if payload.first() != Some(&OP_DEADLINE) {
            let (req, ctx) = Request::decode_traced(payload)?;
            return Ok((req, ctx, None));
        }
        if payload.len() < DEADLINE_LEN {
            return Err(ProtoError("truncated deadline header".into()));
        }
        let budget_ns = u64::from_le_bytes(payload[1..9].try_into().unwrap());
        let (req, ctx) = Request::decode_traced(&payload[DEADLINE_LEN..])?;
        Ok((req, ctx, Some(budget_ns)))
    }
}

impl Response {
    pub fn encode(&self) -> Vec<u8> {
        let mut w;
        match self {
            Response::Opened { stat, cached } => {
                w = Writer::new(OP_OK_OPEN);
                w.stat(stat);
                w.u8(*cached as u8);
            }
            Response::Topics(topics) => {
                w = Writer::new(OP_OK_TOPICS);
                w.u16(topics.len() as u16);
                for t in topics {
                    w.str(t);
                }
            }
            Response::Meta(bytes) => {
                w = Writer::new(OP_OK_META);
                w.bytes(bytes);
            }
            Response::Read(messages) => {
                w = Writer::new(OP_OK_READ);
                w.msgs(messages);
            }
            Response::StreamChunk(messages) => {
                w = Writer::new(OP_OK_STREAM_CHUNK);
                w.msgs(messages);
            }
            Response::StreamChunkLz(frame) => {
                w = Writer::new(OP_OK_STREAM_CHUNK_LZ);
                w.bytes(frame);
            }
            Response::StreamEnd { messages } => {
                w = Writer::new(OP_OK_STREAM_END);
                w.u64(*messages);
            }
            Response::QuerySchema(cols) => {
                w = Writer::new(OP_OK_QUERY_SCHEMA);
                w.u16(cols.len() as u16);
                for c in cols {
                    w.str(c);
                }
            }
            Response::QueryChunk(blob) => {
                w = Writer::new(OP_OK_QUERY_CHUNK);
                w.bytes(blob);
            }
            Response::QueryEnd { rows, explain } => {
                w = Writer::new(OP_OK_QUERY_END);
                w.u64(*rows);
                w.bytes(explain.as_bytes());
            }
            Response::Appended { appended, epoch } => {
                w = Writer::new(OP_OK_APPENDED);
                w.u64(*appended);
                w.u64(*epoch);
            }
            Response::Sealed { epoch, sealed_segments } => {
                w = Writer::new(OP_OK_SEALED);
                w.u64(*epoch);
                w.u32(*sealed_segments);
            }
            Response::Stat(stat) => {
                w = Writer::new(OP_OK_STAT);
                w.stat(stat);
            }
            Response::Stats(s) => {
                w = Writer::new(OP_OK_STATS);
                w.u16(s.ops.len() as u16);
                for (name, op) in &s.ops {
                    w.str(name);
                    w.u64(op.count);
                    w.u64(op.wall_min_ns);
                    w.u64(op.wall_mean_ns);
                    w.u64(op.wall_p99_ns);
                    w.u64(op.virt_mean_ns);
                }
                w.u64(s.shed);
                w.u32(s.queue_depth);
                w.u32(s.queue_capacity);
                w.u64(s.queue_wait_mean_ns);
                w.u64(s.queue_wait_p99_ns);
                w.u64(s.cache_hits);
                w.u64(s.cache_misses);
                w.u64(s.cache_evictions);
                w.u32(s.cache_len);
                w.u32(s.cache_capacity);
            }
            Response::Metrics(m) => {
                w = Writer::new(OP_OK_METRICS);
                w.u32(m.version);
                w.u32(m.server_id);
                w.u64(m.uptime_ns);
                w.u16(m.counters.len() as u16);
                for (name, v) in &m.counters {
                    w.str(name);
                    w.u64(*v);
                }
                w.u16(m.gauges.len() as u16);
                for (name, v) in &m.gauges {
                    w.str(name);
                    w.i64(*v);
                }
                w.u16(m.hists.len() as u16);
                for (name, h) in &m.hists {
                    w.str(name);
                    w.hist(h);
                }
                w.u16(m.slow_ops.len() as u16);
                for s in &m.slow_ops {
                    w.u64(s.trace_id);
                    w.str(&s.op);
                    w.str(&s.container);
                    w.u64(s.wall_ns);
                    w.u64(s.queue_wait_ns);
                    w.u32(s.server_id);
                }
            }
            Response::Trace(json) => {
                w = Writer::new(OP_OK_TRACE);
                w.bytes(json.as_bytes());
            }
            Response::Pong(p) => {
                w = Writer::new(OP_OK_PONG);
                w.u32(p.server_id);
                w.u64(p.uptime_ns);
                w.u32(p.queue_depth);
            }
            Response::ShuttingDown => w = Writer::new(OP_OK_SHUTDOWN),
            Response::Error { code, message } => {
                w = Writer::new(OP_ERROR);
                w.u8(*code as u8);
                w.str(message);
            }
            Response::Overloaded => w = Writer::new(OP_OVERLOADED),
        }
        w.buf
    }

    pub fn decode(payload: &[u8]) -> ProtoResult<Response> {
        let mut r = Reader::new(payload);
        let op = r.u8()?;
        let resp = match op {
            OP_OK_OPEN => {
                let stat = r.stat()?;
                let cached = r.u8()? != 0;
                Response::Opened { stat, cached }
            }
            OP_OK_TOPICS => {
                let n = r.u16()? as usize;
                let mut topics = Vec::with_capacity(n);
                for _ in 0..n {
                    topics.push(r.str()?);
                }
                Response::Topics(topics)
            }
            OP_OK_META => Response::Meta(r.bytes()?),
            OP_OK_READ => Response::Read(r.msgs()?),
            OP_OK_STREAM_CHUNK => Response::StreamChunk(r.msgs()?),
            OP_OK_STREAM_CHUNK_LZ => Response::StreamChunkLz(r.bytes()?),
            OP_OK_STREAM_END => Response::StreamEnd { messages: r.u64()? },
            OP_OK_QUERY_SCHEMA => {
                let n = r.u16()? as usize;
                let mut cols = Vec::with_capacity(n);
                for _ in 0..n {
                    cols.push(r.str()?);
                }
                Response::QuerySchema(cols)
            }
            OP_OK_QUERY_CHUNK => Response::QueryChunk(r.bytes()?),
            OP_OK_QUERY_END => {
                let rows = r.u64()?;
                let explain = String::from_utf8(r.bytes()?)
                    .map_err(|_| ProtoError("explain text is not UTF-8".into()))?;
                Response::QueryEnd { rows, explain }
            }
            OP_OK_APPENDED => Response::Appended { appended: r.u64()?, epoch: r.u64()? },
            OP_OK_SEALED => Response::Sealed { epoch: r.u64()?, sealed_segments: r.u32()? },
            OP_OK_STAT => Response::Stat(r.stat()?),
            OP_OK_STATS => {
                let n = r.u16()? as usize;
                let mut ops = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = r.str()?;
                    let op = OpSummary {
                        count: r.u64()?,
                        wall_min_ns: r.u64()?,
                        wall_mean_ns: r.u64()?,
                        wall_p99_ns: r.u64()?,
                        virt_mean_ns: r.u64()?,
                    };
                    ops.push((name, op));
                }
                Response::Stats(StatsSnapshot {
                    ops,
                    shed: r.u64()?,
                    queue_depth: r.u32()?,
                    queue_capacity: r.u32()?,
                    queue_wait_mean_ns: r.u64()?,
                    queue_wait_p99_ns: r.u64()?,
                    cache_hits: r.u64()?,
                    cache_misses: r.u64()?,
                    cache_evictions: r.u64()?,
                    cache_len: r.u32()?,
                    cache_capacity: r.u32()?,
                })
            }
            OP_OK_METRICS => {
                let version = r.u32()?;
                let server_id = r.u32()?;
                let uptime_ns = r.u64()?;
                let nc = r.u16()? as usize;
                let mut counters = Vec::with_capacity(nc);
                for _ in 0..nc {
                    counters.push((r.str()?, r.u64()?));
                }
                let ng = r.u16()? as usize;
                let mut gauges = Vec::with_capacity(ng);
                for _ in 0..ng {
                    gauges.push((r.str()?, r.i64()?));
                }
                let nh = r.u16()? as usize;
                let mut hists = Vec::with_capacity(nh);
                for _ in 0..nh {
                    hists.push((r.str()?, r.hist()?));
                }
                let ns = r.u16()? as usize;
                let mut slow_ops = Vec::with_capacity(ns);
                for _ in 0..ns {
                    slow_ops.push(SlowOpEntry {
                        trace_id: r.u64()?,
                        op: r.str()?,
                        container: r.str()?,
                        wall_ns: r.u64()?,
                        queue_wait_ns: r.u64()?,
                        server_id: r.u32()?,
                    });
                }
                Response::Metrics(MetricsReport {
                    version,
                    server_id,
                    uptime_ns,
                    counters,
                    gauges,
                    hists,
                    slow_ops,
                })
            }
            OP_OK_TRACE => {
                let raw = r.bytes()?;
                Response::Trace(
                    String::from_utf8(raw)
                        .map_err(|_| ProtoError("non-UTF8 trace document".into()))?,
                )
            }
            OP_OK_PONG => Response::Pong(PingInfo {
                server_id: r.u32()?,
                uptime_ns: r.u64()?,
                queue_depth: r.u32()?,
            }),
            OP_OK_SHUTDOWN => Response::ShuttingDown,
            OP_ERROR => {
                let code = ErrorCode::from_u8(r.u8()?)
                    .ok_or_else(|| ProtoError("unknown error code".into()))?;
                Response::Error { code, message: r.str()? }
            }
            OP_OVERLOADED => Response::Overloaded,
            other => return Err(ProtoError(format!("unknown response opcode {other:#04x}"))),
        };
        r.finish()?;
        Ok(resp)
    }
}

/// Wrap a payload in a length-prefixed frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Parse a frame header, validating the length bound.
pub fn frame_len(header: [u8; FRAME_HEADER_LEN]) -> ProtoResult<usize> {
    let len = u32::from_le_bytes(header);
    if len > MAX_FRAME_LEN {
        return Err(ProtoError(format!("frame length {len} exceeds maximum {MAX_FRAME_LEN}")));
    }
    Ok(len as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    fn roundtrip_resp(resp: Response) {
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_req(Request::Open { container: "/c/hs0".into() });
        roundtrip_req(Request::Topics { container: "".into() });
        roundtrip_req(Request::Meta { container: "/c".into() });
        roundtrip_req(Request::Read {
            container: "/c/hs0".into(),
            topics: vec!["/camera/depth".into(), "/imu".into()],
            range: Some((Time::new(3, 14), Time::new(10, 0))),
        });
        roundtrip_req(Request::Read { container: "/c".into(), topics: vec![], range: None });
        roundtrip_req(Request::ReadStream {
            container: "/c/hs0".into(),
            topics: vec!["/imu".into()],
            range: Some((Time::new(1, 0), Time::new(2, 0))),
        });
        roundtrip_req(Request::ReadStream { container: "/c".into(), topics: vec![], range: None });
        roundtrip_req(Request::ReadStream2 {
            container: "/c/hs0".into(),
            topics: vec!["/imu".into(), "/cam".into()],
            range: Some((Time::new(1, 0), Time::new(2, 0))),
        });
        roundtrip_req(Request::ReadStream2 { container: "/c".into(), topics: vec![], range: None });
        roundtrip_req(Request::Append {
            container: "/live".into(),
            messages: vec![
                WireMessage { topic: "/imu".into(), time: Time::new(3, 14), data: vec![1, 2] },
                WireMessage { topic: "/cam".into(), time: Time::new(3, 15), data: vec![] },
            ],
        });
        roundtrip_req(Request::Append { container: "/live".into(), messages: vec![] });
        roundtrip_req(Request::Seal { container: "/live".into(), compact: true });
        roundtrip_req(Request::Seal { container: "/live".into(), compact: false });
        roundtrip_req(Request::Query {
            container: "/c/hs0".into(),
            sql: "SELECT count() FROM '/imu' WHERE time >= 1.0".into(),
            partial: true,
        });
        roundtrip_req(Request::Query { container: "/c".into(), sql: "".into(), partial: false });
        // Query text is u32-length-prefixed: no u16 ceiling on statements.
        roundtrip_req(Request::Query {
            container: "/c".into(),
            sql: format!("SELECT time FROM '/t' WHERE {}", "x.y > 1 AND ".repeat(10_000)),
            partial: false,
        });
        roundtrip_req(Request::Stat { container: "/c".into() });
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::Metrics);
        roundtrip_req(Request::Trace);
        roundtrip_req(Request::Ping);
        roundtrip_req(Request::Shutdown);
    }

    #[test]
    fn trace_context_prefix_roundtrips() {
        let req =
            Request::Read { container: "/c/hs0".into(), topics: vec!["/imu".into()], range: None };
        let ctx = TraceContext { trace_id: 0xDEAD_BEEF_0042, parent_span: 77, sampled: true };
        let traced = req.encode_traced(Some(ctx));
        assert_eq!(Request::decode_traced(&traced).unwrap(), (req.clone(), Some(ctx)));
        // Unsampled bit travels too.
        let off = TraceContext { sampled: false, ..ctx };
        let (r2, c2) = Request::decode_traced(&req.encode_traced(Some(off))).unwrap();
        assert_eq!((r2, c2), (req.clone(), Some(off)));
        // No context → byte-identical to the pre-trace encoding, and
        // decode_traced accepts it (old client → new server).
        assert_eq!(req.encode_traced(None), req.encode());
        assert_eq!(Request::decode_traced(&req.encode()).unwrap(), (req.clone(), None));
        // Plain decode rejects the prefixed form the way an old server
        // would reject any unknown opcode: an error, not a panic.
        assert!(Request::decode(&traced).is_err());
        // Malformed prefixes error cleanly.
        assert!(Request::decode_traced(&[0x0F, 1, 2]).is_err());
        let mut bad_flags = req.encode_traced(Some(ctx));
        bad_flags[17] = 0xFE;
        assert!(Request::decode_traced(&bad_flags).is_err());
    }

    #[test]
    fn deadline_prefix_roundtrips() {
        let req =
            Request::Read { container: "/c/hs0".into(), topics: vec!["/imu".into()], range: None };
        let ctx = TraceContext { trace_id: 7, parent_span: 8, sampled: true };
        // Deadline alone.
        let framed = req.encode_framed(None, Some(1_500_000));
        assert_eq!(Request::decode_framed(&framed).unwrap(), (req.clone(), None, Some(1_500_000)));
        // Deadline wrapping a trace context (deadline is outermost).
        let both = req.encode_framed(Some(ctx), Some(42));
        assert_eq!(both[0], 0x10);
        assert_eq!(both[DEADLINE_LEN], 0x0F);
        assert_eq!(Request::decode_framed(&both).unwrap(), (req.clone(), Some(ctx), Some(42)));
        // Trace context alone stays the pure trace encoding.
        assert_eq!(req.encode_framed(Some(ctx), None), req.encode_traced(Some(ctx)));
        // Neither prefix → byte-identical to the bare encoding, and
        // decode_framed accepts old-client payloads.
        assert_eq!(req.encode_framed(None, None), req.encode());
        assert_eq!(Request::decode_framed(&req.encode()).unwrap(), (req.clone(), None, None));
        // Truncated deadline header errors cleanly, as does a deadline
        // prefix wrapping garbage.
        assert!(Request::decode_framed(&[0x10, 1, 2]).is_err());
        assert!(Request::decode_framed(&[0x10, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF]).is_err());
        // Plain decode rejects the prefixed form (old server behaviour).
        assert!(Request::decode(&framed).is_err());
    }

    #[test]
    fn corr_prefix_roundtrips() {
        let inner = Request::Ping.encode();
        let framed = wrap_corr(0xDEAD_BEEF, &inner);
        assert_eq!(framed[0], OP_CORR);
        assert_eq!(framed.len(), CORR_LEN + inner.len());
        assert_eq!(peel_corr(&framed), (Some(0xDEAD_BEEF), &inner[..]));
        // Unprefixed payloads pass through untouched — plain peers.
        assert_eq!(peel_corr(&inner), (None, &inner[..]));
        // A response's opcode space (0x8x/0xEx) can never be mistaken
        // for the prefix, and a short 0x11 frame is not peeled.
        assert_eq!(peel_corr(&[OP_CORR, 1]), (None, &[OP_CORR, 1][..]));
        let resp = Response::Pong(PingInfo::default()).encode();
        assert_eq!(peel_corr(&resp).0, None);
        // Seq wraps with the u32 — stamping is cheap and unbounded.
        let w = wrap_corr(u32::MAX, &inner);
        assert_eq!(peel_corr(&w).0, Some(u32::MAX));
    }

    #[test]
    fn metrics_report_roundtrips() {
        let mut hist = HistSummary { count: 3, sum: 1_000_000, min: 120, ..Default::default() };
        hist.buckets[7] = 2;
        hist.buckets[19] = 1;
        let report = MetricsReport {
            version: METRICS_REPORT_VERSION,
            server_id: 2,
            uptime_ns: 5_000_000_000,
            counters: vec![("serve.shed".into(), 4), ("cache.hits".into(), 99)],
            gauges: vec![("serve.queue_depth".into(), -1), ("serve.inflight".into(), 12)],
            hists: vec![
                ("serve.op.read.wall_ns".into(), hist),
                ("empty".into(), HistSummary::default()),
            ],
            slow_ops: vec![SlowOpEntry {
                trace_id: 42,
                op: "read".into(),
                container: "/c/hs0".into(),
                wall_ns: 25_000_000,
                queue_wait_ns: 3_000,
                server_id: 2,
            }],
        };
        roundtrip_resp(Response::Metrics(report.clone()));
        assert_eq!(report.counter("cache.hits"), 99);
        assert_eq!(report.counter("missing"), 0);
        assert_eq!(report.gauge("serve.queue_depth"), Some(-1));
        assert_eq!(report.hist("serve.op.read.wall_ns").unwrap().count, 3);
        roundtrip_resp(Response::Metrics(MetricsReport::default()));
        // A sparse histogram with an out-of-range bucket index is rejected.
        let mut r = super::Reader::new(&[
            0, 0, 0, 0, 0, 0, 0, 0, // count
            0, 0, 0, 0, 0, 0, 0, 0, // sum
            0, 0, 0, 0, 0, 0, 0, 0, // min
            1, 64, 1, 0, 0, 0, 0, 0, 0, 0, // one bucket at index 64 (out of range)
        ]);
        assert!(r.hist().is_err());
    }

    #[test]
    fn response_roundtrips() {
        let stat = ContainerStat {
            topics: 7,
            messages: 12_345,
            data_bytes: 1 << 30,
            start: Time::new(1, 2),
            end: Time::new(100, 999_999_999),
        };
        roundtrip_resp(Response::Opened { stat: stat.clone(), cached: true });
        roundtrip_resp(Response::Topics(vec!["/imu".into(), "/tf".into()]));
        roundtrip_resp(Response::Meta(vec![1, 2, 3, 255]));
        roundtrip_resp(Response::Read(vec![
            WireMessage { topic: "/imu".into(), time: Time::new(5, 0), data: vec![0; 64] },
            WireMessage { topic: "/tf".into(), time: Time::new(5, 1), data: vec![] },
        ]));
        roundtrip_resp(Response::StreamChunk(vec![WireMessage {
            topic: "/imu".into(),
            time: Time::new(6, 7),
            data: vec![9; 16],
        }]));
        roundtrip_resp(Response::StreamChunk(vec![]));
        roundtrip_resp(Response::StreamEnd { messages: 42 });
        roundtrip_resp(Response::QuerySchema(vec!["time".into(), "__count".into()]));
        roundtrip_resp(Response::QuerySchema(vec![]));
        roundtrip_resp(Response::QueryChunk(vec![0, 1, 2, 254, 255]));
        roundtrip_resp(Response::QueryChunk(vec![]));
        roundtrip_resp(Response::QueryEnd { rows: 9_000, explain: "Scan topics=[/imu]".into() });
        roundtrip_resp(Response::QueryEnd { rows: 0, explain: "".into() });
        roundtrip_resp(Response::Error {
            code: ErrorCode::BadQuery,
            message: "SELECT\n^ expected an expression".into(),
        });
        roundtrip_resp(Response::Appended { appended: 17, epoch: 930 });
        roundtrip_resp(Response::Sealed { epoch: 931, sealed_segments: 3 });
        roundtrip_resp(Response::Stat(stat));
        roundtrip_resp(Response::Stats(StatsSnapshot {
            ops: vec![
                (
                    "open".into(),
                    OpSummary {
                        count: 3,
                        wall_min_ns: 10,
                        wall_mean_ns: 20,
                        wall_p99_ns: 30,
                        virt_mean_ns: 40,
                    },
                ),
                ("read".into(), OpSummary::default()),
            ],
            shed: 9,
            queue_depth: 2,
            queue_capacity: 64,
            queue_wait_mean_ns: 1_234,
            queue_wait_p99_ns: 8_191,
            cache_hits: 100,
            cache_misses: 4,
            cache_evictions: 1,
            cache_len: 3,
            cache_capacity: 4,
        }));
        roundtrip_resp(Response::Trace("{\"traceEvents\":[]}".into()));
        roundtrip_resp(Response::Pong(PingInfo {
            server_id: 3,
            uptime_ns: 987_654_321,
            queue_depth: 17,
        }));
        roundtrip_resp(Response::Pong(PingInfo::default()));
        roundtrip_resp(Response::ShuttingDown);
        roundtrip_resp(Response::Error { code: ErrorCode::UnknownTopic, message: "/nope".into() });
        roundtrip_resp(Response::Error {
            code: ErrorCode::ChecksumMismatch,
            message: "t/data".into(),
        });
        roundtrip_resp(Response::Overloaded);
    }

    #[test]
    fn compressed_chunk_roundtrips() {
        let mut ctx = IoCtx::new();
        // Compressible batch: repetitive payloads shrink on the wire.
        let msgs: Vec<WireMessage> = (0..64)
            .map(|i| WireMessage {
                topic: "/imu".into(),
                time: Time::new(100 + i, 0),
                data: vec![0u8; 256],
            })
            .collect();
        let resp = compress_chunk(&msgs, &mut ctx);
        let Response::StreamChunkLz(frame) = &resp else { panic!("expected lz chunk") };
        let mut plain = Writer { buf: Vec::new() };
        plain.msgs(&msgs);
        assert!(
            frame.len() < plain.buf.len() / 2,
            "mostly-zero batch must compress ≥2x: {} vs {}",
            frame.len(),
            plain.buf.len()
        );
        assert_eq!(decompress_chunk(frame).unwrap(), msgs);
        roundtrip_resp(resp);

        // Empty batch and incompressible batch still roundtrip (raw
        // fallback inside the frame).
        let empty = compress_chunk(&[], &mut ctx);
        let Response::StreamChunkLz(f) = &empty else { panic!() };
        assert_eq!(decompress_chunk(f).unwrap(), Vec::<WireMessage>::new());
        let noise: Vec<WireMessage> = (0..8)
            .map(|i| WireMessage {
                topic: format!("/t{i}"),
                time: Time::new(i, 7),
                data: (0..97u32)
                    .map(|j| (j.wrapping_mul(2654435761).wrapping_add(i)) as u8)
                    .collect(),
            })
            .collect();
        let Response::StreamChunkLz(f) = compress_chunk(&noise, &mut ctx) else { panic!() };
        assert_eq!(decompress_chunk(&f).unwrap(), noise);

        // A flipped bit fails the frame CRC: typed error, no garbage.
        let Response::StreamChunkLz(mut bad) = compress_chunk(&msgs, &mut ctx) else { panic!() };
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        assert!(decompress_chunk(&bad).is_err());
        // Trailing bytes after the frame are rejected too.
        let Response::StreamChunkLz(mut long) = compress_chunk(&msgs, &mut ctx) else { panic!() };
        long.push(0);
        assert!(decompress_chunk(&long).is_err());
    }

    #[test]
    fn transient_classification() {
        assert!(ErrorCode::Io.is_transient());
        assert!(ErrorCode::ChecksumMismatch.is_transient());
        for code in [
            ErrorCode::NotAContainer,
            ErrorCode::UnknownTopic,
            ErrorCode::Corrupt,
            ErrorCode::BadRequest,
            ErrorCode::ShuttingDown,
            ErrorCode::DeadlineExceeded,
            ErrorCode::BadQuery,
        ] {
            assert!(!code.is_transient(), "{code:?} must be permanent");
        }
    }

    #[test]
    fn request_container_accessor() {
        assert_eq!(Request::Open { container: "/c".into() }.container(), Some("/c"));
        assert_eq!(
            Request::Read { container: "/c".into(), topics: vec![], range: None }.container(),
            Some("/c")
        );
        assert_eq!(
            Request::Append { container: "/live".into(), messages: vec![] }.container(),
            Some("/live")
        );
        assert_eq!(
            Request::Seal { container: "/live".into(), compact: false }.container(),
            Some("/live")
        );
        assert_eq!(Request::Stats.container(), None);
        assert_eq!(Request::Ping.container(), None);
        assert_eq!(Request::Shutdown.container(), None);
    }

    #[test]
    fn malformed_frames_error_cleanly() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[0x42]).is_err(), "unknown opcode");
        // OPEN with a length prefix pointing past the end.
        assert!(Request::decode(&[OP_OPEN, 0xFF, 0xFF, b'x']).is_err());
        // Valid request with trailing garbage.
        let mut buf = Request::Stats.encode();
        buf.push(0);
        assert!(Request::decode(&buf).is_err());
        // Oversized frame header.
        assert!(frame_len((MAX_FRAME_LEN + 1).to_le_bytes()).is_err());
        assert_eq!(frame_len(17u32.to_le_bytes()).unwrap(), 17);
    }
}
