//! [`ServeClient`]: typed request/response wrapper over any
//! [`Connection`]. One outstanding request at a time per client (the
//! protocol is strictly request/response); open more connections for
//! parallelism.
//!
//! [`RetryClient`] wraps the same API with fault tolerance: per-request
//! timeouts, automatic reconnect when the stream breaks or
//! desynchronizes, and capped exponential backoff with deterministic
//! jitter for transient errors. Permanent errors (unknown topic, not a
//! container, structural corruption, bad request) surface immediately —
//! retrying them would only hide a bug.

use std::time::{Duration, Instant};

use ros_msgs::Time;

use crate::proto::{
    ContainerStat, ErrorCode, MetricsReport, PingInfo, ProtoError, Request, Response,
    StatsSnapshot, WireMessage,
};
use crate::transport::{Connection, Transport};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport broke (peer gone, socket error).
    Io(std::io::Error),
    /// The peer sent bytes that do not decode, or a response of the
    /// wrong kind for the request.
    Proto(ProtoError),
    /// The server answered with a protocol-level error.
    Server { code: ErrorCode, message: String },
    /// The server shed the request under load; retrying later is safe
    /// (no side effects happened).
    Overloaded,
    /// The caller's total wall-clock deadline expired before the request
    /// succeeded. Terminal: the budget is spent, so no retry layer
    /// (including failover) should try again on the same budget.
    DeadlineExceeded {
        /// The configured total budget.
        deadline: Duration,
        /// Wall-clock elapsed when the client gave up.
        elapsed: Duration,
        /// Rendering of the last underlying failure, if any attempt ran.
        last_error: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Proto(e) => write!(f, "{e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::Overloaded => write!(f, "server overloaded"),
            ClientError::DeadlineExceeded { deadline, elapsed, last_error } => write!(
                f,
                "deadline {deadline:?} exceeded after {elapsed:?} (last error: {last_error})"
            ),
        }
    }
}

impl ClientError {
    /// Whether retrying the request may succeed without operator
    /// intervention. Transport failures and timeouts may heal on a fresh
    /// connection; `Overloaded` explicitly invites a retry; server errors
    /// defer to [`ErrorCode::is_transient`]. Protocol decode failures are
    /// treated as transient because their dominant cause is a
    /// desynchronized stream (e.g. a late response landing after a
    /// timeout), which reconnecting fixes.
    pub fn is_transient(&self) -> bool {
        match self {
            ClientError::Io(_) | ClientError::Proto(_) | ClientError::Overloaded => true,
            ClientError::Server { code, .. } => code.is_transient(),
            // The wall-clock budget is spent; retrying cannot un-spend it.
            ClientError::DeadlineExceeded { .. } => false,
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

pub type ClientResult<T> = Result<T, ClientError>;

/// A connected bora-serve client.
pub struct ServeClient<C: Connection> {
    conn: C,
    /// Budget stamped on each outgoing request ([`Request::encode_framed`]
    /// deadline prefix); `None` sends deadline-free requests.
    deadline: Option<Duration>,
    /// Correlation sequence of the most recent request on this
    /// connection. Every request is stamped (`proto::wrap_corr`) and the
    /// server echoes the seq on each frame of its answer, so a stale
    /// frame — a duplicate or reordered leftover from an earlier
    /// request — is discarded instead of being mistaken for the current
    /// response (or worse, an append ack).
    seq: u32,
}

impl<C: Connection> ServeClient<C> {
    pub fn new(conn: C) -> Self {
        ServeClient { conn, deadline: None, seq: 0 }
    }

    /// Connect through a transport.
    pub fn connect<T: Transport<Conn = C>>(transport: &T) -> ClientResult<Self> {
        Ok(ServeClient::new(transport.connect()?))
    }

    /// Set the deadline budget stamped on every subsequent request. The
    /// server sheds a request whose budget was already spent in its
    /// queue, answering [`ErrorCode::DeadlineExceeded`] instead of doing
    /// dead work. `None` (the default) sends no deadline header.
    pub fn set_deadline(&mut self, deadline: Option<Duration>) {
        self.deadline = deadline;
    }

    /// Bound how long transport calls may block
    /// ([`Connection::set_timeout`]).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.conn.set_timeout(timeout)
    }

    fn deadline_ns(&self) -> Option<u64> {
        self.deadline.map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
    }

    /// Advance and return the correlation seq for one outgoing request.
    fn next_seq(&mut self) -> u32 {
        self.seq = self.seq.wrapping_add(1);
        self.seq
    }

    /// Receive the next frame belonging to request `seq`, discarding
    /// stale frames (leftovers of an earlier request that the network
    /// duplicated or reordered). Uncorrelated frames are passed through:
    /// a plain peer never stales by construction (strict one-in-one-out).
    fn recv_matching(&mut self, seq: u32) -> ClientResult<Vec<u8>> {
        loop {
            let payload = self.conn.recv_frame()?;
            match crate::proto::peel_corr(&payload) {
                (Some(got), inner) if got == seq => return Ok(inner.to_vec()),
                (Some(_), _) => continue,
                (None, _) => return Ok(payload),
            }
        }
    }

    fn roundtrip(&mut self, req: &Request) -> ClientResult<Response> {
        // With tracing on, requests carry the caller's span context so
        // server-side spans parent under it; with tracing off,
        // `current_context()` is `None` and the bytes are exactly the
        // untraced encoding. Likewise the deadline prefix only appears
        // when a budget is set.
        let seq = self.next_seq();
        self.conn.send_frame(&crate::proto::wrap_corr(
            seq,
            &req.encode_framed(bora_obs::current_context(), self.deadline_ns()),
        ))?;
        let payload = self.recv_matching(seq)?;
        match Response::decode(&payload).map_err(ClientError::Proto)? {
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            Response::Overloaded => Err(ClientError::Overloaded),
            resp => Ok(resp),
        }
    }

    /// Pull a container into the server's handle cache; `cached` in the
    /// result tells whether it was already there.
    pub fn open(&mut self, container: &str) -> ClientResult<(ContainerStat, bool)> {
        match self.roundtrip(&Request::Open { container: container.into() })? {
            Response::Opened { stat, cached } => Ok((stat, cached)),
            other => Err(unexpected("OPEN", &other)),
        }
    }

    pub fn topics(&mut self, container: &str) -> ClientResult<Vec<String>> {
        match self.roundtrip(&Request::Topics { container: container.into() })? {
            Response::Topics(t) => Ok(t),
            other => Err(unexpected("TOPICS", &other)),
        }
    }

    /// The container's raw metadata; decode with
    /// [`bora::ContainerMeta::decode`].
    pub fn meta(&mut self, container: &str) -> ClientResult<Vec<u8>> {
        match self.roundtrip(&Request::Meta { container: container.into() })? {
            Response::Meta(bytes) => Ok(bytes),
            other => Err(unexpected("META", &other)),
        }
    }

    pub fn read(&mut self, container: &str, topics: &[&str]) -> ClientResult<Vec<WireMessage>> {
        self.read_inner(container, topics, None)
    }

    pub fn read_time(
        &mut self,
        container: &str,
        topics: &[&str],
        start: Time,
        end: Time,
    ) -> ClientResult<Vec<WireMessage>> {
        self.read_inner(container, topics, Some((start, end)))
    }

    fn read_inner(
        &mut self,
        container: &str,
        topics: &[&str],
        range: Option<(Time, Time)>,
    ) -> ClientResult<Vec<WireMessage>> {
        let req = Request::Read {
            container: container.into(),
            topics: topics.iter().map(|t| (*t).to_owned()).collect(),
            range,
        };
        match self.roundtrip(&req)? {
            Response::Read(messages) => Ok(messages),
            other => Err(unexpected("READ", &other)),
        }
    }

    /// Issue a `READ_STREAM` and iterate messages as chunk frames arrive,
    /// instead of waiting for the full result set like [`ServeClient::read`].
    ///
    /// The iterator borrows the client exclusively (the protocol allows
    /// one request in flight per connection). Dropping it mid-stream
    /// drains the remaining frames so the connection stays
    /// request/response aligned — and tells the server to stop producing:
    /// transports propagate the hang-up and the worker aborts the merge.
    pub fn read_stream(
        &mut self,
        container: &str,
        topics: &[&str],
    ) -> ClientResult<ReadStream<'_, C>> {
        self.read_stream_inner(container, topics, None)
    }

    /// Time-ranged variant of [`ServeClient::read_stream`].
    pub fn read_stream_time(
        &mut self,
        container: &str,
        topics: &[&str],
        start: Time,
        end: Time,
    ) -> ClientResult<ReadStream<'_, C>> {
        self.read_stream_inner(container, topics, Some((start, end)))
    }

    fn read_stream_inner(
        &mut self,
        container: &str,
        topics: &[&str],
        range: Option<(Time, Time)>,
    ) -> ClientResult<ReadStream<'_, C>> {
        let topics: Vec<String> = topics.iter().map(|t| (*t).to_owned()).collect();
        // Lead with READ_STREAM2 so the server may ship LZ-compressed
        // chunks. A server that predates the opcode answers BadRequest,
        // and `fetch` transparently reissues the plain READ_STREAM — one
        // wasted round trip per stream against an old peer, compressed
        // chunks everywhere else.
        let req =
            Request::ReadStream2 { container: container.into(), topics: topics.clone(), range };
        let fallback = Request::ReadStream { container: container.into(), topics, range };
        self.send_stream_req(&req)?;
        Ok(ReadStream {
            client: self,
            buffer: std::collections::VecDeque::new(),
            done: false,
            received: 0,
            fallback: Some(fallback),
        })
    }

    /// Send one streaming request (no response is read here — the
    /// [`ReadStream`] pulls the answer frames).
    fn send_stream_req(&mut self, req: &Request) -> ClientResult<()> {
        let seq = self.next_seq();
        self.conn.send_frame(&crate::proto::wrap_corr(
            seq,
            &req.encode_framed(bora_obs::current_context(), self.deadline_ns()),
        ))?;
        Ok(())
    }

    /// Execute a `bora-query` statement server-side and collect the
    /// streamed answer. Rows arrive in chunk frames as the server's
    /// cursor yields, so first results do not wait for the full scan;
    /// `EXPLAIN` / `EXPLAIN ANALYZE` statements return the rendered
    /// plan in [`QueryReply::explain`]. A malformed statement fails
    /// with [`ErrorCode::BadQuery`] carrying a caret-annotated message,
    /// and the connection stays usable.
    pub fn query(&mut self, container: &str, sql: &str) -> ClientResult<QueryReply> {
        self.query_inner(container, sql, false)
    }

    /// Distributed fragment mode: ask for flattened partial-aggregate
    /// rows (`bora_query::partial_columns` shape) instead of final
    /// values, for merging router-side with `bora_query::merge_partials`.
    /// Fails with [`ErrorCode::BadQuery`] for non-aggregate statements.
    pub fn query_partial(&mut self, container: &str, sql: &str) -> ClientResult<QueryReply> {
        self.query_inner(container, sql, true)
    }

    fn query_inner(
        &mut self,
        container: &str,
        sql: &str,
        partial: bool,
    ) -> ClientResult<QueryReply> {
        let req = Request::Query { container: container.into(), sql: sql.into(), partial };
        self.send_stream_req(&req)?;
        let mut reply = QueryReply::default();
        loop {
            let payload = self.recv_matching(self.seq)?;
            reply.wire_bytes += payload.len() as u64;
            match Response::decode(&payload).map_err(ClientError::Proto)? {
                Response::QuerySchema(cols) => reply.columns = cols,
                Response::QueryChunk(blob) => {
                    let rows = bora_query::decode_rows(&blob)
                        .map_err(|e| ClientError::Proto(ProtoError(e.to_string())))?;
                    reply.rows.extend(rows);
                }
                Response::QueryEnd { rows, explain } => {
                    reply.rows_total = rows;
                    reply.explain = explain;
                    return Ok(reply);
                }
                Response::Error { code, message } => {
                    return Err(ClientError::Server { code, message })
                }
                Response::Overloaded => return Err(ClientError::Overloaded),
                other => return Err(unexpected("QUERY", &other)),
            }
        }
    }

    /// Append a batch of live messages to an ingest root. The ack means
    /// every message in the batch is durable (WAL-committed) on the
    /// server; returns `(appended, epoch)`. Not idempotent — a retry
    /// after an ambiguous failure may duplicate the batch, which is why
    /// [`RetryClient`] does not wrap it.
    pub fn append(
        &mut self,
        container: &str,
        messages: Vec<WireMessage>,
    ) -> ClientResult<(u64, u64)> {
        match self.roundtrip(&Request::Append { container: container.into(), messages })? {
            Response::Appended { appended, epoch } => Ok((appended, epoch)),
            other => Err(unexpected("APPEND", &other)),
        }
    }

    /// Seal the ingest root's memtable (and compact if asked); returns
    /// `(epoch, sealed_segments_pending)`.
    pub fn seal(&mut self, container: &str, compact: bool) -> ClientResult<(u64, u32)> {
        match self.roundtrip(&Request::Seal { container: container.into(), compact })? {
            Response::Sealed { epoch, sealed_segments } => Ok((epoch, sealed_segments)),
            other => Err(unexpected("SEAL", &other)),
        }
    }

    pub fn stat(&mut self, container: &str) -> ClientResult<ContainerStat> {
        match self.roundtrip(&Request::Stat { container: container.into() })? {
            Response::Stat(s) => Ok(s),
            other => Err(unexpected("STAT", &other)),
        }
    }

    pub fn stats(&mut self) -> ClientResult<StatsSnapshot> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected("STATS", &other)),
        }
    }

    /// Health probe: server id, uptime, live queue depth. Control-plane,
    /// so it answers even when the data queue is saturated.
    pub fn ping(&mut self) -> ClientResult<PingInfo> {
        match self.roundtrip(&Request::Ping)? {
            Response::Pong(p) => Ok(p),
            other => Err(unexpected("PING", &other)),
        }
    }

    /// Full metrics scrape: the node's registry (counters, gauges,
    /// bucketed histograms) plus its slow-op tail. Control-plane, so a
    /// saturated node still answers.
    pub fn metrics(&mut self) -> ClientResult<MetricsReport> {
        match self.roundtrip(&Request::Metrics)? {
            Response::Metrics(r) => Ok(r),
            other => Err(unexpected("METRICS", &other)),
        }
    }

    /// Drain the server's span buffers as a Chrome `trace_event` JSON
    /// document (empty unless the server runs with `BORA_TRACE=1`).
    pub fn trace(&mut self) -> ClientResult<String> {
        match self.roundtrip(&Request::Trace)? {
            Response::Trace(json) => Ok(json),
            other => Err(unexpected("TRACE", &other)),
        }
    }

    /// Ask the server to shut down. The connection is unusable afterwards.
    pub fn shutdown(&mut self) -> ClientResult<()> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("SHUTDOWN", &other)),
        }
    }
}

fn unexpected(op: &str, resp: &Response) -> ClientError {
    ClientError::Proto(ProtoError(format!("unexpected response to {op}: {resp:?}")))
}

/// Collected answer to one `QUERY`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryReply {
    /// Result column names (partial mode has its own `__`-prefixed shape).
    pub columns: Vec<String>,
    /// Decoded result rows, in server order.
    pub rows: Vec<bora_query::Row>,
    /// Rows the server's cursor produced. Equals `rows.len()` except for
    /// plain `EXPLAIN`, which executes nothing and reports 0.
    pub rows_total: u64,
    /// Rendered plan for `EXPLAIN` / `EXPLAIN ANALYZE`, empty otherwise.
    pub explain: String,
    /// Total response payload bytes this query's frames carried — the
    /// measure the distributed-aggregation experiment compares against a
    /// row-shipping plan.
    pub wire_bytes: u64,
}

// ----------------------------------------------------------------- stream

/// An in-flight `READ_STREAM`: yields messages as the server's merge
/// produces them. Created by [`ServeClient::read_stream`].
///
/// The first error is terminal — after yielding `Err` the iterator is
/// exhausted. On drop, any frames still owed by the server are drained
/// (and discarded) so the next request on this connection does not read a
/// stale stream frame as its answer.
pub struct ReadStream<'a, C: Connection> {
    client: &'a mut ServeClient<C>,
    buffer: std::collections::VecDeque<WireMessage>,
    done: bool,
    received: u64,
    /// Plain `READ_STREAM` to reissue if the server rejects the leading
    /// `READ_STREAM2` as an unknown opcode (old peer). Cleared on the
    /// first successful frame so a genuine mid-stream `BadRequest` is
    /// surfaced, not swallowed by a pointless retry.
    fallback: Option<Request>,
}

impl<C: Connection> ReadStream<'_, C> {
    /// Messages yielded so far.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Pull the next frame off the connection into `buffer`; flips `done`
    /// on any terminal frame (`StreamEnd`, error, overload) or transport
    /// failure (the connection is desynchronized then — nothing left to
    /// drain).
    fn fetch(&mut self) -> ClientResult<()> {
        // Every chunk of this stream echoes the request's seq; stale
        // frames from earlier requests are discarded inside.
        let payload = match self.client.recv_matching(self.client.seq) {
            Ok(p) => p,
            Err(e) => {
                self.done = true;
                return Err(e);
            }
        };
        match Response::decode(&payload) {
            Ok(Response::StreamChunk(msgs)) => {
                self.fallback = None;
                self.buffer.extend(msgs);
                Ok(())
            }
            Ok(Response::StreamChunkLz(frame)) => {
                self.fallback = None;
                match crate::proto::decompress_chunk(&frame) {
                    Ok(msgs) => {
                        self.buffer.extend(msgs);
                        Ok(())
                    }
                    Err(e) => {
                        self.done = true;
                        Err(ClientError::Proto(e))
                    }
                }
            }
            Ok(Response::StreamEnd { .. }) => {
                self.done = true;
                Ok(())
            }
            Ok(Response::Error { code, message }) => {
                if code == ErrorCode::BadRequest {
                    if let Some(req) = self.fallback.take() {
                        // Old server rejecting READ_STREAM2: downgrade to
                        // the plain stream and keep iterating.
                        return match self.client.send_stream_req(&req) {
                            Ok(()) => Ok(()),
                            Err(e) => {
                                self.done = true;
                                Err(e)
                            }
                        };
                    }
                }
                self.done = true;
                Err(ClientError::Server { code, message })
            }
            Ok(Response::Overloaded) => {
                self.done = true;
                Err(ClientError::Overloaded)
            }
            Ok(other) => {
                self.done = true;
                Err(unexpected("READ_STREAM", &other))
            }
            Err(e) => {
                self.done = true;
                Err(ClientError::Proto(e))
            }
        }
    }
}

impl<C: Connection> Iterator for ReadStream<'_, C> {
    type Item = ClientResult<WireMessage>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(m) = self.buffer.pop_front() {
                self.received += 1;
                return Some(Ok(m));
            }
            if self.done {
                return None;
            }
            if let Err(e) = self.fetch() {
                return Some(Err(e));
            }
        }
    }
}

impl<C: Connection> Drop for ReadStream<'_, C> {
    fn drop(&mut self) {
        // Abandoned mid-stream: swallow the remaining frames. Bounded by
        // what the server still produces — which is little, because the
        // reply window means the producer stalls as soon as the client
        // stops consuming, and aborts once the connection drops.
        while !self.done {
            if self.fetch().is_err() {
                return;
            }
        }
    }
}

// ----------------------------------------------------------------- ingest

/// Batch-size thresholds for [`IngestClient`]. A flush fires when either
/// bound is reached; `flush()`/`seal()` force one.
#[derive(Debug, Clone, Copy)]
pub struct IngestBatching {
    pub max_msgs: usize,
    pub max_bytes: usize,
}

impl Default for IngestBatching {
    fn default() -> Self {
        IngestBatching { max_msgs: 64, max_bytes: 256 * 1024 }
    }
}

/// A buffering writer over one ingest root: `write` stages messages
/// locally and ships them as `APPEND` batches when a threshold trips, so
/// a high-rate robot pays one round-trip (and one server-side fsync) per
/// batch instead of per message.
///
/// Messages are only durable after the flush that carries them returns —
/// an unflushed buffer dies with the client, which is the same contract a
/// local `IngestStore` gives un-synced group-commit buffers. Call
/// [`IngestClient::flush`] (or [`IngestClient::seal`], which flushes
/// first) at recording boundaries.
pub struct IngestClient<C: Connection> {
    client: ServeClient<C>,
    container: String,
    batching: IngestBatching,
    buf: Vec<WireMessage>,
    buf_bytes: usize,
    appended: u64,
    last_epoch: u64,
}

impl<C: Connection> IngestClient<C> {
    pub fn new(client: ServeClient<C>, container: &str, batching: IngestBatching) -> Self {
        IngestClient {
            client,
            container: container.to_owned(),
            batching,
            buf: Vec::new(),
            buf_bytes: 0,
            appended: 0,
            last_epoch: 0,
        }
    }

    /// Stage one message; ships the buffer if a batching bound trips.
    pub fn write(&mut self, topic: &str, time: Time, data: &[u8]) -> ClientResult<()> {
        self.buf_bytes += data.len();
        self.buf.push(WireMessage { topic: topic.to_owned(), time, data: data.to_vec() });
        if self.buf.len() >= self.batching.max_msgs.max(1)
            || self.buf_bytes >= self.batching.max_bytes
        {
            self.flush()?;
        }
        Ok(())
    }

    /// Ship everything staged; no-op on an empty buffer. Returns the
    /// server's epoch after the batch (or the last known one).
    pub fn flush(&mut self) -> ClientResult<u64> {
        if !self.buf.is_empty() {
            self.buf_bytes = 0;
            let batch = std::mem::take(&mut self.buf);
            let n = batch.len() as u64;
            let (appended, epoch) = self.client.append(&self.container, batch)?;
            debug_assert_eq!(appended, n);
            self.appended += appended;
            self.last_epoch = epoch;
        }
        Ok(self.last_epoch)
    }

    /// Flush, then seal the root's memtable server-side (compacting into
    /// the next container generation if `compact`).
    pub fn seal(&mut self, compact: bool) -> ClientResult<(u64, u32)> {
        self.flush()?;
        let out = self.client.seal(&self.container, compact)?;
        self.last_epoch = out.0;
        Ok(out)
    }

    /// Messages acked durable so far (staged-but-unflushed not included).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Messages staged locally, awaiting the next flush.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Flush any residue and hand the underlying client back.
    pub fn finish(mut self) -> ClientResult<ServeClient<C>> {
        self.flush()?;
        Ok(self.client)
    }
}

// ------------------------------------------------------------------ retry

/// Backoff and timeout tuning for [`RetryClient`].
///
/// Retry `k` (0-based) sleeps `min(base_delay_ms << k, max_delay_ms)`
/// milliseconds, reduced by up to `jitter` of itself — i.e. uniform in
/// `[delay·(1-jitter), delay]`. Jitter is drawn from a splitmix64 stream
/// seeded with `seed`, so a given policy produces one fixed, replayable
/// schedule: tests assert on it, and two clients with different seeds
/// never thundering-herd in lockstep.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, first try included; 1 disables retries.
    pub max_attempts: u32,
    /// Backoff before the first retry, in milliseconds.
    pub base_delay_ms: u64,
    /// Cap on the un-jittered backoff.
    pub max_delay_ms: u64,
    /// Fraction of each delay randomized away, in `[0, 1]`.
    pub jitter: f64,
    /// Seed of the deterministic jitter stream.
    pub seed: u64,
    /// Per-attempt timeout installed on every connection
    /// ([`Connection::set_timeout`]); `None` blocks forever.
    pub timeout: Option<Duration>,
    /// Total wall-clock budget for one logical request, *all* attempts
    /// and backoff sleeps included. When set, each attempt's transport
    /// timeout is clamped to the remaining budget, the remaining budget
    /// is propagated on the wire (the server sheds queue-expired work),
    /// and the client fails with [`ClientError::DeadlineExceeded`]
    /// rather than start an attempt or sleep past the deadline. `None`
    /// (the default) keeps the historical per-attempt-only bound.
    pub deadline: Option<Duration>,
    /// Token-bucket retry budget; `None` disables it, restoring pure
    /// attempt-capped retries. See [`RetryBudgetConfig`].
    pub retry_budget: Option<RetryBudgetConfig>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay_ms: 10,
            max_delay_ms: 2_000,
            jitter: 0.5,
            seed: 0x5EED_B07A,
            timeout: Some(Duration::from_secs(30)),
            deadline: None,
            retry_budget: Some(RetryBudgetConfig::default()),
        }
    }
}

/// Tuning for [`RetryBudget`].
///
/// The bucket starts full at `capacity` tokens; every retry spends one
/// token, every *success* deposits `deposit_per_success` (capped at
/// `capacity`). At the defaults the steady-state retry rate is bounded
/// at 10% of the success rate (one banked retry per ten successes) with
/// bursts of at most `capacity` — so a dying backend costs a bounded
/// number of extra requests instead of `max_attempts ×` amplification
/// from every caller at once.
#[derive(Debug, Clone, Copy)]
pub struct RetryBudgetConfig {
    /// Maximum banked tokens — the largest retry burst allowed.
    pub capacity: f64,
    /// Tokens earned back per successful request.
    pub deposit_per_success: f64,
}

impl Default for RetryBudgetConfig {
    fn default() -> Self {
        RetryBudgetConfig { capacity: 10.0, deposit_per_success: 0.1 }
    }
}

/// A token-bucket retry budget: retries spend, successes earn. Shared
/// across every retry site of a client so failover cannot amplify into
/// a retry storm — once the bucket is empty, failures surface
/// immediately until real successes refill it.
#[derive(Debug)]
pub struct RetryBudget {
    cfg: RetryBudgetConfig,
    tokens: f64,
    denied: u64,
}

impl RetryBudget {
    /// A full bucket.
    pub fn new(cfg: RetryBudgetConfig) -> Self {
        RetryBudget { tokens: cfg.capacity, cfg, denied: 0 }
    }

    /// Spend one token for a retry; `false` (and a denial recorded) when
    /// the bucket cannot cover it.
    pub fn try_spend(&mut self) -> bool {
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            self.denied += 1;
            false
        }
    }

    /// Record a success, earning back a fraction of a token.
    pub fn on_success(&mut self) {
        self.tokens = (self.tokens + self.cfg.deposit_per_success).min(self.cfg.capacity);
    }

    /// Tokens currently banked.
    pub fn tokens(&self) -> f64 {
        self.tokens
    }

    /// Retries denied because the bucket was empty.
    pub fn denied(&self) -> u64 {
        self.denied
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// Un-jittered backoff before retry `k` (0-based): capped exponential.
    pub fn raw_delay_ms(&self, retry: u32) -> u64 {
        let factor = if retry >= 63 { u64::MAX } else { 1u64 << retry };
        self.base_delay_ms.saturating_mul(factor).min(self.max_delay_ms)
    }

    fn jittered(&self, retry: u32, rng: &mut u64) -> u64 {
        let raw = self.raw_delay_ms(retry);
        // 53 uniform bits → u in [0, 1).
        let u = (splitmix64(rng) >> 11) as f64 / (1u64 << 53) as f64;
        raw - (raw as f64 * self.jitter.clamp(0.0, 1.0) * u) as u64
    }

    /// The full jittered schedule this policy will follow (one delay per
    /// retry, `max_attempts - 1` entries). Deterministic in `seed`.
    pub fn schedule(&self) -> Vec<u64> {
        let mut rng = self.seed;
        (0..self.max_attempts.saturating_sub(1)).map(|k| self.jittered(k, &mut rng)).collect()
    }
}

/// A [`ServeClient`] that owns its transport and survives faults.
///
/// On a transient error the request is retried on the policy's backoff
/// schedule; if the failure broke or desynchronized the stream (I/O
/// error, timeout, undecodable response) the connection is dropped and
/// re-established first. Requests are idempotent reads, so a retry after
/// an ambiguous failure never duplicates side effects. Each retry
/// increments the process-wide `serve.retries` counter.
pub struct RetryClient<T: Transport> {
    transport: T,
    policy: RetryPolicy,
    client: Option<ServeClient<T::Conn>>,
    /// Timeout currently installed on the live connection, so deadline
    /// clamping only re-installs when the bound actually changed.
    installed_timeout: Option<Duration>,
    budget: Option<RetryBudget>,
    rng: u64,
    next_retry: u32,
    retries: u64,
}

impl<T: Transport> RetryClient<T> {
    /// Wrap `transport`; the first request connects lazily.
    pub fn new(transport: T, policy: RetryPolicy) -> Self {
        let rng = policy.seed;
        let budget = policy.retry_budget.map(RetryBudget::new);
        RetryClient {
            transport,
            policy,
            client: None,
            installed_timeout: None,
            budget,
            rng,
            next_retry: 0,
            retries: 0,
        }
    }

    /// Retries performed over this client's lifetime.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// The retry budget, if one is configured.
    pub fn retry_budget(&self) -> Option<&RetryBudget> {
        self.budget.as_ref()
    }

    fn client(&mut self, timeout: Option<Duration>) -> ClientResult<&mut ServeClient<T::Conn>> {
        if let Some(client) = &mut self.client {
            if timeout != self.installed_timeout {
                // A draining deadline shrinks the per-attempt bound between
                // attempts on the same connection.
                client.set_timeout(timeout)?;
                self.installed_timeout = timeout;
            }
        } else {
            let mut conn = self.transport.connect()?;
            if timeout.is_some() {
                conn.set_timeout(timeout)?;
            }
            self.client = Some(ServeClient::new(conn));
            self.installed_timeout = timeout;
        }
        Ok(self.client.as_mut().expect("just connected"))
    }

    fn run<R>(
        &mut self,
        mut op: impl FnMut(&mut ServeClient<T::Conn>) -> ClientResult<R>,
    ) -> ClientResult<R> {
        let started = Instant::now();
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            // Per-attempt bound: the policy timeout, clamped to whatever
            // is left of the total deadline. The same bound travels on
            // the wire so the server can shed queue-expired work.
            let bound = match self.policy.deadline {
                None => self.policy.timeout,
                Some(d) => {
                    let elapsed = started.elapsed();
                    if elapsed >= d {
                        return Err(ClientError::DeadlineExceeded {
                            deadline: d,
                            elapsed,
                            last_error: "deadline expired before attempt".into(),
                        });
                    }
                    let remaining = d - elapsed;
                    Some(self.policy.timeout.map_or(remaining, |t| t.min(remaining)))
                }
            };
            let err = match self.client(bound) {
                Ok(c) => {
                    c.set_deadline(bound);
                    match op(c) {
                        Ok(v) => {
                            if let Some(b) = self.budget.as_mut() {
                                b.on_success();
                            }
                            return Ok(v);
                        }
                        Err(e) => e,
                    }
                }
                Err(e) => e,
            };
            // An I/O failure (including a timeout) or an undecodable
            // response leaves request/response pairing unknown: reconnect
            // rather than read a stale answer into the next request.
            if matches!(err, ClientError::Io(_) | ClientError::Proto(_)) {
                self.client = None;
            }
            if !err.is_transient() || attempt >= self.policy.max_attempts {
                return Err(err);
            }
            // The backoff ladder keeps climbing across requests until a
            // success resets it: a struggling server gets geometrically
            // more breathing room, not a fresh burst per call.
            let delay = self.policy.jittered(self.next_retry, &mut self.rng);
            // No point sleeping into (or past) the deadline: surface the
            // miss now, with the real failure attached.
            if let Some(d) = self.policy.deadline {
                let elapsed = started.elapsed();
                if elapsed + Duration::from_millis(delay) >= d {
                    return Err(ClientError::DeadlineExceeded {
                        deadline: d,
                        elapsed,
                        last_error: err.to_string(),
                    });
                }
            }
            // An empty retry budget turns a would-be retry into an
            // immediate failure: under a correlated outage the bucket
            // drains once, then every caller fails fast instead of
            // multiplying load by max_attempts.
            if let Some(b) = self.budget.as_mut() {
                if !b.try_spend() {
                    bora_obs::counter("serve.retry_budget_denied").inc();
                    return Err(err);
                }
            }
            self.retries += 1;
            bora_obs::counter("serve.retries").inc();
            self.next_retry = (self.next_retry + 1).min(63);
            if delay > 0 {
                std::thread::sleep(Duration::from_millis(delay));
            }
        }
    }

    fn run_reset<R>(
        &mut self,
        op: impl FnMut(&mut ServeClient<T::Conn>) -> ClientResult<R>,
    ) -> ClientResult<R> {
        let out = self.run(op);
        if out.is_ok() {
            self.next_retry = 0;
        }
        out
    }

    pub fn open(&mut self, container: &str) -> ClientResult<(ContainerStat, bool)> {
        self.run_reset(|c| c.open(container))
    }

    pub fn topics(&mut self, container: &str) -> ClientResult<Vec<String>> {
        self.run_reset(|c| c.topics(container))
    }

    pub fn meta(&mut self, container: &str) -> ClientResult<Vec<u8>> {
        self.run_reset(|c| c.meta(container))
    }

    pub fn read(&mut self, container: &str, topics: &[&str]) -> ClientResult<Vec<WireMessage>> {
        self.run_reset(|c| c.read(container, topics))
    }

    pub fn read_time(
        &mut self,
        container: &str,
        topics: &[&str],
        start: Time,
        end: Time,
    ) -> ClientResult<Vec<WireMessage>> {
        self.run_reset(|c| c.read_time(container, topics, start, end))
    }

    /// A streamed read collected to completion, with retry. The stream is
    /// retried as a unit: if it breaks mid-flight the whole query is
    /// re-issued from the start on a fresh connection (reads are
    /// idempotent — the cost is repeated work, never duplicated or
    /// missing messages).
    pub fn read_streamed(
        &mut self,
        container: &str,
        topics: &[&str],
    ) -> ClientResult<Vec<WireMessage>> {
        self.run_reset(|c| {
            let mut out = Vec::new();
            for m in c.read_stream(container, topics)? {
                out.push(m?);
            }
            Ok(out)
        })
    }

    /// Time-ranged variant of [`RetryClient::read_streamed`].
    pub fn read_streamed_time(
        &mut self,
        container: &str,
        topics: &[&str],
        start: Time,
        end: Time,
    ) -> ClientResult<Vec<WireMessage>> {
        self.run_reset(|c| {
            let mut out = Vec::new();
            for m in c.read_stream_time(container, topics, start, end)? {
                out.push(m?);
            }
            Ok(out)
        })
    }

    /// A query retried as a unit: if the stream breaks mid-flight the
    /// whole statement is re-issued on a fresh connection (queries are
    /// idempotent reads). [`ErrorCode::BadQuery`] is permanent and
    /// surfaces immediately — resending a statement that cannot parse
    /// would only repeat the failure.
    pub fn query(&mut self, container: &str, sql: &str) -> ClientResult<QueryReply> {
        self.run_reset(|c| c.query(container, sql))
    }

    /// Fragment-mode variant of [`RetryClient::query`]; see
    /// [`ServeClient::query_partial`].
    pub fn query_partial(&mut self, container: &str, sql: &str) -> ClientResult<QueryReply> {
        self.run_reset(|c| c.query_partial(container, sql))
    }

    pub fn stat(&mut self, container: &str) -> ClientResult<ContainerStat> {
        self.run_reset(|c| c.stat(container))
    }

    pub fn stats(&mut self) -> ClientResult<StatsSnapshot> {
        self.run_reset(|c| c.stats())
    }

    pub fn metrics(&mut self) -> ClientResult<MetricsReport> {
        self.run_reset(|c| c.metrics())
    }

    /// Health probe. Not retried beyond the policy's normal schedule: a
    /// probe that needs retries is itself the health signal.
    pub fn ping(&mut self) -> ClientResult<PingInfo> {
        self.run_reset(|c| c.ping())
    }

    /// Shutdown is not retried: a lost response is indistinguishable from
    /// a server that already began shutting down, and re-sending it to a
    /// fresh connection would be a new side effect, not a retry.
    pub fn shutdown(&mut self) -> ClientResult<()> {
        self.client(self.policy.timeout)?.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::{Arc, Mutex};

    fn policy(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            base_delay_ms: 0, // tests must not sleep
            max_delay_ms: 0,
            jitter: 0.0,
            seed: 1,
            timeout: None,
            deadline: None,
            retry_budget: None,
        }
    }

    // -------------------------------------------------- backoff schedule

    #[test]
    fn backoff_doubles_then_caps() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_delay_ms: 100,
            max_delay_ms: 1_000,
            jitter: 0.0,
            seed: 7,
            ..policy(8)
        };
        assert_eq!(p.schedule(), vec![100, 200, 400, 800, 1_000, 1_000, 1_000]);
        // Huge shift counts saturate instead of overflowing.
        assert_eq!(p.raw_delay_ms(63), 1_000);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_delay_ms: 64,
            max_delay_ms: 4_096,
            jitter: 0.5,
            seed: 42,
            ..policy(10)
        };
        let a = p.schedule();
        assert_eq!(a, p.schedule(), "same seed, same schedule");
        for (k, &d) in a.iter().enumerate() {
            let raw = p.raw_delay_ms(k as u32);
            assert!(d <= raw, "jitter only shortens: {d} > {raw}");
            assert!(d * 2 >= raw, "at most half removed at jitter 0.5: {d} < {raw}/2");
        }
        let other = RetryPolicy { seed: 43, ..p.clone() };
        assert_ne!(a, other.schedule(), "different seed, different jitter");
    }

    // -------------------------------------------------- scripted transport

    /// What a scripted connection does for one request.
    #[derive(Clone)]
    enum Step {
        Reply(Response),
        /// Fail the recv with an I/O error (connection is then unusable).
        Break,
    }

    struct ScriptedConn {
        steps: Arc<Mutex<VecDeque<Step>>>,
        pending: bool,
        broken: bool,
    }

    impl Connection for ScriptedConn {
        fn send_frame(&mut self, _payload: &[u8]) -> std::io::Result<()> {
            self.pending = true;
            Ok(())
        }
        // Accepted but unenforced: scripted failures come from the
        // script, not real waits. Without this, deadline policies (which
        // install a clamped timeout) could not be scripted at all.
        fn set_timeout(&mut self, _timeout: Option<Duration>) -> std::io::Result<()> {
            Ok(())
        }
        fn recv_frame(&mut self) -> std::io::Result<Vec<u8>> {
            // One send may be answered by many frames (streams), so
            // `pending` stays set until the connection breaks.
            assert!(self.pending, "recv without a request in flight");
            if self.broken {
                return Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "dead conn"));
            }
            match self.steps.lock().unwrap().pop_front() {
                Some(Step::Reply(resp)) => Ok(resp.encode()),
                Some(Step::Break) | None => {
                    self.broken = true;
                    Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "scripted break"))
                }
            }
        }
    }

    /// Hands every connection the same shared script; counts connects.
    struct ScriptedTransport {
        steps: Arc<Mutex<VecDeque<Step>>>,
        connects: AtomicU32,
    }

    impl ScriptedTransport {
        fn new(steps: Vec<Step>) -> Self {
            ScriptedTransport {
                steps: Arc::new(Mutex::new(steps.into())),
                connects: AtomicU32::new(0),
            }
        }
    }

    impl Transport for ScriptedTransport {
        type Conn = ScriptedConn;
        fn connect(&self) -> std::io::Result<ScriptedConn> {
            self.connects.fetch_add(1, Ordering::SeqCst);
            Ok(ScriptedConn { steps: Arc::clone(&self.steps), pending: false, broken: false })
        }
    }

    fn server_err(code: ErrorCode) -> Step {
        Step::Reply(Response::Error { code, message: "scripted".into() })
    }

    // ------------------------------------------------------ retry behavior

    #[test]
    fn transient_errors_retry_until_success() {
        let t = ScriptedTransport::new(vec![
            Step::Reply(Response::Overloaded),
            server_err(ErrorCode::Io),
            Step::Reply(Response::Topics(vec!["/imu".into()])),
        ]);
        let mut c = RetryClient::new(&t, policy(5));
        assert_eq!(c.topics("/c").unwrap(), vec!["/imu".to_owned()]);
        assert_eq!(c.retries(), 2);
        assert_eq!(t.connects.load(Ordering::SeqCst), 1, "server errors keep the connection");
    }

    #[test]
    fn broken_stream_reconnects_then_succeeds() {
        let t = ScriptedTransport::new(vec![Step::Break, Step::Reply(Response::Topics(vec![]))]);
        let mut c = RetryClient::new(&t, policy(3));
        assert_eq!(c.topics("/c").unwrap(), Vec::<String>::new());
        assert_eq!(c.retries(), 1);
        assert_eq!(t.connects.load(Ordering::SeqCst), 2, "I/O failure forces a reconnect");
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let t = ScriptedTransport::new(vec![
            server_err(ErrorCode::Io),
            server_err(ErrorCode::Io),
            server_err(ErrorCode::Io),
            Step::Reply(Response::Topics(vec![])), // never reached
        ]);
        let mut c = RetryClient::new(&t, policy(3));
        match c.topics("/c") {
            Err(ClientError::Server { code: ErrorCode::Io, .. }) => {}
            other => panic!("expected Io server error, got {other:?}"),
        }
        assert_eq!(c.retries(), 2, "3 attempts = 2 retries");
        assert_eq!(t.steps.lock().unwrap().len(), 1, "exactly 3 requests sent");
    }

    #[test]
    fn permanent_errors_are_not_retried() {
        for code in [ErrorCode::UnknownTopic, ErrorCode::NotAContainer, ErrorCode::Corrupt] {
            let t = ScriptedTransport::new(vec![
                server_err(code),
                Step::Reply(Response::Topics(vec![])),
            ]);
            let mut c = RetryClient::new(&t, policy(5));
            match c.topics("/c") {
                Err(ClientError::Server { code: got, .. }) => assert_eq!(got, code),
                other => panic!("expected server error, got {other:?}"),
            }
            assert_eq!(c.retries(), 0, "{code:?} must not be retried");
            assert_eq!(t.steps.lock().unwrap().len(), 1, "only one request sent");
        }
    }

    #[test]
    fn checksum_mismatch_is_retried() {
        let t = ScriptedTransport::new(vec![
            server_err(ErrorCode::ChecksumMismatch),
            Step::Reply(Response::Topics(vec![])),
        ]);
        let mut c = RetryClient::new(&t, policy(3));
        assert!(c.topics("/c").is_ok());
        assert_eq!(c.retries(), 1);
    }

    // ------------------------------------------------------- retry budget

    #[test]
    fn retry_budget_bounds_total_retries() {
        // Far more transient failures than the bucket can cover: the
        // attempt cap would allow 99 retries, the budget allows 3.
        let t = ScriptedTransport::new(vec![server_err(ErrorCode::Io); 10]);
        let p = RetryPolicy {
            retry_budget: Some(RetryBudgetConfig { capacity: 3.0, deposit_per_success: 0.1 }),
            ..policy(100)
        };
        let mut c = RetryClient::new(&t, p);
        match c.topics("/c") {
            Err(ClientError::Server { code: ErrorCode::Io, .. }) => {}
            other => panic!("expected the underlying Io error, got {other:?}"),
        }
        assert_eq!(c.retries(), 3, "bucket of 3 tokens = 3 retries");
        assert_eq!(c.retry_budget().unwrap().denied(), 1);
        assert_eq!(t.steps.lock().unwrap().len(), 6, "exactly 4 requests sent");
    }

    #[test]
    fn retry_budget_refills_on_success() {
        let t = ScriptedTransport::new(vec![
            server_err(ErrorCode::Io),
            Step::Reply(Response::Topics(vec![])),
            server_err(ErrorCode::Io),
            Step::Reply(Response::Topics(vec![])), // unreachable: budget empty
        ]);
        let p = RetryPolicy {
            retry_budget: Some(RetryBudgetConfig { capacity: 1.0, deposit_per_success: 0.5 }),
            ..policy(5)
        };
        let mut c = RetryClient::new(&t, p);
        assert!(c.topics("/c").is_ok(), "first call retries through on the banked token");
        assert_eq!(c.retry_budget().unwrap().tokens(), 0.5, "success earned half a token back");
        match c.topics("/c") {
            Err(ClientError::Server { code: ErrorCode::Io, .. }) => {}
            other => panic!("expected fail-fast on empty bucket, got {other:?}"),
        }
        assert_eq!(c.retries(), 1, "no second retry: bucket below one token");
        assert_eq!(c.retry_budget().unwrap().denied(), 1);
    }

    // --------------------------------------------------- total deadline

    #[test]
    fn deadline_cuts_backoff_short() {
        // The first retry would sleep 10s; the 50ms total budget makes
        // the client surface the miss immediately instead.
        let t = ScriptedTransport::new(vec![Step::Break; 5]);
        let p = RetryPolicy {
            base_delay_ms: 10_000,
            max_delay_ms: 10_000,
            deadline: Some(Duration::from_millis(50)),
            ..policy(5)
        };
        let start = Instant::now();
        let mut c = RetryClient::new(&t, p);
        match c.topics("/c") {
            Err(ClientError::DeadlineExceeded { deadline, last_error, .. }) => {
                assert_eq!(deadline, Duration::from_millis(50));
                assert!(last_error.contains("scripted break"), "carries the real failure");
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert!(start.elapsed() < Duration::from_secs(5), "did not sleep the 10s backoff");
        assert_eq!(c.retries(), 0);
        assert!(!ClientError::DeadlineExceeded {
            deadline: Duration::ZERO,
            elapsed: Duration::ZERO,
            last_error: String::new(),
        }
        .is_transient());
    }

    #[test]
    fn expired_deadline_fails_before_any_attempt() {
        let t = ScriptedTransport::new(vec![Step::Reply(Response::Topics(vec![]))]);
        let p = RetryPolicy { deadline: Some(Duration::ZERO), ..policy(3) };
        let mut c = RetryClient::new(&t, p);
        assert!(matches!(c.topics("/c"), Err(ClientError::DeadlineExceeded { .. })));
        assert_eq!(t.steps.lock().unwrap().len(), 1, "no request was sent");
        assert_eq!(t.connects.load(Ordering::SeqCst), 0, "no connection was made");
    }

    // ---------------------------------------------- compressed streaming

    #[test]
    fn read_stream_decodes_lz_chunks() {
        let mut ctx = simfs::IoCtx::new();
        let msgs: Vec<WireMessage> = (0..40)
            .map(|i| WireMessage { topic: "/imu".into(), time: Time::new(i, 0), data: vec![0; 64] })
            .collect();
        let t = ScriptedTransport::new(vec![
            Step::Reply(crate::proto::compress_chunk(&msgs, &mut ctx)),
            Step::Reply(Response::StreamEnd { messages: 40 }),
        ]);
        let mut c = ServeClient::new(t.connect().unwrap());
        let got: Vec<WireMessage> =
            c.read_stream("/c", &["/imu"]).unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(got, msgs);
    }

    #[test]
    fn read_stream_falls_back_on_old_server() {
        let msgs =
            vec![WireMessage { topic: "/imu".into(), time: Time::new(1, 0), data: vec![7; 8] }];
        // An old server rejects READ_STREAM2 with BadRequest; the client
        // must reissue the plain READ_STREAM and keep iterating.
        let t = ScriptedTransport::new(vec![
            server_err(ErrorCode::BadRequest),
            Step::Reply(Response::StreamChunk(msgs.clone())),
            Step::Reply(Response::StreamEnd { messages: 1 }),
        ]);
        let mut c = ServeClient::new(t.connect().unwrap());
        let got: Vec<WireMessage> =
            c.read_stream("/c", &["/imu"]).unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(got, msgs);

        // A BadRequest *after* the stream started is a real error, not a
        // downgrade cue — it must surface, not trigger a blind retry.
        let t = ScriptedTransport::new(vec![
            Step::Reply(Response::StreamChunk(msgs.clone())),
            server_err(ErrorCode::BadRequest),
        ]);
        let mut c = ServeClient::new(t.connect().unwrap());
        let results: Vec<_> = c.read_stream("/c", &["/imu"]).unwrap().collect();
        assert_eq!(results.len(), 2);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(ClientError::Server { code: ErrorCode::BadRequest, .. })));
    }

    #[test]
    fn stream2_matches_buffered_read_end_to_end() {
        use crate::server::{Server, ServerConfig};
        use crate::transport::MemTransport;
        use ros_msgs::sensor_msgs::Imu;

        let fs = Arc::new(simfs::MemStorage::new());
        let mut ctx = simfs::IoCtx::new();
        let mut rec = bora::BoraRecorder::create(
            Arc::clone(&fs),
            "/c",
            bora::RecorderOptions::default(),
            &mut ctx,
        )
        .unwrap();
        for i in 0..200u32 {
            let mut imu = Imu::default();
            imu.header.seq = i;
            rec.record_ros_message("/imu", Time::new(100 + i, 0), &imu, &mut ctx).unwrap();
        }
        rec.close(&mut ctx).unwrap();

        let server = Server::start(fs, ServerConfig::default());
        let t = MemTransport::new(Arc::clone(&server));
        let mut c = ServeClient::new(t.connect().unwrap());
        let buffered = c.read("/c", &["/imu"]).unwrap();
        let streamed: Vec<WireMessage> =
            c.read_stream("/c", &["/imu"]).unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(streamed.len(), 200);
        assert_eq!(streamed, buffered, "compressed stream must be byte-identical");
        // The server really did ship LZ chunks to this READ_STREAM2 peer.
        let report = c.metrics().unwrap();
        assert!(report.counter("serve.stream_chunk_lz") > 0, "no LZ chunk was sent");
        server.shutdown();
    }

    // -------------------------------------------- set_timeout default

    #[test]
    fn set_timeout_default_is_loudly_unsupported() {
        struct NoTimeoutConn;
        impl Connection for NoTimeoutConn {
            fn send_frame(&mut self, _payload: &[u8]) -> std::io::Result<()> {
                Ok(())
            }
            fn recv_frame(&mut self) -> std::io::Result<Vec<u8>> {
                Ok(Vec::new())
            }
        }
        let mut c = NoTimeoutConn;
        assert!(c.set_timeout(None).is_ok(), "None requests the default and always succeeds");
        let err = c.set_timeout(Some(Duration::from_secs(1))).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::Unsupported);
    }
}
