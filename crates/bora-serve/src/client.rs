//! [`ServeClient`]: typed request/response wrapper over any
//! [`Connection`]. One outstanding request at a time per client (the
//! protocol is strictly request/response); open more connections for
//! parallelism.

use ros_msgs::Time;

use crate::proto::{
    ContainerStat, ErrorCode, ProtoError, Request, Response, StatsSnapshot, WireMessage,
};
use crate::transport::{Connection, Transport};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport broke (peer gone, socket error).
    Io(std::io::Error),
    /// The peer sent bytes that do not decode, or a response of the
    /// wrong kind for the request.
    Proto(ProtoError),
    /// The server answered with a protocol-level error.
    Server { code: ErrorCode, message: String },
    /// The server shed the request under load; retrying later is safe
    /// (no side effects happened).
    Overloaded,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Proto(e) => write!(f, "{e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::Overloaded => write!(f, "server overloaded"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

pub type ClientResult<T> = Result<T, ClientError>;

/// A connected bora-serve client.
pub struct ServeClient<C: Connection> {
    conn: C,
}

impl<C: Connection> ServeClient<C> {
    pub fn new(conn: C) -> Self {
        ServeClient { conn }
    }

    /// Connect through a transport.
    pub fn connect<T: Transport<Conn = C>>(transport: &T) -> ClientResult<Self> {
        Ok(ServeClient::new(transport.connect()?))
    }

    fn roundtrip(&mut self, req: &Request) -> ClientResult<Response> {
        self.conn.send_frame(&req.encode())?;
        let payload = self.conn.recv_frame()?;
        match Response::decode(&payload).map_err(ClientError::Proto)? {
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            Response::Overloaded => Err(ClientError::Overloaded),
            resp => Ok(resp),
        }
    }

    /// Pull a container into the server's handle cache; `cached` in the
    /// result tells whether it was already there.
    pub fn open(&mut self, container: &str) -> ClientResult<(ContainerStat, bool)> {
        match self.roundtrip(&Request::Open { container: container.into() })? {
            Response::Opened { stat, cached } => Ok((stat, cached)),
            other => Err(unexpected("OPEN", &other)),
        }
    }

    pub fn topics(&mut self, container: &str) -> ClientResult<Vec<String>> {
        match self.roundtrip(&Request::Topics { container: container.into() })? {
            Response::Topics(t) => Ok(t),
            other => Err(unexpected("TOPICS", &other)),
        }
    }

    /// The container's raw metadata; decode with
    /// [`bora::ContainerMeta::decode`].
    pub fn meta(&mut self, container: &str) -> ClientResult<Vec<u8>> {
        match self.roundtrip(&Request::Meta { container: container.into() })? {
            Response::Meta(bytes) => Ok(bytes),
            other => Err(unexpected("META", &other)),
        }
    }

    pub fn read(&mut self, container: &str, topics: &[&str]) -> ClientResult<Vec<WireMessage>> {
        self.read_inner(container, topics, None)
    }

    pub fn read_time(
        &mut self,
        container: &str,
        topics: &[&str],
        start: Time,
        end: Time,
    ) -> ClientResult<Vec<WireMessage>> {
        self.read_inner(container, topics, Some((start, end)))
    }

    fn read_inner(
        &mut self,
        container: &str,
        topics: &[&str],
        range: Option<(Time, Time)>,
    ) -> ClientResult<Vec<WireMessage>> {
        let req = Request::Read {
            container: container.into(),
            topics: topics.iter().map(|t| (*t).to_owned()).collect(),
            range,
        };
        match self.roundtrip(&req)? {
            Response::Read(messages) => Ok(messages),
            other => Err(unexpected("READ", &other)),
        }
    }

    pub fn stat(&mut self, container: &str) -> ClientResult<ContainerStat> {
        match self.roundtrip(&Request::Stat { container: container.into() })? {
            Response::Stat(s) => Ok(s),
            other => Err(unexpected("STAT", &other)),
        }
    }

    pub fn stats(&mut self) -> ClientResult<StatsSnapshot> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected("STATS", &other)),
        }
    }

    /// Drain the server's span buffers as a Chrome `trace_event` JSON
    /// document (empty unless the server runs with `BORA_TRACE=1`).
    pub fn trace(&mut self) -> ClientResult<String> {
        match self.roundtrip(&Request::Trace)? {
            Response::Trace(json) => Ok(json),
            other => Err(unexpected("TRACE", &other)),
        }
    }

    /// Ask the server to shut down. The connection is unusable afterwards.
    pub fn shutdown(&mut self) -> ClientResult<()> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("SHUTDOWN", &other)),
        }
    }
}

fn unexpected(op: &str, resp: &Response) -> ClientError {
    ClientError::Proto(ProtoError(format!("unexpected response to {op}: {resp:?}")))
}
