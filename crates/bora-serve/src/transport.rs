//! Transports: how frames travel between client and server.
//!
//! Both ends speak [`Connection`] — blocking, one length-prefixed frame
//! at a time. [`MemTransport`] carries frames over in-process crossbeam
//! channels (deterministic: tests and benches exercise the full protocol
//! stack with no sockets, no ports, no timing flakes). [`TcpTransport`]
//! carries the same bytes over `std::net` — the shape a robot fleet's
//! analysis cluster would deploy.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{self, Receiver, Sender};
use simfs::Storage;

use crate::proto::{frame, frame_len, Request, Response, FRAME_HEADER_LEN};
use crate::server::Server;

/// One bidirectional framed byte stream.
pub trait Connection: Send {
    fn send_frame(&mut self, payload: &[u8]) -> io::Result<()>;
    /// Blocks for the next frame; `ErrorKind::UnexpectedEof` when the
    /// peer hung up.
    fn recv_frame(&mut self) -> io::Result<Vec<u8>>;
    /// Bound how long `recv_frame` (and, where the transport supports it,
    /// `send_frame`) may block; `None` restores blocking forever. A
    /// timed-out call fails with `ErrorKind::TimedOut` / `WouldBlock` and
    /// the connection should be considered desynchronized (a late
    /// response would be mistaken for the next request's answer) — the
    /// retry layer reconnects rather than reuse it.
    ///
    /// The default errors with `ErrorKind::Unsupported` so a transport
    /// that cannot honor timeouts fails loudly at configuration time
    /// instead of silently blocking forever. `None` is accepted
    /// everywhere — it requests the default behaviour.
    fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        match timeout {
            None => Ok(()),
            Some(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "transport does not support timeouts",
            )),
        }
    }
}

/// A way to reach a server; each `connect` yields an independent
/// connection whose requests the server handles concurrently.
pub trait Transport {
    type Conn: Connection;
    fn connect(&self) -> io::Result<Self::Conn>;
}

// Delegating impls so shared transports (a cluster client holding one
// transport per node behind `Arc`) satisfy `Transport` without cloning
// the underlying listener/dispatcher state.
impl<T: Transport + ?Sized> Transport for &T {
    type Conn = T::Conn;
    fn connect(&self) -> io::Result<Self::Conn> {
        (**self).connect()
    }
}

impl<T: Transport + ?Sized> Transport for Arc<T> {
    type Conn = T::Conn;
    fn connect(&self) -> io::Result<Self::Conn> {
        (**self).connect()
    }
}

fn eof() -> io::Error {
    io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed connection")
}

// ------------------------------------------------------------- serve loop

/// Serve one connection until the peer hangs up or the server begins
/// shutting down. Shared by every transport; this is the only place
/// where bytes become [`Request`]s.
pub fn serve_connection<S, C>(server: &Server<S>, conn: &mut C)
where
    S: Storage + Clone + Send + Sync + 'static,
    C: Connection,
{
    loop {
        let payload = match conn.recv_frame() {
            Ok(p) => p,
            Err(_) => return, // peer gone (EOF) or transport failure
        };
        // Correlation first: a stamped request gets its seq echoed on
        // every frame of the answer, so the client can tell this
        // response from a stale duplicate of an earlier one.
        let (corr, framed) = crate::proto::peel_corr(&payload);
        let respond = |resp: &Response| match corr {
            Some(seq) => crate::proto::wrap_corr(seq, &resp.encode()),
            None => resp.encode(),
        };
        // Framed decode: a request may carry the client's deadline budget
        // and/or trace context as prefixes; plain frames (old clients)
        // decode with `None` and the server behaves exactly as before.
        match Request::decode_framed(framed) {
            // Streaming-aware dispatch: a single-response op emits exactly
            // one frame; READ_STREAM emits chunk frames as the server's
            // merge yields, with the transport's own send acting as the
            // final backpressure stage. A failed send drops the emit
            // closure's `true`, which tells the server to abort the
            // in-flight stream (releasing its cache pin).
            Ok((req, tctx, deadline_ns)) => {
                let mut final_resp = false;
                let ok = server.submit_streamed_framed(req, tctx, deadline_ns, &mut |resp| {
                    final_resp = matches!(resp, Response::ShuttingDown);
                    conn.send_frame(&respond(&resp)).is_ok()
                });
                if !ok || final_resp || server.is_shutting_down() {
                    return;
                }
            }
            // Malformed frame: answer with the error, keep the
            // connection — one bad client frame should not force a
            // reconnect.
            Err(e) => {
                let resp = Response::Error {
                    code: crate::proto::ErrorCode::BadRequest,
                    message: e.to_string(),
                };
                if conn.send_frame(&respond(&resp)).is_err() {
                    return;
                }
            }
        }
    }
}

// ---------------------------------------------------------- mem transport

/// Client half of an in-process connection.
pub struct MemConnection {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    timeout: Option<Duration>,
}

impl Connection for MemConnection {
    fn send_frame(&mut self, payload: &[u8]) -> io::Result<()> {
        self.tx.send(payload.to_vec()).map_err(|_| eof())
    }
    fn recv_frame(&mut self) -> io::Result<Vec<u8>> {
        match self.timeout {
            None => self.rx.recv().map_err(|_| eof()),
            Some(t) => self.rx.recv_timeout(t).map_err(|e| match e {
                channel::RecvTimeoutError::Timeout => {
                    io::Error::new(io::ErrorKind::TimedOut, "recv_frame timed out")
                }
                channel::RecvTimeoutError::Disconnected => eof(),
            }),
        }
    }
    fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.timeout = timeout;
        Ok(())
    }
}

/// In-process transport: `connect` spawns a dispatcher thread that feeds
/// the shared server, exactly like a TCP connection handler would.
pub struct MemTransport<S: Storage> {
    server: Arc<Server<S>>,
}

impl<S: Storage + Clone + Send + Sync + 'static> MemTransport<S> {
    pub fn new(server: Arc<Server<S>>) -> Self {
        MemTransport { server }
    }
}

impl<S: Storage + Clone + Send + Sync + 'static> Transport for MemTransport<S> {
    type Conn = MemConnection;

    fn connect(&self) -> io::Result<MemConnection> {
        let (client_tx, server_rx) = channel::unbounded();
        let (server_tx, client_rx) = channel::unbounded();
        let server = Arc::clone(&self.server);
        std::thread::Builder::new()
            .name("bora-serve-mem-conn".into())
            .spawn(move || {
                let mut conn = MemConnection { tx: server_tx, rx: server_rx, timeout: None };
                serve_connection(&server, &mut conn);
            })
            .map_err(io::Error::other)?;
        Ok(MemConnection { tx: client_tx, rx: client_rx, timeout: None })
    }
}

// ---------------------------------------------------------- tcp transport

/// A framed TCP stream (client or server side — the protocol is
/// symmetric at this layer).
pub struct TcpConnection {
    stream: TcpStream,
}

impl TcpConnection {
    pub fn new(stream: TcpStream) -> Self {
        TcpConnection { stream }
    }
}

impl Connection for TcpConnection {
    fn send_frame(&mut self, payload: &[u8]) -> io::Result<()> {
        // One write per frame: the header is 4 bytes, coalescing avoids a
        // guaranteed small-packet round trip per response.
        self.stream.write_all(&frame(payload))
    }

    fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    fn recv_frame(&mut self) -> io::Result<Vec<u8>> {
        let mut header = [0u8; FRAME_HEADER_LEN];
        self.stream.read_exact(&mut header)?;
        let len = frame_len(header).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let mut payload = vec![0u8; len];
        self.stream.read_exact(&mut payload)?;
        Ok(payload)
    }
}

/// Client-side TCP transport.
pub struct TcpTransport {
    addr: SocketAddr,
}

impl TcpTransport {
    pub fn new(addr: SocketAddr) -> Self {
        TcpTransport { addr }
    }
}

impl Transport for TcpTransport {
    type Conn = TcpConnection;
    fn connect(&self) -> io::Result<TcpConnection> {
        Ok(TcpConnection::new(TcpStream::connect(self.addr)?))
    }
}

/// A running TCP acceptor for a server.
pub struct TcpListenerHandle {
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
}

impl TcpListenerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Wait for the acceptor to exit (it does when the server shuts
    /// down). Connection handler threads are detached; they exit when
    /// their peer hangs up or the shutdown flag is observed.
    pub fn join(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

/// Bind `addr` and accept connections for `server` until it shuts down.
///
/// The listener polls in non-blocking mode so shutdown needs no
/// self-connection trick; 10ms poll latency is irrelevant next to a
/// human issuing `SHUTDOWN`.
pub fn spawn_tcp_listener<S>(
    server: Arc<Server<S>>,
    addr: SocketAddr,
) -> io::Result<TcpListenerHandle>
where
    S: Storage + Clone + Send + Sync + 'static,
{
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let acceptor =
        std::thread::Builder::new().name("bora-serve-acceptor".into()).spawn(move || loop {
            if server.is_shutting_down() {
                return;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_nonblocking(false);
                    let server = Arc::clone(&server);
                    let _ = std::thread::Builder::new().name("bora-serve-tcp-conn".into()).spawn(
                        move || {
                            let mut conn = TcpConnection::new(stream);
                            serve_connection(&server, &mut conn);
                        },
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => return,
            }
        })?;
    Ok(TcpListenerHandle { addr: local, acceptor: Some(acceptor) })
}
