//! `bora-serve` — serve BORA container queries over TCP.
//!
//! The repo's storage backends are simulated (in-memory, cost-modeled),
//! so the binary seeds its own demo containers at startup and serves
//! them; it demonstrates the full network deployment shape (framed TCP,
//! worker pool, cache, metrics) rather than exporting a host directory.
//!
//! ```text
//! bora-serve [--listen 127.0.0.1:7540] [--workers 4] [--queue 64]
//!            [--cache 8] [--containers 4] [--messages 600]
//! ```
//!
//! Containers are mounted at `/c/bag0 … /c/bag{N-1}`. Stop the server
//! with the protocol's `SHUTDOWN` op (`ServeClient::shutdown`).

use std::net::SocketAddr;
use std::process::exit;
use std::sync::Arc;

use bora_serve::{spawn_tcp_listener, Server, ServerConfig};
use ros_msgs::{sensor_msgs::Imu, sensor_msgs::NavSatFix, Time};
use rosbag::{BagWriter, BagWriterOptions};
use simfs::{IoCtx, MemStorage};

struct Args {
    listen: SocketAddr,
    workers: usize,
    queue: usize,
    cache: usize,
    containers: usize,
    messages: u32,
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: bora-serve [--listen ADDR:PORT] [--workers N] [--queue N] \
         [--cache N] [--containers N] [--messages N]"
    );
    exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        listen: "127.0.0.1:7540".parse().unwrap(),
        workers: 4,
        queue: 64,
        cache: 8,
        containers: 4,
        messages: 600,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().unwrap_or_else(|| usage(&format!("{name} needs a value")));
        match flag.as_str() {
            "--listen" => {
                let v = value("--listen");
                args.listen = v.parse().unwrap_or_else(|_| {
                    usage(&format!("bad --listen address {v:?} (want IP:PORT)"))
                });
            }
            "--workers" => args.workers = parse_num(&value("--workers"), "--workers", 1),
            "--queue" => args.queue = parse_num(&value("--queue"), "--queue", 1),
            "--cache" => args.cache = parse_num(&value("--cache"), "--cache", 1),
            "--containers" => {
                args.containers = parse_num(&value("--containers"), "--containers", 1)
            }
            "--messages" => args.messages = parse_num(&value("--messages"), "--messages", 1) as u32,
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    args
}

fn parse_num(v: &str, flag: &str, min: usize) -> usize {
    match v.parse::<usize>() {
        Ok(n) if n >= min => n,
        _ => usage(&format!("bad value {v:?} for {flag} (want integer >= {min})")),
    }
}

/// Write one demo bag (an IMU stream plus a low-rate GPS topic) and
/// organize it into a container.
fn seed_container(fs: &Arc<MemStorage>, idx: usize, messages: u32) -> String {
    let mut ctx = IoCtx::new();
    let bag_path = format!("/src/bag{idx}.bag");
    let root = format!("/c/bag{idx}");
    let mut w = BagWriter::create(&**fs, &bag_path, BagWriterOptions::default(), &mut ctx).unwrap();
    for i in 0..messages {
        let t = Time::new(i / 10, (i % 10) * 100_000_000);
        let mut imu = Imu::default();
        imu.header.stamp = t;
        w.write_ros_message("/imu", t, &imu, &mut ctx).unwrap();
        if i % 10 == 0 {
            let mut fix = NavSatFix::default();
            fix.header.stamp = t;
            fix.latitude = idx as f64 + i as f64 * 1e-6;
            w.write_ros_message("/gps/fix", t, &fix, &mut ctx).unwrap();
        }
    }
    w.close(&mut ctx).unwrap();
    bora::duplicate(&**fs, &bag_path, &**fs, &root, &Default::default(), &mut ctx).unwrap();
    root
}

fn main() {
    let args = parse_args();
    if bora_obs::init_from_env() {
        println!("tracing enabled (BORA_TRACE); drain with the TRACE op or ServeClient::trace");
    }
    let fs = Arc::new(MemStorage::new());

    println!("seeding {} demo container(s), {} messages each...", args.containers, args.messages);
    for i in 0..args.containers {
        let root = seed_container(&fs, i, args.messages);
        println!("  {root}");
    }

    let server = Server::start(
        Arc::clone(&fs),
        ServerConfig {
            workers: args.workers,
            queue_capacity: args.queue,
            cache_capacity: args.cache,
            ..ServerConfig::default()
        },
    );
    let listener = match spawn_tcp_listener(Arc::clone(&server), args.listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot listen on {}: {e}", args.listen);
            exit(1);
        }
    };
    println!(
        "bora-serve listening on {} ({} workers, queue {}, cache {})",
        listener.addr(),
        args.workers,
        args.queue,
        args.cache
    );
    println!("stop with the SHUTDOWN op (ServeClient::shutdown)");

    listener.join();
    let snap = server.stats();
    server.shutdown();
    println!(
        "shutdown: served {} request(s), shed {}, cache hit rate {:.1}%",
        snap.total_requests(),
        snap.shed,
        snap.cache_hit_rate() * 100.0
    );
}
