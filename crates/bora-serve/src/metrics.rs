//! Per-operation service metrics, exposed through the `STATS` op.
//!
//! Latencies are recorded twice per request: **wall-clock** nanoseconds
//! (submit to response, what a real client experiences, including queue
//! wait) and **virtual** nanoseconds (what the storage cost model charged,
//! deterministic across hosts — the number the repro experiments compare).
//!
//! Percentiles come from fixed exponential histograms (one bucket per
//! power of two), not sampled reservoirs: 64 counters per op, no
//! allocation on the hot path, no randomness, and p99 error bounded by
//! the 2x bucket width — plenty for "did the tail blow up" questions.

use parking_lot::Mutex;

use crate::proto::{OpSummary, StatsSnapshot};

const BUCKETS: usize = 64;

#[derive(Debug, Clone)]
struct OpRecorder {
    count: u64,
    wall_sum: u64,
    wall_min: u64,
    virt_sum: u64,
    /// `wall_hist[i]` counts samples with `ilog2(ns) == i` (0 → bucket 0).
    wall_hist: [u64; BUCKETS],
}

impl Default for OpRecorder {
    fn default() -> Self {
        OpRecorder {
            count: 0,
            wall_sum: 0,
            wall_min: u64::MAX,
            virt_sum: 0,
            wall_hist: [0; BUCKETS],
        }
    }
}

fn bucket_of(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        ns.ilog2() as usize
    }
}

/// Upper bound of a bucket — the value reported for percentiles landing
/// in it (conservative: never under-reports the tail).
fn bucket_ceiling(i: usize) -> u64 {
    if i + 1 >= BUCKETS {
        u64::MAX
    } else {
        (2u64 << i) - 1
    }
}

impl OpRecorder {
    fn record(&mut self, wall_ns: u64, virt_ns: u64) {
        self.count += 1;
        self.wall_sum += wall_ns;
        self.wall_min = self.wall_min.min(wall_ns);
        self.virt_sum += virt_ns;
        self.wall_hist[bucket_of(wall_ns)] += 1;
    }

    fn wall_percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * p).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.wall_hist.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_ceiling(i);
            }
        }
        bucket_ceiling(BUCKETS - 1)
    }

    fn summary(&self) -> OpSummary {
        OpSummary {
            count: self.count,
            wall_min_ns: if self.count == 0 { 0 } else { self.wall_min },
            wall_mean_ns: self.wall_sum.checked_div(self.count).unwrap_or(0),
            wall_p99_ns: self.wall_percentile(0.99),
            virt_mean_ns: self.virt_sum.checked_div(self.count).unwrap_or(0),
        }
    }
}

/// The metric op kinds, in the order `STATS` reports them.
pub const OP_NAMES: [&str; 5] = ["meta", "open", "read", "stat", "topics"];

fn op_index(name: &str) -> Option<usize> {
    OP_NAMES.iter().position(|n| *n == name)
}

/// All service metrics. One `Mutex` per op keeps recorders independent;
/// `stats`/`shutdown` ops are control-plane and intentionally unrecorded.
#[derive(Debug, Default)]
pub struct Metrics {
    ops: [Mutex<OpRecorder>; 5],
    shed: std::sync::atomic::AtomicU64,
}

impl Metrics {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one completed request of kind `op_name`.
    pub fn record(&self, op_name: &str, wall_ns: u64, virt_ns: u64) {
        if let Some(i) = op_index(op_name) {
            self.ops[i].lock().record(wall_ns, virt_ns);
        }
    }

    /// Count one request rejected for backpressure.
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    pub fn shed(&self) -> u64 {
        self.shed.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Assemble the wire-level snapshot. Queue and cache numbers are the
    /// server's to fill in; this owns only the op recorders and shed count.
    pub fn snapshot_into(&self, mut base: StatsSnapshot) -> StatsSnapshot {
        base.ops = OP_NAMES
            .iter()
            .zip(self.ops.iter())
            .map(|(name, rec)| (name.to_string(), rec.lock().summary()))
            .collect();
        base.shed = self.shed();
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summaries_aggregate() {
        let m = Metrics::new();
        m.record("read", 100, 10);
        m.record("read", 300, 30);
        m.record("open", 1_000, 0);
        m.record("stats", 5, 5); // control-plane: dropped
        m.record_shed();

        let snap = m.snapshot_into(StatsSnapshot::default());
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.total_requests(), 3);
        let read = snap.op("read").unwrap();
        assert_eq!(read.count, 2);
        assert_eq!(read.wall_min_ns, 100);
        assert_eq!(read.wall_mean_ns, 200);
        assert_eq!(read.virt_mean_ns, 20);
        assert!(snap.op("stats").is_none());
    }

    #[test]
    fn p99_lands_in_tail_bucket() {
        let m = Metrics::new();
        for _ in 0..99 {
            m.record("read", 1_000, 0); // bucket ilog2(1000)=9 → ceiling 1023
        }
        m.record("read", 1 << 20, 0);
        let snap = m.snapshot_into(StatsSnapshot::default());
        let p99 = snap.op("read").unwrap().wall_p99_ns;
        // Rank 99 of 100 falls in the 1µs bucket; the 1ms outlier is p100.
        assert_eq!(p99, 1023);
        // All-equal distribution: p99 == the one bucket's ceiling.
        let m2 = Metrics::new();
        for _ in 0..10 {
            m2.record("open", 7, 0);
        }
        assert_eq!(m2.snapshot_into(StatsSnapshot::default()).op("open").unwrap().wall_p99_ns, 7);
    }

    #[test]
    fn zero_and_huge_samples_do_not_panic() {
        let m = Metrics::new();
        m.record("meta", 0, 0);
        m.record("meta", u64::MAX, u64::MAX);
        let s = m.snapshot_into(StatsSnapshot::default());
        assert_eq!(s.op("meta").unwrap().count, 2);
        assert_eq!(s.op("meta").unwrap().wall_p99_ns, u64::MAX);
    }
}
