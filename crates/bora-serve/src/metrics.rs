//! Per-operation service metrics, exposed through the `STATS` and
//! `METRICS` ops.
//!
//! Latencies are recorded twice per request: **wall-clock** nanoseconds
//! (submit to response, what a real client experiences, including queue
//! wait) and **virtual** nanoseconds (what the storage cost model charged,
//! deterministic across hosts — the number the repro experiments compare).
//! The wall number is further split: the queue-wait histogram isolates
//! time spent parked in the bounded queue from the service time a worker
//! actually spent on the request.
//!
//! ## One source of truth
//!
//! Every number lives in a private [`bora_obs::Registry`] (private so
//! concurrent servers in one process do not mix their numbers), under
//! the names the telemetry plane scrapes (`serve.op.<op>.wall_ns`,
//! `serve.op.<op>.virt_ns`, `serve.queue_wait_ns`, `serve.shed`).
//! `STATS` ([`Metrics::snapshot_into`]) and `METRICS`
//! ([`Metrics::registry_snapshot`]) both read **the same handles** — the
//! two views are different projections of one atomic store and cannot
//! drift, which `STATS`' earlier private recorders could (and did).
//!
//! ## SLO windows
//!
//! Alongside the cumulative histograms, each op's wall latency also
//! feeds a sliding-window [`SloTracker`] (60 × 1 s) once a target is
//! registered, so "is read's p99 over target *right now*" is answerable
//! without resetting anything.

use bora_obs::{Counter, Histogram, MetricsSnapshot, Registry, SloStatus, SloTarget, SloTracker};

use crate::proto::{OpSummary, StatsSnapshot};

/// The metric op kinds, in the order `STATS` reports them.
pub const OP_NAMES: [&str; 9] =
    ["append", "meta", "open", "query", "read", "read_stream", "seal", "stat", "topics"];

fn op_index(name: &str) -> Option<usize> {
    OP_NAMES.iter().position(|n| *n == name)
}

/// Registry name of an op's wall-latency histogram.
pub fn wall_metric(op: &str) -> String {
    format!("serve.op.{op}.wall_ns")
}

/// Registry name of an op's virtual-latency histogram.
pub fn virt_metric(op: &str) -> String {
    format!("serve.op.{op}.virt_ns")
}

#[derive(Debug)]
struct OpHandles {
    wall: Histogram,
    virt: Histogram,
}

/// All service metrics. Everything is atomic; `stats`/`metrics`/
/// `shutdown`/`trace`/`ping` ops are control-plane and intentionally
/// unrecorded.
pub struct Metrics {
    registry: Registry,
    // Resolved once: recording is handle-hot, never a name lookup.
    ops: [OpHandles; 9],
    queue_wait: Histogram,
    shed: Counter,
    slo: SloTracker,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    pub fn new() -> Self {
        let registry = Registry::new();
        let ops = std::array::from_fn(|i| OpHandles {
            wall: registry.histogram(&wall_metric(OP_NAMES[i])),
            virt: registry.histogram(&virt_metric(OP_NAMES[i])),
        });
        let queue_wait = registry.histogram("serve.queue_wait_ns");
        let shed = registry.counter("serve.shed");
        Metrics { registry, ops, queue_wait, shed, slo: SloTracker::per_second_minute() }
    }

    /// Record one completed request of kind `op_name`. Unknown names are a
    /// caller bug — the op table above and the protocol's `op_name` must
    /// agree — so they fail loudly under `debug_assertions` (tests) and
    /// drop silently in release builds.
    pub fn record(&self, op_name: &str, wall_ns: u64, virt_ns: u64) {
        let Some(i) = op_index(op_name) else {
            debug_assert!(false, "Metrics::record: unknown op name {op_name:?}");
            return;
        };
        self.ops[i].wall.record(wall_ns);
        self.ops[i].virt.record(virt_ns);
        self.slo.record(op_name, wall_ns);
    }

    /// Record how long one request sat in the bounded queue before a
    /// worker picked it up.
    pub fn record_queue_wait(&self, ns: u64) {
        self.queue_wait.record(ns);
    }

    /// Count one request rejected for backpressure.
    pub fn record_shed(&self) {
        self.shed.inc();
    }

    pub fn shed(&self) -> u64 {
        self.shed.get()
    }

    /// Set (or update) the latency objective for one op; its wall
    /// samples start feeding the op's sliding window.
    pub fn set_slo_target(&self, op_name: &str, target: SloTarget) {
        debug_assert!(op_index(op_name).is_some(), "unknown op name {op_name:?}");
        self.slo.register(op_name, target);
    }

    /// Evaluate every registered SLO over its current window, bumping
    /// breach counters.
    pub fn slo_statuses(&self) -> Vec<SloStatus> {
        self.slo.evaluate()
    }

    /// Point-in-time copy of the backing registry — the `METRICS`
    /// scrape's payload. Same handles `STATS` reads; see module docs.
    ///
    /// The per-op recorders live in this server's private registry, but
    /// subsystems the server *uses* (buffer pool `pool.*`, stream
    /// compression `serve.stream_chunk_lz`, shed/evict counters) record
    /// into the process-wide `bora_obs` registry — one pool, one set of
    /// numbers. The scrape is the union of both; on a (by-convention
    /// impossible) name collision, the private registry wins. Multiple
    /// in-process servers therefore report the same process-wide
    /// subsystem counters — fine in production (one server per process)
    /// and documented here for in-process test fleets.
    pub fn registry_snapshot(&self) -> MetricsSnapshot {
        let global = bora_obs::snapshot();
        let private = self.registry.snapshot();
        merge_snapshots(global, private)
    }

    /// Assemble the wire-level snapshot. Queue and cache numbers are the
    /// server's to fill in; this owns only the op recorders, queue-wait
    /// histogram, and shed count.
    pub fn snapshot_into(&self, mut base: StatsSnapshot) -> StatsSnapshot {
        base.ops = OP_NAMES
            .iter()
            .zip(self.ops.iter())
            .map(|(name, rec)| {
                let wall = rec.wall.snapshot();
                let virt = rec.virt.snapshot();
                (
                    name.to_string(),
                    OpSummary {
                        count: wall.count,
                        wall_min_ns: wall.min_or_zero(),
                        wall_mean_ns: wall.mean(),
                        wall_p99_ns: wall.percentile(0.99),
                        virt_mean_ns: virt.mean(),
                    },
                )
            })
            .collect();
        let qw = self.queue_wait.snapshot();
        base.queue_wait_mean_ns = qw.mean();
        base.queue_wait_p99_ns = qw.percentile(0.99);
        base.shed = self.shed();
        base
    }
}

/// Union of two sorted snapshots; entries in `wins` shadow same-named
/// entries in `base`. Both inputs are sorted (registry invariant) and the
/// output stays sorted, so scrape consumers can keep binary-searching.
fn merge_snapshots(base: MetricsSnapshot, wins: MetricsSnapshot) -> MetricsSnapshot {
    fn merge<T>(base: Vec<(String, T)>, wins: Vec<(String, T)>) -> Vec<(String, T)> {
        let mut out: std::collections::BTreeMap<String, T> = base.into_iter().collect();
        out.extend(wins);
        out.into_iter().collect()
    }
    MetricsSnapshot {
        counters: merge(base.counters, wins.counters),
        gauges: merge(base.gauges, wins.gauges),
        hists: merge(base.hists, wins.hists),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summaries_aggregate() {
        let m = Metrics::new();
        m.record("read", 100, 10);
        m.record("read", 300, 30);
        m.record("open", 1_000, 0);
        m.record_shed();

        let snap = m.snapshot_into(StatsSnapshot::default());
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.total_requests(), 3);
        let read = snap.op("read").unwrap();
        assert_eq!(read.count, 2);
        assert_eq!(read.wall_min_ns, 100);
        assert_eq!(read.wall_mean_ns, 200);
        assert_eq!(read.virt_mean_ns, 20);
        assert!(snap.op("stats").is_none());
    }

    #[test]
    fn stats_and_registry_cannot_drift() {
        // The STATS-vs-registry parity the drift fix guarantees: both
        // views project the same atomic store, so every STATS number must
        // equal its registry counterpart exactly.
        let m = Metrics::new();
        for i in 0..50u64 {
            m.record("read", i * 1_000, i);
            m.record("append", 77, 7);
        }
        m.record_queue_wait(5_000);
        m.record_shed();
        m.record_shed();

        let stats = m.snapshot_into(StatsSnapshot::default());
        let reg = m.registry_snapshot();
        let reg_hist =
            |name: &str| reg.hists.iter().find(|(n, _)| n == name).map(|(_, h)| *h).unwrap();
        for (name, op) in &stats.ops {
            let wall = reg_hist(&wall_metric(name));
            let virt = reg_hist(&virt_metric(name));
            debug_assert_eq!(op.count, wall.count, "{name}: count drift");
            debug_assert_eq!(op.wall_min_ns, wall.min_or_zero(), "{name}: min drift");
            debug_assert_eq!(op.wall_mean_ns, wall.mean(), "{name}: mean drift");
            debug_assert_eq!(op.wall_p99_ns, wall.percentile(0.99), "{name}: p99 drift");
            debug_assert_eq!(op.virt_mean_ns, virt.mean(), "{name}: virt drift");
        }
        let qw = reg_hist("serve.queue_wait_ns");
        debug_assert_eq!(stats.queue_wait_mean_ns, qw.mean());
        debug_assert_eq!(stats.queue_wait_p99_ns, qw.percentile(0.99));
        let reg_shed = reg.counters.iter().find(|(n, _)| n == "serve.shed").unwrap().1;
        debug_assert_eq!(stats.shed, reg_shed);
        assert_eq!(stats.shed, 2);
    }

    #[test]
    fn slo_targets_feed_from_recorded_ops() {
        let m = Metrics::new();
        m.set_slo_target("read", SloTarget::p99(1_000));
        for _ in 0..10 {
            m.record("read", 1_000_000, 0); // 1 ms ≫ 1 µs target
        }
        let statuses = m.slo_statuses();
        let read = statuses.iter().find(|s| s.name == "read").unwrap();
        assert!(read.breached);
        assert_eq!(read.samples, 10);
        // Ops without a target are not tracked.
        assert!(!statuses.iter().any(|s| s.name == "open"));
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "unknown op name"))]
    fn unknown_op_fails_in_debug_builds() {
        // Control-plane names ("stats", "trace") and typos must never be
        // recorded; in release the sample is dropped silently.
        let m = Metrics::new();
        m.record("stats", 5, 5);
        // Only reached in release builds: the sample was dropped silently.
        assert_eq!(m.snapshot_into(StatsSnapshot::default()).total_requests(), 0);
    }

    #[test]
    fn queue_wait_split_is_reported() {
        let m = Metrics::new();
        m.record_queue_wait(1_000);
        m.record_queue_wait(3_000);
        let snap = m.snapshot_into(StatsSnapshot::default());
        assert_eq!(snap.queue_wait_mean_ns, 2_000);
        assert_eq!(snap.queue_wait_p99_ns, 4_095); // ceiling of bucket ilog2(3000)=11
    }

    #[test]
    fn p99_lands_in_tail_bucket() {
        let m = Metrics::new();
        for _ in 0..99 {
            m.record("read", 1_000, 0); // bucket ilog2(1000)=9 → ceiling 1023
        }
        m.record("read", 1 << 20, 0);
        let snap = m.snapshot_into(StatsSnapshot::default());
        let p99 = snap.op("read").unwrap().wall_p99_ns;
        // Rank 99 of 100 falls in the 1µs bucket; the 1ms outlier is p100.
        assert_eq!(p99, 1023);
        // All-equal distribution: p99 == the one bucket's ceiling.
        let m2 = Metrics::new();
        for _ in 0..10 {
            m2.record("open", 7, 0);
        }
        assert_eq!(m2.snapshot_into(StatsSnapshot::default()).op("open").unwrap().wall_p99_ns, 7);
    }

    #[test]
    fn zero_and_huge_samples_do_not_panic() {
        let m = Metrics::new();
        m.record("meta", 0, 0);
        m.record("meta", u64::MAX, u64::MAX);
        let s = m.snapshot_into(StatsSnapshot::default());
        assert_eq!(s.op("meta").unwrap().count, 2);
        assert_eq!(s.op("meta").unwrap().wall_p99_ns, u64::MAX);
    }
}
