//! Per-operation service metrics, exposed through the `STATS` op.
//!
//! Latencies are recorded twice per request: **wall-clock** nanoseconds
//! (submit to response, what a real client experiences, including queue
//! wait) and **virtual** nanoseconds (what the storage cost model charged,
//! deterministic across hosts — the number the repro experiments compare).
//! The wall number is further split: the queue-wait histogram isolates
//! time spent parked in the bounded queue from the service time a worker
//! actually spent on the request.
//!
//! The histograms themselves are [`bora_obs::ExpHistogram`]s — the
//! power-of-two exponential histograms this module originally hand-rolled,
//! since generalized into the shared observability crate. They are atomic,
//! so recording takes no lock; percentile error is bounded by the 2x
//! bucket width — plenty for "did the tail blow up" questions. Each
//! `Metrics` owns its histograms (they are *not* in the global
//! `bora-obs` registry) so concurrent servers in one process do not mix
//! their numbers.

use std::sync::atomic::{AtomicU64, Ordering};

use bora_obs::ExpHistogram;

use crate::proto::{OpSummary, StatsSnapshot};

/// The metric op kinds, in the order `STATS` reports them.
pub const OP_NAMES: [&str; 8] =
    ["append", "meta", "open", "read", "read_stream", "seal", "stat", "topics"];

fn op_index(name: &str) -> Option<usize> {
    OP_NAMES.iter().position(|n| *n == name)
}

#[derive(Debug, Default)]
struct OpRecorder {
    wall: ExpHistogram,
    virt: ExpHistogram,
}

/// All service metrics. Everything is atomic; `stats`/`shutdown`/`trace`
/// ops are control-plane and intentionally unrecorded.
#[derive(Debug, Default)]
pub struct Metrics {
    ops: [OpRecorder; 8],
    queue_wait: ExpHistogram,
    shed: AtomicU64,
}

impl Metrics {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one completed request of kind `op_name`. Unknown names are a
    /// caller bug — the op table above and the protocol's `op_name` must
    /// agree — so they fail loudly under `debug_assertions` (tests) and
    /// drop silently in release builds.
    pub fn record(&self, op_name: &str, wall_ns: u64, virt_ns: u64) {
        let Some(i) = op_index(op_name) else {
            debug_assert!(false, "Metrics::record: unknown op name {op_name:?}");
            return;
        };
        self.ops[i].wall.record(wall_ns);
        self.ops[i].virt.record(virt_ns);
    }

    /// Record how long one request sat in the bounded queue before a
    /// worker picked it up.
    pub fn record_queue_wait(&self, ns: u64) {
        self.queue_wait.record(ns);
    }

    /// Count one request rejected for backpressure.
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Assemble the wire-level snapshot. Queue and cache numbers are the
    /// server's to fill in; this owns only the op recorders, queue-wait
    /// histogram, and shed count.
    pub fn snapshot_into(&self, mut base: StatsSnapshot) -> StatsSnapshot {
        base.ops = OP_NAMES
            .iter()
            .zip(self.ops.iter())
            .map(|(name, rec)| {
                let wall = rec.wall.snapshot();
                let virt = rec.virt.snapshot();
                (
                    name.to_string(),
                    OpSummary {
                        count: wall.count,
                        wall_min_ns: wall.min_or_zero(),
                        wall_mean_ns: wall.mean(),
                        wall_p99_ns: wall.percentile(0.99),
                        virt_mean_ns: virt.mean(),
                    },
                )
            })
            .collect();
        let qw = self.queue_wait.snapshot();
        base.queue_wait_mean_ns = qw.mean();
        base.queue_wait_p99_ns = qw.percentile(0.99);
        base.shed = self.shed();
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summaries_aggregate() {
        let m = Metrics::new();
        m.record("read", 100, 10);
        m.record("read", 300, 30);
        m.record("open", 1_000, 0);
        m.record_shed();

        let snap = m.snapshot_into(StatsSnapshot::default());
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.total_requests(), 3);
        let read = snap.op("read").unwrap();
        assert_eq!(read.count, 2);
        assert_eq!(read.wall_min_ns, 100);
        assert_eq!(read.wall_mean_ns, 200);
        assert_eq!(read.virt_mean_ns, 20);
        assert!(snap.op("stats").is_none());
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "unknown op name"))]
    fn unknown_op_fails_in_debug_builds() {
        // Control-plane names ("stats", "trace") and typos must never be
        // recorded; in release the sample is dropped silently.
        let m = Metrics::new();
        m.record("stats", 5, 5);
        // Only reached in release builds: the sample was dropped silently.
        assert_eq!(m.snapshot_into(StatsSnapshot::default()).total_requests(), 0);
    }

    #[test]
    fn queue_wait_split_is_reported() {
        let m = Metrics::new();
        m.record_queue_wait(1_000);
        m.record_queue_wait(3_000);
        let snap = m.snapshot_into(StatsSnapshot::default());
        assert_eq!(snap.queue_wait_mean_ns, 2_000);
        assert_eq!(snap.queue_wait_p99_ns, 4_095); // ceiling of bucket ilog2(3000)=11
    }

    #[test]
    fn p99_lands_in_tail_bucket() {
        let m = Metrics::new();
        for _ in 0..99 {
            m.record("read", 1_000, 0); // bucket ilog2(1000)=9 → ceiling 1023
        }
        m.record("read", 1 << 20, 0);
        let snap = m.snapshot_into(StatsSnapshot::default());
        let p99 = snap.op("read").unwrap().wall_p99_ns;
        // Rank 99 of 100 falls in the 1µs bucket; the 1ms outlier is p100.
        assert_eq!(p99, 1023);
        // All-equal distribution: p99 == the one bucket's ceiling.
        let m2 = Metrics::new();
        for _ in 0..10 {
            m2.record("open", 7, 0);
        }
        assert_eq!(m2.snapshot_into(StatsSnapshot::default()).op("open").unwrap().wall_p99_ns, 7);
    }

    #[test]
    fn zero_and_huge_samples_do_not_panic() {
        let m = Metrics::new();
        m.record("meta", 0, 0);
        m.record("meta", u64::MAX, u64::MAX);
        let s = m.snapshot_into(StatsSnapshot::default());
        assert_eq!(s.op("meta").unwrap().count, 2);
        assert_eq!(s.op("meta").unwrap().wall_p99_ns, u64::MAX);
    }
}
