//! The query server: a bounded request queue feeding a worker pool.
//!
//! ```text
//!  client conns ──▶ submit() ──try_send──▶ [bounded queue] ──▶ worker 0..N
//!                      │                                          │
//!                      │ full? ◀── Response::Overloaded           ├─ HandleCache (pinned LRU)
//!                      └──────── reply channel ◀──────────────────┘
//! ```
//!
//! Backpressure is explicit: `submit` never blocks on a full queue — it
//! sheds the request with [`Response::Overloaded`] so the client decides
//! whether to retry. The control-plane ops (`STATS`, `SHUTDOWN`) bypass
//! the queue entirely, which is what makes an overloaded server
//! observable: you can always ask it how overloaded it is.
//!
//! Workers register with a [`simfs::ConcurrencyGauge`], so on cost-model
//! backends each request's virtual I/O time reflects how many workers
//! were actually competing for the device when it ran.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use bora::{BoraError, BufferPool, StreamOptions};
use bora_ingest::IngestStore;
use bora_obs::TraceContext;
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use ros_msgs::Time;
use simfs::{ConcurrencyGauge, IoCtx, Storage};

use crate::cache::HandleCache;
use crate::metrics::Metrics;
use crate::proto::{
    compress_chunk, ContainerStat, ErrorCode, MetricsReport, PingInfo, Request, Response,
    SlowOpEntry, StatsSnapshot, WireMessage, METRICS_REPORT_VERSION,
};

/// Messages per [`Response::StreamChunk`] frame. Small enough that the
/// first result reaches the client while the merge is still running,
/// large enough that framing overhead stays negligible.
const STREAM_CHUNK_MSGS: usize = 32;

/// Rows per [`Response::QueryChunk`] frame. Query rows are a few scalar
/// cells each — far smaller than raw messages — so the batch can be
/// larger than [`STREAM_CHUNK_MSGS`] at the same framing overhead.
const QUERY_CHUNK_ROWS: usize = 64;

/// Bound of a streaming reply channel: how many frames the worker may run
/// ahead of the transport before it blocks. This is the server-side half
/// of end-to-end backpressure — a slow client throttles the merge instead
/// of buffering the whole result set in memory.
const STREAM_WINDOW: usize = 4;

/// Entries kept in the slow-op ring; older entries are dropped. Bounded
/// so an hour of pathological latency costs fixed memory, sized so the
/// ring still spans a useful tail when a scrape arrives.
const SLOW_OP_RING: usize = 128;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads draining the request queue.
    pub workers: usize,
    /// Bound of the request queue; requests beyond it are shed.
    pub queue_capacity: usize,
    /// Container handles kept open in the LRU cache.
    pub cache_capacity: usize,
    /// Stable identity of this server within a cluster, echoed by `PING`.
    /// 0 for a standalone deployment.
    pub server_id: u32,
    /// Ops whose total wall time (queue wait included) reaches this land
    /// in the slow-op ring reported by `METRICS`. 0 records every op.
    pub slow_op_threshold_ns: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 8,
            server_id: 0,
            slow_op_threshold_ns: 10_000_000, // 10 ms
        }
    }
}

enum Job {
    Work {
        req: Request,
        reply: Sender<Response>,
        submitted: Instant,
        /// Trace context the client sent, if any; the worker adopts it so
        /// its spans parent under the client's.
        tctx: Option<TraceContext>,
        /// `bora_obs::now_ns()` at submit when tracing is enabled, 0
        /// otherwise — start of the synthesized queue-wait span.
        submitted_ns: u64,
        /// Deadline budget (relative ns) the client propagated on the
        /// wire, if any. A worker that picks the job up after the budget
        /// is spent sheds it unworked.
        deadline_ns: Option<u64>,
    },
    /// Shutdown sentinel: one per worker.
    Poison,
}

struct Shared<S: Storage> {
    storage: S,
    cache: HandleCache<S>,
    /// Live ingest roots this server has opened, keyed by root path.
    /// Unlike the handle cache these are never evicted: an `IngestStore`
    /// owns the root's WAL shards and memtable, so there must be exactly
    /// one per root per process.
    ingests: Mutex<HashMap<String, Arc<IngestStore<S>>>>,
    metrics: Metrics,
    gauge: ConcurrencyGauge,
    shutting_down: AtomicBool,
    server_id: u32,
    started: Instant,
    /// Recent ops over the slow threshold, oldest first.
    slow_ops: Mutex<VecDeque<SlowOpEntry>>,
    slow_op_threshold_ns: u64,
}

/// A running bora-serve instance. Cheap to share via `Arc`; transports
/// call [`Server::submit`] once per decoded request.
pub struct Server<S: Storage> {
    shared: Arc<Shared<S>>,
    tx: Sender<Job>,
    queue_capacity: usize,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl<S: Storage + Clone + Send + Sync + 'static> Server<S> {
    /// Start the worker pool over `storage`.
    pub fn start(storage: S, config: ServerConfig) -> Arc<Self> {
        assert!(config.workers > 0, "need at least one worker");
        let (tx, rx) = channel::bounded::<Job>(config.queue_capacity.max(1));
        // One byte-budgeted pool for the whole process (sized by
        // `BORA_POOL_BYTES`): every handle the cache opens and every
        // ingest snapshot shares it, so total page memory has a single
        // knob regardless of how many containers are hot.
        let shared = Arc::new(Shared {
            storage,
            cache: HandleCache::new(config.cache_capacity).with_pool(BufferPool::from_env()),
            ingests: Mutex::new(HashMap::new()),
            metrics: Metrics::new(),
            gauge: ConcurrencyGauge::new(),
            shutting_down: AtomicBool::new(false),
            server_id: config.server_id,
            started: Instant::now(),
            slow_ops: Mutex::new(VecDeque::with_capacity(SLOW_OP_RING)),
            slow_op_threshold_ns: config.slow_op_threshold_ns,
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rx: Receiver<Job> = rx.clone();
                std::thread::Builder::new()
                    .name(format!("bora-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &rx))
                    .expect("spawn worker")
            })
            .collect();
        Arc::new(Server {
            shared,
            tx,
            queue_capacity: config.queue_capacity.max(1),
            workers: Mutex::new(workers),
        })
    }

    /// Handle one request to completion. Control-plane ops answer inline;
    /// data ops go through the bounded queue and may come back
    /// [`Response::Overloaded`].
    pub fn submit(&self, req: Request) -> Response {
        self.submit_traced(req, None)
    }

    /// [`Server::submit`] carrying the client's trace context, if the
    /// transport decoded one: the worker adopts it, so every server-side
    /// span of this request parents under the client's span.
    pub fn submit_traced(&self, req: Request, tctx: Option<TraceContext>) -> Response {
        self.submit_framed(req, tctx, None)
    }

    /// [`Server::submit_traced`] carrying the client's deadline budget,
    /// if the transport decoded one. Control-plane ops ignore it (they
    /// answer inline and must stay reachable under overload); data ops
    /// carry it to the worker, which sheds the job if its queue wait
    /// already exceeded the budget — the client has given up or is about
    /// to, so doing the work would burn a worker on a dead request.
    pub fn submit_framed(
        &self,
        req: Request,
        tctx: Option<TraceContext>,
        deadline_ns: Option<u64>,
    ) -> Response {
        match req {
            Request::Stats => Response::Stats(self.stats()),
            // METRICS is control-plane for the same reason PING is: the
            // telemetry poller must see an overloaded node, not be shed
            // by it.
            Request::Metrics => Response::Metrics(self.metrics_report()),
            // PING answers inline for the same reason STATS does: the
            // health tracker must hear from an overloaded server, and the
            // queue depth in the reply is the overload signal itself.
            Request::Ping => Response::Pong(self.ping()),
            // TRACE drains the process-wide span buffers; like STATS it
            // answers inline so a wedged pool can still be profiled. With
            // tracing disabled the document is just empty.
            Request::Trace => {
                Response::Trace(bora_obs::chrome_trace(&bora_obs::drain(), bora_obs::dropped()))
            }
            Request::Shutdown => {
                self.begin_shutdown();
                Response::ShuttingDown
            }
            // A streamed read through the single-response API degrades
            // to a buffered read: aggregate the chunk frames. Byte-wise
            // the result is identical to `Request::Read` over the same
            // query — the pipeline is the same, only the framing differs.
            req @ (Request::ReadStream { .. } | Request::ReadStream2 { .. }) => {
                let mut messages: Vec<WireMessage> = Vec::new();
                let mut out = Response::Error {
                    code: ErrorCode::ShuttingDown,
                    message: "worker exited before replying".into(),
                };
                self.submit_streamed_framed(req, tctx, deadline_ns, &mut |resp| {
                    match resp {
                        Response::StreamChunk(mut chunk) => messages.append(&mut chunk),
                        Response::StreamChunkLz(frame) => {
                            match crate::proto::decompress_chunk(&frame) {
                                Ok(mut chunk) => messages.append(&mut chunk),
                                Err(e) => {
                                    out = Response::Error {
                                        code: ErrorCode::Corrupt,
                                        message: e.to_string(),
                                    };
                                    return false;
                                }
                            }
                        }
                        Response::StreamEnd { .. } => {
                            out = Response::Read(std::mem::take(&mut messages));
                        }
                        other => out = other,
                    }
                    true
                });
                out
            }
            // A query through the single-response API degrades the same
            // way: collect the frames, fold them into the one response
            // that answers what was asked (rows for a plain query, the
            // plan for EXPLAIN).
            req @ Request::Query { .. } => {
                let mut frames = Vec::new();
                self.submit_streamed_framed(req, tctx, deadline_ns, &mut |resp| {
                    frames.push(resp);
                    true
                });
                fold_query_frames(frames)
            }
            req => {
                if self.is_shutting_down() {
                    return Response::Error {
                        code: ErrorCode::ShuttingDown,
                        message: "server is shutting down".into(),
                    };
                }
                // Appends shed *before* reads: the queue admits them only
                // while less than half full, so a recording robot under a
                // write burst backs off while analysts' queries still land.
                if matches!(req, Request::Append { .. })
                    && self.tx.len() >= (self.queue_capacity / 2).max(1)
                {
                    self.shared.metrics.record_shed();
                    bora_obs::counter("serve.append_shed").inc();
                    return Response::Overloaded;
                }
                let (reply_tx, reply_rx) = channel::bounded(1);
                let job = Job::Work {
                    req,
                    reply: reply_tx,
                    submitted: Instant::now(),
                    tctx,
                    submitted_ns: obs_now(),
                    deadline_ns,
                };
                match self.tx.try_send(job) {
                    Ok(()) => {}
                    Err(TrySendError::Full(_)) => {
                        self.shared.metrics.record_shed();
                        return Response::Overloaded;
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        return Response::Error {
                            code: ErrorCode::ShuttingDown,
                            message: "worker pool stopped".into(),
                        };
                    }
                }
                reply_rx.recv().unwrap_or(Response::Error {
                    code: ErrorCode::ShuttingDown,
                    message: "worker exited before replying".into(),
                })
            }
        }
    }

    /// Handle one request, delivering every response frame through `emit`.
    ///
    /// For single-response ops this is exactly [`Server::submit`] plus one
    /// `emit` call. For [`Request::ReadStream`] it emits zero or more
    /// [`Response::StreamChunk`] frames followed by a terminal frame
    /// ([`Response::StreamEnd`] on success, an error/overload response
    /// otherwise). The reply channel is bounded ([`STREAM_WINDOW`]): a
    /// transport that is slow to `emit` throttles the worker's merge loop.
    ///
    /// Returns `false` once `emit` does — the transport lost its client —
    /// at which point the in-flight stream is aborted server-side (the
    /// worker's next send fails and it drops the cache pin).
    pub fn submit_streamed(&self, req: Request, emit: &mut dyn FnMut(Response) -> bool) -> bool {
        self.submit_streamed_traced(req, None, emit)
    }

    /// [`Server::submit_streamed`] carrying the client's trace context;
    /// see [`Server::submit_traced`].
    pub fn submit_streamed_traced(
        &self,
        req: Request,
        tctx: Option<TraceContext>,
        emit: &mut dyn FnMut(Response) -> bool,
    ) -> bool {
        self.submit_streamed_framed(req, tctx, None, emit)
    }

    /// [`Server::submit_streamed_traced`] carrying the client's deadline
    /// budget; see [`Server::submit_framed`].
    pub fn submit_streamed_framed(
        &self,
        req: Request,
        tctx: Option<TraceContext>,
        deadline_ns: Option<u64>,
        emit: &mut dyn FnMut(Response) -> bool,
    ) -> bool {
        if !matches!(
            req,
            Request::ReadStream { .. } | Request::ReadStream2 { .. } | Request::Query { .. }
        ) {
            return emit(self.submit_framed(req, tctx, deadline_ns));
        }
        if self.is_shutting_down() {
            return emit(Response::Error {
                code: ErrorCode::ShuttingDown,
                message: "server is shutting down".into(),
            });
        }
        let (reply_tx, reply_rx) = channel::bounded(STREAM_WINDOW);
        let job = Job::Work {
            req,
            reply: reply_tx,
            submitted: Instant::now(),
            tctx,
            submitted_ns: obs_now(),
            deadline_ns,
        };
        match self.tx.try_send(job) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                self.shared.metrics.record_shed();
                return emit(Response::Overloaded);
            }
            Err(TrySendError::Disconnected(_)) => {
                return emit(Response::Error {
                    code: ErrorCode::ShuttingDown,
                    message: "worker pool stopped".into(),
                });
            }
        }
        loop {
            let resp = match reply_rx.recv() {
                Ok(resp) => resp,
                Err(_) => {
                    // Worker died mid-stream without a terminal frame.
                    return emit(Response::Error {
                        code: ErrorCode::ShuttingDown,
                        message: "worker exited mid-stream".into(),
                    });
                }
            };
            // Query streams interleave schema and row-chunk frames before
            // their terminal QueryEnd; treating any of them as terminal
            // would stop the drain with the worker still producing.
            let terminal = !matches!(
                resp,
                Response::StreamChunk(_)
                    | Response::StreamChunkLz(_)
                    | Response::QuerySchema(_)
                    | Response::QueryChunk(_)
            );
            if !emit(resp) {
                // Client is gone: dropping `reply_rx` makes the worker's
                // next send fail, aborting the stream and releasing its
                // cache pin.
                return false;
            }
            if terminal {
                return true;
            }
        }
    }

    /// Health-probe payload (`PING`): identity, uptime, live queue depth.
    pub fn ping(&self) -> PingInfo {
        PingInfo {
            server_id: self.shared.server_id,
            uptime_ns: self.shared.started.elapsed().as_nanos() as u64,
            queue_depth: self.tx.len() as u32,
        }
    }

    /// Declare which containers this server *owns* (vs merely replicates)
    /// under a cluster placement. Owned handles are evicted last — a
    /// burst of replica-read traffic (failover, hedges) cannot churn the
    /// owner's working set out of its own cache.
    pub fn set_owned_containers<I: IntoIterator<Item = String>>(&self, roots: I) {
        self.shared.cache.set_preferred(roots);
    }

    /// Current metrics, including live queue depth and cache counters.
    pub fn stats(&self) -> StatsSnapshot {
        let cache = self.shared.cache.stats();
        let base = StatsSnapshot {
            queue_depth: self.tx.len() as u32,
            queue_capacity: self.queue_capacity as u32,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            cache_len: cache.len,
            cache_capacity: cache.capacity,
            ..StatsSnapshot::default()
        };
        self.shared.metrics.snapshot_into(base)
    }

    /// Versioned scrape payload (`METRICS`): the node's full metric
    /// registry plus its slow-op tail. Reads the same handles `STATS`
    /// does, so the two views can never disagree.
    pub fn metrics_report(&self) -> MetricsReport {
        let snap = self.shared.metrics.registry_snapshot();
        MetricsReport {
            version: METRICS_REPORT_VERSION,
            server_id: self.shared.server_id,
            uptime_ns: self.shared.started.elapsed().as_nanos() as u64,
            counters: snap.counters,
            gauges: snap.gauges,
            hists: snap.hists,
            slow_ops: self.shared.slow_ops.lock().iter().cloned().collect(),
        }
    }

    /// Set (or update) a latency objective for `op_name`; see
    /// [`Metrics::set_slo_target`].
    pub fn set_slo_target(&self, op_name: &str, target: bora_obs::SloTarget) {
        self.shared.metrics.set_slo_target(op_name, target);
    }

    /// Evaluate every registered SLO over its current window.
    pub fn slo_statuses(&self) -> Vec<bora_obs::SloStatus> {
        self.shared.metrics.slo_statuses()
    }

    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down.load(Ordering::SeqCst)
    }

    /// Outstanding cache pins on `container` (0 if not cached). Streaming
    /// reads hold a pin for the stream's lifetime; this makes that
    /// observable to tests and debugging tools.
    pub fn cache_pins(&self, container: &str) -> u32 {
        self.shared.cache.pins(container)
    }

    /// Stop accepting data requests and tell every worker to exit once the
    /// queue drains. Idempotent; does not join (see [`Server::shutdown`]).
    pub fn begin_shutdown(&self) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        let n = self.workers.lock().len();
        for _ in 0..n {
            // Blocking send: poisons queue behind any in-flight work.
            if self.tx.send(Job::Poison).is_err() {
                break;
            }
        }
    }

    /// `begin_shutdown` plus joining the workers.
    pub fn shutdown(&self) {
        self.begin_shutdown();
        for h in self.workers.lock().drain(..) {
            let _ = h.join();
        }
    }
}

impl<S: Storage> Drop for Server<S> {
    fn drop(&mut self) {
        // Last Arc going away with workers possibly parked in `recv`:
        // poison and join so no worker thread outlives the server. The
        // blocking sends terminate because workers only ever drain the
        // queue. Idempotent after an explicit `shutdown()`.
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        let n = self.workers.lock().len();
        for _ in 0..n {
            if self.tx.send(Job::Poison).is_err() {
                break;
            }
        }
        for h in self.workers.lock().drain(..) {
            let _ = h.join();
        }
    }
}

/// `bora_obs::now_ns()` when tracing is enabled, 0 otherwise — the
/// untraced hot path must not touch the clock.
fn obs_now() -> u64 {
    if bora_obs::enabled() {
        bora_obs::now_ns()
    } else {
        0
    }
}

fn worker_loop<S: Storage + Clone>(shared: &Shared<S>, rx: &Receiver<Job>) {
    // Lane convention: pid 0 is the client; servers are `server_id + 1`.
    bora_obs::set_thread_node(shared.server_id + 1);
    while let Ok(job) = rx.recv() {
        let (req, reply, submitted, tctx, submitted_ns, deadline_ns) = match job {
            Job::Poison => return,
            Job::Work { req, reply, submitted, tctx, submitted_ns, deadline_ns } => {
                (req, reply, submitted, tctx, submitted_ns, deadline_ns)
            }
        };
        // Control-plane ops never reach the queue (submit answers them
        // inline); seeing one here means a transport bypassed submit.
        // They must not hit the metrics table, whose op names are
        // data-plane only.
        if matches!(
            req,
            Request::Stats | Request::Metrics | Request::Trace | Request::Ping | Request::Shutdown
        ) {
            let _ = reply.send(Response::Error {
                code: ErrorCode::BadRequest,
                message: "control op routed to worker".into(),
            });
            continue;
        }
        // Everything this request records now parents under the client's
        // span (a no-op guard when the request carried no context).
        let _trace = bora_obs::adopt_context(tctx);
        let queue_wait_ns = submitted.elapsed().as_nanos() as u64;
        shared.metrics.record_queue_wait(queue_wait_ns);
        if submitted_ns != 0 {
            // Synthesized after the fact: the submitting thread cannot
            // open a span that ends on this one.
            bora_obs::record_complete("serve.queue_wait", submitted_ns, queue_wait_ns);
        }
        // Deadline shed: if the client's budget was spent while the job
        // queued, answering with the real result would arrive at a caller
        // that already timed out — reply with the miss instead of burning
        // a worker on dead work.
        if let Some(budget) = deadline_ns {
            if queue_wait_ns >= budget {
                shared.metrics.record_shed();
                bora_obs::counter("serve.deadline_shed").inc();
                let _ = reply.send(Response::Error {
                    code: ErrorCode::DeadlineExceeded,
                    message: format!(
                        "deadline budget {budget}ns spent in queue ({queue_wait_ns}ns)"
                    ),
                });
                continue;
            }
        }
        let container = req.container().map(str::to_owned).unwrap_or_default();
        let active = shared.gauge.enter();
        let mut ctx = active.ctx();
        let op = req.op_name();
        let sp = bora_obs::span(span_name(op));
        // Streaming ops: chunk frames go out on `reply` as the merge
        // yields; the terminal frame (StreamEnd or error) is returned
        // and sent below, *after* the metrics record — so a client
        // that has consumed the stream is guaranteed to see the op
        // counted by a subsequent STATS.
        let resp = match req {
            Request::ReadStream { ref container, ref topics, range } => {
                handle_stream(shared, container, topics, range, false, &reply, &mut ctx)
            }
            Request::ReadStream2 { ref container, ref topics, range } => {
                handle_stream(shared, container, topics, range, true, &reply, &mut ctx)
            }
            Request::Query { ref container, ref sql, partial } => {
                handle_query(shared, container, sql, partial, &reply, &mut ctx)
            }
            other => Some(handle(shared, other, &mut ctx)),
        };
        sp.end_virt(ctx.elapsed_ns());
        drop(active);
        let wall_ns = submitted.elapsed().as_nanos() as u64;
        shared.metrics.record(op, wall_ns, ctx.elapsed_ns());
        if wall_ns >= shared.slow_op_threshold_ns {
            let mut ring = shared.slow_ops.lock();
            if ring.len() == SLOW_OP_RING {
                ring.pop_front();
            }
            ring.push_back(SlowOpEntry {
                trace_id: tctx.map(|c| c.trace_id).unwrap_or(0),
                op: op.to_owned(),
                container,
                wall_ns: wall_ns - queue_wait_ns,
                queue_wait_ns,
                server_id: shared.server_id,
            });
        }
        // A client that gave up (dropped the reply receiver) is not an
        // error; the work is simply discarded.
        if let Some(resp) = resp {
            let _ = reply.send(resp);
        }
    }
}

/// Static span name for a data-plane op (span names must be `'static`).
fn span_name(op: &str) -> &'static str {
    match op {
        "open" => "serve.open",
        "topics" => "serve.topics",
        "meta" => "serve.meta",
        "read" => "serve.read",
        "read_stream" => "serve.read_stream",
        "query" => "serve.query",
        "append" => "serve.append",
        "seal" => "serve.seal",
        "stat" => "serve.stat",
        _ => "serve.other",
    }
}

/// Resolve `container` as a live ingest root, if it is one. The registry
/// holds the process's single `IngestStore` per root; a miss probes the
/// medium for the `.boraingest` marker and opens (recovering) on first
/// touch. Plain containers return `Ok(None)` and take the handle-cache
/// path.
fn ingest_for<S: Storage + Clone>(
    shared: &Shared<S>,
    container: &str,
    ctx: &mut IoCtx,
) -> Result<Option<Arc<IngestStore<S>>>, BoraError> {
    if let Some(st) = shared.ingests.lock().get(container) {
        return Ok(Some(Arc::clone(st)));
    }
    if !IngestStore::is_ingest_root(&shared.storage, container, ctx) {
        return Ok(None);
    }
    let mut store = IngestStore::open(shared.storage.clone(), container, ctx)?;
    if let Some(pool) = shared.cache.pool() {
        // Ingest snapshot reads draw pages from the same process-wide
        // pool as plain container handles.
        store = store.with_pool(Arc::clone(pool));
    }
    let opened = Arc::new(store);
    // Two workers may race the first open; the registry keeps whichever
    // inserted first and the loser's store is dropped unused.
    let mut reg = shared.ingests.lock();
    Ok(Some(Arc::clone(reg.entry(container.to_owned()).or_insert(opened))))
}

/// Serve a read over a live ingest root from an MVCC snapshot, chunked
/// into stream frames. The snapshot materializes the merge (memtable and
/// sealed segments are memory-resident anyway); byte-wise the result is
/// identical to the same query against the compacted container.
fn stream_snapshot<S: Storage + Clone>(
    store: &IngestStore<S>,
    topics: &[String],
    range: Option<(Time, Time)>,
    lz: bool,
    reply: &Sender<Response>,
    ctx: &mut IoCtx,
) -> Result<Option<Response>, BoraError> {
    let snap = store.snapshot(ctx)?;
    let refs: Vec<&str> = topics.iter().map(String::as_str).collect();
    let records = match range {
        Some((start, end)) => snap.read_time_range(&refs, start, end, ctx)?,
        None => snap.read_topics(&refs, ctx)?,
    };
    let total = records.len() as u64;
    let mut batch: Vec<WireMessage> = Vec::with_capacity(STREAM_CHUNK_MSGS);
    for rec in records {
        batch.push(WireMessage::from(rec));
        if batch.len() >= STREAM_CHUNK_MSGS
            && reply.send(chunk_frame(std::mem::take(&mut batch), lz, ctx)).is_err()
        {
            return Ok(None);
        }
    }
    if !batch.is_empty() && reply.send(chunk_frame(batch, lz, ctx)).is_err() {
        return Ok(None);
    }
    Ok(Some(Response::StreamEnd { messages: total }))
}

/// Encode one outgoing stream batch in the encoding the client
/// negotiated: `READ_STREAM2` clients get LZ chunk frames (with the
/// codec's raw fallback for incompressible batches), plain clients get
/// the classic chunk.
fn chunk_frame(batch: Vec<WireMessage>, lz: bool, ctx: &mut IoCtx) -> Response {
    if lz {
        bora_obs::counter("serve.stream_chunk_lz").inc();
        compress_chunk(&batch, ctx)
    } else {
        Response::StreamChunk(batch)
    }
}

/// Run a [`Request::ReadStream`], sending chunk frames on `reply` as the
/// k-way merge yields messages. The terminal frame ([`Response::StreamEnd`]
/// or an error) is *returned*, not sent: the worker loop sends it after
/// recording metrics, so the op is counted before any client can observe
/// stream completion. `None` means the receiver disappeared mid-stream
/// (client hung up, or `submit_streamed` returned early) and there is
/// nobody left to send a terminal frame to.
///
/// The cache pin (`pinned`) is held for the whole stream: a burst of
/// opens for other containers cannot evict the handle under an in-flight
/// stream. On hang-up the stream is aborted — the pin drops, and the
/// virtual time already spent is still folded into `ctx` so metrics stay
/// honest.
fn handle_stream<S: Storage + Clone>(
    shared: &Shared<S>,
    container: &str,
    topics: &[String],
    range: Option<(Time, Time)>,
    lz: bool,
    reply: &Sender<Response>,
    ctx: &mut IoCtx,
) -> Option<Response> {
    let result = (|| -> Result<Option<Response>, BoraError> {
        if let Some(store) = ingest_for(shared, container, ctx)? {
            return stream_snapshot(&store, topics, range, lz, reply, ctx);
        }
        let pinned = shared.cache.get_or_open(&shared.storage, container, ctx)?;
        let refs: Vec<&str> = topics.iter().map(String::as_str).collect();
        let opts = StreamOptions::default();
        let mut stream = match range {
            Some((start, end)) => pinned.bag().stream_topics_time(&refs, start, end, opts, ctx)?,
            None => pinned.bag().stream_topics(&refs, opts, ctx)?,
        };
        let mut batch: Vec<WireMessage> = Vec::with_capacity(STREAM_CHUNK_MSGS);
        let mut total = 0u64;
        while let Some(msg) = stream.next_msg(ctx)? {
            batch.push(WireMessage::from(msg.to_record()));
            total += 1;
            if batch.len() >= STREAM_CHUNK_MSGS
                && reply.send(chunk_frame(std::mem::take(&mut batch), lz, ctx)).is_err()
            {
                stream.charge_into(ctx);
                return Ok(None);
            }
        }
        if !batch.is_empty() && reply.send(chunk_frame(batch, lz, ctx)).is_err() {
            return Ok(None);
        }
        Ok(Some(Response::StreamEnd { messages: total }))
    })();
    match result {
        Ok(terminal) => terminal,
        Err(e) => {
            if matches!(e, BoraError::ChecksumMismatch { .. }) && shared.cache.invalidate(container)
            {
                bora_obs::counter("serve.evict_checksum").inc();
            }
            Some(error_response(e))
        }
    }
}

/// Run a [`Request::Query`], sending the schema frame and row chunks on
/// `reply` as the cursor yields; the terminal frame ([`Response::QueryEnd`]
/// or an error) is *returned*, like [`handle_stream`]. A statement that
/// fails to compile answers [`ErrorCode::BadQuery`] with the caret
/// rendering — the client's mistake, the connection stays usable.
/// Storage failures mid-scan keep their existing wire categories (and
/// the checksum eviction policy) so retry layers treat a query exactly
/// like a read of the same container.
fn handle_query<S: Storage + Clone>(
    shared: &Shared<S>,
    container: &str,
    sql: &str,
    partial: bool,
    reply: &Sender<Response>,
    ctx: &mut IoCtx,
) -> Option<Response> {
    // Compile before touching storage.
    let p = match bora_query::prepare(sql) {
        Ok(p) => p,
        Err(e) => {
            bora_obs::counter("serve.bad_query").inc();
            return Some(Response::Error {
                code: ErrorCode::BadQuery,
                message: e.render_caret(sql),
            });
        }
    };
    let result = (|| -> Result<Option<Response>, bora_query::QueryError> {
        if let Some(store) = ingest_for(shared, container, ctx)? {
            // Live root: execute over an MVCC snapshot, with the plan's
            // pushed-down time range and topic set shaping the snapshot
            // read. Datatypes come from the pinned generation's meta; a
            // topic still tail-only has none yet and its fields read as
            // null until the next compaction.
            let snap = store.snapshot(ctx)?;
            let datatypes = snap.datatypes(ctx)?;
            let refs: Vec<&str> = p.plan.scan.topics.iter().map(String::as_str).collect();
            let records = match p.plan.scan.range {
                Some((lo, hi)) => snap.read_time_range(
                    &refs,
                    Time::from_nanos(lo.min(bora_query::MAX_TIME_NS)),
                    Time::from_nanos(hi.min(bora_query::MAX_TIME_NS)),
                    ctx,
                )?,
                None => snap.read_topics(&refs, ctx)?,
            };
            let mut cur = p.cursor_records(records, datatypes, partial)?;
            drain_query(&p, &mut cur, reply)
        } else {
            let pinned = shared.cache.get_or_open(&shared.storage, container, ctx)?;
            let mut cur = p.cursor_bag(pinned.bag(), partial, ctx)?;
            drain_query(&p, &mut cur, reply)
        }
    })();
    match result {
        Ok(terminal) => terminal,
        Err(e) => Some(match e.into_storage() {
            Ok(be) => {
                if matches!(be, BoraError::ChecksumMismatch { .. })
                    && shared.cache.invalidate(container)
                {
                    bora_obs::counter("serve.evict_checksum").inc();
                }
                error_response(be)
            }
            // Semantic failures surfaced at execution time (partial mode
            // on a non-aggregate statement, a bad wire blob) are still
            // the statement's fault.
            Err(qe) => {
                bora_obs::counter("serve.bad_query").inc();
                Response::Error { code: ErrorCode::BadQuery, message: qe.render_caret(sql) }
            }
        }),
    }
}

/// Stream one prepared query's answer: schema frame, then row chunks.
/// `EXPLAIN` renders the plan without executing; `EXPLAIN ANALYZE`
/// executes and streams rows like a plain query, then annotates the
/// plan with the observed operator counts in the terminal frame. `None`
/// means the client hung up mid-stream.
fn drain_query<S: Storage>(
    p: &bora_query::Prepared,
    cur: &mut bora_query::Cursor<'_, S>,
    reply: &Sender<Response>,
) -> Result<Option<Response>, bora_query::QueryError> {
    if reply.send(Response::QuerySchema(cur.columns())).is_err() {
        return Ok(None);
    }
    if p.explain_mode() == bora_query::ExplainMode::Plan {
        return Ok(Some(Response::QueryEnd {
            rows: 0,
            explain: bora_query::explain_text(p, None),
        }));
    }
    let mut batch: Vec<bora_query::Row> = Vec::with_capacity(QUERY_CHUNK_ROWS);
    let mut total = 0u64;
    while let Some(row) = cur.next_row()? {
        total += 1;
        batch.push(row);
        if batch.len() >= QUERY_CHUNK_ROWS {
            let frame = Response::QueryChunk(bora_query::encode_rows(&batch));
            batch.clear();
            if reply.send(frame).is_err() {
                return Ok(None);
            }
        }
    }
    if !batch.is_empty()
        && reply.send(Response::QueryChunk(bora_query::encode_rows(&batch))).is_err()
    {
        return Ok(None);
    }
    let explain = match p.explain_mode() {
        bora_query::ExplainMode::Analyze => bora_query::explain_text(p, Some(&cur.stats())),
        _ => String::new(),
    };
    Ok(Some(Response::QueryEnd { rows: total, explain }))
}

/// Fold a query's frame stream into the one response the single-frame
/// API can carry: all row chunks re-encoded as one blob for a plain
/// query, the terminal [`Response::QueryEnd`] when the statement was an
/// EXPLAIN variant (the plan is what was asked for). Errors and
/// overload frames pass through.
fn fold_query_frames(frames: Vec<Response>) -> Response {
    let mut rows: Vec<bora_query::Row> = Vec::new();
    let mut out = Response::Error {
        code: ErrorCode::ShuttingDown,
        message: "worker exited before replying".into(),
    };
    for resp in frames {
        match resp {
            Response::QuerySchema(_) => {}
            Response::QueryChunk(blob) => match bora_query::decode_rows(&blob) {
                Ok(mut r) => rows.append(&mut r),
                Err(e) => {
                    return Response::Error { code: ErrorCode::Corrupt, message: e.to_string() }
                }
            },
            Response::QueryEnd { rows: n, explain } => {
                out = if explain.is_empty() {
                    Response::QueryChunk(bora_query::encode_rows(&rows))
                } else {
                    Response::QueryEnd { rows: n, explain }
                };
            }
            other => out = other,
        }
    }
    out
}

fn handle<S: Storage + Clone>(shared: &Shared<S>, req: Request, ctx: &mut IoCtx) -> Response {
    let container = req.container().map(str::to_owned);
    let result = (|| -> Result<Response, BoraError> {
        match &req {
            Request::Open { container } => {
                let pinned = shared.cache.get_or_open(&shared.storage, container, ctx)?;
                Ok(Response::Opened { stat: stat_of(pinned.bag().meta()), cached: pinned.was_hit })
            }
            Request::Topics { container } => {
                if let Some(store) = ingest_for(shared, container, ctx)? {
                    let mut topics = store.snapshot(ctx)?.topics(ctx)?;
                    topics.sort();
                    return Ok(Response::Topics(topics));
                }
                let pinned = shared.cache.get_or_open(&shared.storage, container, ctx)?;
                let mut topics: Vec<String> =
                    pinned.bag().topics().into_iter().map(str::to_owned).collect();
                topics.sort();
                Ok(Response::Topics(topics))
            }
            Request::Append { container, messages } => {
                let store = ingest_for(shared, container, ctx)?.ok_or_else(|| {
                    BoraError::NotAContainer(format!("{container}: not a live ingest root"))
                })?;
                for m in messages {
                    store.append(&m.topic, m.time, &m.data, ctx)?;
                }
                // The ack promises durability for the whole batch, so any
                // frames still parked in a group-commit buffer go down now.
                store.flush_wal(ctx)?;
                Ok(Response::Appended { appended: messages.len() as u64, epoch: store.epoch() })
            }
            Request::Seal { container, compact } => {
                let store = ingest_for(shared, container, ctx)?.ok_or_else(|| {
                    BoraError::NotAContainer(format!("{container}: not a live ingest root"))
                })?;
                store.seal(ctx)?;
                if *compact {
                    store.compact(ctx)?;
                }
                Ok(Response::Sealed {
                    epoch: store.epoch(),
                    sealed_segments: store.stat().sealed_batches as u32,
                })
            }
            Request::Meta { container } => {
                let pinned = shared.cache.get_or_open(&shared.storage, container, ctx)?;
                Ok(Response::Meta(pinned.bag().meta().encode()))
            }
            Request::Read { container, topics, range } => {
                if let Some(store) = ingest_for(shared, container, ctx)? {
                    let snap = store.snapshot(ctx)?;
                    let refs: Vec<&str> = topics.iter().map(String::as_str).collect();
                    let records = match range {
                        Some((start, end)) => snap.read_time_range(&refs, *start, *end, ctx)?,
                        None => snap.read_topics(&refs, ctx)?,
                    };
                    return Ok(Response::Read(records.into_iter().map(Into::into).collect()));
                }
                let pinned = shared.cache.get_or_open(&shared.storage, container, ctx)?;
                let refs: Vec<&str> = topics.iter().map(String::as_str).collect();
                let records = match range {
                    Some((start, end)) => {
                        pinned.bag().read_topics_time(&refs, *start, *end, ctx)?
                    }
                    None => pinned.bag().read_topics(&refs, ctx)?,
                };
                Ok(Response::Read(records.into_iter().map(Into::into).collect()))
            }
            // Normally routed to `handle_stream` by the worker loop; if
            // one lands here anyway (future transports), serve it as a
            // buffered read — the result bytes are identical.
            Request::ReadStream { container, topics, range }
            | Request::ReadStream2 { container, topics, range } => {
                let refs: Vec<&str> = topics.iter().map(String::as_str).collect();
                if let Some(store) = ingest_for(shared, container, ctx)? {
                    let snap = store.snapshot(ctx)?;
                    let records = match range {
                        Some((start, end)) => snap.read_time_range(&refs, *start, *end, ctx)?,
                        None => snap.read_topics(&refs, ctx)?,
                    };
                    return Ok(Response::Read(records.into_iter().map(Into::into).collect()));
                }
                let pinned = shared.cache.get_or_open(&shared.storage, container, ctx)?;
                let opts = StreamOptions::default();
                let stream = match range {
                    Some((start, end)) => {
                        pinned.bag().stream_topics_time(&refs, *start, *end, opts, ctx)?
                    }
                    None => pinned.bag().stream_topics(&refs, opts, ctx)?,
                };
                let records = stream.collect_records(ctx)?;
                Ok(Response::Read(records.into_iter().map(Into::into).collect()))
            }
            Request::Stat { container } => {
                let pinned = shared.cache.get_or_open(&shared.storage, container, ctx)?;
                Ok(Response::Stat(stat_of(pinned.bag().meta())))
            }
            // Normally routed to `handle_query` by the worker loop; if
            // one lands here anyway (future transports), drain the frames
            // into memory and fold them to one response.
            Request::Query { container, sql, partial } => {
                let (tx, rx) = channel::unbounded();
                let terminal = handle_query(shared, container, sql, *partial, &tx, ctx);
                drop(tx);
                let mut frames: Vec<Response> = rx.try_iter().collect();
                frames.extend(terminal);
                Ok(fold_query_frames(frames))
            }
            // Unreachable: worker_loop filters control-plane ops before
            // dispatching here.
            Request::Stats
            | Request::Metrics
            | Request::Trace
            | Request::Ping
            | Request::Shutdown => Ok(Response::Error {
                code: ErrorCode::BadRequest,
                message: "control op routed to worker".into(),
            }),
        }
    })();
    match result {
        Ok(resp) => resp,
        Err(e) => {
            // A checksum failure means the cached handle (and its
            // quarantine state) may be poisoned or the medium changed
            // under us: evict so the next request reopens and re-verifies
            // from scratch instead of serving from a suspect handle.
            if matches!(e, BoraError::ChecksumMismatch { .. }) {
                if let Some(root) = &container {
                    if shared.cache.invalidate(root) {
                        bora_obs::counter("serve.evict_checksum").inc();
                    }
                }
            }
            error_response(e)
        }
    }
}

fn stat_of(meta: &bora::ContainerMeta) -> ContainerStat {
    ContainerStat {
        topics: meta.topics.len() as u32,
        messages: meta.message_count(),
        data_bytes: meta.data_bytes(),
        start: meta.start_time,
        end: meta.end_time,
    }
}

/// Map a [`BoraError`] to its wire-level category.
fn error_response(e: BoraError) -> Response {
    let code = match &e {
        BoraError::NotAContainer(_) => ErrorCode::NotAContainer,
        BoraError::UnknownTopic(_) => ErrorCode::UnknownTopic,
        BoraError::Corrupt(_) | BoraError::Wire(_) | BoraError::Bag(_) => ErrorCode::Corrupt,
        BoraError::ChecksumMismatch { .. } => ErrorCode::ChecksumMismatch,
        // A damaged topic in a degraded container needs repair, not a
        // retry: permanent from the client's point of view.
        BoraError::TopicDamaged(_) => ErrorCode::Corrupt,
        BoraError::Fs(_) => ErrorCode::Io,
    };
    Response::Error { code, message: e.to_string() }
}
