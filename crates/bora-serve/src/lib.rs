//! **bora-serve** — a concurrent bag-query service over BORA containers.
//!
//! The BORA paper optimizes one analysis process reading one container.
//! A fleet's post-mission workflow looks different: many analysts and
//! pipelines query the *same few* containers (yesterday's missions) over
//! and over. Re-running `BoraBag::open` per query repays the tag-table
//! and metadata cost every time; bora-serve amortizes it:
//!
//! * a [`cache::HandleCache`] keeps recently used containers open (LRU,
//!   capacity-bounded, entries pinned while a request uses them);
//! * a [`server::Server`] drains a **bounded** request queue with a pool
//!   of workers — when the queue fills, requests are shed with an
//!   explicit [`proto::Response::Overloaded`] instead of queuing without
//!   bound or blocking the transport;
//! * a hand-rolled length-prefixed binary protocol ([`proto`]) carries
//!   `OPEN`/`TOPICS`/`META`/`READ`/`STAT`/`STATS`/`SHUTDOWN` over either
//!   in-process channels ([`transport::MemTransport`], deterministic, for
//!   tests and benches) or real TCP ([`transport::TcpTransport`] and the
//!   `bora-serve` binary);
//! * per-op latency/count metrics ([`metrics`], backed by the shared
//!   `bora-obs` histograms and including the queue-wait vs service-time
//!   split) are served from the control plane (`STATS` skips the data
//!   queue), so an overloaded server can still be observed; with
//!   `BORA_TRACE=1` the `TRACE` op additionally drains the process's
//!   span buffers as a Chrome trace JSON document.
//!
//! ```
//! use std::sync::Arc;
//! use bora_serve::{Server, ServerConfig, ServeClient, MemTransport};
//! use simfs::{IoCtx, MemStorage};
//!
//! // Build one tiny container...
//! let fs = Arc::new(MemStorage::new());
//! let mut ctx = IoCtx::new();
//! # use rosbag::{BagWriter, BagWriterOptions};
//! # use ros_msgs::{sensor_msgs::Imu, Time};
//! # let mut w = BagWriter::create(&*fs, "/m.bag", BagWriterOptions::default(), &mut ctx).unwrap();
//! # let mut imu = Imu::default();
//! # imu.header.stamp = Time::new(1, 0);
//! # w.write_ros_message("/imu", Time::new(1, 0), &imu, &mut ctx).unwrap();
//! # w.close(&mut ctx).unwrap();
//! bora::duplicate(&*fs, "/m.bag", &*fs, "/c/m", &Default::default(), &mut ctx).unwrap();
//!
//! // ...serve it, query it.
//! let server = Server::start(Arc::clone(&fs), ServerConfig::default());
//! let transport = MemTransport::new(Arc::clone(&server));
//! let mut client = ServeClient::connect(&transport).unwrap();
//! assert_eq!(client.topics("/c/m").unwrap(), vec!["/imu"]);
//! assert_eq!(client.stats().unwrap().cache_misses, 1);
//! client.shutdown().unwrap();
//! ```

pub mod cache;
pub mod client;
pub mod metrics;
pub mod proto;
pub mod server;
pub mod transport;

pub use cache::{CacheStats, HandleCache, PinnedBag};
pub use client::{
    ClientError, ClientResult, IngestBatching, IngestClient, QueryReply, ReadStream, RetryBudget,
    RetryBudgetConfig, RetryClient, RetryPolicy, ServeClient,
};
pub use proto::{
    compress_chunk, decompress_chunk, peel_corr, wrap_corr, ContainerStat, ErrorCode,
    MetricsReport, OpSummary, PingInfo, ProtoError, Request, Response, SlowOpEntry, StatsSnapshot,
    WireMessage, CORR_LEN, DEADLINE_LEN, METRICS_REPORT_VERSION, OP_CORR, TRACE_CTX_LEN,
};
pub use server::{Server, ServerConfig};
pub use transport::{
    spawn_tcp_listener, Connection, MemTransport, TcpConnection, TcpListenerHandle, TcpTransport,
    Transport,
};
