//! End-to-end test of the `bora-tool` binary against real files.

use std::path::PathBuf;
use std::process::Command;

use ros_msgs::sensor_msgs::Imu;
use ros_msgs::tf2_msgs::TfMessage;
use ros_msgs::Time;
use rosbag::{BagWriter, BagWriterOptions};
use simfs::{IoCtx, LocalStorage};

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bora-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_demo_bag(dir: &PathBuf, n: u32) {
    let fs = LocalStorage::new(dir).unwrap();
    let mut ctx = IoCtx::new();
    let mut w = BagWriter::create(
        &fs,
        "/demo.bag",
        BagWriterOptions { chunk_size: 4096, ..Default::default() },
        &mut ctx,
    )
    .unwrap();
    for i in 0..n {
        let t = Time::new(100 + i, 0);
        let mut imu = Imu::default();
        imu.header.seq = i;
        imu.header.stamp = t;
        w.write_ros_message("/imu", t, &imu, &mut ctx).unwrap();
        if i % 4 == 0 {
            w.write_ros_message("/tf", t, &TfMessage::default(), &mut ctx).unwrap();
        }
    }
    w.close(&mut ctx).unwrap();
}

fn tool() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bora-tool"))
}

#[test]
fn full_cli_lifecycle_on_disk() {
    let dir = workdir("life");
    write_demo_bag(&dir, 80);
    let bag = dir.join("demo.bag");
    let container = dir.join("demo_container");

    // import
    let out = tool().arg("import").arg(&bag).arg(&container).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("imported 100 messages"));
    assert!(container.join("imu").join("data").exists());
    assert!(container.join(".bora").exists());

    // info + topics
    let out = tool().arg("info").arg(&container).output().unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("messages:     100"), "{text}");
    assert!(text.contains("/imu"));
    let out = tool().arg("topics").arg(&container).output().unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(text.trim().lines().collect::<Vec<_>>(), vec!["/imu", "/tf"]);

    // query: full count + time-windowed count
    let out =
        tool().arg("query").arg(&container).arg("SELECT count() FROM '/imu'").output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("80"));
    let out = tool()
        .arg("query")
        .arg(&container)
        .arg("SELECT count() FROM '/imu' WHERE time >= 110.0 AND time < 120.0")
        .output()
        .unwrap();
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.lines().any(|l| l.trim() == "10"), "{text}");

    // --explain renders the plan without executing; --no-pushdown shows up.
    let out = tool()
        .arg("query")
        .arg(&container)
        .args(["SELECT count() FROM '/imu'", "--explain"])
        .output()
        .unwrap();
    assert!(String::from_utf8_lossy(&out.stdout).contains("pushdown=on"));
    let out = tool()
        .arg("query")
        .arg(&container)
        .args(["SELECT count() FROM '/imu'", "--explain", "--no-pushdown"])
        .output()
        .unwrap();
    assert!(String::from_utf8_lossy(&out.stdout).contains("pushdown=off"));

    // --json: one object with columns, rows, and the annotated plan.
    let out = tool()
        .arg("query")
        .arg(&container)
        .args(["EXPLAIN ANALYZE SELECT count() FROM '/imu' WHERE time < 110.0", "--json"])
        .output()
        .unwrap();
    let json = String::from_utf8_lossy(&out.stdout).trim().to_owned();
    assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
    assert!(json.contains("\"columns\":") && json.contains("\"explain\":{"), "{json}");

    // A malformed statement dies with a caret diagnostic, not a panic.
    let out = tool().arg("query").arg(&container).arg("SELECT FROM '/imu'").output().unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains('^'),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // verify
    let out = tool().arg("verify").arg(&container).output().unwrap();
    assert!(String::from_utf8_lossy(&out.stdout).contains("OK: 100 messages"));

    // export, and the exported bag imports again losslessly
    let rebag = dir.join("rebag.bag");
    let out = tool().arg("export").arg(&container).arg(&rebag).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("exported 100 messages"));
    let container2 = dir.join("round2");
    let out = tool().arg("import").arg(&rebag).arg(&container2).output().unwrap();
    assert!(out.status.success());
    let out = tool().arg("verify").arg(&container2).output().unwrap();
    assert!(String::from_utf8_lossy(&out.stdout).contains("OK: 100 messages"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn verify_detects_tampering() {
    let dir = workdir("tamper");
    write_demo_bag(&dir, 20);
    let container = dir.join("c");
    assert!(tool()
        .arg("import")
        .arg(dir.join("demo.bag"))
        .arg(&container)
        .status()
        .unwrap()
        .success());

    // Chop bytes off a topic data file.
    let data = container.join("imu").join("data");
    let bytes = std::fs::read(&data).unwrap();
    std::fs::write(&data, &bytes[..bytes.len() - 8]).unwrap();

    let out = tool().arg("verify").arg(&container).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("CORRUPT"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ingest_stat_reports_wal_depth_segments_and_lag() {
    use bora_ingest::{IngestConfig, IngestStore};

    let dir = workdir("ingest");
    let root = dir.join("live");

    // Not an ingest root yet: the tool must refuse, not invent numbers.
    let out = tool().arg("ingest-stat").arg(&root).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("not a live ingest root"));

    // Build a real root: one sealed batch awaiting compaction plus one
    // record that only the WAL holds.
    let fs = LocalStorage::new(&dir).unwrap();
    let mut ctx = IoCtx::new();
    let cfg =
        IngestConfig { wal_shards: 2, group_commit: 4, window_ns: 1_000_000_000, block: None };
    let store = IngestStore::create(fs, "/live", cfg, &mut ctx).unwrap();
    for i in 0..6u64 {
        store.append("/imu", Time::from_nanos(i * 10), &[i as u8; 4], &mut ctx).unwrap();
        if i % 2 == 0 {
            store.append("/cam", Time::from_nanos(i * 10 + 1), b"frame", &mut ctx).unwrap();
        }
    }
    store.seal(&mut ctx).unwrap().expect("nine messages to seal");
    store.append("/imu", Time::from_nanos(1_000), b"tail", &mut ctx).unwrap();
    store.flush_wal(&mut ctx).unwrap();

    let out = tool().arg("ingest-stat").arg(&root).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("2 wal shard(s)"), "{text}");
    // The seal wrote one segment per topic; none compacted yet.
    assert!(text.contains("1 seal marker(s), 2 segment file(s)"), "{text}");
    assert!(text.contains("compaction lag: 1 seal(s) / 2 segment file(s) pending"), "{text}");
    // The seal retired the WAL, so only the tail append is in it — and it
    // is exactly the record recovery would replay as an active segment.
    assert!(text.contains("1 durable record(s); 1 unsealed -> 1 active segment(s)"), "{text}");

    // After compaction the lag drains and the generation advances.
    store.compact(&mut ctx).unwrap();
    let out = tool().arg("ingest-stat").arg(&root).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("generation:     1"), "{text}");
    assert!(text.contains("compaction lag: 0 seal(s) / 0 segment file(s) pending"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ingest_stat_json_has_the_schema_ci_depends_on() {
    use bora_ingest::{IngestConfig, IngestStore};

    let dir = workdir("ingest-json");
    let fs = LocalStorage::new(&dir).unwrap();
    let mut ctx = IoCtx::new();
    let cfg =
        IngestConfig { wal_shards: 2, group_commit: 4, window_ns: 1_000_000_000, block: None };
    let store = IngestStore::create(fs, "/live", cfg, &mut ctx).unwrap();
    for i in 0..4u64 {
        store.append("/imu", Time::from_nanos(i * 10), &[i as u8; 4], &mut ctx).unwrap();
    }
    store.seal(&mut ctx).unwrap().expect("messages to seal");
    store.append("/imu", Time::from_nanos(1_000), b"tail", &mut ctx).unwrap();
    store.flush_wal(&mut ctx).unwrap();

    let out = tool().arg("ingest-stat").arg(dir.join("live")).arg("--json").output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let json = String::from_utf8_lossy(&out.stdout).trim().to_owned();
    // One flat object with a stable key set — the schema CI parses.
    assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
    for key in [
        "\"root\":",
        "\"wal_shards\":2",
        "\"group_commit\":4",
        "\"window_ns\":1000000000",
        "\"generation\":",
        "\"compacted_seal\":",
        "\"compacted_wal_seq\":",
        "\"staging_debris\":",
        "\"seal_markers\":1",
        "\"segment_files\":1",
        "\"lag_seals\":1",
        "\"lag_segment_files\":1",
        "\"wal_durable_records\":1",
        "\"wal_unsealed_records\":1",
        "\"active_segments\":1",
        "\"torn_wal_shards\":0",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    // Flag order must not matter.
    let out2 = tool().arg("ingest-stat").arg("--json").arg(dir.join("live")).output().unwrap();
    assert!(out2.status.success());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn top_demo_renders_table_and_json() {
    let out = tool().args(["top", "--demo"]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let table = String::from_utf8_lossy(&out.stdout).into_owned();
    // Per-node rows plus the cluster-wide `*` fold, for ops the demo ran.
    assert!(table.contains("node"), "{table}");
    assert!(table.contains("topics"), "{table}");
    assert!(table.contains("stat"), "{table}");
    assert!(table.lines().any(|l| l.starts_with("* ")), "no aggregate rows:\n{table}");

    let out = tool().args(["top", "--demo", "--json"]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let json = String::from_utf8_lossy(&out.stdout).trim().to_owned();
    assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
    assert!(json.contains("\"aggregate\":"), "{json}");
    assert!(json.contains("\"serve.op.topics.wall_ns\""), "{json}");
}

#[test]
fn import_refuses_garbage() {
    let dir = workdir("garbage");
    std::fs::write(dir.join("junk.bag"), vec![0u8; 9000]).unwrap();
    let out = tool().arg("import").arg(dir.join("junk.bag")).arg(dir.join("c")).output().unwrap();
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}
