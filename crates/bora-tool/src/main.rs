//! `bora-tool` — operate on real bags and containers on the local disk,
//! and observe serving clusters.
//!
//! ```text
//! bora-tool import  <src.bag> <container-dir>    duplicate a bag into a container
//! bora-tool record? (see `rosbag-tool` for bag-side operations)
//! bora-tool info    <container-dir>              container metadata summary
//! bora-tool topics  <container-dir>              list topics
//! bora-tool query   <container-dir> <sql> [--explain] [--json] [--no-pushdown]
//!                                                run a SELECT statement (see bora-query)
//! bora-tool export  <container-dir> <out.bag>    rebag a container
//! bora-tool verify  <container-dir>              consistency self-check
//! bora-tool fsck    <container-dir> [--repair [--source <src.bag>]]
//!                                                classify Clean/Torn/Corrupt, optionally repair
//! bora-tool ingest-stat <ingest-dir> [--json] [--node <addr>]
//!                                                live-ingest root: WAL depth, segments, lag,
//!                                                block codec; --node adds a pool scrape
//! bora-tool top --nodes <addr,addr,...> [--json] scrape METRICS from running TCP nodes
//! bora-tool top --demo [--json]                  same, against a built-in 3-node demo cluster
//! bora-tool chaos [--seed <n>] [--scenario <name>|all] [--replay] [--json]
//!                                                break an in-process cluster on purpose
//! ```
//!
//! All storage goes through `simfs::LocalStorage`, i.e. real files —
//! except `top`, which speaks the bora-serve wire protocol.

use std::path::Path;
use std::process::exit;

use bora::checksum::crc32c;
use bora::{BoraBag, OrganizerOptions};
use bora_obs::json_string;
use ros_msgs::wire::WireRead;
use ros_msgs::Time;
use simfs::{IoCtx, LocalStorage, Storage};

/// Split a host path into (LocalStorage rooted at its parent, "/name").
fn split(path: &str) -> (LocalStorage, String) {
    let p = Path::new(path);
    let parent = p.parent().filter(|q| !q.as_os_str().is_empty()).unwrap_or(Path::new("."));
    let name = p
        .file_name()
        .unwrap_or_else(|| {
            eprintln!("bad path: {path}");
            exit(2);
        })
        .to_string_lossy()
        .into_owned();
    let fs = LocalStorage::new(parent).unwrap_or_else(|e| {
        eprintln!("cannot open {parent:?}: {e}");
        exit(2);
    });
    (fs, format!("/{name}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ctx = IoCtx::new();
    match args.iter().map(String::as_str).collect::<Vec<_>>().as_slice() {
        ["import", src, dst] => {
            let (sfs, spath) = split(src);
            let (dfs, dpath) = split(dst);
            let report = bora::organizer::duplicate(
                &sfs,
                &spath,
                &dfs,
                &dpath,
                &OrganizerOptions::default(),
                &mut ctx,
            )
            .unwrap_or_else(die);
            println!(
                "imported {} messages across {} topics ({} payload bytes) into {dst}",
                report.messages, report.topics, report.payload_bytes
            );
        }
        ["info", dir] => {
            let (fs, path) = split(dir);
            let bag = BoraBag::open(&fs, &path, &mut ctx).unwrap_or_else(die);
            let m = bag.meta();
            println!("container:    {dir}");
            println!("messages:     {}", m.message_count());
            println!("payload:      {} bytes", m.data_bytes());
            println!("time range:   [{}, {}]", m.start_time, m.end_time);
            println!("time window:  {} s", m.window_ns as f64 / 1e9);
            println!("topics:");
            for t in &m.topics {
                println!(
                    "  {:40} {:28} {:>9} msgs  {:>12} bytes",
                    t.topic, t.datatype, t.message_count, t.bytes
                );
            }
        }
        ["topics", dir] => {
            let (fs, path) = split(dir);
            let bag = BoraBag::open(&fs, &path, &mut ctx).unwrap_or_else(die);
            for t in bag.topics() {
                println!("{t}");
            }
        }
        ["query", dir, rest @ ..] => {
            let mut sql: Option<&str> = None;
            let mut explain = false;
            let mut json = false;
            let mut pushdown = true;
            for a in rest {
                match *a {
                    "--explain" => explain = true,
                    "--json" => json = true,
                    "--no-pushdown" => pushdown = false,
                    s if sql.is_none() => sql = Some(s),
                    _ => usage(),
                }
            }
            query_container(dir, sql.unwrap_or_else(|| usage()), explain, json, pushdown, &mut ctx);
        }
        ["export", dir, out] => {
            let (fs, path) = split(dir);
            let (ofs, opath) = split(out);
            let bag = BoraBag::open(&fs, &path, &mut ctx).unwrap_or_else(die);
            let topics: Vec<String> = bag.topics().into_iter().map(str::to_owned).collect();
            let refs: Vec<&str> = topics.iter().map(String::as_str).collect();
            let msgs = bag.read_topics(&refs, &mut ctx).unwrap_or_else(die);
            let mut w = rosbag::BagWriter::create(
                &ofs,
                &opath,
                rosbag::BagWriterOptions::default(),
                &mut ctx,
            )
            .unwrap_or_else(die);
            let mut conn_ids = std::collections::HashMap::new();
            for tm in &bag.meta().topics {
                let desc = ros_msgs::MessageDescriptor {
                    datatype: tm.datatype.clone(),
                    md5sum: tm.md5sum.clone(),
                    definition: tm.definition.clone(),
                };
                conn_ids.insert(tm.topic.clone(), w.add_connection(&tm.topic, &desc));
            }
            for m in &msgs {
                w.write_message(conn_ids[&m.topic], m.time, &m.data, &mut ctx).unwrap_or_else(die);
            }
            let s = w.close(&mut ctx).unwrap_or_else(die);
            println!("exported {} messages to {out} ({} bytes)", s.message_count, s.file_len);
        }
        ["fsck", dir, rest @ ..] => {
            let (repair, source) = match rest {
                [] => (false, None),
                ["--repair"] => (true, None),
                ["--repair", "--source", src] => (true, Some(*src)),
                _ => usage(),
            };
            let (fs, path) = split(dir);
            let report = bora::fsck::check(&fs, &path, &mut ctx).unwrap_or_else(die);
            println!(
                "state: {:?}{}",
                report.state,
                if report.stale_staging { " (stale staging debris)" } else { "" }
            );
            if !report.has_manifest {
                println!("note: no MANIFEST (pre-manifest container); structural check only");
            }
            println!(
                "files checked: {}, bytes checked: {}",
                report.files_checked, report.bytes_checked
            );
            for d in &report.damages {
                println!("  damaged: {} ({})", d.rel_path, d.reason);
            }
            if !repair {
                if !report.is_clean() {
                    exit(1);
                }
                return;
            }
            let opts = OrganizerOptions::default();
            let outcome = match source {
                Some(src) => {
                    let (sfs, spath) = split(src);
                    bora::fsck::repair(&fs, &path, Some((&sfs, spath.as_str())), &opts, &mut ctx)
                        .unwrap_or_else(die)
                }
                None => bora::fsck::repair::<_, LocalStorage>(&fs, &path, None, &opts, &mut ctx)
                    .unwrap_or_else(die),
            };
            println!("repair: {outcome:?}");
        }
        ["ingest-stat", rest @ ..] => {
            let mut dir: Option<&str> = None;
            let mut json = false;
            let mut node: Option<&str> = None;
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match *a {
                    "--json" => json = true,
                    "--node" => node = Some(it.next().copied().unwrap_or_else(|| usage())),
                    d if dir.is_none() => dir = Some(d),
                    _ => usage(),
                }
            }
            let dir = dir.unwrap_or_else(|| usage());
            let (fs, path) = split(dir);
            let mut stats = ingest_stat(&fs, &path, dir, &mut ctx).unwrap_or_else(die);
            if let Some(addr) = node {
                stats.pool = scrape_pool(addr);
            }
            if json {
                println!("{}", stats.to_json());
            } else {
                stats.print_text();
            }
        }
        ["verify", dir] => {
            let (fs, path) = split(dir);
            let bag = BoraBag::open(&fs, &path, &mut ctx).unwrap_or_else(die);
            match bag.verify(&mut ctx) {
                Ok(n) => println!("OK: {n} messages verified"),
                Err(e) => {
                    eprintln!("CORRUPT: {e}");
                    exit(1);
                }
            }
        }
        ["top", rest @ ..] => top(rest),
        ["chaos", rest @ ..] => chaos(rest),
        _ => usage(),
    }
}

// ------------------------------------------------------------------- query

/// `bora-tool query` — compile a SELECT statement with `bora-query` and
/// run it against a container on local disk. `--explain` acts like an
/// `EXPLAIN` prefix (plan only, nothing executes); a statement-level
/// `EXPLAIN [ANALYZE]` works too. `--json` emits one machine-readable
/// object; `--no-pushdown` plans with pushdown disabled (same rows,
/// different cost — compare the two EXPLAIN ANALYZE outputs).
fn query_container(
    dir: &str,
    sql: &str,
    explain: bool,
    json: bool,
    pushdown: bool,
    ctx: &mut IoCtx,
) {
    use bora_query::{explain_json, explain_text, prepare_with, ExplainMode, PlanOptions};

    let p = prepare_with(sql, &PlanOptions { pushdown }).unwrap_or_else(|e| {
        eprintln!("{}", e.render_caret(sql));
        exit(2);
    });
    let mode = match (explain, p.explain_mode()) {
        (true, ExplainMode::None) => ExplainMode::Plan,
        (_, m) => m,
    };
    if mode == ExplainMode::Plan {
        if json {
            println!("{}", explain_json(&p, None));
        } else {
            print!("{}", explain_text(&p, None));
        }
        return;
    }

    let (fs, path) = split(dir);
    let bag = BoraBag::open(&fs, &path, ctx).unwrap_or_else(die);
    let mut cur = p.cursor_bag(&bag, false, ctx).unwrap_or_else(die);
    let columns = cur.columns();
    let rows = cur.collect_rows().unwrap_or_else(|e| {
        eprintln!("{}", e.render_caret(sql));
        exit(1);
    });
    let stats = cur.stats();

    if json {
        let cols: Vec<String> = columns.iter().map(|c| json_string(c)).collect();
        let rendered: Vec<String> = rows
            .iter()
            .map(|r| {
                let cells: Vec<String> = r.iter().map(|v| v.render_json()).collect();
                format!("[{}]", cells.join(","))
            })
            .collect();
        let explain_field = if mode == ExplainMode::Analyze {
            explain_json(&p, Some(&stats))
        } else {
            "null".into()
        };
        println!(
            "{{\"columns\":[{}],\"rows\":[{}],\"explain\":{explain_field}}}",
            cols.join(","),
            rendered.join(","),
        );
        return;
    }

    println!("{}", columns.join("\t"));
    for r in &rows {
        let cells: Vec<String> = r.iter().map(|v| v.render()).collect();
        println!("{}", cells.join("\t"));
    }
    eprintln!("({} row(s))", rows.len());
    if mode == ExplainMode::Analyze {
        eprint!("{}", explain_text(&p, Some(&stats)));
    }
}

// ------------------------------------------------------------------- chaos

/// `bora-tool chaos` — break an in-process 3-node cluster on purpose.
/// Runs the named fault scenario (or all of them) under a fixed seed,
/// prints each report, and exits nonzero on any invariant violation.
/// `--replay` runs every scenario twice and additionally fails if the
/// second run's outcome diverges from the first — the determinism check
/// CI leans on.
fn chaos(rest: &[&str]) {
    use bora_chaos::{run_scenario, Scenario};

    let mut seed: u64 = 0xb0ba;
    let mut json = false;
    let mut replay = false;
    let mut scenarios: Vec<Scenario> = Scenario::all().to_vec();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match *a {
            "--json" => json = true,
            "--replay" => replay = true,
            "--seed" => {
                let s = it.next().copied().unwrap_or_else(|| usage());
                seed = parse_seed(s).unwrap_or_else(|| {
                    eprintln!("bad seed: {s}");
                    exit(2);
                });
            }
            "--scenario" => {
                let s = it.next().copied().unwrap_or_else(|| usage());
                scenarios = match Scenario::parse(s) {
                    Some(sc) => vec![sc],
                    None if s == "all" => Scenario::all().to_vec(),
                    None => {
                        let names: Vec<_> = Scenario::all().iter().map(|sc| sc.name()).collect();
                        eprintln!("unknown scenario {s:?}; one of: {} | all", names.join(" | "));
                        exit(2);
                    }
                };
            }
            _ => usage(),
        }
    }

    let mut failed = false;
    let mut reports = Vec::new();
    for sc in scenarios {
        let report = run_scenario(sc, seed);
        failed |= !report.violations.is_empty();
        if !json {
            print_chaos_report(&report, "run");
        }
        if replay {
            let again = run_scenario(sc, seed);
            failed |= !again.violations.is_empty();
            if again.replay_key() != report.replay_key() {
                failed = true;
                eprintln!(
                    "REPLAY DIVERGED: {} seed={seed:#x}: {:016x} vs {:016x}",
                    sc.name(),
                    report.outcome_digest,
                    again.outcome_digest
                );
            } else if !json {
                print_chaos_report(&again, "replay");
            }
            reports.push(again);
        }
        reports.push(report);
    }
    if json {
        let lines: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
        println!("[{}]", lines.join(","));
    }
    if failed {
        exit(1);
    }
}

fn parse_seed(s: &str) -> Option<u64> {
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

fn print_chaos_report(r: &bora_chaos::ScenarioReport, label: &str) {
    println!(
        "{:<16} {label:<6} seed={:#x} faults={} events={} ops={}/{} acked={} ambiguous={} \
         max_wall={:?} digest={:016x} violations={}",
        r.scenario,
        r.seed,
        r.faults_injected,
        r.events,
        r.ops_ok,
        r.ops_attempted,
        r.acked_batches,
        r.ambiguous_batches,
        r.max_op_wall,
        r.outcome_digest,
        r.violations.len()
    );
    for v in &r.violations {
        println!("  VIOLATION: {v}");
    }
}

// --------------------------------------------------------------------- top

/// `bora-tool top` — scrape every node's `METRICS` registry and render
/// the per-node / per-op latency table plus the fleet-wide slow-op tail.
/// `--nodes` speaks TCP to a running cluster; `--demo` spins up an
/// in-process 3-node cluster, drives a query mix through it, and scrapes
/// that (with `BORA_TRACE=1` it also writes the merged Chrome trace).
fn top(rest: &[&str]) {
    let mut json = false;
    let mut demo = false;
    let mut nodes: Option<String> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match *a {
            "--json" => json = true,
            "--demo" => demo = true,
            "--nodes" => {
                nodes = Some(it.next().copied().unwrap_or_else(|| usage()).to_owned());
            }
            _ => usage(),
        }
    }
    let scrape = match (demo, nodes) {
        (true, None) => top_demo(),
        (false, Some(list)) => top_tcp(&list),
        _ => usage(),
    };
    if json {
        println!("{}", bora_cluster::scrape_to_json(&scrape));
    } else {
        print!("{}", bora_cluster::render_top(&scrape));
    }
}

/// Scrape running TCP nodes. No ring, no routing — `top` talks to every
/// address it is given, and a node that does not answer becomes an
/// `unreachable` row instead of killing the sweep.
fn top_tcp(list: &str) -> bora_cluster::ClusterScrape {
    use bora_serve::{ServeClient, TcpTransport};

    let mut scrape = bora_cluster::ClusterScrape::default();
    for (i, addr) in list.split(',').filter(|s| !s.is_empty()).enumerate() {
        let id = i as u32;
        let parsed: Result<std::net::SocketAddr, _> = addr.parse();
        let report = parsed.map_err(|e| format!("{addr}: {e}")).and_then(|sock| {
            ServeClient::connect(&TcpTransport::new(sock))
                .and_then(|mut c| c.metrics())
                .map_err(|e| format!("{addr}: {e}"))
        });
        match report {
            Ok(r) => scrape.reports.push((id, r)),
            Err(why) => scrape.unreachable.push((id, why)),
        }
    }
    scrape.aggregate = bora_cluster::aggregate_reports(
        &scrape.reports.iter().map(|(_, r)| r.clone()).collect::<Vec<_>>(),
    );
    scrape
}

/// A self-contained cluster to point `top` at: 3 nodes, 2 containers,
/// a small query mix. The slow-op threshold is dropped to 50µs so the
/// demo's in-memory ops actually populate the tail.
fn top_demo() -> bora_cluster::ClusterScrape {
    use bora_cluster::{ClusterClientConfig, ClusterTelemetry, ClusterTierConfig, LocalCluster};
    use ros_msgs::sensor_msgs::Imu;
    use rosbag::{BagWriter, BagWriterOptions};
    use simfs::MemStorage;

    bora_obs::init_from_env();
    let staging = MemStorage::new();
    let mut ctx = IoCtx::new();
    for name in ["alpha", "beta"] {
        let bag = format!("/{name}.bag");
        let mut w =
            BagWriter::create(&staging, &bag, BagWriterOptions::default(), &mut ctx).unwrap();
        for i in 0..50u32 {
            let t = Time::new(100 + i, 0);
            let mut imu = Imu::default();
            imu.header.seq = i;
            imu.header.stamp = t;
            w.write_ros_message("/imu", t, &imu, &mut ctx).unwrap();
        }
        w.close(&mut ctx).unwrap();
        bora::duplicate(
            &staging,
            &bag,
            &staging,
            &format!("/c/{name}"),
            &Default::default(),
            &mut ctx,
        )
        .unwrap_or_else(die);
    }

    let cluster = LocalCluster::start(ClusterTierConfig {
        nodes: 3,
        server: bora_serve::ServerConfig { slow_op_threshold_ns: 50_000, ..Default::default() },
        ..Default::default()
    });
    cluster.provision(&staging, &["/c/alpha", "/c/beta"]).unwrap_or_else(die);
    let client = cluster.client(ClusterClientConfig::default());
    for round in 0..20 {
        for c in ["/c/alpha", "/c/beta"] {
            client.topics(c).unwrap_or_else(die);
            client.stat(c).unwrap_or_else(die);
            if round % 4 == 0 {
                client.read(c, &["/imu"]).unwrap_or_else(die);
            }
        }
    }
    let telemetry = ClusterTelemetry::new(client);
    let scrape = telemetry.scrape();
    cluster.shutdown();
    match bora_obs::write_trace_if_enabled("bora-top-demo.trace.json") {
        Ok(Some(p)) => eprintln!("trace written to {}", p.display()),
        Ok(None) => {}
        Err(e) => eprintln!("trace write failed: {e}"),
    }
    scrape
}

// -------------------------------------------------------------- ingest-stat
//
// The tool parses the ingest root's on-disk formats directly instead of
// linking `bora-ingest` (keeping the operator CLI's dependency tree
// shallow). Every format is CRC32C-trailed, so a layout drift between
// the two shows up as "unreadable", never as silently wrong numbers.
// Constants mirror `crates/bora-ingest`.

const INGEST_CFG_MAGIC: u32 = 0x42_49_4E_31; // "BIN1" — .boraingest
const INGEST_GEN_MAGIC: u32 = 0x42_49_47_31; // "BIG1" — gen/C*/.ingest
const INGEST_SEAL_MAGIC: u32 = 0x42_53_4C_31; // "BSL1" — seg/*.seal

/// Verify a CRC-trailed, magic-prefixed marker; return the body after
/// the magic.
fn checked_marker(bytes: &[u8], magic: u32) -> Option<Vec<u8>> {
    if bytes.len() < 8 {
        return None;
    }
    let (body, tail) = bytes.split_at(bytes.len() - 4);
    if crc32c(body) != u32::from_le_bytes(tail.try_into().ok()?) {
        return None;
    }
    let mut cur = body;
    if cur.get_u32().ok()? != magic {
        return None;
    }
    Some(cur.to_vec())
}

/// Everything `ingest-stat` reports, gathered once and rendered as
/// either the human table or `--json`.
struct IngestStats {
    root: String,
    wal_shards: usize,
    group_commit: u64,
    window_ns: u64,
    generation: u64,
    gen_seal: u64,
    gen_wal: u64,
    staging: usize,
    seals: usize,
    seg_files: usize,
    lag_seals: usize,
    lag_files: usize,
    durable: u64,
    active: u64,
    active_segments: usize,
    torn_shards: usize,
    /// Block framing from the config trailer: `(codec name, block size)`
    /// when compaction writes block-framed generations, `None` for v1.
    block: Option<(String, u32)>,
    /// Buffer-pool numbers scraped from a serving node (`--node <addr>`);
    /// `None` when the stat ran purely against the on-disk root.
    pool: Option<bora_cluster::PoolScrape>,
}

impl IngestStats {
    fn print_text(&self) {
        println!("ingest root:    {}", self.root);
        println!(
            "config:         {} wal shard(s), group commit {}, \
             time window {} s",
            self.wal_shards,
            self.group_commit,
            self.window_ns as f64 / 1e9
        );
        match &self.block {
            Some((codec, bs)) => println!("blocks:         {codec} codec, {bs} B blocks"),
            None => println!("blocks:         off (v1 data files)"),
        }
        println!(
            "generation:     {} (compacted through seal {}, wal seq {}){}",
            self.generation,
            self.gen_seal,
            self.gen_wal,
            if self.staging > 0 {
                format!("  [{} staging debris]", self.staging)
            } else {
                String::new()
            }
        );
        println!(
            "sealed:         {} seal marker(s), {} segment file(s) on disk; \
             compaction lag: {} seal(s) / {} segment file(s) pending",
            self.seals, self.seg_files, self.lag_seals, self.lag_files
        );
        println!(
            "wal depth:      {} durable record(s); {} unsealed -> \
             {} active segment(s) on next open{}",
            self.durable,
            self.active,
            self.active_segments,
            if self.torn_shards > 0 {
                format!("  [{} shard(s) with torn tails — truncated on recovery]", self.torn_shards)
            } else {
                String::new()
            }
        );
        if let Some(p) = &self.pool {
            println!(
                "buffer pool:    budget {} B, resident {} B, hit ratio {:.1}%, {:.2} evictions/s",
                p.budget_bytes,
                p.resident_bytes,
                p.hit_ratio() * 100.0,
                p.evictions_per_sec()
            );
        }
    }

    /// One flat JSON object — stable key set, no derived strings, so CI
    /// can assert on it without parsing the human table.
    fn to_json(&self) -> String {
        let block_json = match &self.block {
            Some((codec, bs)) => {
                format!("{{\"codec\":{},\"block_size\":{}}}", json_string(codec), bs)
            }
            None => "null".into(),
        };
        let pool_json = match &self.pool {
            Some(p) => format!(
                "{{\"budget_bytes\":{},\"resident_bytes\":{},\"hits\":{},\"misses\":{},\
                 \"hit_ratio\":{:.4},\"evictions\":{},\"evictions_per_sec\":{:.4}}}",
                p.budget_bytes,
                p.resident_bytes,
                p.hits,
                p.misses,
                p.hit_ratio(),
                p.evictions,
                p.evictions_per_sec()
            ),
            None => "null".into(),
        };
        format!(
            "{{\"root\":{},\"wal_shards\":{},\"group_commit\":{},\"window_ns\":{},\
             \"generation\":{},\"compacted_seal\":{},\"compacted_wal_seq\":{},\
             \"staging_debris\":{},\"seal_markers\":{},\"segment_files\":{},\
             \"lag_seals\":{},\"lag_segment_files\":{},\"wal_durable_records\":{},\
             \"wal_unsealed_records\":{},\"active_segments\":{},\"torn_wal_shards\":{},\
             \"block\":{block_json},\"pool\":{pool_json}}}",
            json_string(&self.root),
            self.wal_shards,
            self.group_commit,
            self.window_ns,
            self.generation,
            self.gen_seal,
            self.gen_wal,
            self.staging,
            self.seals,
            self.seg_files,
            self.lag_seals,
            self.lag_files,
            self.durable,
            self.active,
            self.active_segments,
            self.torn_shards,
        )
    }
}

fn ingest_stat(
    fs: &LocalStorage,
    root: &str,
    shown: &str,
    ctx: &mut IoCtx,
) -> Result<IngestStats, String> {
    let marker = format!("{root}/.boraingest");
    if !fs.exists(&marker, ctx) {
        return Err(format!("{shown}: not a live ingest root (no .boraingest marker)"));
    }
    let raw = fs.read_all(&marker, ctx).map_err(|e| e.to_string())?;
    let cfg = checked_marker(&raw, INGEST_CFG_MAGIC)
        .ok_or_else(|| format!("{shown}: corrupt .boraingest marker"))?;
    let mut cur = cfg.as_slice();
    let wal_shards = cur.get_u32().map_err(|e| e.to_string())? as usize;
    let group_commit = cur.get_u64().map_err(|e| e.to_string())?;
    let window_ns = cur.get_u64().map_err(|e| e.to_string())?;
    // Optional block-framing trailer (codec id + block size), mirroring
    // `bora_ingest::IngestConfig`: absent on pre-block roots.
    let block = if cur.is_empty() {
        None
    } else {
        let codec = match cur.get_u8().map_err(|e| e.to_string())? {
            0 => "none",
            1 => "lzss",
            other => return Err(format!("{shown}: unknown block codec id {other}")),
        };
        let bs = cur.get_u32().map_err(|e| e.to_string())?;
        Some((codec.to_owned(), bs))
    };

    // Newest committed generation: its marker is the compaction watermark.
    let gdir = format!("{root}/gen");
    let mut newest: Option<(u64, u64, u64)> = None; // (generation, seal, wal)
    let mut staging = 0usize;
    if fs.exists(&gdir, ctx) {
        for e in fs.read_dir(&gdir, ctx).map_err(|e| e.to_string())? {
            if e.name.ends_with(".staging") {
                staging += 1;
                continue;
            }
            if e.name.strip_prefix('C').and_then(|n| n.parse::<u64>().ok()).is_none() {
                continue;
            }
            let mpath = format!("{gdir}/{}/.ingest", e.name);
            if !fs.exists(&mpath, ctx) {
                continue;
            }
            let Ok(raw) = fs.read_all(&mpath, ctx) else { continue };
            let Some(body) = checked_marker(&raw, INGEST_GEN_MAGIC) else { continue };
            let mut cur = body.as_slice();
            let (Ok(g), Ok(seal), Ok(wal)) = (cur.get_u64(), cur.get_u64(), cur.get_u64()) else {
                continue;
            };
            if newest.is_none_or(|(best, ..)| g > best) {
                newest = Some((g, seal, wal));
            }
        }
    }
    let (generation, gen_seal, gen_wal) =
        newest.ok_or_else(|| format!("{shown}: no committed generation under gen/"))?;

    // Sealed segments: a `.seal` marker commits a batch; batches newer
    // than the generation watermark are the compaction lag.
    let sdir = format!("{root}/seg");
    let mut seg_files = 0usize;
    let mut seals = 0usize;
    let mut lag_seals = 0usize;
    let mut lag_files = 0usize;
    let mut sealed_wal = gen_wal; // highest WAL seq covered by gen ∪ seals
    if fs.exists(&sdir, ctx) {
        for e in fs.read_dir(&sdir, ctx).map_err(|e| e.to_string())? {
            if e.name.ends_with(".seg") {
                seg_files += 1;
                continue;
            }
            let Some(stem) = e.name.strip_suffix(".seal") else { continue };
            if stem.parse::<u64>().is_err() {
                continue;
            }
            let Ok(raw) = fs.read_all(&format!("{sdir}/{}", e.name), ctx) else { continue };
            let Some(body) = checked_marker(&raw, INGEST_SEAL_MAGIC) else { continue };
            let mut cur = body.as_slice();
            let (Ok(seal_seq), Ok(last_wal), Ok(nfiles)) =
                (cur.get_u64(), cur.get_u64(), cur.get_u32())
            else {
                continue;
            };
            seals += 1;
            if seal_seq > gen_seal {
                lag_seals += 1;
                lag_files += nfiles as usize;
                sealed_wal = sealed_wal.max(last_wal);
            }
        }
    }

    // WAL depth: durable CRC-valid frames per shard. Records with a
    // sequence above the sealed coverage are what recovery would replay
    // into the active (in-memory) segments on the next open.
    let mut durable = 0u64;
    let mut active = 0u64;
    let mut torn_shards = 0usize;
    let mut active_topics = std::collections::BTreeSet::new();
    for k in 0..wal_shards.max(1) {
        let p = format!("{root}/wal/shard-{k}.wal");
        if !fs.exists(&p, ctx) {
            continue;
        }
        let bytes = fs.read_all(&p, ctx).map_err(|e| e.to_string())?;
        let mut off = 0usize;
        while bytes.len() - off >= 8 {
            let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap());
            let Some(payload) = bytes.get(off + 8..off + 8 + len) else { break };
            if crc32c(payload) != crc {
                break;
            }
            let mut cur = payload;
            let (Ok(seq), Ok(_time), Ok(topic)) = (cur.get_u64(), cur.get_u64(), cur.get_string())
            else {
                break;
            };
            durable += 1;
            if seq > sealed_wal {
                active += 1;
                active_topics.insert(topic);
            }
            off += 8 + len;
        }
        if off < bytes.len() {
            torn_shards += 1;
        }
    }

    Ok(IngestStats {
        root: shown.to_owned(),
        wal_shards,
        group_commit,
        window_ns,
        generation,
        gen_seal,
        gen_wal,
        staging,
        seals,
        seg_files,
        lag_seals,
        lag_files,
        durable,
        active,
        active_segments: active_topics.len(),
        torn_shards,
        block,
        pool: None,
    })
}

/// Scrape one serving node's `METRICS` and pull out the pool numbers.
/// Unreachable node or no pool → `None` (reported as `"pool":null`).
fn scrape_pool(addr: &str) -> Option<bora_cluster::PoolScrape> {
    use bora_serve::{ServeClient, TcpTransport};
    let sock: std::net::SocketAddr = addr
        .parse()
        .map_err(|e| {
            eprintln!("bad --node address {addr}: {e}");
            exit(2);
        })
        .unwrap();
    let report = ServeClient::connect(&TcpTransport::new(sock))
        .and_then(|mut c| c.metrics())
        .map_err(|e| eprintln!("warning: cannot scrape {addr}: {e}"))
        .ok()?;
    bora_cluster::PoolScrape::from_report(&report)
}

fn die<E: std::fmt::Display, T>(e: E) -> T {
    eprintln!("error: {e}");
    exit(1);
}

fn usage() -> ! {
    eprintln!(
        "usage: bora-tool <import <src.bag> <dir> | info <dir> | topics <dir> | \
         query <dir> <sql> [--explain] [--json] [--no-pushdown] | \
         export <dir> <out.bag> | verify <dir> | \
         fsck <dir> [--repair [--source <src.bag>]] | \
         ingest-stat <dir> [--json] [--node <addr>] | \
         top <--nodes <addr,...> | --demo> [--json] | \
         chaos [--seed <n>] [--scenario <name>|all] [--replay] [--json]>"
    );
    exit(2);
}
