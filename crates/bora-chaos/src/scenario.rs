//! Composite chaos scenarios over a live 3-node [`LocalCluster`], with
//! invariant checkers.
//!
//! Each scenario provisions the same fixture — one static (sealed)
//! container and one live ingest root, replicated 2× over 3 nodes —
//! then drives a [`ClusterClient`] through a scripted op sequence while
//! a shared [`ChaosState`] corrupts the wire. The script, the rule set,
//! and the rng are all functions of the seed, so a scenario replays the
//! same failure schedule every run; the replay contract is
//! [`ScenarioReport::replay_key`] — `(outcome digest, violations)` must
//! be identical across replays of the same `(scenario, seed)`.
//!
//! Invariants checked (violations are collected, not panicked, so a CI
//! job can emit the full report as an artifact):
//!
//! * **No acked append is lost** — every batch the client saw acked is
//!   present in the final read; every batch read back was either acked
//!   or failed *ambiguously* (an error after the request may have
//!   reached some replica).
//! * **Reads are byte-identical** to the fault-free baseline, both
//!   mid-chaos (every successful read) and at the end.
//! * **Heal converges** — after the partition lifts, a final heal runs
//!   with nothing deferred, every container is fully replicated on live
//!   nodes, and heal *refuses* to run from a minority reachability view.
//! * **Breakers re-close** after the network heals and traffic resumes.
//! * **Deadlines bound work** — no single op's wall time exceeds the
//!   propagated per-request deadline times the replica count, plus
//!   scheduling slack.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bora_cluster::{
    BreakerConfig, BreakerState, ClusterClient, ClusterClientConfig, ClusterTierConfig,
    HedgeConfig, LocalCluster, NodeId, RingConfig, RoutePolicy,
};
use bora_ingest::{IngestConfig, IngestStore};
use bora_serve::{MemTransport, RetryBudgetConfig, WireMessage};
use ros_msgs::{sensor_msgs::Imu, Time};
use rosbag::{BagWriter, BagWriterOptions};
use simfs::{IoCtx, MemStorage};

use crate::fault::{ChaosRule, ChaosState, NetFault, Partition};
use crate::transport::ChaosTransport;

pub const STATIC_ROOT: &str = "/c/chaos-static";
pub const INGEST_ROOT: &str = "/c/chaos-live";
pub const STATIC_TOPICS: [&str; 2] = ["/imu", "/odom"];
pub const LIVE_TOPIC: &str = "/chaos";

/// Per-request deadline the chaos client propagates on the wire.
const DEADLINE: Duration = Duration::from_millis(800);
/// Chaos frame timeout: how long one lost frame stalls its caller.
const FRAME_TIMEOUT: Duration = Duration::from_millis(100);
/// An op may burn a deadline per replica (failover walks the set) plus
/// generous scheduling slack before we call it a deadline violation.
const OP_WALL_SLACK: Duration = Duration::from_secs(4);
const MSGS_PER_BATCH: u64 = 3;

/// The scripted fault schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Partition the static owner mid-stream (then asymmetrically),
    /// kill it, verify minority-side heal is refused, heal from the
    /// majority, and converge.
    PartitionOwner,
    /// Crash a node under sustained appends, heal, join a replacement,
    /// and keep appending.
    CrashRestart,
    /// Duplicate / reorder / delay / truncate responses and drop
    /// requests while reads and appends interleave.
    DupDelay,
    /// Flap a replica's network on and off under hedged reads.
    FlapNetwork,
}

impl Scenario {
    pub fn all() -> [Scenario; 4] {
        [
            Scenario::PartitionOwner,
            Scenario::CrashRestart,
            Scenario::DupDelay,
            Scenario::FlapNetwork,
        ]
    }

    pub fn name(&self) -> &'static str {
        match self {
            Scenario::PartitionOwner => "partition-owner",
            Scenario::CrashRestart => "crash-restart",
            Scenario::DupDelay => "dup-delay",
            Scenario::FlapNetwork => "flap-network",
        }
    }

    pub fn parse(s: &str) -> Option<Scenario> {
        Scenario::all().into_iter().find(|sc| sc.name() == s)
    }
}

/// What one scenario run did and found.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    pub scenario: &'static str,
    pub seed: u64,
    /// Logical frame events witnessed.
    pub events: u64,
    /// Faults injected (partition drops included).
    pub faults_injected: u64,
    pub ops_attempted: u64,
    pub ops_ok: u64,
    pub acked_batches: u64,
    pub ambiguous_batches: u64,
    pub max_op_wall: Duration,
    /// Empty on a healthy run.
    pub violations: Vec<String>,
    /// FNV over the final reads and directory shape — the
    /// deterministic-outcome fingerprint.
    pub outcome_digest: u64,
}

impl ScenarioReport {
    /// The replay-identity contract: two runs of the same `(scenario,
    /// seed)` must agree on this, even when thread timing perturbs the
    /// exact fault count (hedged scenarios race decide() calls).
    pub fn replay_key(&self) -> (u64, Vec<String>) {
        (self.outcome_digest, self.violations.clone())
    }

    pub fn to_json(&self) -> String {
        let violations: Vec<String> =
            self.violations.iter().map(|v| format!("\"{}\"", v.replace('"', "'"))).collect();
        format!(
            concat!(
                "{{\"scenario\":\"{}\",\"seed\":{},\"events\":{},\"faults_injected\":{},",
                "\"ops_attempted\":{},\"ops_ok\":{},\"acked_batches\":{},",
                "\"ambiguous_batches\":{},\"max_op_wall_ms\":{},",
                "\"outcome_digest\":\"{:016x}\",\"violations\":[{}]}}"
            ),
            self.scenario,
            self.seed,
            self.events,
            self.faults_injected,
            self.ops_attempted,
            self.ops_ok,
            self.acked_batches,
            self.ambiguous_batches,
            self.max_op_wall.as_millis(),
            self.outcome_digest,
            violations.join(",")
        )
    }
}

/// Run one scenario under one seed. Panics only on fixture bugs (e.g.
/// provisioning fails); every *invariant* failure lands in
/// [`ScenarioReport::violations`].
pub fn run_scenario(scenario: Scenario, seed: u64) -> ScenarioReport {
    let (policy, hedge) = match scenario {
        Scenario::PartitionOwner | Scenario::CrashRestart => (RoutePolicy::Primary, None),
        Scenario::DupDelay => (RoutePolicy::Spread, None),
        Scenario::FlapNetwork => (
            RoutePolicy::Spread,
            Some(HedgeConfig { min_threshold: Duration::from_millis(2), factor: 2.0 }),
        ),
    };
    let mut h = Harness::new(scenario, seed, policy, hedge);
    match scenario {
        Scenario::PartitionOwner => h.run_partition_owner(),
        Scenario::CrashRestart => h.run_crash_restart(),
        Scenario::DupDelay => h.run_dup_delay(),
        Scenario::FlapNetwork => h.run_flap_network(),
    }
    h.finalize()
}

type NodeStorage = Arc<MemStorage>;
type ChaosClusterClient = ClusterClient<ChaosTransport<MemTransport<NodeStorage>>>;

struct Harness {
    scenario: Scenario,
    seed: u64,
    cluster: LocalCluster<NodeStorage>,
    state: Arc<ChaosState>,
    chaos: ChaosClusterClient,
    clean: ClusterClient<MemTransport<NodeStorage>>,
    baseline: Vec<WireMessage>,
    acked: Vec<u64>,
    ambiguous: Vec<u64>,
    next_batch: u64,
    ops_attempted: u64,
    ops_ok: u64,
    max_op_wall: Duration,
    violations: Vec<String>,
}

/// The fault-free fixture both the cluster and the baseline come from:
/// a 200-message two-topic static container plus an (empty) live ingest
/// root.
fn build_staging() -> NodeStorage {
    let staging = Arc::new(MemStorage::new());
    let mut ctx = IoCtx::new();
    let mut w =
        BagWriter::create(&*staging, "/stage.bag", BagWriterOptions::default(), &mut ctx).unwrap();
    for i in 0..200u32 {
        let t = Time::new(1 + i / 10, (i % 10) * 1_000_000);
        let mut imu = Imu::default();
        imu.header.stamp = t;
        imu.header.seq = i;
        w.write_ros_message(STATIC_TOPICS[(i % 2) as usize], t, &imu, &mut ctx).unwrap();
    }
    w.close(&mut ctx).unwrap();
    bora::duplicate(&*staging, "/stage.bag", &*staging, STATIC_ROOT, &Default::default(), &mut ctx)
        .unwrap();
    drop(
        IngestStore::create(
            Arc::clone(&staging),
            INGEST_ROOT,
            IngestConfig { wal_shards: 2, group_commit: 1, window_ns: 1_000, block: None },
            &mut ctx,
        )
        .unwrap(),
    );
    staging
}

impl Harness {
    fn new(
        scenario: Scenario,
        seed: u64,
        policy: RoutePolicy,
        hedge: Option<HedgeConfig>,
    ) -> Harness {
        let staging = build_staging();
        let cluster = LocalCluster::start_with(
            ClusterTierConfig {
                nodes: 3,
                ring: RingConfig { vnodes: 64, replication: 2 },
                ..ClusterTierConfig::default()
            },
            |_| Arc::new(MemStorage::new()),
        );
        cluster.provision(&staging, &[STATIC_ROOT, INGEST_ROOT]).unwrap();

        let state = Arc::new(ChaosState::new(seed));
        let endpoints: Vec<(NodeId, ChaosTransport<MemTransport<NodeStorage>>)> = cluster
            .node_ids()
            .into_iter()
            .map(|id| {
                let node = cluster.node(id).expect("node is hosted");
                let t = ChaosTransport::new(
                    MemTransport::new(Arc::clone(&node.server)),
                    id,
                    Arc::clone(&state),
                )
                .with_frame_timeout(FRAME_TIMEOUT);
                (id, t)
            })
            .collect();
        let chaos = ClusterClient::new(
            cluster.ring(),
            endpoints,
            ClusterClientConfig {
                policy,
                hedge,
                breaker: BreakerConfig::default(),
                deadline: Some(DEADLINE),
                // Roomier than the serving default: a chaos run *is* a
                // correlated outage, and we still want the tail of each
                // phase to retry its way back to health.
                retry_budget: Some(RetryBudgetConfig { capacity: 16.0, deposit_per_success: 0.5 }),
            },
        );
        let clean = cluster.client(ClusterClientConfig {
            deadline: None,
            retry_budget: None,
            ..ClusterClientConfig::default()
        });
        let baseline = clean
            .read(STATIC_ROOT, &STATIC_TOPICS)
            .expect("fault-free baseline read of the provisioned fixture");
        assert_eq!(baseline.len(), 200, "fixture sanity");
        Harness {
            scenario,
            seed,
            cluster,
            state,
            chaos,
            clean,
            baseline,
            acked: Vec::new(),
            ambiguous: Vec::new(),
            next_batch: 0,
            ops_attempted: 0,
            ops_ok: 0,
            max_op_wall: Duration::ZERO,
            violations: Vec::new(),
        }
    }

    fn violation(&mut self, msg: String) {
        bora_obs::counter("chaos.invariant_violations").inc();
        self.violations.push(msg);
    }

    /// Track one op's wall time against the deadline invariant.
    fn clocked<R>(&mut self, what: &str, op: impl FnOnce(&ChaosClusterClient) -> R) -> R {
        let started = Instant::now();
        let out = op(&self.chaos);
        let wall = started.elapsed();
        self.max_op_wall = self.max_op_wall.max(wall);
        self.ops_attempted += 1;
        let bound = DEADLINE * 3 + OP_WALL_SLACK;
        if wall > bound {
            self.violation(format!(
                "{what} ran {}ms, past its propagated deadline bound of {}ms",
                wall.as_millis(),
                bound.as_millis()
            ));
        }
        out
    }

    /// One read of the static container through the chaos client. A
    /// failure is tolerated (the network is being attacked); a *wrong
    /// answer* is a violation.
    fn read_static(&mut self) {
        let res = self.clocked("read", |c| c.read(STATIC_ROOT, &STATIC_TOPICS));
        if let Ok(msgs) = res {
            self.ops_ok += 1;
            if msgs != self.baseline {
                self.violation(format!(
                    "mid-chaos read returned {} messages that differ from the fault-free \
                     baseline ({})",
                    msgs.len(),
                    self.baseline.len()
                ));
            }
        }
    }

    /// Stream the static container, comparing to baseline on success.
    fn stream_static_with(&mut self, mut mid: impl FnMut(&Harness)) {
        let started = Instant::now();
        let stream = match self.chaos.read_stream(STATIC_ROOT, &STATIC_TOPICS) {
            Ok(s) => s,
            Err(_) => {
                self.ops_attempted += 1;
                return;
            }
        };
        let mut got = Vec::new();
        let mut failed = false;
        let mut mid_ran = false;
        for (i, item) in stream.enumerate() {
            if i == self.baseline.len() / 2 {
                mid(self);
                mid_ran = true;
            }
            match item {
                Ok(m) => got.push(m),
                Err(_) => {
                    failed = true;
                    break;
                }
            }
        }
        // If the stream died before its midpoint, still run the
        // scheduled mid-stream action: the following phases assume it.
        if !mid_ran {
            mid(self);
        }
        self.max_op_wall = self.max_op_wall.max(started.elapsed());
        self.ops_attempted += 1;
        if !failed {
            self.ops_ok += 1;
            if got != self.baseline {
                self.violation(format!(
                    "stream under chaos delivered {} messages, diverging from baseline",
                    got.len()
                ));
            }
        }
    }

    fn batch(&mut self) -> (u64, Vec<WireMessage>) {
        let id = self.next_batch;
        self.next_batch += 1;
        let msgs = (0..MSGS_PER_BATCH)
            .map(|j| WireMessage {
                topic: LIVE_TOPIC.into(),
                time: Time::new(1_000 + id as u32, j as u32),
                data: batch_payload(id, j),
            })
            .collect();
        (id, msgs)
    }

    /// One append through the chaos client. Acked → must survive;
    /// failed → ambiguous (it may have landed on a subset of replicas).
    fn append_live(&mut self) {
        let (id, msgs) = self.batch();
        let res = self.clocked("append", |c| c.append(INGEST_ROOT, &msgs));
        match res {
            Ok(_) => {
                self.ops_ok += 1;
                self.acked.push(id);
            }
            Err(_) => self.ambiguous.push(id),
        }
    }

    /// Lift every fault, then drive a *fixed* number of traffic rounds
    /// so the chaos client's breakers get probed back to Closed
    /// (asserted in `finalize`). The round count is fixed — not
    /// break-on-healthy — because in hedged scenarios the number of
    /// rounds a breaker needs is timing-dependent, and an early break
    /// would make the append count (and so the final bytes) vary across
    /// replays.
    fn success_rounds(&mut self) {
        self.state.set_partition(None);
        self.state.set_rules(Vec::new());
        // Let in-flight hedge legs from the fault phase drain: a leg
        // blocked on a partitioned victim fails up to one frame timeout
        // *later*, and that late `on_failure` would race the recovery
        // traffic below — it could re-trip a breaker after its last
        // probe and make the re-close invariant flaky.
        std::thread::sleep(FRAME_TIMEOUT + Duration::from_millis(50));
        for _ in 0..40 {
            self.read_static();
            self.append_live();
        }
        // Read-only top-up for any breaker still counting down to its
        // probe. Reads do not change the final bytes, so breaking early
        // here cannot perturb replay identity.
        for _ in 0..50 {
            if self.live_breakers_closed() {
                break;
            }
            self.read_static();
        }
    }

    fn live_breakers_closed(&self) -> bool {
        let live = self.cluster.live_nodes();
        self.chaos
            .breaker_states()
            .iter()
            .filter(|(id, _)| live.contains(id))
            .all(|(_, st)| *st == BreakerState::Closed)
    }

    // ------------------------------------------------------- scenarios

    fn run_partition_owner(&mut self) {
        // Background jitter for the whole scripted phase: delays never
        // fail an op, so they do not perturb the failover script, but
        // every delivery is still a scheduled fault.
        self.state.set_rules(vec![ChaosRule::new(NetFault::Delay { ms: 3 })
            .on_send()
            .on_recv()
            .prob(0.45)]);
        // Warm-up: a few (jittered but successful) ops so pools and
        // caches exist.
        for _ in 0..2 {
            self.read_static();
            self.append_live();
        }
        let owner = self.chaos.replicas(STATIC_ROOT)[0];

        // Partition the owner *mid-stream*: the stream must resume on
        // the replica and still be byte-identical.
        self.stream_static_with(|h| {
            h.state.set_partition(Some(Partition::full([owner])));
        });

        // Reads fail over; appends that need the owner go ambiguous.
        for _ in 0..6 {
            self.read_static();
            self.append_live();
        }

        // Asymmetric phase: requests reach the owner but responses are
        // lost — the nastier half-open failure.
        self.state.set_partition(Some(Partition::rx_only([owner])));
        for _ in 0..5 {
            self.read_static();
        }
        self.state.set_partition(Some(Partition::full([owner])));

        // The owner is gone for good. Heal — but first prove the
        // control plane refuses to act on a minority view.
        self.cluster.kill(owner);
        let live = self.cluster.live_nodes();
        let minority: BTreeSet<NodeId> = live.iter().take(1).copied().collect();
        self.cluster.set_reachable(Some(minority));
        match self.cluster.heal() {
            Err(_) => {}
            Ok(r) => self.violation(format!(
                "heal from a minority reachability view was not refused (report: {r:?})"
            )),
        }
        self.cluster.set_reachable(Some(live.into_iter().collect()));
        if let Err(e) = self.cluster.heal() {
            self.violation(format!("heal from the majority view failed: {e}"));
        }
        self.cluster.set_reachable(None);
        self.success_rounds();
    }

    fn run_crash_restart(&mut self) {
        self.state.set_rules(vec![
            ChaosRule::new(NetFault::Drop).on_send().prob(0.08),
            ChaosRule::new(NetFault::Delay { ms: 5 }).on_send().on_recv().prob(0.45),
        ]);
        for _ in 0..10 {
            self.append_live();
            self.read_static();
        }

        // Crash the ingest owner mid-append-storm.
        let victim = self.chaos.replicas(INGEST_ROOT)[0];
        self.cluster.kill(victim);
        for _ in 0..6 {
            self.append_live();
            self.read_static();
        }

        // Heal around the corpse, then grow a replacement node and keep
        // appending — the "restart" half of crash-restart.
        self.state.set_rules(Vec::new());
        if let Err(e) = self.cluster.heal() {
            self.violation(format!("heal after crash failed: {e}"));
        }
        if let Err(e) = self.cluster.join() {
            self.violation(format!("join of replacement node failed: {e}"));
        }
        let resumed_from = self.ops_ok;
        for _ in 0..6 {
            self.append_live();
        }
        if self.ops_ok == resumed_from {
            self.violation("no append succeeded after heal + replacement join".into());
        }
        self.success_rounds();
    }

    fn run_dup_delay(&mut self) {
        self.state.set_rules(vec![
            ChaosRule::new(NetFault::Duplicate).on_recv().prob(0.18),
            ChaosRule::new(NetFault::Reorder).on_recv().prob(0.18),
            ChaosRule::new(NetFault::Delay { ms: 7 }).on_send().on_recv().prob(0.3),
            ChaosRule::new(NetFault::Drop).on_send().prob(0.1),
            // Recv-only: a truncated *request* would decode server-side
            // into a permanent BadRequest (see `NetFault::Truncate`).
            ChaosRule::new(NetFault::Truncate).on_recv().prob(0.1),
        ]);
        for i in 0..45 {
            self.read_static();
            if i % 2 == 0 {
                self.append_live();
            }
        }
        self.state.set_rules(Vec::new());
        self.success_rounds();
    }

    fn run_flap_network(&mut self) {
        // Read-only on purpose: hedge legs race `decide()` calls across
        // threads, so appends here would make the acked set — and the
        // final bytes — timing-dependent. Reads are idempotent; the
        // replay contract survives the racing fault draws.
        self.state.set_rules(vec![
            ChaosRule::new(NetFault::Drop).on_recv().prob(0.1),
            ChaosRule::new(NetFault::Delay { ms: 3 }).on_send().on_recv().prob(0.45),
        ]);
        let replicas = self.chaos.replicas(STATIC_ROOT);
        for cycle in 0..10 {
            let victim = replicas[cycle % replicas.len()];
            let partition = if cycle % 2 == 0 {
                Partition::full([victim])
            } else {
                Partition::rx_only([victim])
            };
            self.state.set_partition(Some(partition));
            for _ in 0..4 {
                self.read_static();
            }
            self.state.set_partition(None);
            for _ in 0..2 {
                self.read_static();
            }
        }
        self.state.set_rules(Vec::new());
        self.success_rounds();
    }

    // ------------------------------------------------------ invariants

    fn finalize(mut self) -> ScenarioReport {
        self.state.set_partition(None);
        self.state.set_rules(Vec::new());
        self.cluster.set_reachable(None);

        // Heal must converge: nothing deferred, nothing left to move.
        match self.cluster.heal() {
            Ok(report) if report.deferred > 0 => self.violation(format!(
                "final heal did not converge: {} copies still deferred",
                report.deferred
            )),
            Ok(_) => {}
            Err(e) => self.violation(format!("final heal failed: {e}")),
        }

        // Directory: every container fully replicated on live nodes.
        let live: BTreeSet<NodeId> = self.cluster.live_nodes().into_iter().collect();
        let want = 2.min(live.len());
        for (container, holders) in self.cluster.directory() {
            let live_holders = holders.iter().filter(|id| live.contains(id)).count();
            if live_holders < want {
                self.violation(format!(
                    "{container} has {live_holders} live holders after heal, wanted {want}"
                ));
            }
        }

        // Final reads through a fault-free client: static bytes match
        // the baseline; the live root obeys the append containment.
        let mut digest = Fnv::new();
        match self.clean.read(STATIC_ROOT, &STATIC_TOPICS) {
            Ok(msgs) => {
                if msgs != self.baseline {
                    self.violation(
                        "final static read diverged from the fault-free baseline".into(),
                    );
                }
                digest.fold_messages(&msgs);
            }
            Err(e) => self.violation(format!("final static read failed: {e}")),
        }
        match self.clean.read(INGEST_ROOT, &[LIVE_TOPIC]) {
            Ok(msgs) => {
                let read_ids: BTreeSet<u64> =
                    msgs.iter().filter_map(|m| parse_batch_id(&m.data)).collect();
                let lost: Vec<u64> =
                    self.acked.iter().filter(|id| !read_ids.contains(id)).copied().collect();
                for id in lost {
                    self.violation(format!("acked batch {id} is missing from the final read"));
                }
                let allowed: BTreeSet<u64> =
                    self.acked.iter().chain(self.ambiguous.iter()).copied().collect();
                let phantom: Vec<u64> =
                    read_ids.iter().filter(|id| !allowed.contains(id)).copied().collect();
                for id in phantom {
                    self.violation(format!("final read contains batch {id} that was never sent"));
                }
                digest.fold_messages(&msgs);
            }
            Err(e) => self.violation(format!("final ingest read failed: {e}")),
        }

        // Breakers re-closed after heal + traffic (success_rounds drove
        // the probes; this is the assertion).
        if !self.live_breakers_closed() {
            let states: Vec<String> = self
                .chaos
                .breaker_states()
                .iter()
                .filter(|(id, _)| live.contains(id))
                .map(|(id, st)| format!("node{id}={st:?}"))
                .collect();
            self.violation(format!("breakers did not re-close after heal: {}", states.join(", ")));
        }

        // Fold the directory shape so placement drift breaks the digest.
        for (container, holders) in self.cluster.directory() {
            digest.fold_bytes(container.as_bytes());
            for id in holders {
                digest.fold_bytes(&id.to_le_bytes());
            }
        }

        let report = ScenarioReport {
            scenario: self.scenario.name(),
            seed: self.seed,
            events: self.state.events(),
            faults_injected: self.state.faults_injected(),
            ops_attempted: self.ops_attempted,
            ops_ok: self.ops_ok,
            acked_batches: self.acked.len() as u64,
            ambiguous_batches: self.ambiguous.len() as u64,
            max_op_wall: self.max_op_wall,
            violations: self.violations,
            outcome_digest: digest.finish(),
        };
        self.cluster.shutdown();
        report
    }
}

fn batch_payload(id: u64, msg: u64) -> Vec<u8> {
    format!("batch-{id:08}-{msg}").into_bytes()
}

fn parse_batch_id(data: &[u8]) -> Option<u64> {
    let s = std::str::from_utf8(data).ok()?;
    s.strip_prefix("batch-")?.get(..8)?.parse().ok()
}

/// FNV-1a, the same tiny digest `simfs::path_key` uses — good enough to
/// fingerprint "did two replays end in the same state".
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn fold_bytes(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= *b as u64;
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }

    fn fold_messages(&mut self, msgs: &[WireMessage]) {
        for m in msgs {
            self.fold_bytes(m.topic.as_bytes());
            self.fold_bytes(&m.time.sec.to_le_bytes());
            self.fold_bytes(&m.time.nsec.to_le_bytes());
            self.fold_bytes(&m.data);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_ids_roundtrip() {
        assert_eq!(parse_batch_id(&batch_payload(42, 1)), Some(42));
        assert_eq!(parse_batch_id(b"not a batch"), None);
        assert_eq!(parse_batch_id(b""), None);
    }

    #[test]
    fn scenario_names_roundtrip() {
        for s in Scenario::all() {
            assert_eq!(Scenario::parse(s.name()), Some(s));
        }
        assert_eq!(Scenario::parse("nope"), None);
    }

    #[test]
    fn report_json_is_wellformed_enough() {
        let r = ScenarioReport {
            scenario: "dup-delay",
            seed: 7,
            events: 10,
            faults_injected: 3,
            ops_attempted: 5,
            ops_ok: 4,
            acked_batches: 2,
            ambiguous_batches: 1,
            max_op_wall: Duration::from_millis(12),
            violations: vec!["acked batch 3 is missing from the final read".into()],
            outcome_digest: 0xdead_beef,
        };
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"scenario\":\"dup-delay\""));
        assert!(json.contains("\"violations\":[\"acked batch 3"));
    }
}
