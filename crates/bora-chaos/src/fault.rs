//! Fault vocabulary and the seeded decision engine.
//!
//! A [`ChaosState`] is the single source of randomness and ordering for
//! one chaos run: every frame that crosses a [`crate::ChaosTransport`]
//! ticks the shared [`LogicalClock`] and asks `decide` whether (and how)
//! to corrupt it. Because the rule set, the splitmix64 stream, and the
//! event counter are all functions of the seed and the *order of frame
//! events*, a single-threaded client replays the exact same fault
//! schedule on every run — on any machine, at any host speed.

use std::collections::BTreeSet;
use std::sync::Mutex;

use bora_cluster::NodeId;
use simfs::LogicalClock;

/// Keep at most this many [`FaultRecord`]s; `faults_injected` keeps the
/// exact total regardless (a flapping scenario can inject far more
/// faults than anyone wants to page through).
pub const FAULT_LOG_CAP: usize = 10_000;

/// What to do to one frame. Network faults, deliberately named apart
/// from `simfs::FaultKind` (the *disk* fault vocabulary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Lose the frame silently. On send the server never sees the
    /// request; on recv the response is discarded. Either way the
    /// client's next `recv` times out (the chaos transport installs a
    /// frame timeout at connect so loss cannot deadlock).
    Drop,
    /// Deliver the frame after sleeping `ms` milliseconds.
    Delay { ms: u64 },
    /// Deliver the frame twice. On recv the copy is queued and returned
    /// by the *next* `recv`, desynchronizing the request/response
    /// pairing — exactly what a duplicated TCP segment does to a naive
    /// length-prefixed protocol. Scenarios avoid duplicate-on-send for
    /// non-idempotent ops (a duplicated APPEND really appends twice).
    Duplicate,
    /// Swap delivery order with the adjacent frame. On recv the frame is
    /// held and the following frame returned first; on send the frame is
    /// held until the next send flushes both in reversed order.
    Reorder,
    /// Deliver only the first half of the frame. The peer's decoder
    /// rejects it. Scenarios inject this on recv only: a truncated
    /// *request* decodes server-side into a permanent `BadRequest`,
    /// which no retry layer should (or does) retry.
    Truncate,
}

impl NetFault {
    pub fn name(&self) -> &'static str {
        match self {
            NetFault::Drop => "drop",
            NetFault::Delay { .. } => "delay",
            NetFault::Duplicate => "duplicate",
            NetFault::Reorder => "reorder",
            NetFault::Truncate => "truncate",
        }
    }
}

/// Which side of a connection a frame event is on, seen from the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Client → server (requests).
    Send,
    /// Server → client (responses).
    Recv,
}

/// One match-and-inject rule. A frame event matches when its logical
/// event number falls in `window`, its node passes the filter, and its
/// direction is enabled; a matching rule then fires with probability
/// `prob` (one splitmix64 draw — drawn *only* on match, so adding an
/// unrelated rule does not shift another rule's random stream... unless
/// their windows overlap, which is the point of composing them).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosRule {
    /// Half-open logical-event window `[start, end)` in which this rule
    /// is armed.
    pub window: (u64, u64),
    /// Restrict to frames to/from one node; `None` matches every node.
    pub node: Option<NodeId>,
    pub on_send: bool,
    pub on_recv: bool,
    /// Probability in `[0, 1]` that a matching frame is hit.
    pub prob: f64,
    pub fault: NetFault,
}

impl ChaosRule {
    /// A rule armed forever, on every node, no direction, certain to
    /// fire — callers switch on the fields they care about.
    pub fn new(fault: NetFault) -> Self {
        ChaosRule {
            window: (0, u64::MAX),
            node: None,
            on_send: false,
            on_recv: false,
            prob: 1.0,
            fault,
        }
    }

    pub fn window(mut self, start: u64, end: u64) -> Self {
        self.window = (start, end);
        self
    }

    pub fn node(mut self, id: NodeId) -> Self {
        self.node = Some(id);
        self
    }

    pub fn on_send(mut self) -> Self {
        self.on_send = true;
        self
    }

    pub fn on_recv(mut self) -> Self {
        self.on_recv = true;
        self
    }

    pub fn prob(mut self, p: f64) -> Self {
        self.prob = p;
        self
    }

    fn matches(&self, event: u64, node: NodeId, dir: Direction) -> bool {
        event >= self.window.0
            && event < self.window.1
            && self.node.is_none_or(|n| n == node)
            && match dir {
                Direction::Send => self.on_send,
                Direction::Recv => self.on_recv,
            }
    }
}

/// An asymmetric network partition: frames to (`deny_tx`) and/or from
/// (`deny_rx`) the `isolated` set are dropped with certainty, ahead of
/// any probabilistic rule. `deny_tx` alone models a node that can still
/// talk but cannot be reached; `deny_rx` alone the reverse — the
/// one-way failures that make distributed bugs interesting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    pub isolated: BTreeSet<NodeId>,
    pub deny_tx: bool,
    pub deny_rx: bool,
}

impl Partition {
    /// Full isolation: nothing in or out.
    pub fn full(nodes: impl IntoIterator<Item = NodeId>) -> Self {
        Partition { isolated: nodes.into_iter().collect(), deny_tx: true, deny_rx: true }
    }

    /// Requests reach the node, responses never come back.
    pub fn rx_only(nodes: impl IntoIterator<Item = NodeId>) -> Self {
        Partition { isolated: nodes.into_iter().collect(), deny_tx: false, deny_rx: true }
    }

    /// Requests never arrive; (there is nothing to respond to).
    pub fn tx_only(nodes: impl IntoIterator<Item = NodeId>) -> Self {
        Partition { isolated: nodes.into_iter().collect(), deny_tx: true, deny_rx: false }
    }

    fn blocks(&self, node: NodeId, dir: Direction) -> bool {
        self.isolated.contains(&node)
            && match dir {
                Direction::Send => self.deny_tx,
                Direction::Recv => self.deny_rx,
            }
    }
}

/// One injected fault, for the replay log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// Logical event number at which the fault fired.
    pub event: u64,
    pub node: NodeId,
    pub dir: Direction,
    pub fault: NetFault,
    /// `true` when a [`Partition`] (not a probabilistic rule) dropped
    /// the frame.
    pub partition: bool,
}

struct Inner {
    rng: u64,
    rules: Vec<ChaosRule>,
    partition: Option<Partition>,
    log: Vec<FaultRecord>,
    injected: u64,
}

/// Shared decision engine: seed, rules, partition, virtual clock, and
/// the fault log. One per chaos run, shared (via `Arc`) by every
/// [`crate::ChaosTransport`] in that run.
pub struct ChaosState {
    clock: LogicalClock,
    inner: Mutex<Inner>,
}

/// splitmix64 — tiny, seedable, and with well-dispersed low bits; the
/// same generator the workload crates use for deterministic schedules.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Map a draw to `[0, 1)` using the top 53 bits (exactly representable).
#[inline]
fn unit(draw: u64) -> f64 {
    (draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl ChaosState {
    pub fn new(seed: u64) -> Self {
        ChaosState {
            clock: LogicalClock::new(),
            inner: Mutex::new(Inner {
                rng: seed,
                rules: Vec::new(),
                partition: None,
                log: Vec::new(),
                injected: 0,
            }),
        }
    }

    /// The shared virtual clock (clones share the counter).
    pub fn clock(&self) -> LogicalClock {
        self.clock.clone()
    }

    /// Logical events witnessed so far.
    pub fn events(&self) -> u64 {
        self.clock.now()
    }

    /// Replace the rule set (takes effect on the next frame event).
    pub fn set_rules(&self, rules: Vec<ChaosRule>) {
        self.inner.lock().unwrap().rules = rules;
    }

    pub fn push_rule(&self, rule: ChaosRule) {
        self.inner.lock().unwrap().rules.push(rule);
    }

    /// Install (`Some`) or lift (`None`) the partition.
    pub fn set_partition(&self, partition: Option<Partition>) {
        self.inner.lock().unwrap().partition = partition;
    }

    /// Exact count of faults injected so far (partition drops included).
    pub fn faults_injected(&self) -> u64 {
        self.inner.lock().unwrap().injected
    }

    /// The first [`FAULT_LOG_CAP`] injected faults.
    pub fn fault_log(&self) -> Vec<FaultRecord> {
        self.inner.lock().unwrap().log.clone()
    }

    /// Tick the clock for one frame event and decide its fate. The
    /// partition is consulted first (certain drop); otherwise the first
    /// matching rule whose probability draw fires wins. Returns `None`
    /// for clean delivery.
    pub fn decide(&self, node: NodeId, dir: Direction) -> Option<NetFault> {
        let event = self.clock.tick();
        let mut inner = self.inner.lock().unwrap();
        if inner.partition.as_ref().is_some_and(|p| p.blocks(node, dir)) {
            Self::record(&mut inner, event, node, dir, NetFault::Drop, true);
            return Some(NetFault::Drop);
        }
        for i in 0..inner.rules.len() {
            let rule = inner.rules[i];
            if !rule.matches(event, node, dir) {
                continue;
            }
            let draw = splitmix64(&mut inner.rng);
            if unit(draw) < rule.prob {
                Self::record(&mut inner, event, node, dir, rule.fault, false);
                return Some(rule.fault);
            }
        }
        None
    }

    fn record(
        inner: &mut Inner,
        event: u64,
        node: NodeId,
        dir: Direction,
        fault: NetFault,
        partition: bool,
    ) {
        inner.injected += 1;
        bora_obs::counter("chaos.faults_injected").inc();
        if inner.log.len() < FAULT_LOG_CAP {
            inner.log.push(FaultRecord { event, node, dir, fault, partition });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_disperses() {
        let mut a = 42u64;
        let mut b = 42u64;
        let xs: Vec<u64> = (0..8).map(|_| splitmix64(&mut a)).collect();
        let ys: Vec<u64> = (0..8).map(|_| splitmix64(&mut b)).collect();
        assert_eq!(xs, ys);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), xs.len(), "8 draws collided: {xs:?}");
    }

    #[test]
    fn rule_window_node_and_direction_gate() {
        let r = ChaosRule::new(NetFault::Drop).window(10, 20).node(3).on_send();
        assert!(r.matches(10, 3, Direction::Send));
        assert!(!r.matches(9, 3, Direction::Send), "before window");
        assert!(!r.matches(20, 3, Direction::Send), "window end is exclusive");
        assert!(!r.matches(10, 4, Direction::Send), "wrong node");
        assert!(!r.matches(10, 3, Direction::Recv), "wrong direction");
        let any = ChaosRule::new(NetFault::Duplicate).on_recv();
        assert!(any.matches(0, 999, Direction::Recv), "default matches any node forever");
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed: u64| {
            let st = ChaosState::new(seed);
            st.set_rules(vec![ChaosRule::new(NetFault::Drop).on_send().on_recv().prob(0.5)]);
            let mut hits = Vec::new();
            for i in 0..200u32 {
                let dir = if i % 2 == 0 { Direction::Send } else { Direction::Recv };
                hits.push(st.decide(i % 3, dir).is_some());
            }
            (hits, st.faults_injected(), st.fault_log())
        };
        assert_eq!(run(7), run(7), "identical seed must replay identically");
        assert_ne!(run(7).0, run(8).0, "different seeds should diverge");
        let (_, injected, log) = run(7);
        assert!(injected > 50 && injected < 150, "p=0.5 of 200: {injected}");
        assert_eq!(log.len() as u64, injected, "log under cap keeps everything");
    }

    #[test]
    fn partition_beats_rules_and_is_asymmetric() {
        let st = ChaosState::new(1);
        // A rule that would *delay*; the partition must still hard-drop.
        st.set_rules(vec![ChaosRule::new(NetFault::Delay { ms: 1 }).on_send().on_recv()]);
        st.set_partition(Some(Partition::tx_only([2u32])));
        assert_eq!(st.decide(2, Direction::Send), Some(NetFault::Drop));
        assert_eq!(st.decide(2, Direction::Recv), Some(NetFault::Delay { ms: 1 }), "rx open");
        assert_eq!(st.decide(1, Direction::Send), Some(NetFault::Delay { ms: 1 }), "other node");
        let log = st.fault_log();
        assert!(log[0].partition && !log[1].partition);
        st.set_partition(None);
        st.set_rules(Vec::new());
        assert_eq!(st.decide(2, Direction::Send), None, "healed");
    }

    #[test]
    fn fault_log_caps_but_count_is_exact() {
        let st = ChaosState::new(3);
        st.set_rules(vec![ChaosRule::new(NetFault::Drop).on_send()]);
        for _ in 0..(FAULT_LOG_CAP + 10) {
            st.decide(0, Direction::Send);
        }
        assert_eq!(st.fault_log().len(), FAULT_LOG_CAP);
        assert_eq!(st.faults_injected(), (FAULT_LOG_CAP + 10) as u64);
    }
}
