//! [`ChaosTransport`]: wrap any [`Transport`] so every frame crossing it
//! consults the shared [`ChaosState`].
//!
//! The wrapper sits on the *client* side of the wire, which is where
//! every network failure is ultimately observed: a dropped request and a
//! dropped response both surface as the client's next `recv_frame`
//! timing out. To make loss a *timeout* instead of a *deadlock*,
//! `connect` installs a frame timeout on the inner connection before
//! handing it out; [`ChaosConnection::set_timeout`] then clamps any
//! user-requested bound to that ceiling, so a retry layer can tighten
//! but never loosen it.

use std::collections::VecDeque;
use std::io;
use std::sync::Arc;
use std::time::Duration;

use bora_cluster::NodeId;
use bora_serve::{Connection, Transport};

use crate::fault::{ChaosState, Direction, NetFault};

/// Default ceiling on how long a faulted frame may stall a client.
/// Short enough that scenario drops cost milliseconds, long enough that
/// a clean in-process roundtrip never trips it.
pub const DEFAULT_FRAME_TIMEOUT: Duration = Duration::from_millis(150);

/// A [`Transport`] decorator tagging every connection with the node id
/// it reaches and the shared [`ChaosState`] that decides frame fates.
pub struct ChaosTransport<T> {
    inner: T,
    node: NodeId,
    state: Arc<ChaosState>,
    frame_timeout: Duration,
}

impl<T> ChaosTransport<T> {
    pub fn new(inner: T, node: NodeId, state: Arc<ChaosState>) -> Self {
        ChaosTransport { inner, node, state, frame_timeout: DEFAULT_FRAME_TIMEOUT }
    }

    /// Override the per-frame timeout installed at connect.
    pub fn with_frame_timeout(mut self, timeout: Duration) -> Self {
        self.frame_timeout = timeout;
        self
    }
}

impl<T: Transport> Transport for ChaosTransport<T> {
    type Conn = ChaosConnection<T::Conn>;

    fn connect(&self) -> io::Result<Self::Conn> {
        let mut inner = self.inner.connect()?;
        inner.set_timeout(Some(self.frame_timeout))?;
        Ok(ChaosConnection {
            inner,
            node: self.node,
            state: Arc::clone(&self.state),
            frame_timeout: self.frame_timeout,
            held_send: None,
            pending_recv: VecDeque::new(),
        })
    }
}

/// One faulted connection. All fault bookkeeping is per-connection
/// (held/reordered frames die with the connection, like packets in a
/// closed socket's buffers); all *decisions* come from the shared state.
pub struct ChaosConnection<C: Connection> {
    inner: C,
    node: NodeId,
    state: Arc<ChaosState>,
    frame_timeout: Duration,
    /// A send-side reordered frame waiting for the next send.
    held_send: Option<Vec<u8>>,
    /// Recv-side frames owed to the client before touching the wire
    /// again (duplicates, and the displaced half of a reorder).
    pending_recv: VecDeque<Vec<u8>>,
}

impl<C: Connection> Connection for ChaosConnection<C> {
    fn send_frame(&mut self, payload: &[u8]) -> io::Result<()> {
        match self.state.decide(self.node, Direction::Send) {
            None => {
                if let Some(held) = self.held_send.take() {
                    self.inner.send_frame(payload)?;
                    return self.inner.send_frame(&held);
                }
                self.inner.send_frame(payload)
            }
            // Silent loss: the caller believes the request is in flight
            // and discovers otherwise when its recv times out.
            Some(NetFault::Drop) => Ok(()),
            Some(NetFault::Delay { ms }) => {
                std::thread::sleep(Duration::from_millis(ms));
                self.inner.send_frame(payload)
            }
            Some(NetFault::Duplicate) => {
                self.inner.send_frame(payload)?;
                self.inner.send_frame(payload)
            }
            Some(NetFault::Reorder) => match self.held_send.take() {
                // Two adjacent reorders: flush in swapped order.
                Some(held) => {
                    self.inner.send_frame(payload)?;
                    self.inner.send_frame(&held)
                }
                None => {
                    self.held_send = Some(payload.to_vec());
                    Ok(())
                }
            },
            Some(NetFault::Truncate) => self.inner.send_frame(&payload[..payload.len() / 2]),
        }
    }

    fn recv_frame(&mut self) -> io::Result<Vec<u8>> {
        if let Some(frame) = self.pending_recv.pop_front() {
            return Ok(frame);
        }
        loop {
            let frame = self.inner.recv_frame()?;
            match self.state.decide(self.node, Direction::Recv) {
                None => return Ok(frame),
                // The response evaporates; keep listening. If nothing
                // else is in flight the next inner recv times out.
                Some(NetFault::Drop) => continue,
                Some(NetFault::Delay { ms }) => {
                    std::thread::sleep(Duration::from_millis(ms));
                    return Ok(frame);
                }
                Some(NetFault::Duplicate) => {
                    self.pending_recv.push_back(frame.clone());
                    return Ok(frame);
                }
                // Hold this frame; deliver its successor first. The
                // held frame surfaces on the *next* recv call.
                Some(NetFault::Reorder) => self.pending_recv.push_back(frame),
                Some(NetFault::Truncate) => {
                    let cut = frame.len() / 2;
                    return Ok(frame[..cut].to_vec());
                }
            }
        }
    }

    /// Clamp the caller's bound to the chaos frame timeout: a retry
    /// layer may tighten the window, but nothing may disable the
    /// loss-becomes-timeout guarantee.
    fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        let effective = match timeout {
            Some(t) => t.min(self.frame_timeout),
            None => self.frame_timeout,
        };
        self.inner.set_timeout(Some(effective))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use bora_serve::{MemTransport, ServeClient, Server, ServerConfig};
    use simfs::{IoCtx, MemStorage};

    use super::*;
    use crate::fault::ChaosRule;

    const ROOT: &str = "/c/chaos-unit";

    fn serve_one_container() -> Arc<Server<Arc<MemStorage>>> {
        let fs = Arc::new(MemStorage::new());
        let mut ctx = IoCtx::new();
        let mut w = rosbag::BagWriter::create(
            &*fs,
            "/stage.bag",
            rosbag::BagWriterOptions::default(),
            &mut ctx,
        )
        .unwrap();
        let mut imu = ros_msgs::sensor_msgs::Imu::default();
        imu.header.stamp = ros_msgs::Time::new(1, 0);
        w.write_ros_message("/imu", ros_msgs::Time::new(1, 0), &imu, &mut ctx).unwrap();
        w.close(&mut ctx).unwrap();
        bora::duplicate(&*fs, "/stage.bag", &*fs, ROOT, &Default::default(), &mut ctx).unwrap();
        Server::start(fs, ServerConfig::default())
    }

    fn chaos_client(
        server: &Arc<Server<Arc<MemStorage>>>,
        state: &Arc<ChaosState>,
    ) -> ServeClient<ChaosConnection<bora_serve::transport::MemConnection>> {
        let t = ChaosTransport::new(MemTransport::new(Arc::clone(server)), 0, Arc::clone(state))
            .with_frame_timeout(Duration::from_millis(50));
        ServeClient::connect(&t).unwrap()
    }

    #[test]
    fn clean_state_is_transparent() {
        let server = serve_one_container();
        let state = Arc::new(ChaosState::new(1));
        let mut c = chaos_client(&server, &state);
        assert_eq!(c.topics(ROOT).unwrap(), vec!["/imu"]);
        assert_eq!(state.faults_injected(), 0);
        assert!(state.events() >= 2, "send and recv both tick");
        server.shutdown();
    }

    #[test]
    fn dropped_response_times_out_instead_of_hanging() {
        let server = serve_one_container();
        let state = Arc::new(ChaosState::new(2));
        let mut c = chaos_client(&server, &state);
        // Drop exactly one recv-side frame, then heal.
        state.set_rules(vec![ChaosRule::new(NetFault::Drop).on_recv().window(0, 2)]);
        let err = c.topics(ROOT).unwrap_err();
        assert!(
            matches!(&err, bora_serve::ClientError::Io(e)
                if matches!(e.kind(), io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock)),
            "lost response must surface as a timeout, got: {err}"
        );
        assert_eq!(state.faults_injected(), 1);
        // The connection is desynchronized by design; a fresh one works.
        let mut c2 = chaos_client(&server, &state);
        assert_eq!(c2.topics(ROOT).unwrap(), vec!["/imu"]);
        server.shutdown();
    }

    #[test]
    fn duplicated_response_is_discarded_by_correlation() {
        let server = serve_one_container();
        let state = Arc::new(ChaosState::new(3));
        let mut c = chaos_client(&server, &state);
        state.set_rules(vec![ChaosRule::new(NetFault::Duplicate).on_recv().window(0, 2)]);
        // First op succeeds; the duplicate is queued behind it...
        assert_eq!(c.topics(ROOT).unwrap(), vec!["/imu"]);
        assert_eq!(state.faults_injected(), 1);
        state.set_rules(Vec::new());
        // ...and the next op discards the stale frame (its correlation
        // seq is one behind) and reads its real answer, same connection.
        assert!(c.stat(ROOT).is_ok(), "stale duplicate must be discarded, not decoded");
        server.shutdown();
    }

    /// The lost-ack hole correlation exists to close: a duplicated ack
    /// sits in the pipe, the *next* append's request is dropped. Without
    /// correlation the stale ack is credited to the lost append; with it
    /// the client discards the stale frame and times out — ambiguous,
    /// never falsely acked.
    #[test]
    fn stale_ack_is_not_credited_to_a_dropped_request() {
        let server = serve_one_container();
        let state = Arc::new(ChaosState::new(7));
        let mut c = chaos_client(&server, &state);
        // Event schedule (single-threaded): topics send, topics recv
        // (Duplicate — queues a stale copy), stat send (Drop — server
        // never hears it).
        state.set_rules(vec![
            ChaosRule::new(NetFault::Duplicate).on_recv().window(1, 2),
            ChaosRule::new(NetFault::Drop).on_send().window(2, 3),
        ]);
        assert_eq!(c.topics(ROOT).unwrap(), vec!["/imu"]);
        let err = c.stat(ROOT).unwrap_err();
        assert!(
            matches!(&err, bora_serve::ClientError::Io(e)
                if matches!(e.kind(), io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock)),
            "dropped request + stale response must time out, got: {err}"
        );
        assert_eq!(state.faults_injected(), 2);
        server.shutdown();
    }

    #[test]
    fn truncated_response_is_a_decode_error() {
        let server = serve_one_container();
        let state = Arc::new(ChaosState::new(4));
        let mut c = chaos_client(&server, &state);
        state.set_rules(vec![ChaosRule::new(NetFault::Truncate).on_recv().window(0, 2)]);
        let err = c.topics(ROOT).unwrap_err();
        assert!(matches!(err, bora_serve::ClientError::Proto(_)), "got: {err}");
        server.shutdown();
    }

    #[test]
    fn user_timeout_is_clamped_to_frame_timeout() {
        let server = serve_one_container();
        let state = Arc::new(ChaosState::new(5));
        let mut c = chaos_client(&server, &state);
        // Asking for a *looser* bound than the chaos ceiling must not
        // reopen the deadlock window: a dropped frame still times out
        // in ~frame_timeout, not in 60 s.
        c.set_timeout(Some(Duration::from_secs(60))).unwrap();
        state.set_rules(vec![ChaosRule::new(NetFault::Drop).on_recv().window(0, 2)]);
        let started = std::time::Instant::now();
        assert!(c.topics(ROOT).is_err());
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "clamped timeout should fire fast, took {:?}",
            started.elapsed()
        );
        server.shutdown();
    }

    #[test]
    fn delay_fault_still_delivers() {
        let server = serve_one_container();
        let state = Arc::new(ChaosState::new(6));
        let mut c = chaos_client(&server, &state);
        state.set_rules(vec![ChaosRule::new(NetFault::Delay { ms: 5 }).on_recv().window(0, 2)]);
        assert_eq!(c.topics(ROOT).unwrap(), vec!["/imu"]);
        assert_eq!(state.faults_injected(), 1);
        server.shutdown();
    }
}
