//! **bora-chaos** — a seeded, deterministic network-fault layer for the
//! BORA serving tier, plus the scenario scheduler that breaks a cluster
//! on purpose.
//!
//! The cluster code path (retry budgets, failover, hedges, breakers,
//! partition-aware heal) exists to survive a hostile network. This
//! crate *is* that hostile network, built so its hostility replays:
//!
//! * [`ChaosTransport`] wraps any [`bora_serve::Transport`] so every
//!   frame consults a shared [`ChaosState`] — rule-driven
//!   drop/delay/duplicate/reorder/truncate faults plus asymmetric
//!   [`Partition`]s, all decided by a splitmix64 stream keyed off the
//!   seed and the [`simfs::LogicalClock`] event order, never off wall
//!   time;
//! * [`run_scenario`] drives a live 3-node [`bora_cluster::LocalCluster`]
//!   through composite failure scripts ([`Scenario`]) while invariant
//!   checkers assert that no acked append is lost, reads stay
//!   byte-identical to a fault-free baseline, heal refuses minority
//!   views and then converges, breakers re-close, and per-request
//!   deadlines bound every op's wall time;
//! * [`ScenarioReport::replay_key`] is the determinism contract: two
//!   runs of the same `(scenario, seed)` agree on the outcome digest
//!   and the violation list, which CI replays and asserts.
//!
//! ```
//! use std::sync::Arc;
//! use bora_chaos::{ChaosRule, ChaosState, ChaosTransport, NetFault};
//!
//! let state = Arc::new(ChaosState::new(0xb0ba));
//! state.set_rules(vec![ChaosRule::new(NetFault::Drop).on_recv().prob(0.2)]);
//! // Wrap any transport; node id 0 tags this wire's frames.
//! # use bora_serve::{MemTransport, Server, ServerConfig};
//! # use simfs::MemStorage;
//! # let server = Server::start(Arc::new(MemStorage::new()), ServerConfig::default());
//! let chaotic = ChaosTransport::new(MemTransport::new(server), 0, Arc::clone(&state));
//! # let _ = chaotic;
//! ```

pub mod fault;
pub mod scenario;
pub mod transport;

pub use fault::{
    splitmix64, ChaosRule, ChaosState, Direction, FaultRecord, NetFault, Partition, FAULT_LOG_CAP,
};
pub use scenario::{
    run_scenario, Scenario, ScenarioReport, INGEST_ROOT, LIVE_TOPIC, STATIC_ROOT, STATIC_TOPICS,
};
pub use transport::{ChaosConnection, ChaosTransport, DEFAULT_FRAME_TIMEOUT};
