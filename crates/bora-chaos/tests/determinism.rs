//! The two contracts everything else in this crate leans on:
//!
//! 1. [`ChaosTransport`] is *deterministic* — the same seed and the same
//!    rule schedule replay the exact same fault sequence AND the exact
//!    same client-visible outcomes, for any schedule proptest can dream
//!    up (single-threaded client; concurrency is what the scenario
//!    digest contract covers).
//! 2. [`should_failover`] classifies **every** [`ClientError`] variant
//!    and **every** [`ErrorCode`], because a misrouted error either
//!    hammers a dead node or abandons a healthy cluster.

use std::sync::Arc;
use std::time::Duration;

use bora_chaos::{ChaosRule, ChaosState, ChaosTransport, FaultRecord, NetFault};
use bora_cluster::client::should_failover;
use bora_serve::{
    ClientError, ErrorCode, MemTransport, ProtoError, ServeClient, Server, ServerConfig,
};
use proptest::prelude::*;
use simfs::{IoCtx, MemStorage};

const ROOT: &str = "/c/det";

/// One tiny sealed container behind a server — the ops the script
/// replays are read-only, so both runs of a case share the fixture.
fn fixture() -> Arc<Server<Arc<MemStorage>>> {
    let fs = Arc::new(MemStorage::new());
    let mut ctx = IoCtx::new();
    let mut w = rosbag::BagWriter::create(
        &*fs,
        "/stage.bag",
        rosbag::BagWriterOptions::default(),
        &mut ctx,
    )
    .unwrap();
    let mut imu = ros_msgs::sensor_msgs::Imu::default();
    imu.header.stamp = ros_msgs::Time::new(1, 0);
    w.write_ros_message("/imu", ros_msgs::Time::new(1, 0), &imu, &mut ctx).unwrap();
    w.close(&mut ctx).unwrap();
    bora::duplicate(&*fs, "/stage.bag", &*fs, ROOT, &Default::default(), &mut ctx).unwrap();
    Server::start(fs, ServerConfig::default())
}

/// Collapse a client outcome to a stable, comparable label. Ok payloads
/// participate fully (a stale duplicate answering the wrong request is a
/// *visible* outcome and must replay); errors collapse to their variant
/// plus the deterministic parts (io kind, server code).
fn label(res: Result<String, ClientError>) -> String {
    match res {
        Ok(v) => format!("ok:{v}"),
        Err(ClientError::Io(e)) => format!("io:{:?}", e.kind()),
        Err(ClientError::Proto(_)) => "proto".into(),
        Err(ClientError::Server { code, .. }) => format!("server:{code:?}"),
        Err(ClientError::Overloaded) => "overloaded".into(),
        Err(ClientError::DeadlineExceeded { .. }) => "deadline".into(),
    }
}

/// Drive a scripted, single-threaded op sequence through a fresh
/// [`ChaosState`] and return everything a client (or auditor) can see.
fn run_schedule(
    server: &Arc<Server<Arc<MemStorage>>>,
    seed: u64,
    rules: &[ChaosRule],
    ops: usize,
) -> (Vec<String>, Vec<FaultRecord>, u64, u64) {
    let state = Arc::new(ChaosState::new(seed));
    state.set_rules(rules.to_vec());
    let transport =
        ChaosTransport::new(MemTransport::new(Arc::clone(server)), 0, Arc::clone(&state))
            .with_frame_timeout(Duration::from_millis(50));
    let mut conn = ServeClient::connect(&transport).ok();
    let mut outcomes = Vec::with_capacity(ops);
    for i in 0..ops {
        let Some(c) = conn.as_mut() else {
            outcomes.push("connect-failed".to_string());
            conn = ServeClient::connect(&transport).ok();
            continue;
        };
        let res = if i % 2 == 0 {
            c.topics(ROOT).map(|t| format!("topics={t:?}"))
        } else {
            c.stat(ROOT).map(|s| format!("stat={s:?}"))
        };
        let failed = res.is_err();
        outcomes.push(label(res));
        if failed {
            // A faulted connection may be desynchronized; a real retry
            // layer reconnects, so the script does too.
            conn = ServeClient::connect(&transport).ok();
        }
    }
    (outcomes, state.fault_log(), state.faults_injected(), state.events())
}

fn arb_fault() -> impl Strategy<Value = NetFault> {
    prop_oneof![
        Just(NetFault::Drop),
        prop::sample::select(vec![1u64, 2, 3]).prop_map(|ms| NetFault::Delay { ms }),
        Just(NetFault::Duplicate),
        Just(NetFault::Reorder),
        Just(NetFault::Truncate),
    ]
}

fn arb_rule() -> impl Strategy<Value = ChaosRule> {
    (
        arb_fault(),
        prop::sample::select(vec!["send", "recv", "both"]),
        0.0f64..0.6,
        0u64..20,
        1u64..40,
        prop::sample::select(vec![0i64, 1, -1]),
    )
        .prop_map(|(fault, dir, prob, start, len, node)| {
            let mut rule = ChaosRule::new(fault).prob(prob).window(start, start + len);
            if dir == "send" || dir == "both" {
                rule = rule.on_send();
            }
            if dir == "recv" || dir == "both" {
                rule = rule.on_recv();
            }
            // `1` filters for a node this wire never reaches — the rule
            // must be dead weight, identically in both runs.
            if node >= 0 {
                rule = rule.node(node as u32);
            }
            rule
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn same_seed_and_schedule_replays_exactly(
        seed in any::<u64>(),
        rules in prop::collection::vec(arb_rule(), 0..4),
    ) {
        let server = fixture();
        let a = run_schedule(&server, seed, &rules, 8);
        let b = run_schedule(&server, seed, &rules, 8);
        prop_assert_eq!(
            &a.1, &b.1,
            "fault sequence diverged under seed {} rules {:?}", seed, rules
        );
        prop_assert_eq!(a.2, b.2, "fault count diverged");
        prop_assert_eq!(a.3, b.3, "logical event count diverged");
        prop_assert_eq!(
            &a.0, &b.0,
            "client-visible outcomes diverged under seed {} rules {:?}", seed, rules
        );
        server.shutdown();
    }
}

/// Every [`ErrorCode`] the wire can carry, kept in sync by the
/// exhaustive match below (adding a code without classifying it here is
/// a compile error).
fn all_codes() -> Vec<ErrorCode> {
    let codes = vec![
        ErrorCode::NotAContainer,
        ErrorCode::UnknownTopic,
        ErrorCode::Corrupt,
        ErrorCode::Io,
        ErrorCode::BadRequest,
        ErrorCode::ShuttingDown,
        ErrorCode::ChecksumMismatch,
        ErrorCode::DeadlineExceeded,
        ErrorCode::BadQuery,
    ];
    for c in &codes {
        match c {
            ErrorCode::NotAContainer
            | ErrorCode::UnknownTopic
            | ErrorCode::Corrupt
            | ErrorCode::Io
            | ErrorCode::BadRequest
            | ErrorCode::ShuttingDown
            | ErrorCode::ChecksumMismatch
            | ErrorCode::DeadlineExceeded
            | ErrorCode::BadQuery => {}
        }
    }
    codes
}

#[test]
fn should_failover_classifies_every_variant() {
    // Transport and framing damage: another replica may be healthy.
    assert!(should_failover(&ClientError::Io(std::io::Error::new(
        std::io::ErrorKind::TimedOut,
        "lost frame",
    ))));
    assert!(should_failover(&ClientError::Proto(ProtoError("truncated".into()))));
    // Load shedding is per-node by construction.
    assert!(should_failover(&ClientError::Overloaded));
    // A spent wall-clock budget is spent on every replica.
    assert!(!should_failover(&ClientError::DeadlineExceeded {
        deadline: Duration::from_millis(100),
        elapsed: Duration::from_millis(120),
        last_error: "timed out".into(),
    }));
    for code in all_codes() {
        let e = ClientError::Server { code, message: format!("{code:?}") };
        let expect = match code {
            // Reopen-and-retry can heal these on the same node, and a
            // sibling replica serves its own copy meanwhile.
            ErrorCode::Io | ErrorCode::ChecksumMismatch => true,
            // Not an error *about the data* — this node is leaving, the
            // others are not.
            ErrorCode::ShuttingDown => true,
            // Permanent answers are permanent everywhere: same
            // namespace, same manifest, same spent budget.
            ErrorCode::NotAContainer
            | ErrorCode::UnknownTopic
            | ErrorCode::Corrupt
            | ErrorCode::BadRequest
            | ErrorCode::DeadlineExceeded
            | ErrorCode::BadQuery => false,
        };
        assert_eq!(
            should_failover(&e),
            expect,
            "{code:?} must {} failover",
            if expect { "trigger" } else { "not trigger" }
        );
    }
}
