//! End-to-end test of the `rosbag-tool` binary against real files.

use std::path::PathBuf;
use std::process::Command;

use ros_msgs::sensor_msgs::Imu;
use ros_msgs::Time;
use rosbag::{BagWriter, BagWriterOptions};
use simfs::{IoCtx, LocalStorage, Storage};

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rosbag-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_demo_bag(dir: &PathBuf, n: u32) {
    let fs = LocalStorage::new(dir).unwrap();
    let mut ctx = IoCtx::new();
    let mut w = BagWriter::create(
        &fs,
        "/demo.bag",
        BagWriterOptions { chunk_size: 4096, ..Default::default() },
        &mut ctx,
    )
    .unwrap();
    for i in 0..n {
        let mut imu = Imu::default();
        imu.header.seq = i;
        imu.header.stamp = Time::new(i, 0);
        w.write_ros_message("/imu", Time::new(i, 0), &imu, &mut ctx).unwrap();
    }
    w.close(&mut ctx).unwrap();
}

fn tool() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rosbag-tool"))
}

#[test]
fn info_topics_echo() {
    let dir = workdir("info");
    write_demo_bag(&dir, 40);
    let bag = dir.join("demo.bag");

    let out = tool().arg("info").arg(&bag).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("messages:  40"), "{text}");
    assert!(text.contains("/imu"));
    assert!(text.contains("sensor_msgs/Imu"));

    let out = tool().arg("topics").arg(&bag).output().unwrap();
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "/imu");

    let out = tool().args(["echo"]).arg(&bag).args(["/imu", "3"]).output().unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("(3 of 40 messages)"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reindex_repairs_truncated_bag() {
    let dir = workdir("reindex");
    write_demo_bag(&dir, 60);
    let bag = dir.join("demo.bag");

    // Damage it: cut off the index section (keep ~70% of the file).
    let bytes = std::fs::read(&bag).unwrap();
    // Find where the index section begins by reading the header.
    let fs = LocalStorage::new(&dir).unwrap();
    let mut ctx = IoCtx::new();
    let full = fs.read_all("/demo.bag", &mut ctx).unwrap();
    assert_eq!(full, bytes);
    let mut cur: &[u8] = &bytes[rosbag::MAGIC.len()..];
    let (h, _) = rosbag::record::read_record(&mut cur).unwrap();
    let bh = rosbag::record::BagHeader::from_header(&h).unwrap();
    std::fs::write(&bag, &bytes[..bh.index_pos as usize]).unwrap();

    // Damaged bag fails to open...
    let out = tool().arg("info").arg(&bag).output().unwrap();
    assert!(!out.status.success());

    // ...reindex recovers it...
    let out = tool().arg("reindex").arg(&bag).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("recovered 60 messages"), "{text}");

    // ...and info works again.
    let out = tool().arg("info").arg(&bag).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("messages:  60"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn usage_on_bad_args() {
    let out = tool().arg("bogus").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn compress_roundtrip_via_cli() {
    let dir = workdir("compress");
    write_demo_bag(&dir, 120);
    let bag = dir.join("demo.bag");
    let lz = dir.join("demo.lzss.bag");
    let back = dir.join("demo.back.bag");

    let out = tool().arg("compress").arg(&bag).arg(&lz).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("rewrote 120 messages"));
    // IMU payloads are repetitive: the compressed bag must be smaller.
    let orig_len = std::fs::metadata(&bag).unwrap().len();
    let lz_len = std::fs::metadata(&lz).unwrap().len();
    assert!(lz_len < orig_len, "lzss {lz_len} vs {orig_len}");

    let out = tool().arg("decompress").arg(&lz).arg(&back).output().unwrap();
    assert!(out.status.success());
    // Round-tripped bag serves the same messages.
    let out = tool().arg("info").arg(&back).output().unwrap();
    assert!(String::from_utf8_lossy(&out.stdout).contains("messages:  120"));

    std::fs::remove_dir_all(&dir).ok();
}
