//! End-to-end tests of LZSS-compressed bags: write, open, query, recover.

use proptest::prelude::*;
use ros_msgs::sensor_msgs::{CameraInfo, Imu};
use ros_msgs::{RosMessage, Time};
use rosbag::{BagReader, BagWriter, BagWriterOptions, Compression};
use simfs::{IoCtx, MemStorage, Storage};

fn build_compressed(fs: &MemStorage, n: u32) -> u64 {
    let mut ctx = IoCtx::new();
    let mut w = BagWriter::create(
        fs,
        "/c.bag",
        BagWriterOptions { chunk_size: 8 * 1024, compression: Compression::Lzss },
        &mut ctx,
    )
    .unwrap();
    for i in 0..n {
        let t = Time::new(i, 0);
        let mut imu = Imu::default();
        imu.header.seq = i;
        imu.header.stamp = t;
        w.write_ros_message("/imu", t, &imu, &mut ctx).unwrap();
        if i % 3 == 0 {
            let mut cam = CameraInfo::default();
            cam.header.seq = i;
            w.write_ros_message("/camera_info", t, &cam, &mut ctx).unwrap();
        }
    }
    w.close(&mut ctx).unwrap().message_count
}

#[test]
fn compressed_bag_is_smaller_and_equivalent() {
    let fs_plain = MemStorage::new();
    let fs_comp = MemStorage::new();
    let mut ctx = IoCtx::new();

    // Same content, both compressions.
    let mut w = BagWriter::create(
        &fs_plain,
        "/c.bag",
        BagWriterOptions { chunk_size: 8 * 1024, compression: Compression::None },
        &mut ctx,
    )
    .unwrap();
    for i in 0..400u32 {
        let mut imu = Imu::default();
        imu.header.seq = i;
        imu.header.stamp = Time::new(i, 0);
        w.write_ros_message("/imu", Time::new(i, 0), &imu, &mut ctx).unwrap();
    }
    w.close(&mut ctx).unwrap();
    build_compressed(&fs_comp, 400);

    let plain_len = fs_plain.len("/c.bag", &mut ctx).unwrap();
    let comp_len = fs_comp.len("/c.bag", &mut ctx).unwrap();
    // IMU messages are highly repetitive (zero covariances): big win.
    assert!(comp_len < plain_len / 2, "compressed {comp_len} vs plain {plain_len}");

    // Same messages come back.
    let rp = BagReader::open(&fs_plain, "/c.bag", &mut ctx).unwrap();
    let rc = BagReader::open(&fs_comp, "/c.bag", &mut ctx).unwrap();
    let mp = rp.read_messages(&["/imu"], &mut ctx).unwrap();
    let mc = rc.read_messages(&["/imu"], &mut ctx).unwrap();
    assert_eq!(mp.len(), mc.len());
    for (a, b) in mp.iter().zip(&mc) {
        assert_eq!(a.time, b.time);
        assert_eq!(a.data, b.data);
    }
}

#[test]
fn compressed_time_queries_work() {
    let fs = MemStorage::new();
    build_compressed(&fs, 300);
    let mut ctx = IoCtx::new();
    let r = BagReader::open(&fs, "/c.bag", &mut ctx).unwrap();
    let msgs =
        r.read_messages_time(&["/imu"], Time::new(100, 0), Time::new(150, 0), &mut ctx).unwrap();
    assert_eq!(msgs.len(), 50);
    let decoded = Imu::from_bytes(&msgs[0].data).unwrap();
    assert_eq!(decoded.header.seq, 100);
}

#[test]
fn compressed_bag_duplicates_into_bora() {
    let fs = MemStorage::new();
    let n = build_compressed(&fs, 240);
    let mut ctx = IoCtx::new();
    bora::organizer::duplicate(
        &fs,
        "/c.bag",
        &fs,
        "/bora",
        &bora::OrganizerOptions::default(),
        &mut ctx,
    )
    .unwrap();
    let bag = bora::BoraBag::open(&fs, "/bora", &mut ctx).unwrap();
    assert_eq!(bag.verify(&mut ctx).unwrap(), n);
    let msgs = bag.read_topic("/imu", &mut ctx).unwrap();
    assert_eq!(msgs.len(), 240);
}

#[test]
fn compressed_bag_reindexes() {
    let fs = MemStorage::new();
    build_compressed(&fs, 200);
    let mut ctx = IoCtx::new();
    // Crash it: cut the index section.
    let bytes = fs.read_all("/c.bag", &mut ctx).unwrap();
    let mut cur: &[u8] = &bytes[rosbag::MAGIC.len()..];
    let (h, _) = rosbag::record::read_record(&mut cur).unwrap();
    let bh = rosbag::record::BagHeader::from_header(&h).unwrap();
    let mut crashed = bytes[..bh.index_pos as usize].to_vec();
    let placeholder =
        rosbag::record::BagHeader { index_pos: 0, conn_count: 0, chunk_count: 0 }.encode_padded();
    crashed[rosbag::MAGIC.len()..rosbag::MAGIC.len() + placeholder.len()]
        .copy_from_slice(&placeholder);
    fs.remove_file("/c.bag", &mut ctx).unwrap();
    fs.append("/c.bag", &crashed, &mut ctx).unwrap();

    let report = rosbag::reindex(&fs, "/c.bag", &mut ctx).unwrap();
    assert!(report.messages_recovered > 0);
    let r = BagReader::open(&fs, "/c.bag", &mut ctx).unwrap();
    assert_eq!(r.index().message_count(), report.messages_recovered);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LZSS round-trips arbitrary byte strings.
    #[test]
    fn lzss_roundtrip(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let c = rosbag::compress::compress(&data);
        prop_assert_eq!(rosbag::compress::decompress(&c, data.len()).unwrap(), data);
    }

    /// LZSS round-trips structured, repetitive data (the realistic case).
    #[test]
    fn lzss_roundtrip_repetitive(
        unit in prop::collection::vec(any::<u8>(), 1..32),
        reps in 1usize..200,
    ) {
        let data: Vec<u8> = unit.iter().cycle().take(unit.len() * reps).copied().collect();
        let c = rosbag::compress::compress(&data);
        prop_assert_eq!(rosbag::compress::decompress(&c, data.len()).unwrap(), data);
    }

    /// Decompressing arbitrary junk never panics.
    #[test]
    fn lzss_decode_junk_never_panics(
        junk in prop::collection::vec(any::<u8>(), 0..512),
        expected in 0usize..1024,
    ) {
        let _ = rosbag::compress::decompress(&junk, expected);
    }
}
