//! Error type for bag parsing and I/O.

use std::fmt;

use ros_msgs::WireError;
use simfs::FsError;

/// Errors from reading or writing bags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BagError {
    /// File does not start with `#ROSBAG V2.0\n`.
    BadMagic,
    /// Malformed record or field encoding.
    Format(String),
    /// A required header field is missing.
    MissingField { record: &'static str, field: &'static str },
    /// Wire-level decode failure.
    Wire(WireError),
    /// Underlying storage failure.
    Fs(FsError),
    /// Query referenced a topic the bag does not contain.
    UnknownTopic(String),
    /// The writer was used after `close()`.
    Closed,
}

impl fmt::Display for BagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BagError::BadMagic => write!(f, "not a ROS bag (bad magic)"),
            BagError::Format(m) => write!(f, "malformed bag: {m}"),
            BagError::MissingField { record, field } => {
                write!(f, "{record} record missing field '{field}'")
            }
            BagError::Wire(e) => write!(f, "wire error: {e}"),
            BagError::Fs(e) => write!(f, "storage error: {e}"),
            BagError::UnknownTopic(t) => write!(f, "unknown topic: {t}"),
            BagError::Closed => write!(f, "bag writer already closed"),
        }
    }
}

impl std::error::Error for BagError {}

impl From<WireError> for BagError {
    fn from(e: WireError) -> Self {
        BagError::Wire(e)
    }
}

impl From<FsError> for BagError {
    fn from(e: FsError) -> Self {
        BagError::Fs(e)
    }
}

pub type BagResult<T> = Result<T, BagError>;
