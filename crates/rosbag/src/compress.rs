//! Chunk compression: a from-scratch LZSS codec.
//!
//! Real `rosbag` compresses chunks with BZ2 or LZ4; this reproduction
//! implements an LZSS variant (the family LZ4 belongs to) so compressed
//! bags exercise the same code paths: the chunk header's `compression`
//! field, whole-chunk decompression on read, and index offsets expressed
//! in *uncompressed* chunk coordinates.
//!
//! Format: groups of up to 8 tokens, each group led by a flag byte
//! (bit i set ⇒ token i is a match). A literal token is one raw byte; a
//! match token is two bytes encoding a 12-bit back-distance (1..=4095)
//! and a 4-bit length (3..=18).

use crate::error::{BagError, BagResult};

/// Name stored in the chunk header's `compression` field.
pub const LZSS: &str = "lzss";

const WINDOW: usize = 4095;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 18;
/// Hash-chain table size (power of two).
const HASH_SIZE: usize = 1 << 13;

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let h = (data[i] as u32)
        .wrapping_mul(0x9E37)
        .wrapping_add((data[i + 1] as u32).wrapping_mul(0x79B9))
        .wrapping_add(data[i + 2] as u32);
    (h as usize) & (HASH_SIZE - 1)
}

/// Compress `data`. Output is self-contained (no external dictionary).
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    if data.is_empty() {
        return out;
    }
    // head[h] = most recent position with hash h (+1; 0 = none).
    let mut head = vec![0u32; HASH_SIZE];
    // prev[i % window] = previous position in the same chain (+1).
    let mut prev = vec![0u32; WINDOW + 1];

    let mut i = 0usize;
    let mut flags_pos = out.len();
    out.push(0);
    let mut flag_bit = 0u8;

    macro_rules! new_group_if_full {
        () => {
            if flag_bit == 8 {
                flags_pos = out.len();
                out.push(0);
                flag_bit = 0;
            }
        };
    }

    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= data.len() {
            let h = hash3(data, i);
            let mut cand = head[h] as usize; // 1-based
            let mut steps = 0;
            while cand > 0 && steps < 32 {
                let pos = cand - 1;
                if pos >= i || i - pos > WINDOW {
                    break;
                }
                let limit = (data.len() - i).min(MAX_MATCH);
                let mut l = 0usize;
                while l < limit && data[pos + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = i - pos;
                    if l == MAX_MATCH {
                        break;
                    }
                }
                cand = prev[pos % (WINDOW + 1)] as usize;
                steps += 1;
            }
        }

        new_group_if_full!();
        if best_len >= MIN_MATCH {
            out[flags_pos] |= 1 << flag_bit;
            let token = ((best_dist as u16) << 4) | ((best_len - MIN_MATCH) as u16);
            out.extend_from_slice(&token.to_le_bytes());
            // Insert hash entries for every covered position.
            let end = i + best_len;
            while i < end {
                if i + MIN_MATCH <= data.len() {
                    let h = hash3(data, i);
                    prev[i % (WINDOW + 1)] = head[h];
                    head[h] = (i + 1) as u32;
                }
                i += 1;
            }
        } else {
            out.push(data[i]);
            if i + MIN_MATCH <= data.len() {
                let h = hash3(data, i);
                prev[i % (WINDOW + 1)] = head[h];
                head[h] = (i + 1) as u32;
            }
            i += 1;
        }
        flag_bit += 1;
    }
    out
}

/// Decompress into exactly `expected_len` bytes.
pub fn decompress(data: &[u8], expected_len: usize) -> BagResult<Vec<u8>> {
    let mut out = Vec::with_capacity(expected_len);
    let mut i = 0usize;
    while out.len() < expected_len {
        if i >= data.len() {
            return Err(BagError::Format("lzss stream truncated".into()));
        }
        let flags = data[i];
        i += 1;
        for bit in 0..8 {
            if out.len() >= expected_len {
                break;
            }
            if flags & (1 << bit) != 0 {
                if i + 2 > data.len() {
                    return Err(BagError::Format("lzss match truncated".into()));
                }
                let token = u16::from_le_bytes([data[i], data[i + 1]]);
                i += 2;
                let dist = (token >> 4) as usize;
                let len = (token & 0xF) as usize + MIN_MATCH;
                if dist == 0 || dist > out.len() {
                    return Err(BagError::Format(format!(
                        "lzss back-reference out of range (dist={dist}, have={})",
                        out.len()
                    )));
                }
                let start = out.len() - dist;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            } else {
                if i >= data.len() {
                    return Err(BagError::Format("lzss literal truncated".into()));
                }
                out.push(data[i]);
                i += 1;
            }
        }
    }
    if out.len() != expected_len {
        return Err(BagError::Format(format!(
            "lzss produced {} bytes, expected {expected_len}",
            out.len()
        )));
    }
    Ok(out)
}

/// Decode a chunk's data section given its header's compression field.
pub fn decode_chunk(compression: &str, raw: &[u8], uncompressed_size: usize) -> BagResult<Vec<u8>> {
    match compression {
        "none" => {
            if raw.len() != uncompressed_size {
                return Err(BagError::Format(
                    "uncompressed chunk size disagrees with header".into(),
                ));
            }
            Ok(raw.to_vec())
        }
        LZSS => decompress(raw, uncompressed_size),
        other => Err(BagError::Format(format!("unsupported chunk compression '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c, data.len()).unwrap();
        assert_eq!(d, data);
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abc");
    }

    #[test]
    fn repetitive_data_shrinks() {
        let data: Vec<u8> = b"sensor_msgs/Imu".iter().cycle().take(8192).copied().collect();
        let c = compress(&data);
        assert!(c.len() < data.len() / 4, "compressed {} of {}", c.len(), data.len());
        assert_eq!(decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn incompressible_data_survives() {
        // Pseudo-random bytes: expansion bounded by flag overhead (1/8).
        let mut x: u64 = 0x9E3779B97F4A7C15;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        let c = compress(&data);
        assert!(c.len() <= data.len() + data.len() / 8 + 2);
        assert_eq!(decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn long_runs_use_max_matches() {
        roundtrip(&vec![0u8; 100_000]);
    }

    #[test]
    fn truncated_stream_rejected() {
        let data = vec![7u8; 256];
        let c = compress(&data);
        assert!(decompress(&c[..c.len() - 1], data.len()).is_err());
    }

    #[test]
    fn bad_backref_rejected() {
        // flags=1 (match), dist=100 with empty history.
        let stream = [0x01, 0x40, 0x06, 0x00];
        assert!(decompress(&stream, 10).is_err());
    }

    #[test]
    fn decode_chunk_dispatch() {
        let data = b"hello hello hello".to_vec();
        assert_eq!(decode_chunk("none", &data, data.len()).unwrap(), data);
        let c = compress(&data);
        assert_eq!(decode_chunk(LZSS, &c, data.len()).unwrap(), data);
        assert!(decode_chunk("bz2", &data, data.len()).is_err());
        assert!(decode_chunk("none", &data, data.len() + 1).is_err());
    }
}
