//! The ROS bag v2.0 file format, from scratch, plus the **baseline**
//! `rosbag`-style access API — the control group of every experiment in the
//! BORA paper.
//!
//! # Format
//!
//! A bag is `#ROSBAG V2.0\n` followed by a sequence of *records*. Each
//! record is a length-prefixed header (a set of `name=value` fields) plus a
//! length-prefixed data blob. Record kinds ([`record::Op`]):
//!
//! * **Bag header** — offset of the index section, connection/chunk counts;
//!   padded to a fixed size so it can be rewritten in place on close.
//! * **Chunk** — a batch of serialized connection + message-data records.
//! * **Index data** — per (chunk, connection): `(time, offset-in-chunk)`
//!   pairs, written right after each chunk. This is the index data the
//!   paper notes is "scattered all over a bag".
//! * **Connection** — topic name, datatype, md5sum, full message
//!   definition.
//! * **Chunk info** — per chunk: position, time range, per-connection
//!   message counts; all appended at the end of the bag.
//!
//! # Baseline access pattern (paper Fig. 4a)
//!
//! [`BagReader::open`] performs the traditional open: read the bag header,
//! jump to the index section, read connections and chunk infos, then
//! *iterate the chunk-info list*, seeking to every chunk to collect its
//! index-data records — O(#chunks) seeks — and finally build the in-memory
//! message index. [`BagReader::read_messages`] and
//! [`BagReader::read_messages_time`] then run the paper's baseline query
//! algorithms (per-topic entry gathering; O(N log N) timestamp merge-sort
//! for time-range queries).
//!
//! All I/O goes through [`simfs::Storage`], so the same code runs on the
//! in-memory, timed single-node, PVFS, and Lustre backends.

pub mod compress;
pub mod error;
pub mod index;
pub mod reader;
pub mod rebag;
pub mod record;
pub mod reindex;
pub mod stats;
pub mod writer;

pub use error::{BagError, BagResult};
pub use index::{BagIndex, ConnectionInfo, IndexEntry};
pub use reader::{BagReader, MessageRecord};
pub use rebag::{rebag, Filter, RebagReport};
pub use record::{Op, RecordHeader, MAGIC};
pub use reindex::{reindex, ReindexReport};
pub use stats::{bag_stats, BagStats, TopicStats};
pub use writer::{BagWriter, BagWriterOptions, Compression};
