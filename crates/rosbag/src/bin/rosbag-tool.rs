//! `rosbag-tool` — inspect, query, and repair real bag files on disk.
//!
//! ```text
//! rosbag-tool info    <file.bag>                summary (like `rosbag info`)
//! rosbag-tool topics  <file.bag>                topic list with counts
//! rosbag-tool echo    <file.bag> <topic> [n]    print first n message stamps/sizes
//! rosbag-tool reindex <file.bag>                recover a damaged/unclosed bag
//! rosbag-tool compress <in.bag> <out.bag>       rewrite with LZSS chunks
//! rosbag-tool decompress <in.bag> <out.bag>     rewrite with raw chunks
//! ```

use std::path::Path;
use std::process::exit;

use rosbag::{BagReader, ReindexReport};
use simfs::{IoCtx, LocalStorage};

fn split(path: &str) -> (LocalStorage, String) {
    let p = Path::new(path);
    let parent = p.parent().filter(|q| !q.as_os_str().is_empty()).unwrap_or(Path::new("."));
    let name = p
        .file_name()
        .unwrap_or_else(|| {
            eprintln!("bad path: {path}");
            exit(2);
        })
        .to_string_lossy()
        .into_owned();
    let fs = LocalStorage::new(parent).unwrap_or_else(|e| {
        eprintln!("cannot open {parent:?}: {e}");
        exit(2);
    });
    (fs, format!("/{name}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ctx = IoCtx::new();
    match args.iter().map(String::as_str).collect::<Vec<_>>().as_slice() {
        ["info", file] => {
            let (fs, path) = split(file);
            let r = BagReader::open(&fs, &path, &mut ctx).unwrap_or_else(die);
            let idx = r.index();
            println!("path:      {file}");
            println!("size:      {} bytes", r.file_len());
            println!("messages:  {}", idx.message_count());
            println!("chunks:    {}", idx.chunk_infos.len());
            if let Some((s, e)) = idx.time_range() {
                println!("start:     {s}");
                println!("end:       {e}");
                println!("duration:  {:.3} s", (e - s).as_sec_f64());
            }
            println!("topics:");
            let stats = rosbag::bag_stats(&r, &mut ctx).unwrap_or_else(die);
            for t in &stats.topics {
                let rate = t.rate_hz.map(|h| format!("{h:7.1} Hz")).unwrap_or_default();
                let gap = t.max_gap_s.map(|g| format!("max gap {g:.2} s")).unwrap_or_default();
                println!(
                    "  {:40} {:28} {:>9} msgs  {rate}  {gap}",
                    t.topic, t.datatype, t.message_count
                );
            }
        }
        ["topics", file] => {
            let (fs, path) = split(file);
            let r = BagReader::open(&fs, &path, &mut ctx).unwrap_or_else(die);
            for t in r.topics() {
                println!("{t}");
            }
        }
        ["echo", file, topic, rest @ ..] => {
            let n: usize = match rest {
                [] => 10,
                [k] => k.parse().unwrap_or_else(|_| {
                    eprintln!("bad count: {k}");
                    exit(2);
                }),
                _ => usage(),
            };
            let (fs, path) = split(file);
            let r = BagReader::open(&fs, &path, &mut ctx).unwrap_or_else(die);
            let msgs = r.read_messages(&[topic], &mut ctx).unwrap_or_else(die);
            for m in msgs.iter().take(n) {
                println!("t={} conn={} {} bytes", m.time, m.conn_id, m.data.len());
            }
            println!("({} of {} messages)", n.min(msgs.len()), msgs.len());
        }
        ["compress", src, dst] | ["decompress", src, dst] => {
            let to_lzss = args[0] == "compress";
            let (sfs, spath) = split(src);
            let (dfs, dpath) = split(dst);
            let r = BagReader::open(&sfs, &spath, &mut ctx).unwrap_or_else(die);
            let mut w = rosbag::BagWriter::create(
                &dfs,
                &dpath,
                rosbag::BagWriterOptions {
                    compression: if to_lzss {
                        rosbag::Compression::Lzss
                    } else {
                        rosbag::Compression::None
                    },
                    ..Default::default()
                },
                &mut ctx,
            )
            .unwrap_or_else(die);
            let mut conn_map = std::collections::HashMap::new();
            for c in &r.index().connections {
                let desc = ros_msgs::MessageDescriptor {
                    datatype: c.datatype.clone(),
                    md5sum: c.md5sum.clone(),
                    definition: c.definition.clone(),
                };
                conn_map.insert(c.conn_id, w.add_connection(&c.topic, &desc));
            }
            let topics: Vec<String> = r.topics().into_iter().map(str::to_owned).collect();
            let refs: Vec<&str> = topics.iter().map(String::as_str).collect();
            for m in r.read_messages(&refs, &mut ctx).unwrap_or_else(die) {
                w.write_message(conn_map[&m.conn_id], m.time, &m.data, &mut ctx)
                    .unwrap_or_else(die);
            }
            let s = w.close(&mut ctx).unwrap_or_else(die);
            println!(
                "rewrote {} messages to {dst} ({} bytes, {})",
                s.message_count,
                s.file_len,
                if to_lzss { "lzss chunks" } else { "raw chunks" }
            );
        }
        ["reindex", file] => {
            let (fs, path) = split(file);
            let ReindexReport {
                chunks_recovered,
                connections_recovered,
                messages_recovered,
                truncated_bytes,
                chunks_skipped,
            } = rosbag::reindex(&fs, &path, &mut ctx).unwrap_or_else(die);
            println!(
                "recovered {messages_recovered} messages in {chunks_recovered} chunks \
                 ({connections_recovered} connections); discarded {truncated_bytes} trailing bytes, \
                 skipped {chunks_skipped} corrupt chunks"
            );
        }
        _ => usage(),
    }
}

fn die<E: std::fmt::Display, T>(e: E) -> T {
    eprintln!("error: {e}");
    exit(1);
}

fn usage() -> ! {
    eprintln!(
        "usage: rosbag-tool <info <file.bag> | topics <file.bag> | \
         echo <file.bag> <topic> [n] | reindex <file.bag> | \
         compress <in.bag> <out.bag> | decompress <in.bag> <out.bag>>"
    );
    exit(2);
}
