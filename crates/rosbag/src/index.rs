//! In-memory bag index built by the baseline open operation.

use std::collections::HashMap;

use ros_msgs::Time;

use crate::error::{BagError, BagResult};
use crate::record::{ChunkInfoRecord, ConnectionRecord};

/// One message's location: the baseline's unit of lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexEntry {
    pub time: Time,
    pub conn_id: u32,
    /// File offset of the chunk record containing the message.
    pub chunk_pos: u64,
    /// Offset of the message-data record within the uncompressed chunk data.
    pub offset_in_chunk: u32,
}

/// Connection metadata as exposed to queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectionInfo {
    pub conn_id: u32,
    pub topic: String,
    pub datatype: String,
    pub md5sum: String,
    pub definition: String,
}

impl From<ConnectionRecord> for ConnectionInfo {
    fn from(r: ConnectionRecord) -> Self {
        ConnectionInfo {
            conn_id: r.conn_id,
            topic: r.topic,
            datatype: r.datatype,
            md5sum: r.md5sum,
            definition: r.definition,
        }
    }
}

/// The index the baseline `rosbag` open constructs: connections, chunk
/// infos, and per-connection message entries (time-ordered within each
/// connection, as index-data records are written in chunk order).
#[derive(Debug, Default, Clone)]
pub struct BagIndex {
    pub connections: Vec<ConnectionInfo>,
    pub chunk_infos: Vec<ChunkInfoRecord>,
    /// conn_id → entries (chronological).
    pub entries: HashMap<u32, Vec<IndexEntry>>,
    topic_to_conn: HashMap<String, u32>,
}

impl BagIndex {
    pub fn new(connections: Vec<ConnectionInfo>, chunk_infos: Vec<ChunkInfoRecord>) -> Self {
        let topic_to_conn = connections.iter().map(|c| (c.topic.clone(), c.conn_id)).collect();
        BagIndex { connections, chunk_infos, entries: HashMap::new(), topic_to_conn }
    }

    pub fn conn_for_topic(&self, topic: &str) -> BagResult<u32> {
        self.topic_to_conn
            .get(topic)
            .copied()
            .ok_or_else(|| BagError::UnknownTopic(topic.to_owned()))
    }

    pub fn topics(&self) -> Vec<&str> {
        self.connections.iter().map(|c| c.topic.as_str()).collect()
    }

    pub fn connection(&self, conn_id: u32) -> Option<&ConnectionInfo> {
        self.connections.iter().find(|c| c.conn_id == conn_id)
    }

    /// Total indexed messages.
    pub fn message_count(&self) -> u64 {
        self.entries.values().map(|v| v.len() as u64).sum()
    }

    /// Earliest and latest message times across the whole bag, from chunk
    /// infos (cheap — no entry scan).
    pub fn time_range(&self) -> Option<(Time, Time)> {
        let start = self.chunk_infos.iter().map(|c| c.start_time).min()?;
        let end = self.chunk_infos.iter().map(|c| c.end_time).max()?;
        Some((start, end))
    }

    /// Gather the entries for a set of connections, merged into one
    /// chronological list — the baseline's preparation step for both
    /// multi-topic reads and time-range queries. This is the O(N log N)
    /// merge the paper attributes the baseline's query cost to.
    ///
    /// Returns the merged entries plus the element count that was sorted
    /// (callers charge CPU cost models with it).
    pub fn merged_entries(&self, conn_ids: &[u32]) -> Vec<IndexEntry> {
        let mut merged: Vec<IndexEntry> = conn_ids
            .iter()
            .filter_map(|id| self.entries.get(id))
            .flat_map(|v| v.iter().copied())
            .collect();
        // Stable by (time, conn, offset) for deterministic output.
        merged.sort_by_key(|e| (e.time, e.conn_id, e.chunk_pos, e.offset_in_chunk));
        merged
    }

    /// Restrict a chronological entry list to `[start, end)` by binary
    /// search (entries must already be sorted by time).
    pub fn slice_time_range(entries: &[IndexEntry], start: Time, end: Time) -> &[IndexEntry] {
        let lo = entries.partition_point(|e| e.time < start);
        let hi = entries.partition_point(|e| e.time < end);
        &entries[lo..hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(sec: u32, conn: u32) -> IndexEntry {
        IndexEntry { time: Time::new(sec, 0), conn_id: conn, chunk_pos: 0, offset_in_chunk: 0 }
    }

    fn sample_index() -> BagIndex {
        let conns = vec![
            ConnectionInfo {
                conn_id: 0,
                topic: "/imu".into(),
                datatype: "sensor_msgs/Imu".into(),
                md5sum: String::new(),
                definition: String::new(),
            },
            ConnectionInfo {
                conn_id: 1,
                topic: "/tf".into(),
                datatype: "tf2_msgs/TFMessage".into(),
                md5sum: String::new(),
                definition: String::new(),
            },
        ];
        let mut idx = BagIndex::new(conns, Vec::new());
        idx.entries.insert(0, vec![entry(1, 0), entry(3, 0), entry(5, 0)]);
        idx.entries.insert(1, vec![entry(2, 1), entry(4, 1)]);
        idx
    }

    #[test]
    fn topic_lookup() {
        let idx = sample_index();
        assert_eq!(idx.conn_for_topic("/imu").unwrap(), 0);
        assert!(matches!(idx.conn_for_topic("/nope"), Err(BagError::UnknownTopic(_))));
    }

    #[test]
    fn merged_entries_chronological() {
        let idx = sample_index();
        let merged = idx.merged_entries(&[0, 1]);
        let secs: Vec<u32> = merged.iter().map(|e| e.time.sec).collect();
        assert_eq!(secs, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn merged_entries_single_conn() {
        let idx = sample_index();
        let merged = idx.merged_entries(&[1]);
        assert_eq!(merged.len(), 2);
        assert!(merged.iter().all(|e| e.conn_id == 1));
    }

    #[test]
    fn slice_time_range_half_open() {
        let idx = sample_index();
        let merged = idx.merged_entries(&[0, 1]);
        let sl = BagIndex::slice_time_range(&merged, Time::new(2, 0), Time::new(4, 0));
        let secs: Vec<u32> = sl.iter().map(|e| e.time.sec).collect();
        assert_eq!(secs, vec![2, 3]);
    }

    #[test]
    fn slice_empty_range() {
        let idx = sample_index();
        let merged = idx.merged_entries(&[0, 1]);
        assert!(BagIndex::slice_time_range(&merged, Time::new(9, 0), Time::new(10, 0)).is_empty());
    }

    #[test]
    fn message_count_sums() {
        assert_eq!(sample_index().message_count(), 5);
    }
}
