//! [`BagReader`]: the baseline `rosbag` open and query paths (paper
//! Fig. 4a) — the control group BORA is measured against.
//!
//! The inefficiencies the paper documents are reproduced faithfully:
//!
//! * **Open** seeks through the whole chunk list to collect scattered
//!   index-data records: O(#chunks) random reads before the first query
//!   can run.
//! * **Query by topic** merges per-connection index entries into time
//!   order, then issues one (mostly random) read per message — small
//!   structured topics interleaved with image data pay a seek per message.
//! * **Query by topic + time range** first merge-sorts the timestamps of
//!   *all* messages of the distilled topics (O(N log N)) before it can
//!   slice the requested window.
//!
//! CPU work (record parsing, index-entry handling, sorting) is charged to
//! the session's virtual clock via [`simfs::device::cpu`] so that modeled
//! times include the software latency the paper's Discussion section calls
//! out.

use ros_msgs::wire::WireRead;
use ros_msgs::Time;
use simfs::device::cpu;
use simfs::{IoCtx, Storage};

use crate::error::{BagError, BagResult};
use crate::index::{BagIndex, ConnectionInfo, IndexEntry};
use crate::record::{
    read_record, BagHeader, ChunkHeader, ChunkInfoRecord, ConnectionRecord, IndexDataRecord,
    MessageDataHeader, Op, MAGIC,
};

/// A message returned by a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageRecord {
    pub conn_id: u32,
    pub topic: String,
    pub time: Time,
    /// Serialized message payload (decode with `ros_msgs::AnyMessage`).
    pub data: Vec<u8>,
}

/// Charge the virtual clock for sorting `n` elements (exposed for cost
/// ablations in the bench crate).
pub fn charge_sort(ctx: &mut IoCtx, n: usize) {
    if n > 1 {
        let log2 = (usize::BITS - (n - 1).leading_zeros()) as u64;
        ctx.charge_ns(n as u64 * log2 * cpu::SORT_ELEMENT_NS);
    }
}

/// Per-chunk layout learned at open time.
#[derive(Debug, Clone, Copy)]
struct ChunkMeta {
    /// File offset of the chunk's data section (past the dlen prefix).
    data_off: u64,
    /// On-disk (possibly compressed) data length.
    stored_len: u32,
    /// Uncompressed length (equal to `stored_len` when uncompressed).
    uncompressed_len: u32,
    compressed: bool,
}

/// An open bag with its in-memory index.
pub struct BagReader<S> {
    storage: S,
    path: String,
    index: BagIndex,
    file_len: u64,
    /// chunk_pos → layout (learned during the open-time chunk walk, so
    /// per-message reads need no extra probe).
    chunks: std::collections::HashMap<u64, ChunkMeta>,
    /// Most recently loaded chunk, compressed or not (rosbag's
    /// `ChunkedFile` keeps the current chunk in memory and reads
    /// messages out of it).
    chunk_cache: std::sync::Mutex<Option<(u64, std::sync::Arc<Vec<u8>>)>>,
}

impl<S: Storage> BagReader<S> {
    /// Traditional `rosbag` open (paper Fig. 4a): read the bag header,
    /// read the index section (connections + chunk infos), then iterate
    /// the chunk-info list, seeking to each chunk to collect its
    /// index-data records, and build the in-memory message index.
    pub fn open(storage: S, path: &str, ctx: &mut IoCtx) -> BagResult<Self> {
        let sp_open = bora_obs::span("rosbag.open");
        let virt_open = ctx.elapsed_ns();
        let sp_header = bora_obs::span("rosbag.open.header");
        let file_len = storage.len(path, ctx)?;

        // 1. Magic + bag header.
        let head = storage.read_at(path, 0, MAGIC.len() + 4096, ctx)?;
        if !head.starts_with(MAGIC) {
            return Err(BagError::BadMagic);
        }
        let mut cur: &[u8] = &head[MAGIC.len()..];
        let (hdr, _pad) = read_record(&mut cur)?;
        ctx.charge_ns(cpu::RECORD_HEADER_NS);
        if hdr.op != Op::BagHeader {
            return Err(BagError::Format("first record is not a bag header".into()));
        }
        let bag_header = BagHeader::from_header(&hdr)?;
        if bag_header.index_pos == 0 || bag_header.index_pos > file_len {
            return Err(BagError::Format("bag is unindexed or truncated".into()));
        }

        // 2. Index section: connection records then chunk infos.
        let index_section = storage.read_at(
            path,
            bag_header.index_pos,
            (file_len - bag_header.index_pos) as usize,
            ctx,
        )?;
        let mut cur: &[u8] = &index_section;
        let mut connections: Vec<ConnectionInfo> =
            Vec::with_capacity(bag_header.conn_count as usize);
        let mut chunk_infos: Vec<ChunkInfoRecord> =
            Vec::with_capacity(bag_header.chunk_count as usize);
        while cur.remaining() > 0 {
            let (h, data) = read_record(&mut cur)?;
            ctx.charge_ns(cpu::RECORD_HEADER_NS);
            match h.op {
                Op::Connection => {
                    connections.push(ConnectionRecord::decode(&h, data)?.into());
                }
                Op::ChunkInfo => {
                    chunk_infos.push(ChunkInfoRecord::decode(&h, data)?);
                }
                other => {
                    return Err(BagError::Format(format!(
                        "unexpected {other:?} record in index section"
                    )));
                }
            }
        }
        if connections.len() != bag_header.conn_count as usize
            || chunk_infos.len() != bag_header.chunk_count as usize
        {
            return Err(BagError::Format("index section counts disagree with header".into()));
        }

        let mut index = BagIndex::new(connections, chunk_infos);
        for c in &index.connections {
            ctx.charge_ns(cpu::HASH_OP_NS);
            let _ = c; // hash-table build per connection
        }
        sp_header.end_virt(ctx.elapsed_ns() - virt_open);

        // 3. The expensive iteration: walk the chunk-info list and gather
        //    each chunk's index-data records (which sit between the end of
        //    the chunk record and the next chunk). One seek per chunk.
        // Traced as the paper's Fig. 2/4a decomposition: the chunk-info
        // *scan* (seek + read per chunk) vs the in-memory index *build*
        // (per-entry CPU charge), whose virtual costs are split out below.
        let sp_scan = bora_obs::span("rosbag.open.chunk_scan");
        let virt_scan = ctx.elapsed_ns();
        let mut index_build_virt = 0u64;
        let mut chunks = std::collections::HashMap::new();
        let chunk_infos = index.chunk_infos.clone();
        for (i, ci) in chunk_infos.iter().enumerate() {
            let next_pos =
                chunk_infos.get(i + 1).map(|n| n.chunk_pos).unwrap_or(bag_header.index_pos);
            // Parse the chunk record header (for its compression and
            // uncompressed size) and find where its index records begin.
            let prefix = storage.read_at(path, ci.chunk_pos, 4, ctx)?;
            let hlen = u32::from_le_bytes(prefix[..4].try_into().unwrap()) as usize;
            let hbytes = storage.read_at(path, ci.chunk_pos + 4, hlen + 4, ctx)?;
            let chdr = crate::record::RecordHeader::decode(&hbytes[..hlen])?;
            ctx.charge_ns(cpu::RECORD_HEADER_NS);
            let ch = ChunkHeader::from_header(&chdr)?;
            let chunk_data_off = ci.chunk_pos + 4 + hlen as u64;
            let dlen = u32::from_le_bytes(hbytes[hlen..hlen + 4].try_into().unwrap()) as u64;
            chunks.insert(
                ci.chunk_pos,
                ChunkMeta {
                    data_off: chunk_data_off + 4,
                    stored_len: dlen as u32,
                    uncompressed_len: ch.size,
                    compressed: ch.compression != "none",
                },
            );
            let idx_start = chunk_data_off + 4 + dlen;
            if idx_start > next_pos {
                return Err(BagError::Format("chunk overruns next chunk position".into()));
            }
            let idx_region =
                storage.read_at(path, idx_start, (next_pos - idx_start) as usize, ctx)?;
            let mut icur: &[u8] = &idx_region;
            while icur.remaining() > 0 {
                let (h, data) = read_record(&mut icur)?;
                ctx.charge_ns(cpu::RECORD_HEADER_NS);
                if h.op != Op::IndexData {
                    return Err(BagError::Format(format!(
                        "expected index data after chunk, found {:?}",
                        h.op
                    )));
                }
                let rec = IndexDataRecord::decode(&h, data)?;
                index_build_virt += rec.entries.len() as u64 * cpu::INDEX_ENTRY_NS;
                ctx.charge_ns(rec.entries.len() as u64 * cpu::INDEX_ENTRY_NS);
                let list = index.entries.entry(rec.conn_id).or_default();
                for (time, offset_in_chunk) in rec.entries {
                    list.push(IndexEntry {
                        time,
                        conn_id: rec.conn_id,
                        chunk_pos: ci.chunk_pos,
                        offset_in_chunk,
                    });
                }
            }
        }

        // The scan and build interleave in one pass over the file, so the
        // build is reported as a zero-width span carrying its share of the
        // virtual charge; the scan span keeps the remainder.
        sp_scan.end_virt(ctx.elapsed_ns() - virt_scan - index_build_virt);
        bora_obs::span("rosbag.open.index_build").end_virt(index_build_virt);
        bora_obs::counter("rosbag.open.count").inc();
        sp_open.end_virt(ctx.elapsed_ns() - virt_open);

        Ok(BagReader {
            storage,
            path: path.to_owned(),
            index,
            file_len,
            chunks,
            chunk_cache: std::sync::Mutex::new(None),
        })
    }

    pub fn index(&self) -> &BagIndex {
        &self.index
    }

    pub fn path(&self) -> &str {
        &self.path
    }

    pub fn file_len(&self) -> u64 {
        self.file_len
    }

    /// Topics recorded in the bag.
    pub fn topics(&self) -> Vec<&str> {
        self.index.topics()
    }

    fn conns_for_topics(&self, topics: &[&str], ctx: &mut IoCtx) -> BagResult<Vec<u32>> {
        topics
            .iter()
            .map(|t| {
                ctx.charge_ns(cpu::HASH_OP_NS);
                self.index.conn_for_topic(t)
            })
            .collect()
    }

    /// Load (and cache) one chunk's uncompressed data. Real rosbag's
    /// `ChunkedFile` keeps the current chunk resident for both compressed
    /// and plain bags; mirroring that, consecutive index entries landing
    /// in the same chunk cost one chunk read, not three small seeks per
    /// message.
    fn load_chunk(
        &self,
        pos: u64,
        meta: ChunkMeta,
        ctx: &mut IoCtx,
    ) -> BagResult<std::sync::Arc<Vec<u8>>> {
        {
            let cache = self.chunk_cache.lock().unwrap();
            if let Some((p, data)) = cache.as_ref() {
                if *p == pos {
                    return Ok(std::sync::Arc::clone(data));
                }
            }
        }
        let raw = self.storage.read_at(&self.path, meta.data_off, meta.stored_len as usize, ctx)?;
        let data = if meta.compressed {
            // Whole-chunk decompression (as rosbag does for bz2/lz4).
            let out = crate::compress::decompress(&raw, meta.uncompressed_len as usize)?;
            ctx.charge_ns(meta.uncompressed_len as u64 * cpu::DECOMPRESS_BYTE_NS);
            std::sync::Arc::new(out)
        } else {
            std::sync::Arc::new(raw)
        };
        *self.chunk_cache.lock().unwrap() = Some((pos, std::sync::Arc::clone(&data)));
        Ok(data)
    }

    /// Read one message given its index entry (seek + parse).
    fn read_entry(&self, e: &IndexEntry, ctx: &mut IoCtx) -> BagResult<MessageRecord> {
        // The chunk's layout was learned during open, so locating the
        // message needs one seek, not a chunk-header probe.
        let meta = match self.chunks.get(&e.chunk_pos) {
            Some(m) => *m,
            None => return Err(BagError::Format("index entry references unknown chunk".into())),
        };

        let data = self.load_chunk(e.chunk_pos, meta, ctx)?;
        let mut cur: &[u8] = &data[e.offset_in_chunk as usize..];
        let (header, payload) = crate::record::read_record(&mut cur)?;
        ctx.charge_ns(cpu::RECORD_HEADER_NS);
        if header.op != Op::MessageData {
            return Err(BagError::Format("index entry does not point at a message".into()));
        }
        let md = MessageDataHeader::from_header(&header)?;
        let topic = self.index.connection(md.conn_id).map(|c| c.topic.clone()).unwrap_or_default();
        Ok(MessageRecord { conn_id: md.conn_id, topic, time: md.time, data: payload.to_vec() })
    }

    /// Baseline `bag.read_messages(topics=[...])`: merge the per-topic
    /// index entries into chronological order and read each message.
    pub fn read_messages(&self, topics: &[&str], ctx: &mut IoCtx) -> BagResult<Vec<MessageRecord>> {
        let sp = bora_obs::span("rosbag.read_messages");
        let virt0 = ctx.elapsed_ns();
        let conns = self.conns_for_topics(topics, ctx)?;
        let merged = self.index.merged_entries(&conns);
        charge_sort(ctx, merged.len());
        ctx.charge_ns(merged.len() as u64 * (cpu::INDEX_ENTRY_NS + cpu::ROSLIB_DELIVERY_NS));
        let out: BagResult<Vec<MessageRecord>> =
            merged.iter().map(|e| self.read_entry(e, ctx)).collect();
        sp.end_virt(ctx.elapsed_ns() - virt0);
        out
    }

    /// Baseline `bag.read_messages(topics, start_time, end_time)`: the
    /// paper's two-dimensional query. The baseline *first* builds the full
    /// merged index-entry list of the distilled topics (O(N log N) over
    /// every message of those topics, however narrow the window), then
    /// binary-searches the window and reads it.
    pub fn read_messages_time(
        &self,
        topics: &[&str],
        start: Time,
        end: Time,
        ctx: &mut IoCtx,
    ) -> BagResult<Vec<MessageRecord>> {
        let sp = bora_obs::span("rosbag.read_messages_time");
        let virt0 = ctx.elapsed_ns();
        let conns = self.conns_for_topics(topics, ctx)?;
        let merged = self.index.merged_entries(&conns);
        charge_sort(ctx, merged.len());
        ctx.charge_ns(merged.len() as u64 * cpu::INDEX_ENTRY_NS);
        let window = BagIndex::slice_time_range(&merged, start, end);
        ctx.charge_ns(window.len() as u64 * cpu::ROSLIB_DELIVERY_NS);
        let out: BagResult<Vec<MessageRecord>> =
            window.iter().map(|e| self.read_entry(e, ctx)).collect();
        sp.end_virt(ctx.elapsed_ns() - virt0);
        out
    }

    /// Sequentially visit every chunk (position, uncompressed data) — the
    /// scan the BORA data organizer performs exactly once per bag.
    pub fn for_each_chunk<F>(&self, ctx: &mut IoCtx, mut f: F) -> BagResult<()>
    where
        F: FnMut(u64, &[u8]) -> BagResult<()>,
    {
        let mut infos = self.index.chunk_infos.clone();
        infos.sort_by_key(|c| c.chunk_pos);
        for ci in &infos {
            let probe = self.storage.read_at(&self.path, ci.chunk_pos, 4, ctx)?;
            let hlen = u32::from_le_bytes(probe[..4].try_into().unwrap()) as usize;
            let rest = self.storage.read_at(&self.path, ci.chunk_pos + 4, hlen + 4, ctx)?;
            let header = crate::record::RecordHeader::decode(&rest[..hlen])?;
            ctx.charge_ns(cpu::RECORD_HEADER_NS);
            let ch = ChunkHeader::from_header(&header)?;
            let dlen = u32::from_le_bytes(rest[hlen..hlen + 4].try_into().unwrap()) as usize;
            let raw =
                self.storage.read_at(&self.path, ci.chunk_pos + 4 + hlen as u64 + 4, dlen, ctx)?;
            let data = crate::compress::decode_chunk(&ch.compression, &raw, ch.size as usize)?;
            if ch.compression != "none" {
                ctx.charge_ns(ch.size as u64 * cpu::DECOMPRESS_BYTE_NS);
            }
            f(ci.chunk_pos, &data)?;
        }
        Ok(())
    }

    /// Parse all message records inside one uncompressed chunk payload.
    pub fn parse_chunk_messages(
        chunk_data: &[u8],
        ctx: &mut IoCtx,
    ) -> BagResult<Vec<(MessageDataHeader, Vec<u8>)>> {
        let mut out = Vec::new();
        let mut cur: &[u8] = chunk_data;
        while cur.remaining() > 0 {
            let (h, data) = read_record(&mut cur)?;
            ctx.charge_ns(cpu::RECORD_HEADER_NS);
            match h.op {
                Op::MessageData => {
                    out.push((MessageDataHeader::from_header(&h)?, data.to_vec()));
                }
                Op::Connection => {} // in-chunk connection copies are skippable
                other => {
                    return Err(BagError::Format(format!("unexpected {other:?} inside chunk")));
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{BagWriter, BagWriterOptions};
    use ros_msgs::sensor_msgs::{CameraInfo, Imu};
    use ros_msgs::RosMessage;
    use simfs::{DeviceModel, MemStorage, TimedStorage};

    /// Build a small two-topic bag: IMU at 10 Hz, camera info at 2 Hz,
    /// over 10 seconds.
    fn build_bag(fs: &MemStorage, path: &str) -> (u64, u64) {
        let mut ctx = IoCtx::new();
        let mut w = BagWriter::create(
            fs,
            path,
            BagWriterOptions { chunk_size: 4096, ..Default::default() },
            &mut ctx,
        )
        .unwrap();
        let mut n_imu = 0;
        let mut n_cam = 0;
        for tick in 0..100u32 {
            let t = Time::from_nanos(tick as u64 * 100_000_000);
            let mut imu = Imu::default();
            imu.header.seq = tick;
            imu.header.stamp = t;
            w.write_ros_message("/imu", t, &imu, &mut ctx).unwrap();
            n_imu += 1;
            if tick % 5 == 0 {
                let mut cam = CameraInfo::default();
                cam.header.seq = tick;
                cam.header.stamp = t;
                cam.width = 640;
                w.write_ros_message("/camera/rgb/camera_info", t, &cam, &mut ctx).unwrap();
                n_cam += 1;
            }
        }
        w.close(&mut ctx).unwrap();
        (n_imu, n_cam)
    }

    #[test]
    fn open_builds_full_index() {
        let fs = MemStorage::new();
        let (n_imu, n_cam) = build_bag(&fs, "/b.bag");
        let mut ctx = IoCtx::new();
        let r = BagReader::open(&fs, "/b.bag", &mut ctx).unwrap();
        assert_eq!(r.index().message_count(), n_imu + n_cam);
        let mut topics = r.topics();
        topics.sort();
        assert_eq!(topics, vec!["/camera/rgb/camera_info", "/imu"]);
    }

    #[test]
    fn read_messages_single_topic() {
        let fs = MemStorage::new();
        let (_, n_cam) = build_bag(&fs, "/b.bag");
        let mut ctx = IoCtx::new();
        let r = BagReader::open(&fs, "/b.bag", &mut ctx).unwrap();
        let msgs = r.read_messages(&["/camera/rgb/camera_info"], &mut ctx).unwrap();
        assert_eq!(msgs.len() as u64, n_cam);
        // Chronological and decodable.
        for pair in msgs.windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
        let decoded = CameraInfo::from_bytes(&msgs[0].data).unwrap();
        assert_eq!(decoded.width, 640);
    }

    #[test]
    fn read_messages_multi_topic_is_merged() {
        let fs = MemStorage::new();
        let (n_imu, n_cam) = build_bag(&fs, "/b.bag");
        let mut ctx = IoCtx::new();
        let r = BagReader::open(&fs, "/b.bag", &mut ctx).unwrap();
        let msgs = r.read_messages(&["/imu", "/camera/rgb/camera_info"], &mut ctx).unwrap();
        assert_eq!(msgs.len() as u64, n_imu + n_cam);
        for pair in msgs.windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
    }

    #[test]
    fn read_messages_time_window() {
        let fs = MemStorage::new();
        build_bag(&fs, "/b.bag");
        let mut ctx = IoCtx::new();
        let r = BagReader::open(&fs, "/b.bag", &mut ctx).unwrap();
        let msgs = r
            .read_messages_time(
                &["/imu"],
                Time::from_sec_f64(2.0),
                Time::from_sec_f64(4.0),
                &mut ctx,
            )
            .unwrap();
        // 10 Hz for 2 seconds = 20 messages.
        assert_eq!(msgs.len(), 20);
        assert!(msgs.iter().all(|m| m.time >= Time::from_sec_f64(2.0)));
        assert!(msgs.iter().all(|m| m.time < Time::from_sec_f64(4.0)));
    }

    #[test]
    fn unknown_topic_errors() {
        let fs = MemStorage::new();
        build_bag(&fs, "/b.bag");
        let mut ctx = IoCtx::new();
        let r = BagReader::open(&fs, "/b.bag", &mut ctx).unwrap();
        assert!(matches!(r.read_messages(&["/nope"], &mut ctx), Err(BagError::UnknownTopic(_))));
    }

    #[test]
    fn open_charges_per_chunk_seeks_on_timed_storage() {
        let mem = MemStorage::new();
        build_bag(&mem, "/b.bag");
        let fs = TimedStorage::new(mem, DeviceModel::nvme_ext4());
        let mut ctx = IoCtx::new();
        let r = BagReader::open(&fs, "/b.bag", &mut ctx).unwrap();
        let chunks = r.index().chunk_infos.len() as u64;
        assert!(chunks > 1);
        // At least one seek per chunk during the open iteration.
        assert!(ctx.stats.seeks >= chunks, "seeks={} chunks={chunks}", ctx.stats.seeks);
        assert!(ctx.elapsed_ns() > 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        fs.append("/junk.bag", &vec![0u8; 8192], &mut ctx).unwrap();
        assert!(matches!(BagReader::open(&fs, "/junk.bag", &mut ctx), Err(BagError::BadMagic)));
    }

    #[test]
    fn for_each_chunk_visits_all_messages() {
        let fs = MemStorage::new();
        let (n_imu, n_cam) = build_bag(&fs, "/b.bag");
        let mut ctx = IoCtx::new();
        let r = BagReader::open(&fs, "/b.bag", &mut ctx).unwrap();
        let mut total = 0u64;
        r.for_each_chunk(&mut ctx, |_pos, data| {
            let mut c2 = IoCtx::new();
            total += BagReader::<&MemStorage>::parse_chunk_messages(data, &mut c2)?.len() as u64;
            Ok(())
        })
        .unwrap();
        assert_eq!(total, n_imu + n_cam);
    }

    #[test]
    fn empty_time_window_returns_nothing() {
        let fs = MemStorage::new();
        build_bag(&fs, "/b.bag");
        let mut ctx = IoCtx::new();
        let r = BagReader::open(&fs, "/b.bag", &mut ctx).unwrap();
        let msgs = r
            .read_messages_time(&["/imu"], Time::new(500, 0), Time::new(600, 0), &mut ctx)
            .unwrap();
        assert!(msgs.is_empty());
    }
}
