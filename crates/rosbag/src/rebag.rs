//! Rebagging: extract messages matching a filter into a new bag.
//!
//! The paper (§II.A): *"There are some APIs like rebagging available for
//! developers to iterate over a bag and extract messages that match a
//! particular filter into a new bag file."* This module is that API —
//! the `rosbag filter` tool as a library function.

use ros_msgs::Time;
use simfs::{IoCtx, Storage};

use crate::error::BagResult;
use crate::reader::{BagReader, MessageRecord};
use crate::writer::{BagWriter, BagWriterOptions};

/// Declarative parts of a rebag filter.
#[derive(Debug, Clone, Default)]
pub struct Filter {
    /// Keep only these topics (None = all topics).
    pub topics: Option<Vec<String>>,
    /// Keep only messages in `[start, end)`.
    pub time_range: Option<(Time, Time)>,
    /// Keep at most every N-th surviving message per topic (1 = all);
    /// the paper's "update bag files when messages are out of date"
    /// workflows thin streams this way.
    pub stride: u32,
}

impl Filter {
    pub fn topics(topics: &[&str]) -> Self {
        Filter { topics: Some(topics.iter().map(|s| s.to_string()).collect()), ..Filter::default() }
    }

    pub fn with_time_range(mut self, start: Time, end: Time) -> Self {
        self.time_range = Some((start, end));
        self
    }

    pub fn with_stride(mut self, stride: u32) -> Self {
        self.stride = stride;
        self
    }
}

/// Outcome of a rebag run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebagReport {
    pub scanned: u64,
    pub kept: u64,
    pub out_len: u64,
}

/// Copy messages from an opened bag into a new bag at `dst_path`,
/// keeping those that pass the declarative `filter` and the optional
/// `predicate` (which sees each surviving record).
pub fn rebag<S: Storage, D: Storage>(
    reader: &BagReader<S>,
    dst: &D,
    dst_path: &str,
    filter: &Filter,
    mut predicate: impl FnMut(&MessageRecord) -> bool,
    opts: BagWriterOptions,
    ctx: &mut IoCtx,
) -> BagResult<RebagReport> {
    let all_topics: Vec<String> = reader.topics().into_iter().map(str::to_owned).collect();
    let selected: Vec<&str> = match &filter.topics {
        Some(list) => all_topics.iter().filter(|t| list.contains(t)).map(String::as_str).collect(),
        None => all_topics.iter().map(String::as_str).collect(),
    };

    let msgs = match filter.time_range {
        Some((s, e)) => reader.read_messages_time(&selected, s, e, ctx)?,
        None => reader.read_messages(&selected, ctx)?,
    };
    let scanned = msgs.len() as u64;

    let mut w = BagWriter::create(dst, dst_path, opts, ctx)?;
    // Carry the original connection metadata.
    let mut conn_map = std::collections::HashMap::new();
    for c in &reader.index().connections {
        if selected.contains(&c.topic.as_str()) {
            let desc = ros_msgs::MessageDescriptor {
                datatype: c.datatype.clone(),
                md5sum: c.md5sum.clone(),
                definition: c.definition.clone(),
            };
            conn_map.insert(c.conn_id, w.add_connection(&c.topic, &desc));
        }
    }

    let stride = filter.stride.max(1) as u64;
    let mut per_topic_seen: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    let mut kept = 0u64;
    for m in &msgs {
        let seen = per_topic_seen.entry(m.conn_id).or_insert(0);
        let take = seen.is_multiple_of(stride);
        *seen += 1;
        if !take || !predicate(m) {
            continue;
        }
        w.write_message(conn_map[&m.conn_id], m.time, &m.data, ctx)?;
        kept += 1;
    }
    let summary = w.close(ctx)?;
    Ok(RebagReport { scanned, kept, out_len: summary.file_len })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ros_msgs::sensor_msgs::Imu;
    use ros_msgs::tf2_msgs::TfMessage;
    use ros_msgs::RosMessage;
    use simfs::MemStorage;

    fn build() -> MemStorage {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let mut w = BagWriter::create(
            &fs,
            "/src.bag",
            BagWriterOptions { chunk_size: 4096, ..Default::default() },
            &mut ctx,
        )
        .unwrap();
        for i in 0..100u32 {
            let t = Time::new(i, 0);
            let mut imu = Imu::default();
            imu.header.seq = i;
            imu.header.stamp = t;
            w.write_ros_message("/imu", t, &imu, &mut ctx).unwrap();
            if i % 2 == 0 {
                w.write_ros_message("/tf", t, &TfMessage::default(), &mut ctx).unwrap();
            }
        }
        w.close(&mut ctx).unwrap();
        fs
    }

    #[test]
    fn topic_filter() {
        let fs = build();
        let mut ctx = IoCtx::new();
        let r = BagReader::open(&fs, "/src.bag", &mut ctx).unwrap();
        let report = rebag(
            &r,
            &fs,
            "/imu_only.bag",
            &Filter::topics(&["/imu"]),
            |_| true,
            BagWriterOptions::default(),
            &mut ctx,
        )
        .unwrap();
        assert_eq!(report.kept, 100);

        let out = BagReader::open(&fs, "/imu_only.bag", &mut ctx).unwrap();
        assert_eq!(out.topics(), vec!["/imu"]);
        assert_eq!(out.index().message_count(), 100);
    }

    #[test]
    fn time_and_stride() {
        let fs = build();
        let mut ctx = IoCtx::new();
        let r = BagReader::open(&fs, "/src.bag", &mut ctx).unwrap();
        let filter = Filter::topics(&["/imu"])
            .with_time_range(Time::new(10, 0), Time::new(50, 0))
            .with_stride(4);
        let report =
            rebag(&r, &fs, "/thin.bag", &filter, |_| true, BagWriterOptions::default(), &mut ctx)
                .unwrap();
        assert_eq!(report.scanned, 40);
        assert_eq!(report.kept, 10);
        let out = BagReader::open(&fs, "/thin.bag", &mut ctx).unwrap();
        let msgs = out.read_messages(&["/imu"], &mut ctx).unwrap();
        // Strided: every 4th second starting at 10.
        assert_eq!(msgs[0].time, Time::new(10, 0));
        assert_eq!(msgs[1].time, Time::new(14, 0));
    }

    #[test]
    fn content_predicate() {
        let fs = build();
        let mut ctx = IoCtx::new();
        let r = BagReader::open(&fs, "/src.bag", &mut ctx).unwrap();
        // Keep only IMU messages with even sequence numbers (decode-based
        // filtering — the paper's "match a particular filter").
        let report = rebag(
            &r,
            &fs,
            "/even.bag",
            &Filter::topics(&["/imu"]),
            |m| Imu::from_bytes(&m.data).map(|i| i.header.seq % 2 == 0).unwrap_or(false),
            BagWriterOptions::default(),
            &mut ctx,
        )
        .unwrap();
        assert_eq!(report.kept, 50);
    }

    #[test]
    fn rebagged_output_preserves_metadata() {
        let fs = build();
        let mut ctx = IoCtx::new();
        let r = BagReader::open(&fs, "/src.bag", &mut ctx).unwrap();
        rebag(
            &r,
            &fs,
            "/all.bag",
            &Filter::default(),
            |_| true,
            BagWriterOptions::default(),
            &mut ctx,
        )
        .unwrap();
        let out = BagReader::open(&fs, "/all.bag", &mut ctx).unwrap();
        let conn = out.index().connections.iter().find(|c| c.topic == "/imu").unwrap();
        assert_eq!(conn.datatype, "sensor_msgs/Imu");
        assert_eq!(conn.md5sum, Imu::md5sum());
        assert!(conn.definition.contains("angular_velocity"));
    }
}
