//! Bag recovery: rebuild the index section of a damaged or unindexed bag
//! (the `rosbag reindex` tool).
//!
//! A crash during recording leaves a bag with chunks on disk but a
//! zeroed bag header and no trailing connection/chunk-info records (the
//! writer only backpatches on close). Recovery scans the record stream
//! from the front — the only authoritative information — collecting
//! connections and per-chunk message statistics, then appends a fresh
//! index section and backpatches the header.

use std::collections::HashMap;

use ros_msgs::wire::WireRead;
use ros_msgs::Time;
use simfs::device::cpu;
use simfs::{IoCtx, Storage};

use crate::error::{BagError, BagResult};
use crate::record::{
    read_record, BagHeader, ChunkHeader, ChunkInfoRecord, ConnectionRecord, IndexDataRecord,
    MessageDataHeader, Op, BAG_HEADER_RECORD_SIZE, MAGIC,
};

/// Outcome of a reindex pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReindexReport {
    pub chunks_recovered: u32,
    pub connections_recovered: u32,
    pub messages_recovered: u64,
    /// Bytes of trailing garbage discarded (a partially written record).
    pub truncated_bytes: u64,
    /// Chunks whose contents were unparsable and were dropped. The record
    /// framing around them was intact, so recovery continued past them.
    pub chunks_skipped: u32,
}

/// Truncate-and-rebuild recovery of `path` in place.
///
/// Scans chunk records from the front. A chunk whose *contents* are
/// unparsable (bad compression, torn message stream) is skipped — its
/// outer record framing still locates the next record, so later chunks
/// are recovered rather than silently dropped. Only damage to the record
/// framing itself terminates the scan, discarding the tail. Chunks
/// lacking their index-data records (the crash case) get them regenerated
/// from the chunk contents.
pub fn reindex<S: Storage>(storage: &S, path: &str, ctx: &mut IoCtx) -> BagResult<ReindexReport> {
    let file_len = storage.len(path, ctx)?;
    let head = storage.read_at(path, 0, (MAGIC.len()).min(file_len as usize), ctx)?;
    if !head.starts_with(MAGIC) {
        return Err(BagError::BadMagic);
    }

    // Walk records from just past the (possibly garbage) bag header.
    let mut pos = (MAGIC.len() + BAG_HEADER_RECORD_SIZE) as u64;
    let mut connections: HashMap<u32, ConnectionRecord> = HashMap::new();
    let mut chunk_infos: Vec<ChunkInfoRecord> = Vec::new();
    // Rebuilt per-chunk index data, in file order.
    let mut rebuilt_index: Vec<(u64, Vec<IndexDataRecord>)> = Vec::new();
    let mut messages = 0u64;
    let mut chunks_skipped = 0u32;
    let mut valid_end = pos;

    while pos < file_len {
        // Read the record header prefix.
        let Ok(prefix) = storage.read_at(path, pos, 4.min((file_len - pos) as usize), ctx) else {
            break;
        };
        if prefix.len() < 4 {
            break;
        }
        let hlen = u32::from_le_bytes(prefix[..4].try_into().unwrap()) as u64;
        if pos + 4 + hlen + 4 > file_len {
            break;
        }
        let hbytes = storage.read_at(path, pos + 4, hlen as usize, ctx)?;
        let Ok(header) = crate::record::RecordHeader::decode(&hbytes) else {
            break;
        };
        ctx.charge_ns(cpu::RECORD_HEADER_NS);
        let dlen_bytes = storage.read_at(path, pos + 4 + hlen, 4, ctx)?;
        let dlen = u32::from_le_bytes(dlen_bytes[..4].try_into().unwrap()) as u64;
        if pos + 4 + hlen + 4 + dlen > file_len {
            break;
        }
        let data_pos = pos + 4 + hlen + 4;
        let record_end = data_pos + dlen;

        match header.op {
            Op::Chunk => {
                let chunk_pos = pos;
                // Any failure *inside* the chunk — bad chunk header, bad
                // compression, torn message stream — is contained to this
                // chunk: the outer framing already located `record_end`,
                // so the chunk is skipped and the scan continues.
                let parsed = (|| -> BagResult<_> {
                    let ch = ChunkHeader::from_header(&header)?;
                    let raw = storage.read_at(path, data_pos, dlen as usize, ctx)?;
                    let data =
                        crate::compress::decode_chunk(&ch.compression, &raw, ch.size as usize)?;
                    // Parse the chunk's messages to rebuild its index.
                    let mut per_conn: HashMap<u32, Vec<(Time, u32)>> = HashMap::new();
                    let mut chunk_conns: Vec<ConnectionRecord> = Vec::new();
                    let mut chunk_messages = 0u64;
                    let mut start = Time::MAX;
                    let mut end = Time::ZERO;
                    let mut cur: &[u8] = &data;
                    while cur.remaining() > 0 {
                        let before = data.len() - cur.remaining();
                        let (mh, payload) = read_record(&mut cur)?;
                        ctx.charge_ns(cpu::RECORD_HEADER_NS);
                        match mh.op {
                            Op::MessageData => {
                                let md = MessageDataHeader::from_header(&mh)?;
                                per_conn
                                    .entry(md.conn_id)
                                    .or_default()
                                    .push((md.time, before as u32));
                                start = start.min(md.time);
                                end = end.max(md.time);
                                chunk_messages += 1;
                                let _ = payload;
                            }
                            Op::Connection => {
                                chunk_conns.push(ConnectionRecord::decode(&mh, payload)?);
                            }
                            other => {
                                return Err(BagError::Format(format!(
                                    "unexpected {other:?} inside chunk"
                                )));
                            }
                        }
                    }
                    Ok((per_conn, chunk_conns, chunk_messages, start, end))
                })();
                let (per_conn, chunk_conns, chunk_messages, start, end) = match parsed {
                    Ok(p) => p,
                    Err(_) => {
                        chunks_skipped += 1;
                        bora_obs::counter("rosbag.reindex.chunks_skipped").inc();
                        pos = record_end;
                        continue;
                    }
                };
                for c in chunk_conns {
                    connections.entry(c.conn_id).or_insert(c);
                }
                messages += chunk_messages;
                let mut counts: Vec<(u32, u32)> =
                    per_conn.iter().map(|(&c, v)| (c, v.len() as u32)).collect();
                counts.sort_unstable();
                chunk_infos.push(ChunkInfoRecord {
                    chunk_pos,
                    start_time: if per_conn.is_empty() { Time::ZERO } else { start },
                    end_time: if per_conn.is_empty() { Time::ZERO } else { end },
                    counts,
                });
                let mut recs: Vec<IndexDataRecord> = per_conn
                    .into_iter()
                    .map(|(conn_id, entries)| IndexDataRecord { conn_id, entries })
                    .collect();
                recs.sort_by_key(|r| r.conn_id);
                rebuilt_index.push((chunk_pos, recs));
                valid_end = record_end;
            }
            Op::IndexData => {
                // Existing index data after a chunk — keep scanning.
                valid_end = record_end;
            }
            Op::Connection => {
                let c = ConnectionRecord::decode(
                    &header,
                    &storage.read_at(path, data_pos, dlen as usize, ctx)?,
                )?;
                connections.entry(c.conn_id).or_insert(c);
                // Connection records mark the (old) index section: stop
                // treating anything beyond as data.
                break;
            }
            Op::ChunkInfo | Op::BagHeader | Op::MessageData => break,
        }
        pos = record_end;
    }

    // Rewrite: truncate to the last valid chunk, append regenerated index
    // data for chunks, then the index section.
    let truncated_bytes = file_len.saturating_sub(valid_end);
    let mut kept = storage.read_at(path, 0, valid_end as usize, ctx)?;

    // Rebuild the tail: chunks stay where they are; their index-data
    // records must directly follow each chunk, so reconstruct the whole
    // data region deterministically.
    let mut out = Vec::with_capacity(kept.len() + 4096);
    out.extend_from_slice(&kept[..MAGIC.len() + BAG_HEADER_RECORD_SIZE]);
    let mut new_chunk_infos = Vec::with_capacity(chunk_infos.len());
    for (i, ci) in chunk_infos.iter().enumerate() {
        let chunk_start = ci.chunk_pos as usize;
        let chunk_end = rebuilt_index.get(i).map(|(p, _)| *p).unwrap_or(ci.chunk_pos) as usize;
        let _ = chunk_end;
        // Chunk record bytes: from chunk_pos to end of its data section.
        let mut cur: &[u8] = &kept[chunk_start..];
        let before = cur.remaining();
        let (h, data) = read_record(&mut cur)?;
        debug_assert_eq!(h.op, Op::Chunk);
        let rec_len = before - cur.remaining();
        let new_pos = out.len() as u64;
        out.extend_from_slice(&kept[chunk_start..chunk_start + rec_len]);
        let _ = data;
        for rec in &rebuilt_index[i].1 {
            rec.encode(&mut out);
        }
        new_chunk_infos.push(ChunkInfoRecord { chunk_pos: new_pos, ..ci.clone() });
    }
    kept.clear();

    let index_pos = out.len() as u64;
    let mut conns: Vec<&ConnectionRecord> = connections.values().collect();
    conns.sort_by_key(|c| c.conn_id);
    for c in &conns {
        c.encode(&mut out);
    }
    for ci in &new_chunk_infos {
        ci.encode(&mut out);
    }
    let header = BagHeader {
        index_pos,
        conn_count: conns.len() as u32,
        chunk_count: new_chunk_infos.len() as u32,
    }
    .encode_padded();
    out[MAGIC.len()..MAGIC.len() + BAG_HEADER_RECORD_SIZE].copy_from_slice(&header);

    storage.remove_file(path, ctx)?;
    storage.append(path, &out, ctx)?;
    storage.flush(path, ctx)?;

    Ok(ReindexReport {
        chunks_recovered: new_chunk_infos.len() as u32,
        connections_recovered: conns.len() as u32,
        messages_recovered: messages,
        truncated_bytes,
        chunks_skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::BagReader;
    use crate::writer::{BagWriter, BagWriterOptions};
    use ros_msgs::sensor_msgs::Imu;
    use ros_msgs::RosMessage;
    use simfs::MemStorage;

    fn write_bag(fs: &MemStorage, n: u32) -> u64 {
        let mut ctx = IoCtx::new();
        let mut w = BagWriter::create(
            fs,
            "/b.bag",
            BagWriterOptions { chunk_size: 2048, ..Default::default() },
            &mut ctx,
        )
        .unwrap();
        let mut imu = Imu::default();
        for i in 0..n {
            imu.header.seq = i;
            w.write_ros_message("/imu", Time::new(i, 0), &imu, &mut ctx).unwrap();
        }
        w.close(&mut ctx).unwrap().message_count
    }

    /// Simulate a crash: strip the index section and zero the header.
    fn crash_bag(fs: &MemStorage) {
        let mut ctx = IoCtx::new();
        let bytes = fs.read_all("/b.bag", &mut ctx).unwrap();
        // Find index_pos from the (valid) header, cut everything after it.
        let mut cur: &[u8] = &bytes[MAGIC.len()..];
        let (h, _) = read_record(&mut cur).unwrap();
        let bh = BagHeader::from_header(&h).unwrap();
        let mut crashed = bytes[..bh.index_pos as usize].to_vec();
        // Zero the header as an unclosed writer leaves it.
        let placeholder = BagHeader { index_pos: 0, conn_count: 0, chunk_count: 0 }.encode_padded();
        crashed[MAGIC.len()..MAGIC.len() + BAG_HEADER_RECORD_SIZE].copy_from_slice(&placeholder);
        fs.remove_file("/b.bag", &mut ctx).unwrap();
        fs.append("/b.bag", &crashed, &mut ctx).unwrap();
    }

    #[test]
    fn crashed_bag_cannot_open() {
        let fs = MemStorage::new();
        write_bag(&fs, 50);
        crash_bag(&fs);
        let mut ctx = IoCtx::new();
        assert!(BagReader::open(&fs, "/b.bag", &mut ctx).is_err());
    }

    #[test]
    fn reindex_recovers_all_messages() {
        let fs = MemStorage::new();
        let n = write_bag(&fs, 50);
        crash_bag(&fs);
        let mut ctx = IoCtx::new();
        let report = reindex(&fs, "/b.bag", &mut ctx).unwrap();
        assert_eq!(report.messages_recovered, n);
        assert!(report.chunks_recovered > 1);
        assert_eq!(report.connections_recovered, 1);

        let r = BagReader::open(&fs, "/b.bag", &mut ctx).unwrap();
        let msgs = r.read_messages(&["/imu"], &mut ctx).unwrap();
        assert_eq!(msgs.len() as u64, n);
        let last = Imu::from_bytes(&msgs[49].data).unwrap();
        assert_eq!(last.header.seq, 49);
    }

    #[test]
    fn reindex_discards_trailing_garbage() {
        let fs = MemStorage::new();
        let n = write_bag(&fs, 30);
        crash_bag(&fs);
        let mut ctx = IoCtx::new();
        // A partially written record at the tail.
        fs.append("/b.bag", &[0x55; 37], &mut ctx).unwrap();
        let report = reindex(&fs, "/b.bag", &mut ctx).unwrap();
        assert_eq!(report.messages_recovered, n);
        assert!(report.truncated_bytes >= 37);
        assert!(BagReader::open(&fs, "/b.bag", &mut ctx).is_ok());
    }

    /// Byte offset of the Nth chunk's data section, walking outer framing.
    fn nth_chunk_data_pos(bytes: &[u8], n: u32) -> usize {
        let mut pos = MAGIC.len() + BAG_HEADER_RECORD_SIZE;
        let mut seen = 0u32;
        while pos + 8 <= bytes.len() {
            let hlen = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            let header =
                crate::record::RecordHeader::decode(&bytes[pos + 4..pos + 4 + hlen]).unwrap();
            let dlen = u32::from_le_bytes(bytes[pos + 4 + hlen..pos + 8 + hlen].try_into().unwrap())
                as usize;
            let data_pos = pos + 8 + hlen;
            if header.op == Op::Chunk {
                seen += 1;
                if seen == n {
                    return data_pos;
                }
            }
            pos = data_pos + dlen;
        }
        panic!("bag has fewer than {n} chunks");
    }

    #[test]
    fn corrupt_middle_chunk_is_skipped_not_fatal() {
        let fs = MemStorage::new();
        let n = write_bag(&fs, 50);
        crash_bag(&fs);
        let mut ctx = IoCtx::new();
        // Clobber the second chunk's *contents* (inner record framing);
        // the outer framing around it stays intact.
        let bytes = fs.read_all("/b.bag", &mut ctx).unwrap();
        let dp = nth_chunk_data_pos(&bytes, 2);
        let mut mangled = bytes;
        mangled[dp] ^= 0xFF;
        fs.remove_file("/b.bag", &mut ctx).unwrap();
        fs.append("/b.bag", &mangled, &mut ctx).unwrap();

        let report = reindex(&fs, "/b.bag", &mut ctx).unwrap();
        assert_eq!(report.chunks_skipped, 1);
        assert!(report.messages_recovered > 0 && report.messages_recovered < n);

        // Chunks *after* the corrupt one survived: the bag opens and the
        // final message is intact.
        let r = BagReader::open(&fs, "/b.bag", &mut ctx).unwrap();
        let msgs = r.read_messages(&["/imu"], &mut ctx).unwrap();
        assert_eq!(msgs.len() as u64, report.messages_recovered);
        let last = Imu::from_bytes(&msgs.last().unwrap().data).unwrap();
        assert_eq!(last.header.seq, 49);
    }

    #[test]
    fn reindex_of_healthy_bag_is_lossless() {
        let fs = MemStorage::new();
        let n = write_bag(&fs, 40);
        let mut ctx = IoCtx::new();
        let before = {
            let r = BagReader::open(&fs, "/b.bag", &mut ctx).unwrap();
            r.read_messages(&["/imu"], &mut ctx).unwrap()
        };
        let report = reindex(&fs, "/b.bag", &mut ctx).unwrap();
        assert_eq!(report.messages_recovered, n);
        let r = BagReader::open(&fs, "/b.bag", &mut ctx).unwrap();
        let after = r.read_messages(&["/imu"], &mut ctx).unwrap();
        assert_eq!(before.len(), after.len());
        for (a, b) in before.iter().zip(&after) {
            assert_eq!(a.data, b.data);
        }
    }

    #[test]
    fn reindexed_bag_duplicates_into_bora() {
        let fs = MemStorage::new();
        let n = write_bag(&fs, 25);
        crash_bag(&fs);
        let mut ctx = IoCtx::new();
        reindex(&fs, "/b.bag", &mut ctx).unwrap();
        let report = bora_smoke(&fs, &mut ctx);
        assert_eq!(report, n);
    }

    // Minimal cross-crate smoke without depending on the bora crate (which
    // depends on us): re-open and count.
    fn bora_smoke(fs: &MemStorage, ctx: &mut IoCtx) -> u64 {
        let r = BagReader::open(fs, "/b.bag", ctx).unwrap();
        r.index().message_count()
    }

    #[test]
    fn non_bag_rejected() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        fs.append("/junk", &vec![9u8; 9000], &mut ctx).unwrap();
        assert!(matches!(reindex(&fs, "/junk", &mut ctx), Err(BagError::BadMagic)));
    }
}
