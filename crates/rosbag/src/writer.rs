//! [`BagWriter`]: chunked bag recording, as the `rosbag record` tool does.
//!
//! Messages are buffered into a chunk; when the chunk reaches the
//! configured size it is appended to the file followed by its index-data
//! records (one per connection present in the chunk). On close the writer
//! appends all connection records and chunk-info records, then backpatches
//! the fixed-size bag header with `index_pos` and the counts.
//!
//! This log-structured layout is exactly why bags are fast to record and
//! slow to analyze — the property BORA is built around.

use std::collections::HashMap;

use ros_msgs::{MessageDescriptor, RosMessage, Time};
use simfs::{IoCtx, Storage};

use crate::error::{BagError, BagResult};
use crate::record::{
    write_record, BagHeader, ChunkHeader, ChunkInfoRecord, ConnectionRecord, IndexDataRecord,
    MessageDataHeader, MAGIC,
};

/// Chunk compression choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Compression {
    /// Store chunks raw (the TUM bags the paper uses are uncompressed).
    #[default]
    None,
    /// From-scratch LZSS (see [`crate::compress`]).
    Lzss,
}

impl Compression {
    pub fn name(self) -> &'static str {
        match self {
            Compression::None => "none",
            Compression::Lzss => crate::compress::LZSS,
        }
    }
}

/// Tuning knobs for the writer.
#[derive(Debug, Clone, Copy)]
pub struct BagWriterOptions {
    /// Chunk flush threshold in bytes (uncompressed). `rosbag`'s default
    /// is 768 KiB.
    pub chunk_size: usize,
    /// Chunk compression.
    pub compression: Compression,
}

impl Default for BagWriterOptions {
    fn default() -> Self {
        BagWriterOptions { chunk_size: 768 * 1024, compression: Compression::None }
    }
}

/// Summary returned by [`BagWriter::close`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BagSummary {
    pub file_len: u64,
    pub chunk_count: u32,
    pub conn_count: u32,
    pub message_count: u64,
    pub start_time: Time,
    pub end_time: Time,
}

/// Streaming bag writer over any [`Storage`].
pub struct BagWriter<S> {
    storage: S,
    path: String,
    opts: BagWriterOptions,
    /// Current end-of-file offset.
    pos: u64,
    connections: Vec<ConnectionRecord>,
    topic_to_conn: HashMap<String, u32>,
    chunk_buf: Vec<u8>,
    /// conn_id → (time, offset-in-chunk) for the open chunk.
    chunk_index: HashMap<u32, Vec<(Time, u32)>>,
    /// Connections whose record has already been embedded in a chunk.
    /// As `rosbag` does, each connection record is also written into the
    /// chunk where its first message appears, so an interrupted bag can
    /// be reindexed without the trailing index section.
    conns_embedded: std::collections::HashSet<u32>,
    chunk_start: Time,
    chunk_end: Time,
    chunk_infos: Vec<ChunkInfoRecord>,
    message_count: u64,
    bag_start: Time,
    bag_end: Time,
    closed: bool,
}

impl<S: Storage> BagWriter<S> {
    /// Create a new bag at `path` (must not exist).
    pub fn create(
        storage: S,
        path: &str,
        opts: BagWriterOptions,
        ctx: &mut IoCtx,
    ) -> BagResult<Self> {
        storage.create(path, ctx)?;
        // Magic + placeholder bag header (backpatched on close).
        storage.append(path, MAGIC, ctx)?;
        let placeholder = BagHeader { index_pos: 0, conn_count: 0, chunk_count: 0 }.encode_padded();
        storage.append(path, &placeholder, ctx)?;
        Ok(BagWriter {
            storage,
            path: path.to_owned(),
            opts,
            pos: (MAGIC.len() + placeholder.len()) as u64,
            connections: Vec::new(),
            topic_to_conn: HashMap::new(),
            chunk_buf: Vec::with_capacity(opts.chunk_size + 4096),
            chunk_index: HashMap::new(),
            conns_embedded: std::collections::HashSet::new(),
            chunk_start: Time::MAX,
            chunk_end: Time::ZERO,
            chunk_infos: Vec::new(),
            message_count: 0,
            bag_start: Time::MAX,
            bag_end: Time::ZERO,
            closed: false,
        })
    }

    /// Register a connection (topic + type metadata); returns its id.
    /// Registering the same topic twice returns the existing id.
    pub fn add_connection(&mut self, topic: &str, desc: &MessageDescriptor) -> u32 {
        if let Some(&id) = self.topic_to_conn.get(topic) {
            return id;
        }
        let id = self.connections.len() as u32;
        self.connections.push(ConnectionRecord {
            conn_id: id,
            topic: topic.to_owned(),
            datatype: desc.datatype.clone(),
            md5sum: desc.md5sum.clone(),
            definition: desc.definition.clone(),
        });
        self.topic_to_conn.insert(topic.to_owned(), id);
        id
    }

    /// Append one already-serialized message.
    pub fn write_message(
        &mut self,
        conn_id: u32,
        time: Time,
        payload: &[u8],
        ctx: &mut IoCtx,
    ) -> BagResult<()> {
        if self.closed {
            return Err(BagError::Closed);
        }
        if conn_id as usize >= self.connections.len() {
            return Err(BagError::Format(format!("unknown conn id {conn_id}")));
        }
        if self.conns_embedded.insert(conn_id) {
            self.connections[conn_id as usize].encode(&mut self.chunk_buf);
        }
        let offset_in_chunk = self.chunk_buf.len() as u32;
        write_record(
            &mut self.chunk_buf,
            &MessageDataHeader { conn_id, time }.to_header(),
            payload,
        );
        self.chunk_index.entry(conn_id).or_default().push((time, offset_in_chunk));
        self.chunk_start = self.chunk_start.min(time);
        self.chunk_end = self.chunk_end.max(time);
        self.bag_start = self.bag_start.min(time);
        self.bag_end = self.bag_end.max(time);
        self.message_count += 1;
        if self.chunk_buf.len() >= self.opts.chunk_size {
            self.flush_chunk(ctx)?;
        }
        Ok(())
    }

    /// Serialize and append a typed message, auto-registering its topic.
    pub fn write_ros_message<M: RosMessage>(
        &mut self,
        topic: &str,
        time: Time,
        msg: &M,
        ctx: &mut IoCtx,
    ) -> BagResult<()> {
        let conn = self.add_connection(topic, &MessageDescriptor::of::<M>());
        self.write_message(conn, time, &msg.to_bytes(), ctx)
    }

    /// Force out the open chunk (no-op if empty): chunk record, then its
    /// index-data records, then update chunk infos.
    pub fn flush_chunk(&mut self, ctx: &mut IoCtx) -> BagResult<()> {
        if self.chunk_buf.is_empty() {
            return Ok(());
        }
        let chunk_pos = self.pos;
        let chunk_header = ChunkHeader {
            compression: self.opts.compression.name().to_owned(),
            size: self.chunk_buf.len() as u32,
        };
        let mut out = Vec::with_capacity(self.chunk_buf.len() + 1024);
        match self.opts.compression {
            Compression::None => write_record(&mut out, &chunk_header.to_header(), &self.chunk_buf),
            Compression::Lzss => {
                let compressed = crate::compress::compress(&self.chunk_buf);
                write_record(&mut out, &chunk_header.to_header(), &compressed);
            }
        }

        // Index-data records follow the chunk, sorted by conn for
        // determinism.
        let mut conn_ids: Vec<u32> = self.chunk_index.keys().copied().collect();
        conn_ids.sort_unstable();
        let mut counts = Vec::with_capacity(conn_ids.len());
        for conn_id in conn_ids {
            let entries = self.chunk_index.remove(&conn_id).unwrap();
            counts.push((conn_id, entries.len() as u32));
            IndexDataRecord { conn_id, entries }.encode(&mut out);
        }
        self.storage.append(&self.path, &out, ctx)?;
        self.pos += out.len() as u64;

        self.chunk_infos.push(ChunkInfoRecord {
            chunk_pos,
            start_time: self.chunk_start,
            end_time: self.chunk_end,
            counts,
        });
        self.chunk_buf.clear();
        self.chunk_start = Time::MAX;
        self.chunk_end = Time::ZERO;
        Ok(())
    }

    /// Number of messages written so far.
    pub fn message_count(&self) -> u64 {
        self.message_count
    }

    /// Finish the bag: flush, write the index section (connections + chunk
    /// infos), backpatch the bag header. Returns a summary.
    pub fn close(mut self, ctx: &mut IoCtx) -> BagResult<BagSummary> {
        if self.closed {
            return Err(BagError::Closed);
        }
        self.flush_chunk(ctx)?;
        let index_pos = self.pos;

        let mut out = Vec::new();
        for conn in &self.connections {
            conn.encode(&mut out);
        }
        for ci in &self.chunk_infos {
            ci.encode(&mut out);
        }
        self.storage.append(&self.path, &out, ctx)?;
        self.pos += out.len() as u64;

        let header = BagHeader {
            index_pos,
            conn_count: self.connections.len() as u32,
            chunk_count: self.chunk_infos.len() as u32,
        }
        .encode_padded();
        self.storage.write_at(&self.path, MAGIC.len() as u64, &header, ctx)?;
        self.storage.flush(&self.path, ctx)?;
        self.closed = true;

        Ok(BagSummary {
            file_len: self.pos,
            chunk_count: self.chunk_infos.len() as u32,
            conn_count: self.connections.len() as u32,
            message_count: self.message_count,
            start_time: if self.message_count > 0 { self.bag_start } else { Time::ZERO },
            end_time: if self.message_count > 0 { self.bag_end } else { Time::ZERO },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ros_msgs::sensor_msgs::Imu;
    use simfs::MemStorage;

    #[test]
    fn writes_magic_and_header() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let w = BagWriter::create(&fs, "/t.bag", BagWriterOptions::default(), &mut ctx).unwrap();
        w.close(&mut ctx).unwrap();
        let bytes = fs.read_all("/t.bag", &mut ctx).unwrap();
        assert!(bytes.starts_with(MAGIC));
    }

    #[test]
    fn summary_counts() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let mut w = BagWriter::create(
            &fs,
            "/t.bag",
            BagWriterOptions { chunk_size: 512, ..Default::default() },
            &mut ctx,
        )
        .unwrap();
        let mut imu = Imu::default();
        for i in 0..50u32 {
            imu.header.seq = i;
            w.write_ros_message("/imu", Time::new(i, 0), &imu, &mut ctx).unwrap();
        }
        let summary = w.close(&mut ctx).unwrap();
        assert_eq!(summary.message_count, 50);
        assert_eq!(summary.conn_count, 1);
        assert!(summary.chunk_count > 1, "small chunk size must force multiple chunks");
        assert_eq!(summary.start_time, Time::new(0, 0));
        assert_eq!(summary.end_time, Time::new(49, 0));
        assert_eq!(fs.len("/t.bag", &mut ctx).unwrap(), summary.file_len);
    }

    #[test]
    fn duplicate_topic_reuses_connection() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let mut w =
            BagWriter::create(&fs, "/t.bag", BagWriterOptions::default(), &mut ctx).unwrap();
        let d = MessageDescriptor::of::<Imu>();
        let a = w.add_connection("/imu", &d);
        let b = w.add_connection("/imu", &d);
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_conn_rejected() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let mut w =
            BagWriter::create(&fs, "/t.bag", BagWriterOptions::default(), &mut ctx).unwrap();
        assert!(w.write_message(9, Time::ZERO, b"x", &mut ctx).is_err());
    }

    #[test]
    fn create_existing_fails() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        fs.append("/t.bag", b"occupied", &mut ctx).unwrap();
        assert!(BagWriter::create(&fs, "/t.bag", BagWriterOptions::default(), &mut ctx).is_err());
    }
}
