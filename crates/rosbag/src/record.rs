//! Bag v2.0 record grammar: record headers, field encoding, op codes, and
//! the typed record structures.
//!
//! Every record is:
//!
//! ```text
//! u32 header_len | header bytes | u32 data_len | data bytes
//! ```
//!
//! and the header bytes are a sequence of fields, each:
//!
//! ```text
//! u32 field_len | "name=" | value bytes
//! ```
//!
//! Numeric field values are little-endian; time values are `u32 sec` +
//! `u32 nsec` (8 bytes), matching ROS.

use std::collections::HashMap;

use ros_msgs::wire::{WireRead, WireWrite};
use ros_msgs::Time;

use crate::error::{BagError, BagResult};

/// File magic for bag format 2.0.
pub const MAGIC: &[u8] = b"#ROSBAG V2.0\n";

/// Total on-disk size of the (padded) bag header record, including its
/// length prefixes. Fixed so the writer can backpatch it on close, exactly
/// as `rosbag` pads its header to 4 KiB.
pub const BAG_HEADER_RECORD_SIZE: usize = 4096;

/// Record op codes (values match the ROS bag 2.0 specification).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Op {
    MessageData = 0x02,
    BagHeader = 0x03,
    IndexData = 0x04,
    Chunk = 0x05,
    ChunkInfo = 0x06,
    Connection = 0x07,
}

impl Op {
    pub fn from_u8(v: u8) -> BagResult<Op> {
        Ok(match v {
            0x02 => Op::MessageData,
            0x03 => Op::BagHeader,
            0x04 => Op::IndexData,
            0x05 => Op::Chunk,
            0x06 => Op::ChunkInfo,
            0x07 => Op::Connection,
            other => return Err(BagError::Format(format!("unknown op code 0x{other:02x}"))),
        })
    }
}

/// A parsed record header: op + named fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordHeader {
    pub op: Op,
    fields: HashMap<String, Vec<u8>>,
}

impl RecordHeader {
    pub fn new(op: Op) -> Self {
        RecordHeader { op, fields: HashMap::new() }
    }

    pub fn with_u32(mut self, name: &str, v: u32) -> Self {
        self.fields.insert(name.to_owned(), v.to_le_bytes().to_vec());
        self
    }

    pub fn with_u64(mut self, name: &str, v: u64) -> Self {
        self.fields.insert(name.to_owned(), v.to_le_bytes().to_vec());
        self
    }

    pub fn with_time(mut self, name: &str, t: Time) -> Self {
        let mut v = Vec::with_capacity(8);
        v.put_time(t);
        self.fields.insert(name.to_owned(), v);
        self
    }

    pub fn with_str(mut self, name: &str, s: &str) -> Self {
        self.fields.insert(name.to_owned(), s.as_bytes().to_vec());
        self
    }

    pub fn get_u32(&self, record: &'static str, name: &'static str) -> BagResult<u32> {
        let raw = self.get_raw(record, name)?;
        raw.try_into()
            .map(u32::from_le_bytes)
            .map_err(|_| BagError::Format(format!("field '{name}' is not 4 bytes")))
    }

    pub fn get_u64(&self, record: &'static str, name: &'static str) -> BagResult<u64> {
        let raw = self.get_raw(record, name)?;
        raw.try_into()
            .map(u64::from_le_bytes)
            .map_err(|_| BagError::Format(format!("field '{name}' is not 8 bytes")))
    }

    pub fn get_time(&self, record: &'static str, name: &'static str) -> BagResult<Time> {
        let raw = self.get_raw(record, name)?;
        let mut cur: &[u8] = raw;
        cur.get_time().map_err(BagError::from)
    }

    pub fn get_str(&self, record: &'static str, name: &'static str) -> BagResult<&str> {
        let raw = self.get_raw(record, name)?;
        std::str::from_utf8(raw).map_err(|_| BagError::Format(format!("field '{name}' not UTF-8")))
    }

    fn get_raw(&self, record: &'static str, field: &'static str) -> BagResult<&[u8]> {
        self.fields.get(field).map(|v| v.as_slice()).ok_or(BagError::MissingField { record, field })
    }

    /// Encode the header bytes (fields only, without the outer length
    /// prefix). Field order is deterministic (sorted by name, `op` first
    /// is not required by the format; sorting keeps bags byte-stable).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let mut write_field = |name: &str, value: &[u8]| {
            out.put_u32((name.len() + 1 + value.len()) as u32);
            out.put_bytes(name.as_bytes());
            out.put_u8(b'=');
            out.put_bytes(value);
        };
        write_field("op", &[self.op as u8]);
        let mut names: Vec<&String> = self.fields.keys().collect();
        names.sort();
        for name in names {
            write_field(name, &self.fields[name]);
        }
        out
    }

    /// Parse header bytes (the contents between the two length prefixes).
    pub fn decode(mut cur: &[u8]) -> BagResult<RecordHeader> {
        let mut fields = HashMap::new();
        let mut op = None;
        while cur.remaining() > 0 {
            let flen = cur.get_u32()? as usize;
            let field = cur.take(flen)?;
            let eq = field
                .iter()
                .position(|&b| b == b'=')
                .ok_or_else(|| BagError::Format("header field without '='".into()))?;
            let name = std::str::from_utf8(&field[..eq])
                .map_err(|_| BagError::Format("non-UTF-8 field name".into()))?;
            let value = &field[eq + 1..];
            if name == "op" {
                if value.len() != 1 {
                    return Err(BagError::Format("op field must be 1 byte".into()));
                }
                op = Some(Op::from_u8(value[0])?);
            } else {
                fields.insert(name.to_owned(), value.to_vec());
            }
        }
        let op = op.ok_or(BagError::MissingField { record: "record", field: "op" })?;
        Ok(RecordHeader { op, fields })
    }
}

/// Serialize a full record (header + data, both length-prefixed) into `out`.
pub fn write_record(out: &mut Vec<u8>, header: &RecordHeader, data: &[u8]) {
    let h = header.encode();
    out.put_u32(h.len() as u32);
    out.put_bytes(&h);
    out.put_u32(data.len() as u32);
    out.put_bytes(data);
}

/// Parse one record from the front of `cur`: returns `(header, data)`.
pub fn read_record<'a>(cur: &mut &'a [u8]) -> BagResult<(RecordHeader, &'a [u8])> {
    let hlen = cur.get_u32()? as usize;
    let hbytes = cur.take(hlen)?;
    let header = RecordHeader::decode(hbytes)?;
    let dlen = cur.get_u32()? as usize;
    let data = cur.take(dlen)?;
    Ok((header, data))
}

/// On-disk size of a record with the given header/data sizes.
pub fn record_size(header: &RecordHeader, data_len: usize) -> usize {
    4 + header.encode().len() + 4 + data_len
}

// ---------------------------------------------------------------------------
// Typed records
// ---------------------------------------------------------------------------

/// Decoded bag header record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BagHeader {
    /// Offset of the first record of the index section (connection records
    /// followed by chunk infos).
    pub index_pos: u64,
    pub conn_count: u32,
    pub chunk_count: u32,
}

impl BagHeader {
    pub fn to_header(self) -> RecordHeader {
        RecordHeader::new(Op::BagHeader)
            .with_u64("index_pos", self.index_pos)
            .with_u32("conn_count", self.conn_count)
            .with_u32("chunk_count", self.chunk_count)
    }

    pub fn from_header(h: &RecordHeader) -> BagResult<Self> {
        Ok(BagHeader {
            index_pos: h.get_u64("bag header", "index_pos")?,
            conn_count: h.get_u32("bag header", "conn_count")?,
            chunk_count: h.get_u32("bag header", "chunk_count")?,
        })
    }

    /// Encode as the fixed-size padded record that sits right after the
    /// magic (padding lives in the data section, as `rosbag` does).
    pub fn encode_padded(self) -> Vec<u8> {
        let header = self.to_header();
        let hbytes = header.encode();
        let overhead = 4 + hbytes.len() + 4;
        assert!(overhead <= BAG_HEADER_RECORD_SIZE, "bag header too large");
        let pad = BAG_HEADER_RECORD_SIZE - overhead;
        let mut out = Vec::with_capacity(BAG_HEADER_RECORD_SIZE);
        write_record(&mut out, &header, &vec![b' '; pad]);
        debug_assert_eq!(out.len(), BAG_HEADER_RECORD_SIZE);
        out
    }
}

/// Decoded connection record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectionRecord {
    pub conn_id: u32,
    pub topic: String,
    pub datatype: String,
    pub md5sum: String,
    pub definition: String,
}

impl ConnectionRecord {
    pub fn encode(&self, out: &mut Vec<u8>) {
        let header = RecordHeader::new(Op::Connection)
            .with_u32("conn", self.conn_id)
            .with_str("topic", &self.topic);
        // The data section carries the *connection header*: the same field
        // encoding, holding the pub/sub negotiation fields.
        let mut data = Vec::new();
        for (name, value) in [
            ("topic", self.topic.as_str()),
            ("type", self.datatype.as_str()),
            ("md5sum", self.md5sum.as_str()),
            ("message_definition", self.definition.as_str()),
        ] {
            data.put_u32((name.len() + 1 + value.len()) as u32);
            data.put_bytes(name.as_bytes());
            data.put_u8(b'=');
            data.put_bytes(value.as_bytes());
        }
        write_record(out, &header, &data);
    }

    pub fn decode(header: &RecordHeader, mut data: &[u8]) -> BagResult<Self> {
        let conn_id = header.get_u32("connection", "conn")?;
        let topic_outer = header.get_str("connection", "topic")?.to_owned();
        let mut topic = topic_outer.clone();
        let mut datatype = String::new();
        let mut md5sum = String::new();
        let mut definition = String::new();
        while data.remaining() > 0 {
            let flen = data.get_u32()? as usize;
            let field = data.take(flen)?;
            let eq = field
                .iter()
                .position(|&b| b == b'=')
                .ok_or_else(|| BagError::Format("connection header field without '='".into()))?;
            let name = &field[..eq];
            let value = std::str::from_utf8(&field[eq + 1..])
                .map_err(|_| BagError::Format("connection header value not UTF-8".into()))?;
            match name {
                b"topic" => topic = value.to_owned(),
                b"type" => datatype = value.to_owned(),
                b"md5sum" => md5sum = value.to_owned(),
                b"message_definition" => definition = value.to_owned(),
                _ => {} // ignore unknown negotiation fields
            }
        }
        if datatype.is_empty() {
            return Err(BagError::MissingField { record: "connection", field: "type" });
        }
        Ok(ConnectionRecord { conn_id, topic, datatype, md5sum, definition })
    }
}

/// Header of a chunk record. The chunk's data section holds serialized
/// message-data (and possibly connection) records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkHeader {
    /// Compression algorithm. This reproduction writes `none` — the TUM
    /// bags the paper uses are uncompressed — but the field is parsed and
    /// validated so foreign bags fail loudly rather than silently.
    pub compression: String,
    /// Uncompressed size of the chunk data.
    pub size: u32,
}

impl ChunkHeader {
    pub fn to_header(&self) -> RecordHeader {
        RecordHeader::new(Op::Chunk)
            .with_str("compression", &self.compression)
            .with_u32("size", self.size)
    }

    pub fn from_header(h: &RecordHeader) -> BagResult<Self> {
        Ok(ChunkHeader {
            compression: h.get_str("chunk", "compression")?.to_owned(),
            size: h.get_u32("chunk", "size")?,
        })
    }
}

/// Message-data record header fields (payload is the serialized message).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageDataHeader {
    pub conn_id: u32,
    pub time: Time,
}

impl MessageDataHeader {
    pub fn to_header(self) -> RecordHeader {
        RecordHeader::new(Op::MessageData)
            .with_u32("conn", self.conn_id)
            .with_time("time", self.time)
    }

    pub fn from_header(h: &RecordHeader) -> BagResult<Self> {
        Ok(MessageDataHeader {
            conn_id: h.get_u32("message data", "conn")?,
            time: h.get_time("message data", "time")?,
        })
    }
}

/// Index-data record: for one connection within one chunk, the offsets and
/// times of its messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDataRecord {
    pub conn_id: u32,
    /// `(receive time, offset of the message-data record within the
    /// uncompressed chunk data)`.
    pub entries: Vec<(Time, u32)>,
}

impl IndexDataRecord {
    pub fn encode(&self, out: &mut Vec<u8>) {
        let header = RecordHeader::new(Op::IndexData)
            .with_u32("ver", 1)
            .with_u32("conn", self.conn_id)
            .with_u32("count", self.entries.len() as u32);
        let mut data = Vec::with_capacity(self.entries.len() * 12);
        for (t, off) in &self.entries {
            data.put_time(*t);
            data.put_u32(*off);
        }
        write_record(out, &header, &data);
    }

    pub fn decode(header: &RecordHeader, mut data: &[u8]) -> BagResult<Self> {
        let ver = header.get_u32("index data", "ver")?;
        if ver != 1 {
            return Err(BagError::Format(format!("unsupported index data ver {ver}")));
        }
        let conn_id = header.get_u32("index data", "conn")?;
        let count = header.get_u32("index data", "count")? as usize;
        if count * 12 != data.remaining() {
            return Err(BagError::Format(format!(
                "index data count {count} disagrees with payload size {}",
                data.remaining()
            )));
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let t = data.get_time()?;
            let off = data.get_u32()?;
            entries.push((t, off));
        }
        Ok(IndexDataRecord { conn_id, entries })
    }
}

/// Chunk-info record: position and summary of one chunk; all chunk infos
/// are written at the end of the bag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkInfoRecord {
    pub chunk_pos: u64,
    pub start_time: Time,
    pub end_time: Time,
    /// `(conn_id, message count in this chunk)`.
    pub counts: Vec<(u32, u32)>,
}

impl ChunkInfoRecord {
    pub fn encode(&self, out: &mut Vec<u8>) {
        let header = RecordHeader::new(Op::ChunkInfo)
            .with_u32("ver", 1)
            .with_u64("chunk_pos", self.chunk_pos)
            .with_time("start_time", self.start_time)
            .with_time("end_time", self.end_time)
            .with_u32("count", self.counts.len() as u32);
        let mut data = Vec::with_capacity(self.counts.len() * 8);
        for (conn, n) in &self.counts {
            data.put_u32(*conn);
            data.put_u32(*n);
        }
        write_record(out, &header, &data);
    }

    pub fn decode(header: &RecordHeader, mut data: &[u8]) -> BagResult<Self> {
        let ver = header.get_u32("chunk info", "ver")?;
        if ver != 1 {
            return Err(BagError::Format(format!("unsupported chunk info ver {ver}")));
        }
        let chunk_pos = header.get_u64("chunk info", "chunk_pos")?;
        let start_time = header.get_time("chunk info", "start_time")?;
        let end_time = header.get_time("chunk info", "end_time")?;
        let count = header.get_u32("chunk info", "count")? as usize;
        if count * 8 != data.remaining() {
            return Err(BagError::Format("chunk info count disagrees with payload size".into()));
        }
        let mut counts = Vec::with_capacity(count);
        for _ in 0..count {
            let conn = data.get_u32()?;
            let n = data.get_u32()?;
            counts.push((conn, n));
        }
        Ok(ChunkInfoRecord { chunk_pos, start_time, end_time, counts })
    }

    /// Total messages across all connections in the chunk.
    pub fn message_count(&self) -> u64 {
        self.counts.iter().map(|(_, n)| *n as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_field_round_trip() {
        let h = RecordHeader::new(Op::Chunk)
            .with_u32("size", 1234)
            .with_str("compression", "none")
            .with_u64("big", u64::MAX)
            .with_time("t", Time::new(7, 8));
        let enc = h.encode();
        let dec = RecordHeader::decode(&enc).unwrap();
        assert_eq!(dec.op, Op::Chunk);
        assert_eq!(dec.get_u32("c", "size").unwrap(), 1234);
        assert_eq!(dec.get_str("c", "compression").unwrap(), "none");
        assert_eq!(dec.get_u64("c", "big").unwrap(), u64::MAX);
        assert_eq!(dec.get_time("c", "t").unwrap(), Time::new(7, 8));
    }

    #[test]
    fn missing_field_reports_names() {
        let h = RecordHeader::new(Op::Chunk);
        match h.get_u32("chunk", "size") {
            Err(BagError::MissingField { record, field }) => {
                assert_eq!(record, "chunk");
                assert_eq!(field, "size");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn record_round_trip() {
        let mut out = Vec::new();
        let h = RecordHeader::new(Op::MessageData)
            .with_u32("conn", 3)
            .with_time("time", Time::new(1, 2));
        write_record(&mut out, &h, b"payload");
        assert_eq!(out.len(), record_size(&h, 7));

        let mut cur: &[u8] = &out;
        let (dec, data) = read_record(&mut cur).unwrap();
        assert_eq!(dec.op, Op::MessageData);
        assert_eq!(data, b"payload");
        assert_eq!(cur.len(), 0);
    }

    #[test]
    fn bag_header_padded_fixed_size() {
        let bh = BagHeader { index_pos: 987654321, conn_count: 7, chunk_count: 42 };
        let bytes = bh.encode_padded();
        assert_eq!(bytes.len(), BAG_HEADER_RECORD_SIZE);
        let mut cur: &[u8] = &bytes;
        let (h, _pad) = read_record(&mut cur).unwrap();
        assert_eq!(BagHeader::from_header(&h).unwrap(), bh);
    }

    #[test]
    fn connection_record_round_trip() {
        let c = ConnectionRecord {
            conn_id: 5,
            topic: "/imu".into(),
            datatype: "sensor_msgs/Imu".into(),
            md5sum: "abc123".into(),
            definition: "std_msgs/Header header\n...".into(),
        };
        let mut out = Vec::new();
        c.encode(&mut out);
        let mut cur: &[u8] = &out;
        let (h, data) = read_record(&mut cur).unwrap();
        assert_eq!(h.op, Op::Connection);
        assert_eq!(ConnectionRecord::decode(&h, data).unwrap(), c);
    }

    #[test]
    fn index_data_round_trip() {
        let idx = IndexDataRecord {
            conn_id: 2,
            entries: vec![(Time::new(1, 0), 0), (Time::new(1, 500), 128)],
        };
        let mut out = Vec::new();
        idx.encode(&mut out);
        let mut cur: &[u8] = &out;
        let (h, data) = read_record(&mut cur).unwrap();
        assert_eq!(IndexDataRecord::decode(&h, data).unwrap(), idx);
    }

    #[test]
    fn index_data_count_mismatch_rejected() {
        let idx = IndexDataRecord { conn_id: 2, entries: vec![(Time::new(1, 0), 0)] };
        let mut out = Vec::new();
        idx.encode(&mut out);
        let mut cur: &[u8] = &out;
        let (h, data) = read_record(&mut cur).unwrap();
        // Claim 2 entries but provide 1.
        let h2 = RecordHeader::new(Op::IndexData)
            .with_u32("ver", 1)
            .with_u32("conn", h.get_u32("i", "conn").unwrap())
            .with_u32("count", 2);
        assert!(IndexDataRecord::decode(&h2, data).is_err());
    }

    #[test]
    fn chunk_info_round_trip() {
        let ci = ChunkInfoRecord {
            chunk_pos: 4096,
            start_time: Time::new(10, 0),
            end_time: Time::new(20, 0),
            counts: vec![(0, 100), (1, 50)],
        };
        let mut out = Vec::new();
        ci.encode(&mut out);
        let mut cur: &[u8] = &out;
        let (h, data) = read_record(&mut cur).unwrap();
        let dec = ChunkInfoRecord::decode(&h, data).unwrap();
        assert_eq!(dec, ci);
        assert_eq!(dec.message_count(), 150);
    }

    #[test]
    fn unknown_op_rejected() {
        assert!(Op::from_u8(0x7F).is_err());
    }
}
