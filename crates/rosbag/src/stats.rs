//! Per-topic bag statistics — the analytics behind `rosbag-tool info`
//! and a common first step of the paper's "pre-analysis" workloads.

use ros_msgs::Time;
use simfs::{IoCtx, Storage};

use crate::error::BagResult;
use crate::reader::BagReader;

/// Statistics for one topic.
#[derive(Debug, Clone, PartialEq)]
pub struct TopicStats {
    pub topic: String,
    pub datatype: String,
    pub message_count: u64,
    pub first: Option<Time>,
    pub last: Option<Time>,
    /// Mean publish rate in Hz over [first, last] (None for <2 messages).
    pub rate_hz: Option<f64>,
    /// Largest gap between consecutive messages, seconds.
    pub max_gap_s: Option<f64>,
}

/// Whole-bag statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct BagStats {
    pub message_count: u64,
    pub chunk_count: usize,
    pub start: Option<Time>,
    pub end: Option<Time>,
    pub topics: Vec<TopicStats>,
}

impl BagStats {
    pub fn duration_s(&self) -> f64 {
        match (self.start, self.end) {
            (Some(s), Some(e)) => (e - s).as_sec_f64(),
            _ => 0.0,
        }
    }

    pub fn topic(&self, name: &str) -> Option<&TopicStats> {
        self.topics.iter().find(|t| t.topic == name)
    }
}

/// Compute statistics from an opened bag's index — no message payloads are
/// read, so this is cheap even on the baseline path.
pub fn bag_stats<S: Storage>(reader: &BagReader<S>, ctx: &mut IoCtx) -> BagResult<BagStats> {
    let _ = ctx; // index-only: no further I/O needed
    let idx = reader.index();
    let mut topics = Vec::with_capacity(idx.connections.len());
    for conn in &idx.connections {
        let entries = idx.entries.get(&conn.conn_id).map(Vec::as_slice).unwrap_or(&[]);
        let mut sorted: Vec<Time> = entries.iter().map(|e| e.time).collect();
        sorted.sort_unstable();
        let first = sorted.first().copied();
        let last = sorted.last().copied();
        let rate_hz = match (first, last) {
            (Some(f), Some(l)) if sorted.len() >= 2 && l > f => {
                Some((sorted.len() as f64 - 1.0) / (l - f).as_sec_f64())
            }
            _ => None,
        };
        let max_gap_s = sorted
            .windows(2)
            .map(|w| (w[1] - w[0]).as_sec_f64())
            .fold(None, |acc: Option<f64>, g| Some(acc.map_or(g, |a| a.max(g))));
        topics.push(TopicStats {
            topic: conn.topic.clone(),
            datatype: conn.datatype.clone(),
            message_count: entries.len() as u64,
            first,
            last,
            rate_hz,
            max_gap_s,
        });
    }
    let (start, end) = idx.time_range().map(|(s, e)| (Some(s), Some(e))).unwrap_or((None, None));
    Ok(BagStats {
        message_count: idx.message_count(),
        chunk_count: idx.chunk_infos.len(),
        start,
        end,
        topics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{BagWriter, BagWriterOptions};
    use ros_msgs::sensor_msgs::Imu;
    use simfs::MemStorage;

    fn build() -> (MemStorage, BagStats) {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let mut w = BagWriter::create(
            &fs,
            "/b.bag",
            BagWriterOptions { chunk_size: 2048, ..Default::default() },
            &mut ctx,
        )
        .unwrap();
        // 10 Hz IMU for 10 s with one 2-second dropout.
        for i in 0..100u32 {
            if (30..50).contains(&i) {
                continue;
            }
            let t = Time::from_nanos(i as u64 * 100_000_000);
            let mut imu = Imu::default();
            imu.header.seq = i;
            w.write_ros_message("/imu", t, &imu, &mut ctx).unwrap();
        }
        w.close(&mut ctx).unwrap();
        let r = BagReader::open(&fs, "/b.bag", &mut ctx).unwrap();
        let stats = bag_stats(&r, &mut ctx).unwrap();
        (fs, stats)
    }

    #[test]
    fn counts_and_range() {
        let (_, stats) = build();
        assert_eq!(stats.message_count, 80);
        let t = stats.topic("/imu").unwrap();
        assert_eq!(t.message_count, 80);
        assert_eq!(t.first.unwrap(), Time::ZERO);
        assert_eq!(t.last.unwrap(), Time::from_nanos(99 * 100_000_000));
        assert!((stats.duration_s() - 9.9).abs() < 1e-9);
    }

    #[test]
    fn rate_reflects_publishing() {
        let (_, stats) = build();
        let t = stats.topic("/imu").unwrap();
        // 79 intervals over 9.9 s ≈ 7.98 Hz (dropout included).
        let hz = t.rate_hz.unwrap();
        assert!((hz - 79.0 / 9.9).abs() < 1e-6, "hz={hz}");
    }

    #[test]
    fn dropout_shows_as_max_gap() {
        let (_, stats) = build();
        let t = stats.topic("/imu").unwrap();
        // Messages jump from i=29 to i=50: gap of 2.1 s.
        assert!((t.max_gap_s.unwrap() - 2.1).abs() < 1e-9);
    }

    #[test]
    fn empty_topic_stats() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let mut w =
            BagWriter::create(&fs, "/b.bag", BagWriterOptions::default(), &mut ctx).unwrap();
        let mut imu = Imu::default();
        imu.header.seq = 1;
        w.write_ros_message("/imu", Time::new(1, 0), &imu, &mut ctx).unwrap();
        w.close(&mut ctx).unwrap();
        let r = BagReader::open(&fs, "/b.bag", &mut ctx).unwrap();
        let stats = bag_stats(&r, &mut ctx).unwrap();
        let t = stats.topic("/imu").unwrap();
        assert!(t.rate_hz.is_none(), "single message has no rate");
        assert!(t.max_gap_s.is_none());
    }
}
