//! Logical→physical interval map with latest-wins overlay semantics.
//!
//! PLFS resolves a logical byte range by walking its index entries; later
//! writes shadow earlier ones. This map keeps non-overlapping extents
//! sorted by logical offset and resolves overlaps *at insert time*, so
//! reads are a binary search plus a linear walk over only the extents they
//! touch.

/// One mapping: `len` logical bytes at `logical` live at `phys` in the
/// data log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    pub logical: u64,
    pub len: u64,
    pub phys: u64,
}

impl Extent {
    pub fn logical_end(&self) -> u64 {
        self.logical + self.len
    }
}

/// Sorted, non-overlapping extent list.
#[derive(Debug, Default, Clone)]
pub struct IntervalMap {
    /// Invariant: sorted by `logical`, pairwise disjoint.
    extents: Vec<Extent>,
}

impl IntervalMap {
    pub fn new() -> Self {
        Self::default()
    }

    /// Logical length: one past the last mapped byte (0 when empty).
    pub fn logical_len(&self) -> u64 {
        self.extents.last().map(|e| e.logical_end()).unwrap_or(0)
    }

    pub fn extent_count(&self) -> usize {
        self.extents.len()
    }

    /// Insert a new extent; it shadows any previously mapped bytes in its
    /// range (overlapped older extents are trimmed or split).
    pub fn insert(&mut self, new: Extent) {
        if new.len == 0 {
            return;
        }
        let start = new.logical;
        let end = new.logical_end();

        // Find the first extent that could overlap.
        let mut i = self.extents.partition_point(|e| e.logical_end() <= start);
        let mut patched: Vec<Extent> = Vec::with_capacity(2);
        let mut remove_to = i;
        while remove_to < self.extents.len() && self.extents[remove_to].logical < end {
            let old = self.extents[remove_to];
            // Left remainder of the old extent.
            if old.logical < start {
                patched.push(Extent {
                    logical: old.logical,
                    len: start - old.logical,
                    phys: old.phys,
                });
            }
            // Right remainder.
            if old.logical_end() > end {
                let cut = end - old.logical;
                patched.push(Extent {
                    logical: end,
                    len: old.logical_end() - end,
                    phys: old.phys + cut,
                });
            }
            remove_to += 1;
        }
        patched.push(new);
        patched.sort_by_key(|e| e.logical);
        self.extents.splice(i..remove_to, patched);
        // Fix ordering at the seam (left remainder sorts before `new`).
        // splice preserved sortedness because `patched` is sorted and its
        // range replaces exactly the overlapped region.
        debug_assert!(self.check_invariants());
        i = 0;
        let _ = i;
    }

    /// Resolve `[offset, offset+len)` into the physical segments covering
    /// it, in logical order. Panics in debug builds if the range is not
    /// fully mapped (callers check `logical_len` first); unmapped holes
    /// never occur for append-origin files.
    pub fn resolve(&self, offset: u64, len: u64) -> Vec<Extent> {
        let end = offset + len;
        let mut out = Vec::new();
        let mut i = self.extents.partition_point(|e| e.logical_end() <= offset);
        while i < self.extents.len() && self.extents[i].logical < end {
            let e = self.extents[i];
            let lo = e.logical.max(offset);
            let hi = e.logical_end().min(end);
            out.push(Extent { logical: lo, len: hi - lo, phys: e.phys + (lo - e.logical) });
            i += 1;
        }
        out
    }

    fn check_invariants(&self) -> bool {
        self.extents.windows(2).all(|w| w[0].logical_end() <= w[1].logical)
            && self.extents.iter().all(|e| e.len > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(logical: u64, len: u64, phys: u64) -> Extent {
        Extent { logical, len, phys }
    }

    #[test]
    fn append_only_sequence() {
        let mut m = IntervalMap::new();
        m.insert(e(0, 10, 0));
        m.insert(e(10, 5, 10));
        assert_eq!(m.logical_len(), 15);
        assert_eq!(m.extent_count(), 2);
        let segs = m.resolve(8, 4);
        assert_eq!(segs, vec![e(8, 2, 8), e(10, 2, 10)]);
    }

    #[test]
    fn overwrite_middle_splits() {
        let mut m = IntervalMap::new();
        m.insert(e(0, 10, 0));
        m.insert(e(3, 4, 100)); // shadows bytes 3..7
        assert_eq!(m.extent_count(), 3);
        let segs = m.resolve(0, 10);
        assert_eq!(segs, vec![e(0, 3, 0), e(3, 4, 100), e(7, 3, 7)]);
    }

    #[test]
    fn overwrite_spanning_multiple() {
        let mut m = IntervalMap::new();
        m.insert(e(0, 4, 0));
        m.insert(e(4, 4, 4));
        m.insert(e(8, 4, 8));
        m.insert(e(2, 8, 50)); // covers tail of 1st, all of 2nd, head of 3rd
        let segs = m.resolve(0, 12);
        assert_eq!(segs, vec![e(0, 2, 0), e(2, 8, 50), e(10, 2, 10)]);
    }

    #[test]
    fn exact_replacement() {
        let mut m = IntervalMap::new();
        m.insert(e(0, 8, 0));
        m.insert(e(0, 8, 64));
        assert_eq!(m.extent_count(), 1);
        assert_eq!(m.resolve(0, 8), vec![e(0, 8, 64)]);
    }

    #[test]
    fn zero_length_ignored() {
        let mut m = IntervalMap::new();
        m.insert(e(0, 0, 0));
        assert_eq!(m.logical_len(), 0);
    }

    #[test]
    fn resolve_subrange_offsets_phys() {
        let mut m = IntervalMap::new();
        m.insert(e(0, 100, 1000));
        assert_eq!(m.resolve(30, 10), vec![e(30, 10, 1030)]);
    }
}
