//! `plfs-lite`: a PLFS-style log-structured container middleware.
//!
//! PLFS (Bent et al., SC'09) transparently turns each logical file into a
//! container of per-writer append logs plus index files mapping logical
//! extents to physical log locations. It was designed for N-to-1
//! checkpoint writes; the BORA paper (Fig. 3) measures it as the closest
//! existing I/O middleware and finds it *hurts* bag workloads: every write
//! pays an extra index append, and reads must resolve logical extents
//! through the index with no awareness of ROS semantics.
//!
//! [`PlfsStorage`] implements [`simfs::Storage`], so the unmodified
//! `rosbag` writer/reader runs on top of it — exactly how the paper ran
//! `rosbag` over PLFS-on-Ext4/XFS. A logical file `/a/b.bag` is stored as
//!
//! ```text
//! /a/b.bag.plfs/
//!     data.0      ← append log (writer 0)
//!     index.0     ← one 28-byte entry per write
//! ```
//!
//! The contrast with BORA is the whole point: both use containers, but
//! PLFS maps *byte extents* while BORA maps *message semantics* (topics,
//! timestamps).

pub mod interval;

use std::collections::HashMap;

use parking_lot::Mutex;

use interval::{Extent, IntervalMap};
use simfs::{DirEntry, EntryKind, FsError, FsResult, IoCtx, Metadata, Storage};

/// Per-operation FUSE interposition cost: PLFS is FUSE-mounted (paper
/// Table IV lists its interposition as "FUSE or Library"), so every
/// logical read/write pays a user-kernel-user round trip.
const FUSE_OP_NS: u64 = 50_000;

/// Suffix marking a logical file's container directory.
const CONTAINER_SUFFIX: &str = ".plfs";
/// Index entry size on disk: logical_off u64 + len u32 + phys_off u64 +
/// timestamp u64.
const INDEX_ENTRY_SIZE: usize = 28;

fn container_dir(path: &str) -> String {
    format!("{path}{CONTAINER_SUFFIX}")
}

fn data_log(path: &str, writer: u32) -> String {
    format!("{}/data.{writer}", container_dir(path))
}

fn index_log(path: &str, writer: u32) -> String {
    format!("{}/index.{writer}", container_dir(path))
}

/// Cached per-file state: the resolved logical→physical interval map and
/// the data log's current length.
struct FileState {
    map: IntervalMap,
    data_len: u64,
    /// Monotonic write sequence for latest-wins overlay.
    seq: u64,
}

impl FileState {
    fn empty() -> Self {
        FileState { map: IntervalMap::new(), data_len: 0, seq: 0 }
    }
}

/// PLFS-style middleware over any inner storage.
pub struct PlfsStorage<S> {
    inner: S,
    state: Mutex<HashMap<String, FileState>>,
}

impl<S: Storage> PlfsStorage<S> {
    pub fn new(inner: S) -> Self {
        PlfsStorage { inner, state: Mutex::new(HashMap::new()) }
    }

    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Load (or fetch cached) file state; reads the index log on first
    /// touch — PLFS's index-resolution cost at open time.
    fn load_state<R>(
        &self,
        path: &str,
        ctx: &mut IoCtx,
        f: impl FnOnce(&mut FileState) -> R,
    ) -> FsResult<R> {
        let mut guard = self.state.lock();
        if !guard.contains_key(path) {
            let idx_path = index_log(path, 0);
            if !self.inner.exists(&idx_path, ctx) {
                return Err(FsError::NotFound(path.to_owned()));
            }
            let bytes = self.inner.read_all(&idx_path, ctx)?;
            if bytes.len() % INDEX_ENTRY_SIZE != 0 {
                return Err(FsError::Io(format!("corrupt PLFS index for {path}")));
            }
            let mut st = FileState::empty();
            for chunk in bytes.chunks_exact(INDEX_ENTRY_SIZE) {
                let logical = u64::from_le_bytes(chunk[0..8].try_into().unwrap());
                let len = u32::from_le_bytes(chunk[8..12].try_into().unwrap());
                let phys = u64::from_le_bytes(chunk[12..20].try_into().unwrap());
                st.map.insert(Extent { logical, len: len as u64, phys });
                st.seq += 1;
                st.data_len = st.data_len.max(phys + len as u64);
            }
            guard.insert(path.to_owned(), st);
        }
        Ok(f(guard.get_mut(path).unwrap()))
    }

    /// Record one write: append payload to the data log, append an index
    /// entry, update the in-memory map.
    fn record_write(&self, path: &str, logical: u64, data: &[u8], ctx: &mut IoCtx) -> FsResult<()> {
        let phys = self.inner.append(&data_log(path, 0), data, ctx)?;
        let mut entry = Vec::with_capacity(INDEX_ENTRY_SIZE);
        entry.extend_from_slice(&logical.to_le_bytes());
        entry.extend_from_slice(&(data.len() as u32).to_le_bytes());
        entry.extend_from_slice(&phys.to_le_bytes());
        entry.extend_from_slice(&0u64.to_le_bytes()); // timestamp slot
        self.inner.append(&index_log(path, 0), &entry, ctx)?;

        let mut guard = self.state.lock();
        let st = guard.entry(path.to_owned()).or_insert_with(FileState::empty);
        st.map.insert(Extent { logical, len: data.len() as u64, phys });
        st.seq += 1;
        st.data_len = st.data_len.max(phys + data.len() as u64);
        Ok(())
    }
}

impl<S: Storage> Storage for PlfsStorage<S> {
    fn create(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        if self.inner.exists(&container_dir(path), ctx) {
            return Err(FsError::AlreadyExists(path.to_owned()));
        }
        self.inner.mkdir_all(&container_dir(path), ctx)?;
        self.inner.create(&data_log(path, 0), ctx)?;
        self.inner.create(&index_log(path, 0), ctx)?;
        self.state.lock().insert(path.to_owned(), FileState::empty());
        Ok(())
    }

    fn append(&self, path: &str, data: &[u8], ctx: &mut IoCtx) -> FsResult<u64> {
        ctx.charge_ns(FUSE_OP_NS);
        if !self.inner.exists(&container_dir(path), ctx) {
            self.create(path, ctx)?;
        }
        let logical = self.load_state(path, ctx, |st| st.map.logical_len())?;
        self.record_write(path, logical, data, ctx)?;
        Ok(logical)
    }

    fn write_at(&self, path: &str, offset: u64, data: &[u8], ctx: &mut IoCtx) -> FsResult<()> {
        ctx.charge_ns(FUSE_OP_NS);
        let len = self.load_state(path, ctx, |st| st.map.logical_len())?;
        if offset > len {
            return Err(FsError::OutOfBounds {
                path: path.to_owned(),
                offset,
                len: data.len() as u64,
                file_len: len,
            });
        }
        self.record_write(path, offset, data, ctx)
    }

    fn read_at(&self, path: &str, offset: u64, len: usize, ctx: &mut IoCtx) -> FsResult<Vec<u8>> {
        ctx.charge_ns(FUSE_OP_NS);
        let segments = self.load_state(path, ctx, |st| {
            if offset + len as u64 > st.map.logical_len() {
                None
            } else {
                Some(st.map.resolve(offset, len as u64))
            }
        })?;
        let Some(segments) = segments else {
            let file_len = self.len(path, ctx)?;
            return Err(FsError::OutOfBounds {
                path: path.to_owned(),
                offset,
                len: len as u64,
                file_len,
            });
        };
        // Each resolved segment is a separate (potentially random) read of
        // the data log — PLFS's read-amplification on non-checkpoint
        // workloads.
        let mut out = vec![0u8; len];
        let log = data_log(path, 0);
        for seg in segments {
            let bytes = self.inner.read_at(&log, seg.phys, seg.len as usize, ctx)?;
            let dst = (seg.logical - offset) as usize;
            out[dst..dst + seg.len as usize].copy_from_slice(&bytes);
        }
        Ok(out)
    }

    fn len(&self, path: &str, ctx: &mut IoCtx) -> FsResult<u64> {
        self.load_state(path, ctx, |st| st.map.logical_len())
    }

    fn exists(&self, path: &str, ctx: &mut IoCtx) -> bool {
        self.inner.exists(&container_dir(path), ctx) || self.inner.exists(path, ctx)
    }

    fn stat(&self, path: &str, ctx: &mut IoCtx) -> FsResult<Metadata> {
        if self.inner.exists(&container_dir(path), ctx) {
            Ok(Metadata { kind: EntryKind::File, len: self.len(path, ctx)? })
        } else {
            self.inner.stat(path, ctx)
        }
    }

    fn mkdir_all(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.inner.mkdir_all(path, ctx)
    }

    fn read_dir(&self, path: &str, ctx: &mut IoCtx) -> FsResult<Vec<DirEntry>> {
        let mut out = Vec::new();
        for e in self.inner.read_dir(path, ctx)? {
            if let Some(stem) = e.name.strip_suffix(CONTAINER_SUFFIX) {
                out.push(DirEntry { name: stem.to_owned(), kind: EntryKind::File });
            } else {
                out.push(e);
            }
        }
        Ok(out)
    }

    fn remove_file(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.state.lock().remove(path);
        self.inner.remove_dir_all(&container_dir(path), ctx)
    }

    fn remove_dir_all(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.state.lock().retain(|k, _| !simfs::path::starts_with(k, path));
        self.inner.remove_dir_all(path, ctx)
    }

    fn rename(&self, from: &str, to: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.state.lock().remove(from);
        self.inner.rename(&container_dir(from), &container_dir(to), ctx)
    }

    fn flush(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.inner.flush(&data_log(path, 0), ctx)?;
        self.inner.flush(&index_log(path, 0), ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simfs::{DeviceModel, MemStorage, TimedStorage};

    #[test]
    fn append_and_read_back() {
        let fs = PlfsStorage::new(MemStorage::new());
        let mut ctx = IoCtx::new();
        fs.create("/f", &mut ctx).unwrap();
        assert_eq!(fs.append("/f", b"hello ", &mut ctx).unwrap(), 0);
        assert_eq!(fs.append("/f", b"world", &mut ctx).unwrap(), 6);
        assert_eq!(fs.len("/f", &mut ctx).unwrap(), 11);
        assert_eq!(fs.read_at("/f", 0, 11, &mut ctx).unwrap(), b"hello world");
        assert_eq!(fs.read_at("/f", 3, 5, &mut ctx).unwrap(), b"lo wo");
    }

    #[test]
    fn overwrite_latest_wins() {
        let fs = PlfsStorage::new(MemStorage::new());
        let mut ctx = IoCtx::new();
        fs.append("/f", b"AAAAAAAAAA", &mut ctx).unwrap();
        fs.write_at("/f", 3, b"BBB", &mut ctx).unwrap();
        assert_eq!(fs.read_at("/f", 0, 10, &mut ctx).unwrap(), b"AAABBBAAAA");
        fs.write_at("/f", 0, b"CCCCC", &mut ctx).unwrap();
        assert_eq!(fs.read_at("/f", 0, 10, &mut ctx).unwrap(), b"CCCCCBAAAA");
    }

    #[test]
    fn state_survives_cache_eviction() {
        // Rebuild from the persisted index log (fresh PlfsStorage over the
        // same inner data).
        let inner = MemStorage::new();
        let mut ctx = IoCtx::new();
        {
            let fs = PlfsStorage::new(&inner);
            fs.append("/f", b"0123456789", &mut ctx).unwrap();
            fs.write_at("/f", 4, b"xx", &mut ctx).unwrap();
        }
        let fs = PlfsStorage::new(&inner);
        assert_eq!(fs.read_at("/f", 0, 10, &mut ctx).unwrap(), b"0123xx6789");
    }

    #[test]
    fn writes_cost_more_than_plain_fs() {
        // The paper's Fig. 3a: PLFS bag writes are ~2x plain Ext4 because
        // of the per-write index append.
        let plain = TimedStorage::new(MemStorage::new(), DeviceModel::nvme_ext4());
        let plfs = PlfsStorage::new(TimedStorage::new(MemStorage::new(), DeviceModel::nvme_ext4()));

        let payload = vec![7u8; 4096];
        let mut c_plain = IoCtx::new();
        let mut c_plfs = IoCtx::new();
        for _ in 0..200 {
            plain.append("/f", &payload, &mut c_plain).unwrap();
            plfs.append("/f", &payload, &mut c_plfs).unwrap();
        }
        assert!(
            c_plfs.elapsed_ns() > c_plain.elapsed_ns() * 3 / 2,
            "plfs={} plain={}",
            c_plfs.elapsed_ns(),
            c_plain.elapsed_ns()
        );
    }

    #[test]
    fn rosbag_runs_unmodified_on_plfs() {
        use ros_msgs::{sensor_msgs::Imu, RosMessage, Time};
        use rosbag::{BagReader, BagWriter, BagWriterOptions};

        let fs = PlfsStorage::new(MemStorage::new());
        let mut ctx = IoCtx::new();
        let mut w = BagWriter::create(
            &fs,
            "/b.bag",
            BagWriterOptions { chunk_size: 2048, ..Default::default() },
            &mut ctx,
        )
        .unwrap();
        for i in 0..50u32 {
            let mut imu = Imu::default();
            imu.header.seq = i;
            w.write_ros_message("/imu", Time::new(i, 0), &imu, &mut ctx).unwrap();
        }
        w.close(&mut ctx).unwrap();

        let r = BagReader::open(&fs, "/b.bag", &mut ctx).unwrap();
        let msgs = r.read_messages(&["/imu"], &mut ctx).unwrap();
        assert_eq!(msgs.len(), 50);
        assert_eq!(Imu::from_bytes(&msgs[49].data).unwrap().header.seq, 49);
    }

    #[test]
    fn missing_file_errors() {
        let fs = PlfsStorage::new(MemStorage::new());
        let mut ctx = IoCtx::new();
        assert!(matches!(fs.read_at("/ghost", 0, 1, &mut ctx), Err(FsError::NotFound(_))));
    }

    #[test]
    fn read_past_logical_end_errors() {
        let fs = PlfsStorage::new(MemStorage::new());
        let mut ctx = IoCtx::new();
        fs.append("/f", b"abc", &mut ctx).unwrap();
        assert!(matches!(fs.read_at("/f", 1, 5, &mut ctx), Err(FsError::OutOfBounds { .. })));
    }

    #[test]
    fn readdir_presents_logical_names() {
        let fs = PlfsStorage::new(MemStorage::new());
        let mut ctx = IoCtx::new();
        fs.append("/dir/a.bag", b"x", &mut ctx).unwrap();
        let entries = fs.read_dir("/dir", &mut ctx).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].name, "a.bag");
        assert_eq!(entries[0].kind, EntryKind::File);
    }
}
