//! Property tests for the query compiler and executor.
//!
//! Random queries over random record streams, checked three ways:
//!
//! 1. **Plan vs naive**: the planned, pushdown-optimized cursor agrees
//!    with [`run_naive`], a direct transcription of the language
//!    semantics that never looks at a plan.
//! 2. **Pushdown is invisible**: planning with `pushdown: false`
//!    produces the same rows — the optimizer may only change *work*,
//!    never *results*. The same must hold over a real container, where
//!    pushdown additionally drives coarse-index block skipping.
//! 3. **EXPLAIN ANALYZE is honest**: the `rows=` the annotated plan
//!    reports equals the number of rows the cursor actually produced.

use std::collections::HashMap;

use bora_query::{prepare_with, run_naive, PlanOptions, Row};
use proptest::prelude::*;
use ros_msgs::sensor_msgs::Imu;
use ros_msgs::{RosMessage, Time};
use rosbag::reader::MessageRecord;
use rosbag::{BagWriter, BagWriterOptions};
use simfs::{IoCtx, MemStorage};

const TOPICS: [&str; 2] = ["/imu", "/gps"];

/// A random record stream: strictly increasing, never-colliding
/// timestamps (so bag merge order and record order agree exactly) over
/// up to two topics, with a small-integer signal in
/// `angular_velocity.x` so aggregate arithmetic is float-exact.
fn arb_events() -> impl Strategy<Value = Vec<(usize, u64, i64)>> {
    prop::collection::vec((0usize..2, 1u64..2_000_000_000, -40i64..40), 0..100)
}

fn build_records(events: &[(usize, u64, i64)]) -> (Vec<MessageRecord>, HashMap<String, String>) {
    let mut recs = Vec::with_capacity(events.len());
    let mut t_ns = 500_000_000u64;
    for (i, &(topic, gap_ns, x)) in events.iter().enumerate() {
        t_ns += gap_ns;
        let t = Time::from_nanos(t_ns);
        let mut imu = Imu::default();
        imu.header.seq = i as u32;
        imu.header.stamp = t;
        imu.angular_velocity.x = x as f64;
        recs.push(MessageRecord {
            conn_id: topic as u32,
            topic: TOPICS[topic].to_owned(),
            time: t,
            data: imu.to_bytes(),
        });
    }
    let dts = TOPICS.iter().map(|t| ((*t).to_owned(), Imu::DATATYPE.to_owned())).collect();
    (recs, dts)
}

/// A random well-formed statement, rendered straight to SQL. The shape
/// sweeps every clause the grammar has: projection vs aggregation,
/// multi-topic FROM, time/field/boolean WHERE (the time forms are what
/// pushdown extracts), SAMPLE EVERY, WINDOW, LIMIT.
fn arb_sql() -> impl Strategy<Value = String> {
    (
        (0usize..6, 0usize..3),
        (0usize..6, 0u64..50, 1u64..70, 0i64..40),
        (0usize..4, 0usize..2, 1u64..40, 0usize..3, 1u64..25),
    )
        .prop_map(|((it, tc), (wc, a, d, c), (sc, wp, w, lc, l))| {
            let agg = it >= 3;
            let windowed = agg && wp == 1;
            let mut items = match it {
                0 => "time, topic",
                1 => "time, angular_velocity.x",
                2 => "header.seq, size",
                3 => "count()",
                4 => "count(), mean(angular_velocity.x)",
                _ => "min(angular_velocity.x), max(angular_velocity.x), count()",
            }
            .to_owned();
            if windowed {
                items = format!("window, {items}");
            }
            let from = match tc {
                0 => "'/imu'",
                1 => "'/gps'",
                _ => "'/imu', '/gps'",
            };
            let mut sql = format!("SELECT {items} FROM {from}");
            let b = a + d;
            match wc {
                0 => {}
                1 => sql.push_str(&format!(" WHERE time >= {a}.0")),
                2 => sql.push_str(&format!(" WHERE time < {b}.0")),
                3 => sql.push_str(&format!(" WHERE time >= {a}.0 AND time < {b}.0")),
                4 => sql.push_str(&format!(" WHERE angular_velocity.x >= {c}.0")),
                _ => sql.push_str(&format!(" WHERE time >= {a}.0 OR angular_velocity.x < {c}.0")),
            }
            if sc > 0 {
                sql.push_str(&format!(" SAMPLE EVERY {}", sc + 1));
            }
            if windowed {
                sql.push_str(&format!(" WINDOW {w}s"));
            }
            if lc > 0 {
                sql.push_str(&format!(" LIMIT {l}"));
            }
            sql
        })
}

fn run_planned(
    sql: &str,
    pushdown: bool,
    recs: &[MessageRecord],
    dts: &HashMap<String, String>,
) -> (Vec<String>, Vec<Row>) {
    let p = prepare_with(sql, &PlanOptions { pushdown }).unwrap_or_else(|e| {
        panic!("generated statement failed to plan: {sql}\n{e}");
    });
    let mut cur = p.cursor_records(recs.to_vec(), dts.clone(), false).unwrap();
    let cols = cur.columns();
    let rows = cur.collect_rows().unwrap();
    (cols, rows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn plan_matches_naive_and_pushdown_never_changes_rows(
        events in arb_events(),
        sql in arb_sql(),
    ) {
        let (recs, dts) = build_records(&events);

        let (cols_on, rows_on) = run_planned(&sql, true, &recs, &dts);
        let (cols_off, rows_off) = run_planned(&sql, false, &recs, &dts);
        let p = prepare_with(&sql, &PlanOptions::default()).unwrap();
        let (cols_naive, rows_naive) = run_naive(&p.query.stmt, &recs, &dts).unwrap();

        prop_assert_eq!(&cols_on, &cols_naive, "columns diverged: {}", sql);
        prop_assert_eq!(&cols_on, &cols_off, "pushdown changed columns: {}", sql);
        prop_assert_eq!(&rows_on, &rows_naive, "plan vs naive: {}", sql);
        prop_assert_eq!(&rows_on, &rows_off, "pushdown changed rows: {}", sql);
    }

    #[test]
    fn analyze_row_counts_match_actual_rows(
        events in arb_events(),
        sql in arb_sql(),
    ) {
        let (recs, dts) = build_records(&events);
        let analyzed = format!("EXPLAIN ANALYZE {sql}");
        let p = prepare_with(&analyzed, &PlanOptions::default()).unwrap();
        let mut cur = p.cursor_records(recs, dts, false).unwrap();
        let rows = cur.collect_rows().unwrap();
        let stats = cur.stats();
        prop_assert_eq!(stats.rows_out, rows.len() as u64, "{}", sql);
        let text = bora_query::explain_text(&p, Some(&stats));
        // Aggregate plans annotate the Aggregate node with its group
        // count; everything else annotates the Project node with the
        // delivered row count (LIMIT can make groups > rows).
        let needle = if p.plan.agg.is_some() {
            format!("groups={}", stats.groups)
        } else {
            format!("rows={}", rows.len())
        };
        prop_assert!(
            text.contains(&needle),
            "EXPLAIN ANALYZE missing {:?}: {}\n{}",
            needle,
            sql,
            text
        );
    }

    /// The same random queries over a *real* container: block-framed
    /// storage, the coarse time index, and the streaming merge must not
    /// change what a query means.
    #[test]
    fn container_cursor_matches_naive(
        events in arb_events(),
        sql in arb_sql(),
    ) {
        let (recs, dts) = build_records(&events);
        if recs.is_empty() {
            // An empty bag is a writer-layer edge case, not a query one.
            return Ok(());
        }
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let mut w = BagWriter::create(&fs, "/p.bag", BagWriterOptions::default(), &mut ctx).unwrap();
        for r in &recs {
            let imu = Imu::from_bytes(&r.data).unwrap();
            w.write_ros_message(&r.topic, r.time, &imu, &mut ctx).unwrap();
        }
        w.close(&mut ctx).unwrap();
        bora::duplicate(&fs, "/p.bag", &fs, "/c", &Default::default(), &mut ctx).unwrap();
        let bag = bora::BoraBag::open(&fs, "/c", &mut ctx).unwrap();

        let p = prepare_with(&sql, &PlanOptions::default()).unwrap();
        let mut cur = p.cursor_bag(&bag, false, &mut ctx).unwrap();
        let rows = cur.collect_rows().unwrap();
        let (_, want) = run_naive(&p.query.stmt, &recs, &dts).unwrap();
        prop_assert_eq!(rows, want, "container vs naive: {}", sql);
    }
}
