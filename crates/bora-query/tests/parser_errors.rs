//! Parser robustness: every malformed statement produces a typed
//! [`QueryError`] with a usable position — never a panic, never a
//! silent misparse. The serve layer leans on this contract to map any
//! compile failure to `BadQuery` without tearing down the connection.

use bora_query::{prepare, QueryError, QueryErrorKind};

/// Compile, demanding a typed rejection. Returns the error for
/// stage/position/message checks.
fn reject(sql: &str) -> QueryError {
    match prepare(sql) {
        Err(e) => e,
        Ok(_) => panic!("statement should not compile: {sql}"),
    }
}

#[test]
fn lex_errors_carry_positions() {
    for (sql, needle) in [
        ("SELECT time FROM '/imu", "unterminated"),
        ("SELECT time FROM '/imu' WHERE x ~ 1", "~"),
        ("SELECT time FROM '/imu' LIMIT -3", "unexpected byte"),
    ] {
        let e = reject(sql);
        assert_eq!(e.kind(), QueryErrorKind::Lex, "{sql}: {e}");
        assert!(e.pos().is_some(), "{sql}: lex error without a position");
        assert!(
            e.message().to_lowercase().contains(needle),
            "{sql}: message {:?} does not mention {:?}",
            e.message(),
            needle
        );
    }
}

#[test]
fn parse_errors_name_what_was_expected() {
    for (sql, needle) in [
        ("", "SELECT"),
        ("garbage", "SELECT"),
        ("SELECT", "expected"),
        ("SELECT FROM '/imu'", "expected"),
        ("SELECT time FRM '/imu'", "FROM"),
        ("SELECT time FROM", "topic"),
        ("SELECT time FROM imu", "topic"),
        ("SELECT time FROM '/a' JOIN '/b'", "WITHIN"),
        ("SELECT time FROM '/a' JOIN '/b' WITHIN", "join window"),
        ("SELECT time FROM '/imu' WHERE", "expected"),
        ("SELECT time FROM '/imu' WHERE time >", "expected"),
        ("SELECT time FROM '/imu' WHERE (time > 1.0", ")"),
        ("SELECT count( FROM '/imu'", "expression"),
        ("SELECT time FROM '/imu' WHERE x = 1.2.3", "unexpected"),
        ("SELECT count() FROM '/imu' WINDOW 0s", "window size"),
        ("SELECT time AS 5 FROM '/imu'", "alias"),
        ("SELECT time FROM '/imu' SAMPLE 2", "EVERY"),
        ("SELECT time FROM '/imu' SAMPLE EVERY 0", "sample stride"),
        ("SELECT time FROM '/imu' LIMIT", "LIMIT"),
        ("SELECT time FROM '/imu' LIMIT 5 trailing", "end of query"),
        ("EXPLAIN", "SELECT"),
    ] {
        let e = reject(sql);
        assert_eq!(e.kind(), QueryErrorKind::Parse, "{sql}: {e}");
        assert!(e.pos().is_some(), "{sql}: parse error without a position");
        assert!(
            e.message().contains(needle),
            "{sql}: message {:?} does not mention {:?}",
            e.message(),
            needle
        );
    }
}

#[test]
fn plan_errors_reject_semantic_nonsense() {
    for sql in [
        "SELECT time FROM '/imu' WINDOW 5s", // WINDOW without aggregates
        "SELECT window FROM '/imu'",         // window without WINDOW
        "SELECT count(), time FROM '/imu'",  // mixed agg / per-message
        "SELECT count(count()) FROM '/imu'", // nested aggregate
        "SELECT time FROM '/imu' WHERE count() > 1", // aggregate in WHERE
        "SELECT left.time FROM '/imu'",      // side prefix without JOIN
        "SELECT count() FROM '/a' JOIN '/b' WITHIN 1s WINDOW 5s", // window over join
        "SELECT time FROM '/imu' WHERE window > 1.0", // window in WHERE
    ] {
        let e = reject(sql);
        assert_eq!(e.kind(), QueryErrorKind::Plan, "{sql}: {e}");
    }
}

/// Truncating a valid statement at every byte boundary must always
/// yield a typed error or a valid (shorter) statement — never a panic.
#[test]
fn every_truncation_is_handled() {
    let sql = "EXPLAIN ANALYZE SELECT window, count(), mean(angular_velocity.x) AS m \
               FROM '/imu', '/gps' WHERE NOT (time >= 1.5 AND size <= 128) \
               OR topic = '/imu' SAMPLE EVERY 3 WINDOW 2500ms LIMIT 10";
    assert!(prepare(sql).is_ok(), "the base statement must compile");
    for cut in 0..sql.len() {
        if !sql.is_char_boundary(cut) {
            continue;
        }
        let _ = prepare(&sql[..cut]); // must return, never unwind
    }
}

/// Random garbage: printable noise, operator soup, unbalanced quotes.
/// The parser's only obligations are to return and to point somewhere
/// inside the input.
#[test]
fn garbage_never_panics_and_positions_stay_in_bounds() {
    let mut state = 0x9e3779b97f4a7c15u64;
    let alphabet: Vec<char> =
        "SELECTFROMWHERE'()*,.<>=!0123456789abcxyz/_- \t\n\"%~`".chars().collect();
    for _ in 0..500 {
        let mut sql = String::new();
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let len = (state >> 33) % 60;
        for k in 0..len {
            let idx = ((state >> 7).wrapping_add(k.wrapping_mul(0x2545F4914F6CDD1D)) as usize)
                % alphabet.len();
            sql.push(alphabet[idx]);
            state = state.rotate_left(13) ^ k;
        }
        if let Err(e) = prepare(&sql) {
            if let Some(pos) = e.pos() {
                assert!(pos <= sql.len(), "position {pos} past end of {sql:?}");
                // The caret rendering must stay two well-formed lines.
                let rendered = e.render_caret(&sql);
                assert!(rendered.contains('^'), "no caret for {sql:?}");
            }
        }
    }
}

#[test]
fn caret_rendering_points_at_the_offending_token() {
    let sql = "SELECT time FRM '/imu'";
    let e = reject(sql);
    let rendered = e.render_caret(sql);
    let lines: Vec<&str> = rendered.lines().collect();
    assert_eq!(lines[0], sql);
    let caret_col = lines[1].find('^').expect("caret line");
    assert_eq!(caret_col, sql.find("FRM").unwrap(), "caret not under the bad token:\n{rendered}");
}
