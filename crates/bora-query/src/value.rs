//! Runtime values and field extraction.
//!
//! A query row is a `Vec<Value>`. Message fields are resolved against
//! the decoded [`AnyMessage`] for the topic's datatype (carried by the
//! container metadata); three builtins — `time`, `topic`, `size` — are
//! always available without decoding the payload. Unknown fields
//! evaluate to [`Value::Null`] rather than erroring: a fleet query must
//! be runnable over a mixed bag where only some topics carry the field.

use ros_msgs::msg::AnyMessage;
use ros_msgs::Time;

/// One cell of a result row.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
}

/// One result row.
pub type Row = Vec<Value>;

impl Value {
    /// Numeric view, coercing `Int` to `f64`; `None` for everything else.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Truthiness for WHERE results: only `Bool(true)` passes. `Null`
    /// (unknown field), numbers, and strings are all falsy — a filter
    /// either affirms a row or the row is dropped.
    pub fn truthy(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// Render for the CLI / CSV output.
    pub fn render(&self) -> String {
        match self {
            Value::Null => "null".into(),
            Value::Bool(b) => b.to_string(),
            Value::Int(v) => v.to_string(),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    format!("{v:.1}")
                } else {
                    format!("{v}")
                }
            }
            Value::Str(s) => s.clone(),
        }
    }

    /// Render as a JSON scalar.
    pub fn render_json(&self) -> String {
        match self {
            Value::Null => "null".into(),
            Value::Bool(b) => b.to_string(),
            Value::Int(v) => v.to_string(),
            Value::Float(v) if v.is_finite() => format!("{v}"),
            Value::Float(_) => "null".into(),
            Value::Str(s) => bora_obs::json_string(s),
        }
    }
}

/// Comparison operators of the language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// Evaluate `a op b`. Numbers compare after Int→Float coercion; strings
/// compare lexicographically; bools support only (in)equality. Any
/// comparison involving `Null` or mismatched types yields `false` —
/// never an error, so a filter over heterogeneous topics stays total.
pub fn compare(op: CmpOp, a: &Value, b: &Value) -> bool {
    let ord = match (a, b) {
        (Value::Str(x), Value::Str(y)) => x.partial_cmp(y),
        (Value::Bool(x), Value::Bool(y)) => match op {
            CmpOp::Eq => return x == y,
            CmpOp::Ne => return x != y,
            _ => None,
        },
        _ => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => x.partial_cmp(&y),
            _ => None,
        },
    };
    match ord {
        None => false,
        Some(o) => match op {
            CmpOp::Eq => o == std::cmp::Ordering::Equal,
            CmpOp::Ne => o != std::cmp::Ordering::Equal,
            CmpOp::Lt => o == std::cmp::Ordering::Less,
            CmpOp::Le => o != std::cmp::Ordering::Greater,
            CmpOp::Gt => o == std::cmp::Ordering::Greater,
            CmpOp::Ge => o != std::cmp::Ordering::Less,
        },
    }
}

/// Seconds-as-f64 view of a timestamp — what the `time` builtin yields
/// and what window starts are reported in.
pub fn time_to_value(t: Time) -> Value {
    Value::Float(t.sec as f64 + t.nsec as f64 * 1e-9)
}

/// Resolve a non-builtin field path against a decoded message. Unknown
/// paths and opaque messages yield `Null`.
pub fn extract_field(msg: &AnyMessage, parts: &[String]) -> Value {
    fn seg(parts: &[String], i: usize) -> &str {
        parts.get(i).map(String::as_str).unwrap_or("")
    }
    let vec3 = |v: &ros_msgs::geometry_msgs::Vector3, c: &str| match c {
        "x" => Value::Float(v.x),
        "y" => Value::Float(v.y),
        "z" => Value::Float(v.z),
        _ => Value::Null,
    };
    let header = |h: &ros_msgs::std_msgs::Header, c: &str| match c {
        "seq" => Value::Int(h.seq as i64),
        "frame_id" => Value::Str(h.frame_id.clone()),
        "stamp" => time_to_value(h.stamp),
        _ => Value::Null,
    };
    match msg {
        AnyMessage::Imu(imu) => match (seg(parts, 0), parts.len()) {
            ("angular_velocity", 2) => vec3(&imu.angular_velocity, seg(parts, 1)),
            ("linear_acceleration", 2) => vec3(&imu.linear_acceleration, seg(parts, 1)),
            ("orientation", 2) => match seg(parts, 1) {
                "x" => Value::Float(imu.orientation.x),
                "y" => Value::Float(imu.orientation.y),
                "z" => Value::Float(imu.orientation.z),
                "w" => Value::Float(imu.orientation.w),
                _ => Value::Null,
            },
            ("header", 2) => header(&imu.header, seg(parts, 1)),
            _ => Value::Null,
        },
        AnyMessage::Image(img) => match (seg(parts, 0), parts.len()) {
            ("width", 1) => Value::Int(img.width as i64),
            ("height", 1) => Value::Int(img.height as i64),
            ("step", 1) => Value::Int(img.step as i64),
            ("encoding", 1) => Value::Str(img.encoding.clone()),
            ("header", 2) => header(&img.header, seg(parts, 1)),
            _ => Value::Null,
        },
        AnyMessage::CameraInfo(ci) => match (seg(parts, 0), parts.len()) {
            ("width", 1) => Value::Int(ci.width as i64),
            ("height", 1) => Value::Int(ci.height as i64),
            ("distortion_model", 1) => Value::Str(ci.distortion_model.clone()),
            ("header", 2) => header(&ci.header, seg(parts, 1)),
            _ => Value::Null,
        },
        AnyMessage::TfMessage(tf) => match (seg(parts, 0), parts.len()) {
            ("transforms", 1) => Value::Int(tf.transforms.len() as i64),
            _ => Value::Null,
        },
        AnyMessage::MarkerArray(ma) => match (seg(parts, 0), parts.len()) {
            ("markers", 1) => Value::Int(ma.markers.len() as i64),
            _ => Value::Null,
        },
        AnyMessage::Opaque { .. } => Value::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ros_msgs::sensor_msgs::Imu;
    use ros_msgs::RosMessage;

    #[test]
    fn comparisons_coerce_numbers() {
        assert!(compare(CmpOp::Eq, &Value::Int(3), &Value::Float(3.0)));
        assert!(compare(CmpOp::Lt, &Value::Float(2.5), &Value::Int(3)));
        assert!(!compare(CmpOp::Eq, &Value::Null, &Value::Null));
        assert!(!compare(CmpOp::Lt, &Value::Str("a".into()), &Value::Int(1)));
        assert!(compare(CmpOp::Ne, &Value::Bool(true), &Value::Bool(false)));
        assert!(!compare(CmpOp::Lt, &Value::Bool(true), &Value::Bool(false)));
        assert!(compare(CmpOp::Gt, &Value::Str("b".into()), &Value::Str("a".into())));
    }

    #[test]
    fn imu_fields_extract() {
        let mut imu = Imu::default();
        imu.angular_velocity.x = 0.25;
        imu.header.seq = 7;
        let any = AnyMessage::decode(Imu::DATATYPE, &imu.to_bytes()).unwrap();
        let path = |s: &str| s.split('.').map(str::to_owned).collect::<Vec<_>>();
        assert_eq!(extract_field(&any, &path("angular_velocity.x")), Value::Float(0.25));
        assert_eq!(extract_field(&any, &path("header.seq")), Value::Int(7));
        assert_eq!(extract_field(&any, &path("no.such.field")), Value::Null);
    }
}
