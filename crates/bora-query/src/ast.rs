//! Abstract syntax: what the parser produces and the planner consumes.
//!
//! The AST renders back to canonical SQL via `Display` — that is how the
//! cluster router ships plan fragments to owning nodes (the fragment *is*
//! a query), and how the property tests generate random-but-valid
//! queries (build AST, render, parse, compare).

use crate::value::{CmpOp, Value};

/// Which side of a join a path refers to. `None` outside joins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    None,
    Left,
    Right,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Min,
    Max,
    Mean,
}

impl AggFunc {
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Mean => "mean",
        }
    }
}

/// An expression. `pos` fields are byte offsets for error reporting.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Lit(Value),
    /// Field path: builtins (`time`, `topic`, `size`, `window`) or a
    /// message field (`angular_velocity.x`), optionally side-prefixed
    /// (`left.time`) inside a join.
    Path {
        side: Side,
        parts: Vec<String>,
        pos: usize,
    },
    Cmp {
        op: CmpOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    /// Aggregate call; only legal in the SELECT list.
    Agg {
        func: AggFunc,
        arg: Option<Box<Expr>>,
        pos: usize,
    },
}

impl Expr {
    /// Does any aggregate call appear in this expression?
    pub fn has_agg(&self) -> bool {
        match self {
            Expr::Lit(_) | Expr::Path { .. } => false,
            Expr::Cmp { lhs, rhs, .. } => lhs.has_agg() || rhs.has_agg(),
            Expr::And(a, b) | Expr::Or(a, b) => a.has_agg() || b.has_agg(),
            Expr::Not(e) => e.has_agg(),
            Expr::Agg { .. } => true,
        }
    }

    /// Byte position of the leftmost token, best-effort.
    pub fn pos(&self) -> usize {
        match self {
            Expr::Path { pos, .. } | Expr::Agg { pos, .. } => *pos,
            Expr::Cmp { lhs, .. } => lhs.pos(),
            Expr::And(a, _) | Expr::Or(a, _) => a.pos(),
            Expr::Not(e) => e.pos(),
            Expr::Lit(_) => 0,
        }
    }

    /// Visit every path in the expression.
    pub fn walk_paths(&self, f: &mut impl FnMut(Side, &[String], usize)) {
        match self {
            Expr::Lit(_) => {}
            Expr::Path { side, parts, pos } => f(*side, parts, *pos),
            Expr::Cmp { lhs, rhs, .. } => {
                lhs.walk_paths(f);
                rhs.walk_paths(f);
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.walk_paths(f);
                b.walk_paths(f);
            }
            Expr::Not(e) => e.walk_paths(f),
            Expr::Agg { arg, .. } => {
                if let Some(a) = arg {
                    a.walk_paths(f);
                }
            }
        }
    }
}

/// One SELECT-list item.
#[derive(Debug, Clone, PartialEq)]
pub struct Item {
    pub expr: Expr,
    pub alias: Option<String>,
}

/// The SELECT list: `*` or explicit items.
#[derive(Debug, Clone, PartialEq)]
pub enum Items {
    Star,
    List(Vec<Item>),
}

/// `JOIN '<topic>' WITHIN <dur>`.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinSpec {
    pub topic: String,
    pub within_ns: u64,
}

/// A parsed SELECT statement (clauses in grammar order).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub items: Items,
    /// Topics of the FROM clause (merged chronologically). With `join`
    /// set this is exactly one topic (the left side).
    pub from: Vec<String>,
    pub join: Option<JoinSpec>,
    pub where_expr: Option<Expr>,
    /// `SAMPLE EVERY n` — keep every n-th post-filter row.
    pub sample_every: Option<u64>,
    /// `WINDOW <dur>` — aggregate per time window of this many ns.
    pub window_ns: Option<u64>,
    pub limit: Option<u64>,
}

/// EXPLAIN wrapper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExplainMode {
    /// Execute and return rows.
    None,
    /// Plan only; nothing executes.
    Plan,
    /// Execute, return rows *and* the annotated plan.
    Analyze,
}

/// A full query: optional EXPLAIN prefix plus the statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub explain: ExplainMode,
    pub stmt: SelectStmt,
}

// ------------------------------------------------- canonical rendering

fn fmt_dur(ns: u64, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
    if ns.is_multiple_of(1_000_000_000) {
        write!(f, "{}s", ns / 1_000_000_000)
    } else if ns.is_multiple_of(1_000_000) {
        write!(f, "{}ms", ns / 1_000_000)
    } else if ns.is_multiple_of(1_000) {
        write!(f, "{}us", ns / 1_000)
    } else {
        write!(f, "{ns}ns")
    }
}

impl std::fmt::Display for Expr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expr::Lit(Value::Null) => write!(f, "null"),
            Expr::Lit(Value::Bool(b)) => write!(f, "{b}"),
            Expr::Lit(Value::Int(v)) => write!(f, "{v}"),
            Expr::Lit(Value::Float(v)) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Expr::Lit(Value::Str(s)) => write!(f, "'{s}'"),
            Expr::Path { side, parts, .. } => {
                match side {
                    Side::None => {}
                    Side::Left => write!(f, "left.")?,
                    Side::Right => write!(f, "right.")?,
                }
                write!(f, "{}", parts.join("."))
            }
            Expr::Cmp { op, lhs, rhs } => write!(f, "{lhs} {} {rhs}", op.symbol()),
            // Parenthesize operands so precedence survives the round trip.
            Expr::And(a, b) => write!(f, "({a} AND {b})"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(e) => write!(f, "NOT ({e})"),
            Expr::Agg { func, arg, .. } => match arg {
                Some(a) => write!(f, "{}({a})", func.name()),
                None => write!(f, "{}()", func.name()),
            },
        }
    }
}

impl std::fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SELECT ")?;
        match &self.items {
            Items::Star => write!(f, "*")?,
            Items::List(items) => {
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", it.expr)?;
                    if let Some(a) = &it.alias {
                        write!(f, " AS {a}")?;
                    }
                }
            }
        }
        write!(f, " FROM ")?;
        for (i, t) in self.from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "'{t}'")?;
        }
        if let Some(j) = &self.join {
            write!(f, " JOIN '{}' WITHIN ", j.topic)?;
            fmt_dur(j.within_ns, f)?;
        }
        if let Some(w) = &self.where_expr {
            write!(f, " WHERE {w}")?;
        }
        if let Some(n) = self.sample_every {
            write!(f, " SAMPLE EVERY {n}")?;
        }
        if let Some(w) = self.window_ns {
            write!(f, " WINDOW ")?;
            fmt_dur(w, f)?;
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        Ok(())
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.explain {
            ExplainMode::None => {}
            ExplainMode::Plan => write!(f, "EXPLAIN ")?,
            ExplainMode::Analyze => write!(f, "EXPLAIN ANALYZE ")?,
        }
        write!(f, "{}", self.stmt)
    }
}
