//! Pull-based plan execution.
//!
//! A [`Cursor`] interprets a [`Logical`] plan one output row at a time,
//! so the serve layer can stream results in bounded chunks instead of
//! materializing the result set. The source is either a zero-copy
//! [`MessageStream`] over a container (scan pushdown applies — the
//! stream's time range comes from the optimizer, and the pushed filter
//! is evaluated against the shared-slice payload before any copy), or a
//! pre-merged record vector (ingest snapshots, cluster-shipped rows).
//!
//! [`run_naive`] is the oracle: a deliberately simple interpretation of
//! the *statement* (no plan, no optimizer, no streaming) that the
//! property tests compare every plan execution against.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::rc::Rc;

use bora::{BoraBag, MessageStream, StreamOptions};
use ros_msgs::msg::AnyMessage;
use ros_msgs::Time;
use rosbag::reader::MessageRecord;
use simfs::{IoCtx, MemStorage, Storage};

use crate::ast::{ExplainMode, Expr, Query, SelectStmt, Side};
use crate::error::{QueryError, QueryResult};
use crate::optimize::{optimize, PlanOptions};
use crate::plan::{AggItem, AggSpec, Logical, PlanItems};
use crate::value::{compare, extract_field, CmpOp, Row, Value};

/// Largest timestamp a [`Time`] can carry, in ns — pushdown ranges are
/// clamped here before conversion so `u64::MAX` sentinels can't wrap.
pub const MAX_TIME_NS: u64 = u32::MAX as u64 * 1_000_000_000 + 999_999_999;

/// The one canonical ns→seconds conversion. Everything that surfaces a
/// `time` value (executor, oracle, window starts) must use this so the
/// equivalence tests compare identical floats.
pub fn ns_to_secs(ns: u64) -> f64 {
    ns as f64 * 1e-9
}

// ------------------------------------------------------------ messages

/// One message flowing through the pipeline. Payload access is
/// zero-copy for stream sources; field access decodes lazily and caches
/// the decoded message (a join pairing a message many times decodes it
/// once).
struct QMsg {
    time_ns: u64,
    src: QMsgSrc,
    decoded: Option<Option<AnyMessage>>,
}

enum QMsgSrc {
    Stream(bora::StreamMessage),
    Record(MessageRecord),
}

impl QMsg {
    fn topic(&self) -> &str {
        match &self.src {
            QMsgSrc::Stream(m) => &m.topic,
            QMsgSrc::Record(r) => &r.topic,
        }
    }

    fn payload(&self) -> &[u8] {
        match &self.src {
            QMsgSrc::Stream(m) => m.payload(),
            QMsgSrc::Record(r) => &r.data,
        }
    }

    fn field(&mut self, parts: &[String], datatypes: &HashMap<String, String>) -> Value {
        if self.decoded.is_none() {
            let d = datatypes
                .get(self.topic())
                .and_then(|dt| AnyMessage::decode(dt, self.payload()).ok());
            self.decoded = Some(d);
        }
        match self.decoded.as_ref().unwrap() {
            Some(m) => extract_field(m, parts),
            None => Value::Null,
        }
    }
}

/// Shared handle: join buffers and emitted pairs alias the same message
/// (and its decode cache) without copying the payload.
type MsgRef = Rc<RefCell<QMsg>>;

fn msg_ref(m: QMsg) -> MsgRef {
    Rc::new(RefCell::new(m))
}

/// One pipeline row: a single message, or a joined (left, right) pair.
enum InRow {
    Single(MsgRef),
    Pair(MsgRef, MsgRef),
}

impl InRow {
    fn time_ns(&self) -> u64 {
        match self {
            InRow::Single(m) => m.borrow().time_ns,
            // Pair rows are only grouped globally (WINDOW+JOIN is
            // rejected at plan time), so any representative time works.
            InRow::Pair(l, _) => l.borrow().time_ns,
        }
    }
}

// ---------------------------------------------------------- evaluation

/// Evaluate an expression against a pipeline row. Total: unknown
/// fields are `Null`, failed comparisons are `false`.
fn eval(e: &Expr, row: &InRow, datatypes: &HashMap<String, String>) -> Value {
    match e {
        Expr::Lit(v) => v.clone(),
        Expr::Path { side, parts, .. } => {
            let m = match (row, side) {
                (InRow::Single(m), _) => m,
                (InRow::Pair(_, r), Side::Right) => r,
                (InRow::Pair(l, _), _) => l,
            };
            path_value(m, parts, datatypes)
        }
        Expr::Cmp { op, lhs, rhs } => {
            let a = eval(lhs, row, datatypes);
            let b = eval(rhs, row, datatypes);
            Value::Bool(compare(*op, &a, &b))
        }
        Expr::And(a, b) => {
            Value::Bool(eval(a, row, datatypes).truthy() && eval(b, row, datatypes).truthy())
        }
        Expr::Or(a, b) => {
            Value::Bool(eval(a, row, datatypes).truthy() || eval(b, row, datatypes).truthy())
        }
        Expr::Not(x) => Value::Bool(!eval(x, row, datatypes).truthy()),
        // Unreachable: the planner rejects aggregates outside the
        // SELECT list and never evaluates items through here in
        // aggregate mode.
        Expr::Agg { .. } => Value::Null,
    }
}

fn path_value(m: &MsgRef, parts: &[String], datatypes: &HashMap<String, String>) -> Value {
    let mut m = m.borrow_mut();
    if parts.len() == 1 {
        match parts[0].as_str() {
            "time" => return Value::Float(ns_to_secs(m.time_ns)),
            "topic" => return Value::Str(m.topic().to_owned()),
            "size" => return Value::Int(m.payload().len() as i64),
            _ => {}
        }
    }
    m.field(parts, datatypes)
}

// ---------------------------------------------------------- aggregates

/// Running state of one aggregate over one group. `Mean` keeps `(sum,
/// n)` separately so distributed partials merge exactly: the router
/// adds per-container sums in container order, which is the same
/// association a single node merging the same containers uses.
#[derive(Debug, Clone)]
pub enum AggState {
    Count(u64),
    Min(Option<Value>),
    Max(Option<Value>),
    Mean { sum: f64, n: u64 },
}

impl AggState {
    pub fn new(spec: &AggSpec) -> AggState {
        match spec.func {
            crate::ast::AggFunc::Count => AggState::Count(0),
            crate::ast::AggFunc::Min => AggState::Min(None),
            crate::ast::AggFunc::Max => AggState::Max(None),
            crate::ast::AggFunc::Mean => AggState::Mean { sum: 0.0, n: 0 },
        }
    }

    /// Fold one row's argument value in. `None` means the spec has no
    /// argument (`count()`), which counts unconditionally; `count(e)`
    /// counts non-null values only.
    pub fn update(&mut self, v: Option<Value>) {
        match self {
            AggState::Count(n) => {
                if !matches!(v, Some(Value::Null)) {
                    *n += 1;
                }
            }
            AggState::Min(cur) => {
                if let Some(v) = v {
                    if !v.is_null()
                        && (cur.is_none() || compare(CmpOp::Lt, &v, cur.as_ref().unwrap()))
                    {
                        *cur = Some(v);
                    }
                }
            }
            AggState::Max(cur) => {
                if let Some(v) = v {
                    if !v.is_null()
                        && (cur.is_none() || compare(CmpOp::Gt, &v, cur.as_ref().unwrap()))
                    {
                        *cur = Some(v);
                    }
                }
            }
            AggState::Mean { sum, n } => {
                if let Some(f) = v.and_then(|v| v.as_f64()) {
                    *sum += f;
                    *n += 1;
                }
            }
        }
    }

    pub fn finalize(&self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(*n as i64),
            AggState::Min(v) | AggState::Max(v) => v.clone().unwrap_or(Value::Null),
            AggState::Mean { sum, n } => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / *n as f64)
                }
            }
        }
    }

    /// Flatten into a partial row (the distributed wire format).
    pub fn encode_partial(&self, out: &mut Row) {
        match self {
            AggState::Count(n) => out.push(Value::Int(*n as i64)),
            AggState::Min(v) | AggState::Max(v) => out.push(v.clone().unwrap_or(Value::Null)),
            AggState::Mean { sum, n } => {
                out.push(Value::Float(*sum));
                out.push(Value::Int(*n as i64));
            }
        }
    }

    /// Fold a peer's flattened state in, advancing `i` past the cells
    /// this state occupies.
    pub fn merge_partial(&mut self, row: &Row, i: &mut usize) -> QueryResult<()> {
        let mut take = || -> QueryResult<Value> {
            let v = row.get(*i).cloned().ok_or_else(|| {
                QueryError::wire("partial aggregate row is shorter than the plan expects")
            })?;
            *i += 1;
            Ok(v)
        };
        match self {
            AggState::Count(n) => match take()? {
                Value::Int(m) if m >= 0 => *n += m as u64,
                v => return Err(QueryError::wire(format!("bad count partial {v:?}"))),
            },
            AggState::Min(_) => {
                let v = take()?;
                self.update(Some(v));
            }
            AggState::Max(_) => {
                let v = take()?;
                self.update(Some(v));
            }
            AggState::Mean { sum, n } => {
                match take()? {
                    Value::Float(s) => *sum += s,
                    v => return Err(QueryError::wire(format!("bad mean sum partial {v:?}"))),
                }
                match take()? {
                    Value::Int(m) if m >= 0 => *n += m as u64,
                    v => return Err(QueryError::wire(format!("bad mean count partial {v:?}"))),
                }
            }
        }
        Ok(())
    }
}

/// Column names of the partial (distributed) row shape for a plan.
pub fn partial_columns(specs: &[AggSpec]) -> Vec<String> {
    let mut cols = vec!["__window".to_owned()];
    for s in specs {
        match s.func {
            crate::ast::AggFunc::Mean => {
                cols.push(format!("__{}_sum", s.func.name()));
                cols.push(format!("__{}_n", s.func.name()));
            }
            _ => cols.push(format!("__{}", s.func.name())),
        }
    }
    cols
}

// ------------------------------------------------------------- cursor

/// Per-operator counters surfaced by `EXPLAIN ANALYZE` and the
/// experiments. Counter deltas (`block.decode`, `pool.hit`) are process
/// globals — meaningful in a single-query process (CLI, experiments),
/// racy under parallel tests, which is why only serial contexts assert
/// on them.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecStats {
    /// Messages pulled out of the scan (post time-range pushdown).
    pub scanned: u64,
    /// Payload bytes of scanned messages.
    pub scan_bytes: u64,
    /// Messages dropped by the pushed-down predicate, pre-materialization.
    pub pushed_dropped: u64,
    /// Join pairs emitted.
    pub joined: u64,
    /// Rows dropped by the residual filter.
    pub filtered_out: u64,
    /// Rows dropped by SAMPLE EVERY.
    pub sampled_out: u64,
    /// Aggregation groups produced.
    pub groups: u64,
    /// Rows returned to the caller.
    pub rows_out: u64,
    /// Delta of the global `block.decode` counter across execution.
    pub block_decodes: u64,
    /// Delta of the global `pool.hit` counter across execution.
    pub pool_hits: u64,
    /// Virtual I/O+CPU nanoseconds charged to the scan's `IoCtx`.
    pub virt_ns: u64,
    /// Wall-clock microseconds spent inside the cursor.
    pub wall_us: u64,
}

enum Feed<'a, S: Storage> {
    Bag { stream: MessageStream<'a, S>, ctx: &'a mut IoCtx, virt0: u64 },
    Records(std::vec::IntoIter<MessageRecord>),
}

impl<S: Storage> Feed<'_, S> {
    fn next(&mut self) -> QueryResult<Option<QMsg>> {
        match self {
            Feed::Bag { stream, ctx, .. } => match stream.next_msg(ctx) {
                Ok(Some(m)) => Ok(Some(QMsg {
                    time_ns: m.time.as_nanos(),
                    src: QMsgSrc::Stream(m),
                    decoded: None,
                })),
                Ok(None) => Ok(None),
                Err(e) => Err(QueryError::from(e)),
            },
            Feed::Records(it) => Ok(it.next().map(|r| QMsg {
                time_ns: r.time.as_nanos(),
                src: QMsgSrc::Record(r),
                decoded: None,
            })),
        }
    }

    fn virt_elapsed(&mut self) -> u64 {
        match self {
            Feed::Bag { stream, ctx, virt0 } => {
                stream.charge_into(ctx);
                ctx.elapsed_ns().saturating_sub(*virt0)
            }
            Feed::Records(_) => 0,
        }
    }
}

struct JoinState {
    left_topic: String,
    within: u64,
    left: VecDeque<MsgRef>,
    right: VecDeque<MsgRef>,
    pairs: VecDeque<(MsgRef, MsgRef)>,
}

impl JoinState {
    /// Admit one merged-stream message: evict expired partners, pair it
    /// with every surviving opposite-side message, buffer it. Pairs come
    /// out in merge order at the arrival of the later member — the
    /// oracle implements the identical procedure.
    fn push(&mut self, m: MsgRef) {
        let t = m.borrow().time_ns;
        let horizon = t.saturating_sub(self.within);
        while self.left.front().is_some_and(|x| x.borrow().time_ns < horizon) {
            self.left.pop_front();
        }
        while self.right.front().is_some_and(|x| x.borrow().time_ns < horizon) {
            self.right.pop_front();
        }
        let is_left = m.borrow().topic() == self.left_topic;
        if is_left {
            for r in &self.right {
                self.pairs.push_back((Rc::clone(&m), Rc::clone(r)));
            }
            self.left.push_back(m);
        } else {
            for l in &self.left {
                self.pairs.push_back((Rc::clone(l), Rc::clone(&m)));
            }
            self.right.push_back(m);
        }
    }
}

/// A running query: pull rows with [`Cursor::next_row`], then read
/// [`Cursor::stats`]. Aggregate plans buffer internally (they must see
/// all input before the first group row comes out); everything else
/// streams.
pub struct Cursor<'a, S: Storage> {
    plan: Logical,
    datatypes: HashMap<String, String>,
    feed: Feed<'a, S>,
    join: Option<JoinState>,
    /// Emit partial (distributed) aggregate rows instead of final values.
    partial: bool,
    sample_seen: u64,
    agged: Option<std::vec::IntoIter<Row>>,
    stats: ExecStats,
    decode0: u64,
    pool0: u64,
    started: std::time::Instant,
    done: bool,
}

impl<'a, S: Storage> Cursor<'a, S> {
    fn new(
        plan: Logical,
        datatypes: HashMap<String, String>,
        feed: Feed<'a, S>,
        partial: bool,
    ) -> QueryResult<Self> {
        if partial && plan.agg.is_none() {
            return Err(QueryError::plan("partial execution requires an aggregate query"));
        }
        let join = plan.join.as_ref().map(|j| JoinState {
            left_topic: j.left.clone(),
            within: j.within_ns,
            left: VecDeque::new(),
            right: VecDeque::new(),
            pairs: VecDeque::new(),
        });
        Ok(Cursor {
            plan,
            datatypes,
            feed,
            join,
            partial,
            sample_seen: 0,
            agged: None,
            stats: ExecStats::default(),
            decode0: bora_obs::counter("block.decode").get(),
            pool0: bora_obs::counter("pool.hit").get(),
            started: std::time::Instant::now(),
            done: false,
        })
    }

    /// Output column names (partial mode has its own shape).
    pub fn columns(&self) -> Vec<String> {
        if self.partial {
            partial_columns(&self.plan.agg.as_ref().unwrap().specs)
        } else {
            self.plan.columns.clone()
        }
    }

    /// Next row after filter/sample/aggregate/project/limit, or `None`.
    pub fn next_row(&mut self) -> QueryResult<Option<Row>> {
        if self.done {
            return Ok(None);
        }
        // LIMIT applies to final rows only; partial fragments ship
        // everything and the router limits after the merge.
        if !self.partial {
            if let Some(n) = self.plan.limit {
                if self.stats.rows_out >= n {
                    self.finish();
                    return Ok(None);
                }
            }
        }
        let row = if self.plan.agg.is_some() {
            if self.agged.is_none() {
                let rows = self.drain_aggregate()?;
                self.agged = Some(rows.into_iter());
            }
            self.agged.as_mut().unwrap().next()
        } else {
            self.next_match()?.map(|r| self.project(&r))
        };
        match row {
            Some(r) => {
                self.stats.rows_out += 1;
                Ok(Some(r))
            }
            None => {
                self.finish();
                Ok(None)
            }
        }
    }

    /// Drain everything; convenience for non-streaming callers.
    pub fn collect_rows(&mut self) -> QueryResult<Vec<Row>> {
        let mut out = Vec::new();
        while let Some(r) = self.next_row()? {
            out.push(r);
        }
        Ok(out)
    }

    /// Operator counters. Final once the cursor has returned `None`.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    fn finish(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        self.stats.virt_ns = self.feed.virt_elapsed();
        self.stats.block_decodes =
            bora_obs::counter("block.decode").get().saturating_sub(self.decode0);
        self.stats.pool_hits = bora_obs::counter("pool.hit").get().saturating_sub(self.pool0);
        self.stats.wall_us = self.started.elapsed().as_micros() as u64;
    }

    /// Rows surviving scan(+pushed filter) → join → filter → sample.
    fn next_match(&mut self) -> QueryResult<Option<InRow>> {
        loop {
            let candidate = if let Some(join) = &mut self.join {
                if let Some((l, r)) = join.pairs.pop_front() {
                    self.stats.joined += 1;
                    InRow::Pair(l, r)
                } else {
                    match self.feed.next()? {
                        None => return Ok(None),
                        Some(m) => {
                            self.stats.scanned += 1;
                            self.stats.scan_bytes += m.payload().len() as u64;
                            join.push(msg_ref(m));
                            continue;
                        }
                    }
                }
            } else {
                match self.feed.next()? {
                    None => return Ok(None),
                    Some(m) => {
                        self.stats.scanned += 1;
                        self.stats.scan_bytes += m.payload().len() as u64;
                        let m = msg_ref(m);
                        // Pushed predicate runs against the zero-copy
                        // payload, before any materialization.
                        if let Some(p) = &self.plan.scan.pushed_filter {
                            if !eval(p, &InRow::Single(Rc::clone(&m)), &self.datatypes).truthy() {
                                self.stats.pushed_dropped += 1;
                                continue;
                            }
                        }
                        InRow::Single(m)
                    }
                }
            };
            if let Some(f) = &self.plan.filter {
                if !eval(f, &candidate, &self.datatypes).truthy() {
                    self.stats.filtered_out += 1;
                    continue;
                }
            }
            if let Some(n) = self.plan.sample_every {
                let idx = self.sample_seen;
                self.sample_seen += 1;
                if !idx.is_multiple_of(n) {
                    self.stats.sampled_out += 1;
                    continue;
                }
            }
            return Ok(Some(candidate));
        }
    }

    fn project(&self, row: &InRow) -> Row {
        match &self.plan.items {
            PlanItems::Star => match row {
                InRow::Single(m) => {
                    let m = m.borrow();
                    vec![
                        Value::Float(ns_to_secs(m.time_ns)),
                        Value::Str(m.topic().to_owned()),
                        Value::Int(m.payload().len() as i64),
                    ]
                }
                // Unreachable: `SELECT *` with JOIN is a plan error.
                InRow::Pair(..) => Vec::new(),
            },
            PlanItems::Exprs(items) => {
                items.iter().map(|e| eval(e, row, &self.datatypes)).collect()
            }
            // Aggregate items never reach project().
            PlanItems::Aggs(_) => Vec::new(),
        }
    }

    fn drain_aggregate(&mut self) -> QueryResult<Vec<Row>> {
        let agg = self.plan.agg.clone().unwrap();
        let mut groups: BTreeMap<u64, Vec<AggState>> = BTreeMap::new();
        while let Some(row) = self.next_match()? {
            let key = match agg.window_ns {
                Some(w) => row.time_ns() / w.max(1),
                None => 0,
            };
            let states =
                groups.entry(key).or_insert_with(|| agg.specs.iter().map(AggState::new).collect());
            for (st, spec) in states.iter_mut().zip(&agg.specs) {
                let v = spec.arg.as_ref().map(|a| eval(a, &row, &self.datatypes));
                st.update(v);
            }
        }
        self.stats.groups = groups.len() as u64;
        let mut rows = Vec::with_capacity(groups.len());
        for (key, states) in &groups {
            if self.partial {
                let mut r: Row = vec![Value::Int(*key as i64)];
                for st in states {
                    st.encode_partial(&mut r);
                }
                rows.push(r);
            } else {
                rows.push(finalize_group(&self.plan, &agg, *key, states));
            }
        }
        Ok(rows)
    }
}

/// Project one finished group through the plan's aggregate items.
fn finalize_group(
    plan: &Logical,
    agg: &crate::plan::AggNode,
    key: u64,
    states: &[AggState],
) -> Row {
    let PlanItems::Aggs(items) = &plan.items else {
        return Vec::new();
    };
    items
        .iter()
        .map(|it| match it {
            AggItem::Window => Value::Float(ns_to_secs(key * agg.window_ns.unwrap_or(0))),
            AggItem::Agg(i) => states[*i].finalize(),
        })
        .collect()
}

/// Merge per-container partial aggregate rows (in the order given —
/// container order, which both the 1-node and N-node paths use) and
/// finalize through the plan's items, applying the plan's LIMIT.
pub fn merge_partials(plan: &Logical, partials: &[Vec<Row>]) -> QueryResult<Vec<Row>> {
    let agg = plan
        .agg
        .as_ref()
        .ok_or_else(|| QueryError::plan("merge_partials on a non-aggregate plan"))?;
    let mut groups: BTreeMap<u64, Vec<AggState>> = BTreeMap::new();
    for rows in partials {
        for row in rows {
            let key = match row.first() {
                Some(Value::Int(k)) if *k >= 0 => *k as u64,
                other => return Err(QueryError::wire(format!("bad partial window key {other:?}"))),
            };
            let states =
                groups.entry(key).or_insert_with(|| agg.specs.iter().map(AggState::new).collect());
            let mut i = 1usize;
            for st in states.iter_mut() {
                st.merge_partial(row, &mut i)?;
            }
            if i != row.len() {
                return Err(QueryError::wire("partial aggregate row has trailing cells"));
            }
        }
    }
    let mut out: Vec<Row> =
        groups.iter().map(|(key, states)| finalize_group(plan, agg, *key, states)).collect();
    if let Some(n) = plan.limit {
        out.truncate(n as usize);
    }
    Ok(out)
}

// ------------------------------------------------------------ prepare

/// A parsed, planned, optimized query ready to execute any number of
/// times against bags, snapshots, or shipped records.
#[derive(Debug, Clone)]
pub struct Prepared {
    pub sql: String,
    pub query: Query,
    pub plan: Logical,
}

/// Parse + plan + optimize with default options (pushdown on).
pub fn prepare(sql: &str) -> QueryResult<Prepared> {
    prepare_with(sql, &PlanOptions::default())
}

/// Parse + plan + optimize with explicit options.
pub fn prepare_with(sql: &str, opts: &PlanOptions) -> QueryResult<Prepared> {
    let query = crate::parser::parse(sql)?;
    let plan = optimize(Logical::from_stmt(&query.stmt)?, opts);
    Ok(Prepared { sql: sql.to_owned(), query, plan })
}

impl Prepared {
    pub fn explain_mode(&self) -> ExplainMode {
        self.query.explain
    }

    /// Open a cursor over a container. The optimizer's time range and
    /// topic pruning feed straight into the stream's coarse-time-index
    /// candidate selection; FROM topics absent from the container are
    /// skipped (a fleet query runs over heterogeneous bags).
    pub fn cursor_bag<'a, S: Storage>(
        &self,
        bag: &'a BoraBag<S>,
        partial: bool,
        ctx: &'a mut IoCtx,
    ) -> QueryResult<Cursor<'a, S>> {
        let datatypes: HashMap<String, String> =
            bag.meta().topics.iter().map(|t| (t.topic.clone(), t.datatype.clone())).collect();
        let present: Vec<&str> = self
            .plan
            .scan
            .topics
            .iter()
            .map(String::as_str)
            .filter(|t| datatypes.contains_key(*t))
            .collect();
        let range = self.plan.scan.range.map(|(lo, hi)| {
            (Time::from_nanos(lo.min(MAX_TIME_NS)), Time::from_nanos(hi.min(MAX_TIME_NS)))
        });
        let virt0 = ctx.elapsed_ns();
        let stream = bag
            .stream_topics_with_tails(&present, Vec::new(), range, StreamOptions::default(), ctx)
            .map_err(QueryError::from)?;
        Cursor::new(self.plan.clone(), datatypes, Feed::Bag { stream, ctx, virt0 }, partial)
    }

    /// Open a cursor over pre-merged records (ingest snapshot reads,
    /// or the oracle's input). Records must already be in merge order.
    pub fn cursor_records(
        &self,
        records: Vec<MessageRecord>,
        datatypes: HashMap<String, String>,
        partial: bool,
    ) -> QueryResult<Cursor<'static, MemStorage>> {
        let wanted = &self.plan.scan.topics;
        let filtered: Vec<MessageRecord> = records
            .into_iter()
            .filter(|r| wanted.contains(&r.topic))
            .filter(|r| match self.plan.scan.range {
                Some((lo, hi)) => {
                    let t = r.time.as_nanos();
                    t >= lo && t < hi
                }
                None => true,
            })
            .collect();
        Cursor::new(self.plan.clone(), datatypes, Feed::Records(filtered.into_iter()), partial)
    }
}

// ------------------------------------------------------------- oracle

/// Reference interpreter: executes the *statement* directly over a
/// record list with no planner, optimizer, or streaming involved. The
/// property tests assert `plan(bag) == naive(records)` for random
/// queries; divergence means the clever path broke.
pub fn run_naive(
    stmt: &SelectStmt,
    records: &[MessageRecord],
    datatypes: &HashMap<String, String>,
) -> QueryResult<(Vec<String>, Vec<Row>)> {
    // Reuse the planner for validation + column names only.
    let plan = Logical::from_stmt(stmt)?;
    let topics = &plan.scan.topics;

    // 1. Select relevant topics, preserving caller order.
    let mut rows: Vec<InRow> = Vec::new();
    match &plan.join {
        None => {
            for r in records {
                if topics.contains(&r.topic) {
                    rows.push(InRow::Single(msg_ref(QMsg {
                        time_ns: r.time.as_nanos(),
                        src: QMsgSrc::Record(r.clone()),
                        decoded: None,
                    })));
                }
            }
        }
        Some(j) => {
            let mut js = JoinState {
                left_topic: j.left.clone(),
                within: j.within_ns,
                left: VecDeque::new(),
                right: VecDeque::new(),
                pairs: VecDeque::new(),
            };
            for r in records {
                if r.topic == j.left || r.topic == j.right {
                    js.push(msg_ref(QMsg {
                        time_ns: r.time.as_nanos(),
                        src: QMsgSrc::Record(r.clone()),
                        decoded: None,
                    }));
                }
            }
            rows.extend(js.pairs.into_iter().map(|(l, r)| InRow::Pair(l, r)));
        }
    }

    // 2. WHERE.
    if let Some(f) = &stmt.where_expr {
        rows.retain(|r| eval(f, r, datatypes).truthy());
    }

    // 3. SAMPLE EVERY n.
    if let Some(n) = stmt.sample_every {
        let mut i = 0u64;
        rows.retain(|_| {
            let keep = i.is_multiple_of(n);
            i += 1;
            keep
        });
    }

    // 4. Aggregate or project.
    let mut out: Vec<Row> = match (&plan.agg, &plan.items) {
        (Some(agg), PlanItems::Aggs(_)) => {
            let mut groups: BTreeMap<u64, Vec<AggState>> = BTreeMap::new();
            for r in &rows {
                let key = match agg.window_ns {
                    Some(w) => r.time_ns() / w.max(1),
                    None => 0,
                };
                let states = groups
                    .entry(key)
                    .or_insert_with(|| agg.specs.iter().map(AggState::new).collect());
                for (st, spec) in states.iter_mut().zip(&agg.specs) {
                    st.update(spec.arg.as_ref().map(|a| eval(a, r, datatypes)));
                }
            }
            groups.iter().map(|(key, states)| finalize_group(&plan, agg, *key, states)).collect()
        }
        _ => rows
            .iter()
            .map(|r| match &plan.items {
                PlanItems::Star => match r {
                    InRow::Single(m) => {
                        let m = m.borrow();
                        vec![
                            Value::Float(ns_to_secs(m.time_ns)),
                            Value::Str(m.topic().to_owned()),
                            Value::Int(m.payload().len() as i64),
                        ]
                    }
                    InRow::Pair(..) => Vec::new(),
                },
                PlanItems::Exprs(items) => items.iter().map(|e| eval(e, r, datatypes)).collect(),
                PlanItems::Aggs(_) => Vec::new(),
            })
            .collect(),
    };

    // 5. LIMIT.
    if let Some(n) = stmt.limit {
        out.truncate(n as usize);
    }
    Ok((plan.columns, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ros_msgs::sensor_msgs::Imu;
    use ros_msgs::RosMessage;

    fn imu_records(n: u32) -> (Vec<MessageRecord>, HashMap<String, String>) {
        let mut recs = Vec::new();
        for i in 0..n {
            let mut imu = Imu::default();
            imu.header.stamp = Time::new(i, 0);
            imu.angular_velocity.x = i as f64 * 0.1;
            recs.push(MessageRecord {
                conn_id: 0,
                topic: "/imu".into(),
                time: Time::new(i, 0),
                data: imu.to_bytes(),
            });
        }
        let dts = HashMap::from([("/imu".to_owned(), Imu::DATATYPE.to_owned())]);
        (recs, dts)
    }

    fn run(sql: &str, recs: &[MessageRecord], dts: &HashMap<String, String>) -> Vec<Row> {
        let p = prepare(sql).unwrap();
        let mut c = p.cursor_records(recs.to_vec(), dts.clone(), false).unwrap();
        c.collect_rows().unwrap()
    }

    #[test]
    fn filter_project_limit() {
        let (recs, dts) = imu_records(20);
        let rows = run(
            "SELECT time, angular_velocity.x FROM '/imu' WHERE angular_velocity.x > 0.95 LIMIT 3",
            &recs,
            &dts,
        );
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0][0], Value::Float(10.0));
    }

    #[test]
    fn windowed_aggregate() {
        let (recs, dts) = imu_records(10);
        let rows = run(
            "SELECT window, count(), mean(angular_velocity.x) FROM '/imu' WINDOW 5s",
            &recs,
            &dts,
        );
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], vec![Value::Float(0.0), Value::Int(5), Value::Float(0.2)]);
        assert_eq!(rows[1][1], Value::Int(5));
    }

    #[test]
    fn sample_every() {
        let (recs, dts) = imu_records(10);
        let rows = run("SELECT time FROM '/imu' SAMPLE EVERY 3", &recs, &dts);
        assert_eq!(rows.len(), 4); // indices 0, 3, 6, 9
    }

    #[test]
    fn naive_matches_cursor() {
        let (recs, dts) = imu_records(30);
        for sql in [
            "SELECT * FROM '/imu' WHERE time >= 5.0 AND time < 25.0",
            "SELECT count(), min(angular_velocity.x), max(angular_velocity.x) FROM '/imu'",
            "SELECT window, mean(size) FROM '/imu' WHERE time > 3.0 WINDOW 7s LIMIT 2",
            "SELECT topic, size FROM '/imu' SAMPLE EVERY 4 LIMIT 5",
        ] {
            let fast = run(sql, &recs, &dts);
            let q = crate::parser::parse(sql).unwrap();
            let (_, slow) = run_naive(&q.stmt, &recs, &dts).unwrap();
            assert_eq!(fast, slow, "{sql}");
        }
    }

    #[test]
    fn partials_merge_to_single_node_answer() {
        let (recs, dts) = imu_records(20);
        let sql = "SELECT window, count(), mean(angular_velocity.x) FROM '/imu' WINDOW 4s";
        let p = prepare(sql).unwrap();
        let whole =
            p.cursor_records(recs.clone(), dts.clone(), false).unwrap().collect_rows().unwrap();
        // Split into two "containers" and merge their partials.
        let (a, b) = recs.split_at(11);
        let pa = p.cursor_records(a.to_vec(), dts.clone(), true).unwrap().collect_rows().unwrap();
        let pb = p.cursor_records(b.to_vec(), dts.clone(), true).unwrap().collect_rows().unwrap();
        let merged = merge_partials(&p.plan, &[pa, pb]).unwrap();
        assert_eq!(whole, merged);
    }

    #[test]
    fn join_pairs_within_window() {
        let mut recs = Vec::new();
        for i in 0..5u32 {
            let mut imu = Imu::default();
            imu.header.stamp = Time::new(i, 0);
            recs.push(MessageRecord {
                conn_id: 0,
                topic: "/a".into(),
                time: Time::new(i, 0),
                data: imu.to_bytes(),
            });
            recs.push(MessageRecord {
                conn_id: 1,
                topic: "/b".into(),
                time: Time::new(i, 500_000_000),
                data: imu.to_bytes(),
            });
        }
        let dts = HashMap::from([
            ("/a".to_owned(), Imu::DATATYPE.to_owned()),
            ("/b".to_owned(), Imu::DATATYPE.to_owned()),
        ]);
        let sql = "SELECT left.time, right.time FROM '/a' JOIN '/b' WITHIN 600ms";
        let rows = run(sql, &recs, &dts);
        // Each /b at i.5 pairs with /a at i (0.5s gap) and /a at i+1
        // (0.5s gap): 5 + 4 = 9 pairs.
        assert_eq!(rows.len(), 9);
        let q = crate::parser::parse(sql).unwrap();
        let (_, slow) = run_naive(&q.stmt, &recs, &dts).unwrap();
        assert_eq!(rows, slow);
    }
}
