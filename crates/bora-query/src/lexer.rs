//! Hand-written tokenizer.
//!
//! Tokens carry their byte offset so every downstream error can point
//! into the original text. Keywords are recognized case-insensitively at
//! the parser level (the lexer only distinguishes token *shapes*).
//! Duration literals are lexed as one token: a number immediately
//! followed by a unit (`10ms`, `0.5s`) becomes [`Tok::Dur`] holding
//! nanoseconds.

use crate::error::{QueryError, QueryResult};

#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Bare identifier (field path segment or keyword).
    Ident(String),
    /// Single-quoted string literal (topic names live here).
    Str(String),
    Int(i64),
    Float(f64),
    /// Duration literal, in nanoseconds.
    Dur(u64),
    Comma,
    Dot,
    LParen,
    RParen,
    Star,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Eof,
}

impl Tok {
    /// Human name for error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier `{s}`"),
            Tok::Str(s) => format!("string '{s}'"),
            Tok::Int(v) => format!("number `{v}`"),
            Tok::Float(v) => format!("number `{v}`"),
            Tok::Dur(ns) => format!("duration `{ns}ns`"),
            Tok::Comma => "`,`".into(),
            Tok::Dot => "`.`".into(),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::Star => "`*`".into(),
            Tok::Eq => "`=`".into(),
            Tok::Ne => "`!=`".into(),
            Tok::Lt => "`<`".into(),
            Tok::Le => "`<=`".into(),
            Tok::Gt => "`>`".into(),
            Tok::Ge => "`>=`".into(),
            Tok::Eof => "end of query".into(),
        }
    }
}

/// A token plus the byte offset it starts at.
#[derive(Debug, Clone)]
pub struct Spanned {
    pub tok: Tok,
    pub pos: usize,
}

/// Tokenize the whole input. Errors carry the byte they stopped at.
pub fn lex(sql: &str) -> QueryResult<Vec<Spanned>> {
    let b = sql.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b',' => {
                out.push(Spanned { tok: Tok::Comma, pos: i });
                i += 1;
            }
            b'.' => {
                out.push(Spanned { tok: Tok::Dot, pos: i });
                i += 1;
            }
            b'(' => {
                out.push(Spanned { tok: Tok::LParen, pos: i });
                i += 1;
            }
            b')' => {
                out.push(Spanned { tok: Tok::RParen, pos: i });
                i += 1;
            }
            b'*' => {
                out.push(Spanned { tok: Tok::Star, pos: i });
                i += 1;
            }
            b'=' => {
                out.push(Spanned { tok: Tok::Eq, pos: i });
                i += 1;
            }
            b'!' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Spanned { tok: Tok::Ne, pos: i });
                    i += 2;
                } else {
                    return Err(QueryError::lex(i, "`!` is only valid as `!=`"));
                }
            }
            b'<' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Spanned { tok: Tok::Le, pos: i });
                    i += 2;
                } else {
                    out.push(Spanned { tok: Tok::Lt, pos: i });
                    i += 1;
                }
            }
            b'>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Spanned { tok: Tok::Ge, pos: i });
                    i += 2;
                } else {
                    out.push(Spanned { tok: Tok::Gt, pos: i });
                    i += 1;
                }
            }
            b'\'' => {
                let start = i;
                i += 1;
                let lit_start = i;
                while i < b.len() && b[i] != b'\'' {
                    i += 1;
                }
                if i >= b.len() {
                    return Err(QueryError::lex(start, "unterminated string literal"));
                }
                let s = std::str::from_utf8(&b[lit_start..i])
                    .map_err(|_| QueryError::lex(start, "non-UTF8 string literal"))?;
                out.push(Spanned { tok: Tok::Str(s.to_owned()), pos: start });
                i += 1;
            }
            b'0'..=b'9' => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < b.len() && b[i] == b'.' && b.get(i + 1).is_some_and(u8::is_ascii_digit) {
                    is_float = true;
                    i += 1;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let num = &sql[start..i];
                // A unit glued to the number makes it a duration.
                let unit_start = i;
                while i < b.len() && b[i].is_ascii_alphabetic() {
                    i += 1;
                }
                if i > unit_start {
                    let unit = &sql[unit_start..i];
                    let scale: f64 = match unit {
                        "ns" => 1.0,
                        "us" => 1e3,
                        "ms" => 1e6,
                        "s" => 1e9,
                        _ => {
                            return Err(QueryError::lex(
                                unit_start,
                                format!("unknown duration unit `{unit}` (use ns, us, ms, or s)"),
                            ))
                        }
                    };
                    let v: f64 = num
                        .parse()
                        .map_err(|_| QueryError::lex(start, format!("bad number `{num}`")))?;
                    let ns = v * scale;
                    if !ns.is_finite() || ns < 0.0 || ns > u64::MAX as f64 {
                        return Err(QueryError::lex(start, "duration out of range"));
                    }
                    out.push(Spanned { tok: Tok::Dur(ns.round() as u64), pos: start });
                } else if is_float {
                    let v: f64 = num
                        .parse()
                        .map_err(|_| QueryError::lex(start, format!("bad number `{num}`")))?;
                    out.push(Spanned { tok: Tok::Float(v), pos: start });
                } else {
                    let v: i64 = num.parse().map_err(|_| {
                        QueryError::lex(start, format!("integer `{num}` out of range"))
                    })?;
                    out.push(Spanned { tok: Tok::Int(v), pos: start });
                }
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Spanned { tok: Tok::Ident(sql[start..i].to_owned()), pos: start });
            }
            other => {
                return Err(QueryError::lex(
                    i,
                    format!(
                        "unexpected byte {:#04x} ({})",
                        other,
                        char::from(other).escape_debug()
                    ),
                ));
            }
        }
    }
    out.push(Spanned { tok: Tok::Eof, pos: sql.len() });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(sql: &str) -> Vec<Tok> {
        lex(sql).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("SELECT a.b, * FROM '/imu' WHERE x >= 1.5"),
            vec![
                Tok::Ident("SELECT".into()),
                Tok::Ident("a".into()),
                Tok::Dot,
                Tok::Ident("b".into()),
                Tok::Comma,
                Tok::Star,
                Tok::Ident("FROM".into()),
                Tok::Str("/imu".into()),
                Tok::Ident("WHERE".into()),
                Tok::Ident("x".into()),
                Tok::Ge,
                Tok::Float(1.5),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn durations() {
        assert_eq!(toks("10ms")[0], Tok::Dur(10_000_000));
        assert_eq!(toks("1s")[0], Tok::Dur(1_000_000_000));
        assert_eq!(toks("0.5s")[0], Tok::Dur(500_000_000));
        assert_eq!(toks("250ns")[0], Tok::Dur(250));
        assert_eq!(toks("3us")[0], Tok::Dur(3_000));
    }

    #[test]
    fn errors_have_positions() {
        let e = lex("SELECT 'oops").unwrap_err();
        assert_eq!(e.pos(), Some(7));
        let e = lex("a # b").unwrap_err();
        assert_eq!(e.pos(), Some(2));
        let e = lex("WINDOW 5weeks").unwrap_err();
        assert_eq!(e.pos(), Some(8));
        let e = lex("x ! 3").unwrap_err();
        assert_eq!(e.pos(), Some(2));
    }

    #[test]
    fn huge_integer_is_an_error_not_a_panic() {
        assert!(lex("99999999999999999999999999").is_err());
    }
}
