//! Distributed query fragments.
//!
//! Distributed execution is **per container**: every per-row stage
//! (scan, join, filter, sample) runs on the node that owns the
//! container, and only the final stage differs by query shape:
//!
//! * **Aggregate queries** ship a *partial-aggregate fragment* — the
//!   statement minus LIMIT, executed in partial mode so each node
//!   returns flattened per-window states (`count`, `min`, `max`,
//!   `(sum, n)`), which the router merges in container order and
//!   finalizes ([`crate::exec::merge_partials`]). The same merge runs
//!   whether one node owns every container or three do, so the result
//!   bytes are identical either way.
//! * **Everything else** ships the statement as-is (per-container LIMIT
//!   kept — each node returns at most `n` rows) and the router
//!   concatenates results in container order, re-applying LIMIT.
//!
//! A fragment is just canonical SQL — the AST's `Display` — so the wire
//! protocol needs no second query encoding.

use crate::ast::{ExplainMode, Expr, Item, Items, Query, Side};

/// The statement a node executes in partial-aggregate mode: original
/// query minus EXPLAIN and LIMIT (the router limits after the merge).
pub fn partial_fragment(q: &Query) -> String {
    let mut stmt = q.stmt.clone();
    stmt.limit = None;
    Query { explain: ExplainMode::None, stmt }.to_string()
}

/// The statement a node executes when rows are shipped whole: original
/// query minus EXPLAIN (per-container LIMIT stays as a row-count cap).
pub fn rowship_query(q: &Query) -> String {
    Query { explain: ExplainMode::None, stmt: q.stmt.clone() }.to_string()
}

/// The row-shipping *baseline* for an aggregate query: select the raw
/// inputs the aggregation would consume (`time` plus every aggregate
/// argument) and move them to the router instead of partial states. The
/// `ext_query` experiment runs both and compares wire bytes.
pub fn rowship_fragment(q: &Query) -> String {
    let mut stmt = q.stmt.clone();
    stmt.limit = None;
    stmt.window_ns = None;
    let mut items: Vec<Item> = vec![Item {
        expr: Expr::Path { side: Side::None, parts: vec!["time".into()], pos: 0 },
        alias: None,
    }];
    if let Items::List(list) = &q.stmt.items {
        for it in list {
            if let Expr::Agg { arg: Some(a), .. } = &it.expr {
                items.push(Item { expr: (**a).clone(), alias: None });
            }
        }
    }
    stmt.items = Items::List(items);
    Query { explain: ExplainMode::None, stmt }.to_string()
}

#[cfg(test)]
mod tests {
    use crate::parser::parse;

    #[test]
    fn partial_fragment_strips_limit_and_explain() {
        let q = parse(
            "EXPLAIN ANALYZE SELECT window, count() FROM '/imu' \
             WHERE time < 9.0 WINDOW 1s LIMIT 3",
        )
        .unwrap();
        let f = super::partial_fragment(&q);
        assert!(!f.contains("LIMIT") && !f.contains("EXPLAIN"), "{f}");
        assert!(f.contains("WINDOW 1s") && f.contains("WHERE time < 9.0"), "{f}");
        // Fragments must re-parse — they travel as SQL.
        parse(&f).unwrap();
    }

    #[test]
    fn rowship_fragment_selects_aggregate_inputs() {
        let q =
            parse("SELECT window, count(), mean(angular_velocity.x) FROM '/imu' WINDOW 1s LIMIT 2")
                .unwrap();
        let f = super::rowship_fragment(&q);
        assert_eq!(f, "SELECT time, angular_velocity.x FROM '/imu'");
        parse(&f).unwrap();
    }
}
