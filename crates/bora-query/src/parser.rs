//! Recursive-descent parser.
//!
//! Grammar (keywords case-insensitive; clauses in fixed order):
//!
//! ```text
//! query    := [EXPLAIN [ANALYZE]] select EOF
//! select   := SELECT items FROM source [WHERE or] [SAMPLE EVERY int]
//!             [WINDOW dur] [LIMIT int]
//! items    := '*' | item (',' item)*
//! item     := expr [AS ident]
//! source   := str (JOIN str WITHIN dur | (',' str)*)
//! or       := and (OR and)*
//! and      := not (AND not)*
//! not      := NOT not | cmp
//! cmp      := primary [cmpop primary]
//! primary  := '(' or ')' | literal | agg '(' [expr] ')' | path
//! path     := [left.|right.] ident ('.' ident)*
//! literal  := int | float | dur | str | TRUE | FALSE | NULL
//! ```
//!
//! Every rejection is a typed [`QueryError`] with the byte offset of the
//! offending token — never a panic (the robustness suite feeds this
//! function truncations and garbage).

use crate::ast::{AggFunc, ExplainMode, Expr, Item, Items, JoinSpec, Query, SelectStmt, Side};
use crate::error::{QueryError, QueryResult};
use crate::lexer::{lex, Spanned, Tok};
use crate::value::{CmpOp, Value};

/// Clause keywords may not start a field path — without this,
/// `SELECT FROM '/x'` would parse `FROM` as a field named "from" and the
/// error would land on the wrong token. `window` is deliberately *not*
/// reserved: it is the builtin that names a window's start time.
fn is_reserved(word: &str) -> bool {
    [
        "select", "from", "where", "and", "or", "not", "as", "sample", "every", "limit", "join",
        "within", "explain", "analyze",
    ]
    .iter()
    .any(|k| word.eq_ignore_ascii_case(k))
}

/// Parse one query (with optional EXPLAIN prefix).
pub fn parse(sql: &str) -> QueryResult<Query> {
    let toks = lex(sql)?;
    let mut p = Parser { toks, at: 0 };
    let explain = if p.eat_kw("EXPLAIN") {
        if p.eat_kw("ANALYZE") {
            ExplainMode::Analyze
        } else {
            ExplainMode::Plan
        }
    } else {
        ExplainMode::None
    };
    let stmt = p.select()?;
    p.expect_eof()?;
    Ok(Query { explain, stmt })
}

struct Parser {
    toks: Vec<Spanned>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> &Spanned {
        &self.toks[self.at.min(self.toks.len() - 1)]
    }

    fn bump(&mut self) -> Spanned {
        let t = self.peek().clone();
        if self.at < self.toks.len() - 1 {
            self.at += 1;
        }
        t
    }

    /// Is the current token the given keyword (case-insensitive)?
    fn is_kw(&self, kw: &str) -> bool {
        matches!(&self.peek().tok, Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> QueryResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            let t = self.peek();
            Err(QueryError::parse(t.pos, format!("expected {kw}, found {}", t.tok.describe())))
        }
    }

    fn expect_tok(&mut self, want: Tok, what: &str) -> QueryResult<()> {
        if self.peek().tok == want {
            self.bump();
            Ok(())
        } else {
            let t = self.peek();
            Err(QueryError::parse(t.pos, format!("expected {what}, found {}", t.tok.describe())))
        }
    }

    fn expect_eof(&mut self) -> QueryResult<()> {
        let t = self.peek();
        if t.tok == Tok::Eof {
            Ok(())
        } else {
            Err(QueryError::parse(
                t.pos,
                format!("unexpected {} after end of query", t.tok.describe()),
            ))
        }
    }

    fn string(&mut self, what: &str) -> QueryResult<String> {
        let t = self.bump();
        match t.tok {
            Tok::Str(s) => Ok(s),
            other => Err(QueryError::parse(
                t.pos,
                format!("expected {what} (a quoted string), found {}", other.describe()),
            )),
        }
    }

    fn positive_int(&mut self, what: &str) -> QueryResult<u64> {
        let t = self.bump();
        match t.tok {
            Tok::Int(v) if v > 0 => Ok(v as u64),
            Tok::Int(v) => {
                Err(QueryError::parse(t.pos, format!("{what} must be positive, got {v}")))
            }
            other => Err(QueryError::parse(
                t.pos,
                format!("expected {what}, found {}", other.describe()),
            )),
        }
    }

    fn duration(&mut self, what: &str) -> QueryResult<u64> {
        let t = self.bump();
        match t.tok {
            Tok::Dur(ns) if ns > 0 => Ok(ns),
            Tok::Dur(_) => Err(QueryError::parse(t.pos, format!("{what} must be > 0"))),
            other => Err(QueryError::parse(
                t.pos,
                format!("expected {what} (e.g. 500ms, 1s), found {}", other.describe()),
            )),
        }
    }

    fn select(&mut self) -> QueryResult<SelectStmt> {
        self.expect_kw("SELECT")?;
        let items = if self.peek().tok == Tok::Star {
            self.bump();
            Items::Star
        } else {
            let mut list = vec![self.item()?];
            while self.peek().tok == Tok::Comma {
                self.bump();
                list.push(self.item()?);
            }
            Items::List(list)
        };
        self.expect_kw("FROM")?;
        let first = self.string("a topic")?;
        let mut from = vec![first];
        let mut join = None;
        if self.is_kw("JOIN") {
            self.bump();
            let topic = self.string("a topic to join")?;
            self.expect_kw("WITHIN")?;
            let within_ns = self.duration("a join window")?;
            join = Some(JoinSpec { topic, within_ns });
        } else {
            while self.peek().tok == Tok::Comma {
                self.bump();
                from.push(self.string("a topic")?);
            }
        }
        let where_expr = if self.eat_kw("WHERE") { Some(self.or()?) } else { None };
        let sample_every = if self.is_kw("SAMPLE") {
            self.bump();
            self.expect_kw("EVERY")?;
            Some(self.positive_int("a sample stride")?)
        } else {
            None
        };
        let window_ns =
            if self.eat_kw("WINDOW") { Some(self.duration("a window size")?) } else { None };
        let limit = if self.eat_kw("LIMIT") {
            let t = self.bump();
            match t.tok {
                Tok::Int(v) if v >= 0 => Some(v as u64),
                Tok::Int(v) => {
                    return Err(QueryError::parse(t.pos, format!("LIMIT must be >= 0, got {v}")))
                }
                other => {
                    return Err(QueryError::parse(
                        t.pos,
                        format!("expected a row count after LIMIT, found {}", other.describe()),
                    ))
                }
            }
        } else {
            None
        };
        Ok(SelectStmt { items, from, join, where_expr, sample_every, window_ns, limit })
    }

    fn item(&mut self) -> QueryResult<Item> {
        let expr = self.or()?;
        let alias = if self.eat_kw("AS") {
            let t = self.bump();
            match t.tok {
                Tok::Ident(s) => Some(s),
                other => {
                    return Err(QueryError::parse(
                        t.pos,
                        format!("expected an alias after AS, found {}", other.describe()),
                    ))
                }
            }
        } else {
            None
        };
        Ok(Item { expr, alias })
    }

    fn or(&mut self) -> QueryResult<Expr> {
        let mut lhs = self.and()?;
        while self.is_kw("OR") {
            self.bump();
            let rhs = self.and()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and(&mut self) -> QueryResult<Expr> {
        let mut lhs = self.not()?;
        while self.is_kw("AND") {
            self.bump();
            let rhs = self.not()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not(&mut self) -> QueryResult<Expr> {
        if self.is_kw("NOT") {
            self.bump();
            let inner = self.not()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.cmp()
    }

    fn cmp(&mut self) -> QueryResult<Expr> {
        let lhs = self.primary()?;
        let op = match self.peek().tok {
            Tok::Eq => Some(CmpOp::Eq),
            Tok::Ne => Some(CmpOp::Ne),
            Tok::Lt => Some(CmpOp::Lt),
            Tok::Le => Some(CmpOp::Le),
            Tok::Gt => Some(CmpOp::Gt),
            Tok::Ge => Some(CmpOp::Ge),
            _ => None,
        };
        match op {
            None => Ok(lhs),
            Some(op) => {
                self.bump();
                let rhs = self.primary()?;
                Ok(Expr::Cmp { op, lhs: Box::new(lhs), rhs: Box::new(rhs) })
            }
        }
    }

    fn primary(&mut self) -> QueryResult<Expr> {
        let t = self.peek().clone();
        match t.tok {
            Tok::LParen => {
                self.bump();
                let e = self.or()?;
                self.expect_tok(Tok::RParen, "`)`")?;
                Ok(e)
            }
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Lit(Value::Int(v)))
            }
            Tok::Float(v) => {
                self.bump();
                Ok(Expr::Lit(Value::Float(v)))
            }
            // A bare duration in an expression is its seconds value —
            // `WHERE time < 10s` reads naturally.
            Tok::Dur(ns) => {
                self.bump();
                Ok(Expr::Lit(Value::Float(ns as f64 * 1e-9)))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Lit(Value::Str(s)))
            }
            Tok::Ident(word) => {
                if is_reserved(&word) {
                    return Err(QueryError::parse(
                        t.pos,
                        format!("expected an expression, found keyword `{word}`"),
                    ));
                }
                if word.eq_ignore_ascii_case("true") {
                    self.bump();
                    return Ok(Expr::Lit(Value::Bool(true)));
                }
                if word.eq_ignore_ascii_case("false") {
                    self.bump();
                    return Ok(Expr::Lit(Value::Bool(false)));
                }
                if word.eq_ignore_ascii_case("null") {
                    self.bump();
                    return Ok(Expr::Lit(Value::Null));
                }
                let agg = [
                    ("count", AggFunc::Count),
                    ("min", AggFunc::Min),
                    ("max", AggFunc::Max),
                    ("mean", AggFunc::Mean),
                ]
                .iter()
                .find(|(n, _)| word.eq_ignore_ascii_case(n))
                .map(|&(_, f)| f);
                // Aggregate call only when a `(` follows; a bare `count`
                // stays a field path.
                if let Some(func) = agg {
                    if self.toks.get(self.at + 1).map(|s| &s.tok) == Some(&Tok::LParen) {
                        self.bump();
                        self.bump();
                        let arg = if self.peek().tok == Tok::RParen || self.peek().tok == Tok::Star
                        {
                            if self.peek().tok == Tok::Star {
                                self.bump(); // count(*) == count()
                            }
                            None
                        } else {
                            Some(Box::new(self.or()?))
                        };
                        self.expect_tok(Tok::RParen, "`)`")?;
                        if func == AggFunc::Count || arg.is_some() {
                            return Ok(Expr::Agg { func, arg, pos: t.pos });
                        }
                        return Err(QueryError::parse(
                            t.pos,
                            format!("{}() needs an argument", func.name()),
                        ));
                    }
                }
                self.path(t.pos)
            }
            other => Err(QueryError::parse(
                t.pos,
                format!("expected an expression, found {}", other.describe()),
            )),
        }
    }

    fn path(&mut self, pos: usize) -> QueryResult<Expr> {
        let mut parts = Vec::new();
        loop {
            let t = self.bump();
            match t.tok {
                Tok::Ident(s) if !is_reserved(&s) => parts.push(s),
                other => {
                    return Err(QueryError::parse(
                        t.pos,
                        format!("expected a field name, found {}", other.describe()),
                    ))
                }
            }
            if self.peek().tok == Tok::Dot {
                self.bump();
            } else {
                break;
            }
        }
        let side = match parts[0].to_ascii_lowercase().as_str() {
            "left" if parts.len() > 1 => {
                parts.remove(0);
                Side::Left
            }
            "right" if parts.len() > 1 => {
                parts.remove(0);
                Side::Right
            }
            _ => Side::None,
        };
        Ok(Expr::Path { side, parts, pos })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(sql: &str) {
        // Canonical form must be a fixed point of parse∘render. (AST
        // equality would be too strict: token positions shift when the
        // rendering differs from the input by a byte.)
        let rendered = parse(sql).unwrap().to_string();
        let again = parse(&rendered).unwrap().to_string();
        assert_eq!(rendered, again, "canonical form must re-render identically");
    }

    #[test]
    fn parses_the_basics() {
        let q = parse("SELECT time, angular_velocity.x FROM '/imu' WHERE time >= 2.5 LIMIT 10")
            .unwrap();
        assert_eq!(q.explain, ExplainMode::None);
        assert_eq!(q.stmt.from, vec!["/imu".to_string()]);
        assert_eq!(q.stmt.limit, Some(10));
        let Items::List(items) = &q.stmt.items else { panic!() };
        assert_eq!(items.len(), 2);
    }

    #[test]
    fn parses_explain_variants() {
        assert_eq!(parse("EXPLAIN SELECT * FROM '/a'").unwrap().explain, ExplainMode::Plan);
        assert_eq!(
            parse("explain analyze select * from '/a'").unwrap().explain,
            ExplainMode::Analyze
        );
    }

    #[test]
    fn parses_join_window_sample() {
        let q = parse(
            "SELECT left.time, right.time FROM '/cam' JOIN '/det' WITHIN 50ms \
             WHERE left.time < 9.0 SAMPLE EVERY 3 LIMIT 7",
        )
        .unwrap();
        let j = q.stmt.join.unwrap();
        assert_eq!(j.topic, "/det");
        assert_eq!(j.within_ns, 50_000_000);
        assert_eq!(q.stmt.sample_every, Some(3));
    }

    #[test]
    fn parses_aggregates() {
        let q = parse("SELECT window, count(), mean(angular_velocity.x) FROM '/imu' WINDOW 1s")
            .unwrap();
        assert_eq!(q.stmt.window_ns, Some(1_000_000_000));
        let Items::List(items) = &q.stmt.items else { panic!() };
        assert!(matches!(items[1].expr, Expr::Agg { func: AggFunc::Count, .. }));
        // count(*) is count()
        let q2 = parse("SELECT count(*) FROM '/imu'").unwrap();
        let Items::List(items) = &q2.stmt.items else { panic!() };
        assert!(matches!(items[0].expr, Expr::Agg { func: AggFunc::Count, arg: None, .. }));
    }

    #[test]
    fn canonical_form_roundtrips() {
        roundtrip("SELECT * FROM '/imu'");
        roundtrip("SELECT time AS t, topic FROM '/a', '/b' WHERE size > 100 AND time < 5.0");
        roundtrip("SELECT left.time FROM '/cam' JOIN '/det' WITHIN 50ms");
        roundtrip("SELECT window, count(), min(size), mean(size) FROM '/x' WINDOW 2s LIMIT 3");
        roundtrip("SELECT time FROM '/i' WHERE NOT (topic = '/i' OR size <= 8) SAMPLE EVERY 2");
    }

    #[test]
    fn bare_agg_names_are_paths() {
        // `count` without parens is a field named count.
        let q = parse("SELECT count FROM '/x'").unwrap();
        let Items::List(items) = &q.stmt.items else { panic!() };
        assert!(matches!(&items[0].expr, Expr::Path { parts, .. } if parts[0] == "count"));
    }

    #[test]
    fn error_positions_land_on_the_offending_token() {
        let e = parse("SELECT time FRM '/imu'").unwrap_err();
        assert_eq!(e.pos(), Some(12));
        let e = parse("SELECT FROM '/imu'").unwrap_err();
        assert_eq!(e.pos(), Some(7));
        let e = parse("SELECT time FROM '/imu' LIMIT x").unwrap_err();
        assert_eq!(e.pos(), Some(30));
        let e = parse("SELECT time FROM '/imu' trailing").unwrap_err();
        assert_eq!(e.pos(), Some(24));
    }

    #[test]
    fn empty_and_garbage_inputs_error_cleanly() {
        assert!(parse("").is_err());
        assert!(parse("   ").is_err());
        assert!(parse("WHERE").is_err());
        assert!(parse("SELECT").is_err());
        assert!(parse("SELECT min() FROM '/x'").is_err());
        assert!(parse("SELECT time FROM '/x' SAMPLE EVERY 0").is_err());
        assert!(parse("SELECT time FROM '/x' WINDOW 0s").is_err());
    }
}
