//! Plan optimizer: predicate pushdown into the scan node.
//!
//! Three rewrites, all strictly optional — with pushdown disabled the
//! plan still returns identical rows, just slower:
//!
//! 1. **Time-range pushdown.** Top-level `time` conjuncts of the WHERE
//!    clause become a half-open `[start, end)` nanosecond range handed to
//!    the coarse time index, so block-framed containers only decode
//!    candidate blocks. The derived range is a *conservative superset*
//!    (float seconds round outward by a nanosecond, join ranges widen by
//!    the WITHIN width) and the original predicate stays in force, so
//!    pushdown can never change results — only skip I/O.
//! 2. **Topic pruning.** `topic = 'x'` / `topic != 'x'` conjuncts drop
//!    scan lanes entirely. Pruned topics are recorded for EXPLAIN.
//! 3. **Filter pushdown.** For non-join queries the whole residual
//!    filter moves into the scan, where it is evaluated against the
//!    zero-copy payload before the row is materialized.

use crate::ast::{Expr, Side};
use crate::plan::Logical;
use crate::value::{CmpOp, Value};

/// Knobs for [`optimize`]. `pushdown: false` keeps the plan naive — the
/// experiments and property tests compare both modes.
#[derive(Debug, Clone)]
pub struct PlanOptions {
    pub pushdown: bool,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions { pushdown: true }
    }
}

/// Split a predicate into its top-level AND conjuncts.
fn conjuncts(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::And(a, b) => {
            let mut v = conjuncts(a);
            v.extend(conjuncts(b));
            v
        }
        other => vec![other],
    }
}

fn is_time_path(e: &Expr) -> bool {
    matches!(e, Expr::Path { parts, .. } if parts.len() == 1 && parts[0] == "time")
}

fn is_topic_path(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Path { side: Side::None, parts, .. } if parts.len() == 1 && parts[0] == "topic"
    )
}

fn lit_f64(e: &Expr) -> Option<f64> {
    match e {
        Expr::Lit(v) => v.as_f64(),
        _ => None,
    }
}

/// Seconds → nanoseconds, rounding *down* and clamping at zero.
fn sec_to_ns_floor(s: f64) -> u64 {
    if s <= 0.0 {
        return 0;
    }
    let ns = (s * 1e9).floor();
    if ns >= u64::MAX as f64 {
        u64::MAX
    } else {
        ns as u64
    }
}

/// Seconds → nanoseconds, rounding *up* and clamping.
fn sec_to_ns_ceil(s: f64) -> u64 {
    if s <= 0.0 {
        return 0;
    }
    let ns = (s * 1e9).ceil();
    if ns >= u64::MAX as f64 {
        u64::MAX
    } else {
        ns as u64
    }
}

/// Running `[lo, hi)` bound accumulator.
struct RangeAcc {
    lo: u64,
    hi: u64,
    constrained: bool,
}

impl RangeAcc {
    fn new() -> Self {
        RangeAcc { lo: 0, hi: u64::MAX, constrained: false }
    }

    /// Apply `time <op> secs`, conservatively widened by ±1 ns so float
    /// rounding can only *grow* the range.
    fn apply(&mut self, op: CmpOp, secs: f64) {
        match op {
            CmpOp::Ge | CmpOp::Gt => {
                // `>` treated as `>=`: superset, residual filter decides.
                self.lo = self.lo.max(sec_to_ns_floor(secs).saturating_sub(1));
                self.constrained = true;
            }
            CmpOp::Lt | CmpOp::Le => {
                // half-open end: +2 covers both `<=` and ceil slack.
                self.hi = self.hi.min(sec_to_ns_ceil(secs).saturating_add(2));
                self.constrained = true;
            }
            CmpOp::Eq => {
                self.lo = self.lo.max(sec_to_ns_floor(secs).saturating_sub(1));
                self.hi = self.hi.min(sec_to_ns_ceil(secs).saturating_add(2));
                self.constrained = true;
            }
            CmpOp::Ne => {}
        }
    }

    fn widen(&mut self, ns: u64) {
        self.lo = self.lo.saturating_sub(ns);
        self.hi = self.hi.saturating_add(ns);
    }

    fn get(&self) -> Option<(u64, u64)> {
        if !self.constrained {
            return None;
        }
        Some((self.lo, self.hi.max(self.lo)))
    }
}

/// Rewrite the plan's scan node in place. Idempotent; with
/// `opts.pushdown == false` only the `pushdown` flag is recorded.
pub fn optimize(mut plan: Logical, opts: &PlanOptions) -> Logical {
    plan.scan.pushdown = opts.pushdown;
    if !opts.pushdown {
        return plan;
    }
    let Some(filter) = plan.filter.clone() else {
        return plan;
    };

    let mut range = RangeAcc::new();
    let mut keep_only: Option<Vec<String>> = None;
    let mut drop_topics: Vec<String> = Vec::new();

    for c in conjuncts(&filter) {
        if let Expr::Cmp { op, lhs, rhs } = c {
            // Normalize `lit <op> path` to `path <op'> lit`.
            let (path, lit, op) = if is_time_path(lhs) || is_topic_path(lhs) {
                (lhs.as_ref(), rhs.as_ref(), *op)
            } else if is_time_path(rhs) || is_topic_path(rhs) {
                let flipped = match *op {
                    CmpOp::Lt => CmpOp::Gt,
                    CmpOp::Le => CmpOp::Ge,
                    CmpOp::Gt => CmpOp::Lt,
                    CmpOp::Ge => CmpOp::Le,
                    o => o,
                };
                (rhs.as_ref(), lhs.as_ref(), flipped)
            } else {
                continue;
            };
            if is_time_path(path) {
                if let Some(secs) = lit_f64(lit) {
                    range.apply(op, secs);
                }
            } else if let Expr::Lit(Value::Str(name)) = lit {
                match op {
                    CmpOp::Eq => {
                        let set = keep_only.get_or_insert_with(|| vec![name.clone()]);
                        set.retain(|t| t == name);
                    }
                    CmpOp::Ne => drop_topics.push(name.clone()),
                    _ => {}
                }
            }
        }
    }

    // Join time constraints can name left.time/right.time; a match on
    // *either* side bounds the merged scan once widened by the join
    // window (the partner message is at most `within` away).
    if let Some(j) = &plan.join {
        if range.constrained {
            range.widen(j.within_ns);
        }
    }
    plan.scan.range = range.get();

    // Topic pruning only applies when `topic` is unambiguous (no join).
    if plan.join.is_none() {
        let before = plan.scan.topics.clone();
        if let Some(keep) = &keep_only {
            plan.scan.topics.retain(|t| keep.contains(t));
        }
        plan.scan.topics.retain(|t| !drop_topics.contains(t));
        plan.scan.pruned = before.into_iter().filter(|t| !plan.scan.topics.contains(t)).collect();

        // The whole filter rides down to the scan; nothing residual runs
        // on materialized rows.
        plan.scan.pushed_filter = Some(filter);
        plan.filter = None;
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::plan::Logical;

    fn opt(sql: &str) -> Logical {
        let q = parse(sql).unwrap();
        optimize(Logical::from_stmt(&q.stmt).unwrap(), &PlanOptions::default())
    }

    #[test]
    fn time_conjuncts_become_a_range() {
        let p = opt("SELECT time FROM '/imu' WHERE time >= 10.0 AND time < 20.0");
        let (lo, hi) = p.scan.range.unwrap();
        assert!((9_999_999_998..=10_000_000_000).contains(&lo));
        assert!((20_000_000_000..=20_000_000_003).contains(&hi));
        assert!(p.filter.is_none(), "filter fully pushed");
        assert!(p.scan.pushed_filter.is_some());
    }

    #[test]
    fn flipped_literal_side_still_pushes() {
        let p = opt("SELECT time FROM '/imu' WHERE 10.0 <= time AND 20.0 > time");
        let (lo, hi) = p.scan.range.unwrap();
        assert!(lo < 10_000_000_000);
        assert!(hi > 20_000_000_000 - 2 && hi < 20_000_000_005);
    }

    #[test]
    fn or_disables_range_derivation() {
        let p = opt("SELECT time FROM '/imu' WHERE time < 5.0 OR topic = '/imu'");
        assert!(p.scan.range.is_none(), "OR is not a conjunct");
        assert!(p.scan.pushed_filter.is_some(), "filter still pushes whole");
    }

    #[test]
    fn topic_pruning() {
        let p = opt("SELECT time FROM '/a', '/b', '/c' WHERE topic != '/b' AND time > 0.0");
        assert_eq!(p.scan.topics, vec!["/a", "/c"]);
        assert_eq!(p.scan.pruned, vec!["/b"]);
        let p = opt("SELECT time FROM '/a', '/b' WHERE topic = '/a'");
        assert_eq!(p.scan.topics, vec!["/a"]);
    }

    #[test]
    fn join_range_widens_by_within() {
        let p = opt("SELECT left.time FROM '/a' JOIN '/b' WITHIN 1s \
             WHERE left.time >= 10.0 AND left.time < 12.0");
        let (lo, hi) = p.scan.range.unwrap();
        assert!(lo <= 9_000_000_000, "widened down by 1s, got {lo}");
        assert!(hi >= 13_000_000_000, "widened up by 1s, got {hi}");
        assert!(p.filter.is_some(), "join filters stay residual");
    }

    #[test]
    fn pushdown_off_leaves_plan_naive() {
        let q = parse("SELECT time FROM '/imu' WHERE time < 5.0").unwrap();
        let p = optimize(Logical::from_stmt(&q.stmt).unwrap(), &PlanOptions { pushdown: false });
        assert!(p.scan.range.is_none());
        assert!(p.filter.is_some());
        assert!(!p.scan.pushdown);
    }
}
