//! Logical plan: a validated, linear pipeline built from the AST.
//!
//! The plan is deliberately linear — Scan → Join → Filter → Sample →
//! Aggregate → Project → Limit — because the language has no subqueries
//! and at most one join. [`crate::explain`] renders it as a tree for
//! `EXPLAIN`; [`crate::optimize`] rewrites the scan node in place
//! (time-range and predicate pushdown); [`crate::exec`] interprets it.
//!
//! All semantic validation lives here, so the parser stays purely
//! syntactic and every rejected query carries a byte position when one
//! exists (the planner re-uses the AST's recorded positions).

use crate::ast::{AggFunc, Expr, Items, Query, SelectStmt, Side};
use crate::error::{QueryError, QueryResult};

/// The leaf: which topics to read, over which (pushed) time range, with
/// which (pushed) predicate. Before optimization the range is `None`
/// (full scan) and no predicate is pushed.
#[derive(Debug, Clone)]
pub struct ScanNode {
    /// Topics the scan reads, in lane order (FROM order, join topic last).
    pub topics: Vec<String>,
    /// Half-open `[start, end)` nanosecond range pushed into the coarse
    /// time index. `None` = full scan. Always a conservative superset of
    /// the WHERE clause's time constraint — the residual filter keeps
    /// final say, so pushdown can never change results.
    pub range: Option<(u64, u64)>,
    /// Full predicate pushed to the scan, evaluated on the zero-copy
    /// payload before any materialization. Non-join queries only.
    pub pushed_filter: Option<Expr>,
    /// Topics removed by `topic =` / `topic !=` pruning (EXPLAIN shows
    /// them so a surprising empty result is explainable).
    pub pruned: Vec<String>,
    /// Whether the optimizer ran with pushdown enabled (EXPLAIN header).
    pub pushdown: bool,
}

/// `JOIN '<right>' WITHIN w`: pair each left message with every right
/// message within `w` nanoseconds, emitting pairs in merge order at the
/// arrival of the later message.
#[derive(Debug, Clone)]
pub struct JoinNode {
    pub left: String,
    pub right: String,
    pub within_ns: u64,
}

/// One aggregate call of the SELECT list.
#[derive(Debug, Clone)]
pub struct AggSpec {
    pub func: AggFunc,
    /// `None` only for `count()`.
    pub arg: Option<Expr>,
}

/// The aggregation stage: specs in SELECT-list order plus the window
/// width (`None` = one global group).
#[derive(Debug, Clone)]
pub struct AggNode {
    pub specs: Vec<AggSpec>,
    pub window_ns: Option<u64>,
}

/// One output column of an aggregate query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggItem {
    /// The `window` builtin: the group's window start, in seconds.
    Window,
    /// Index into [`AggNode::specs`].
    Agg(usize),
}

/// What the projection emits.
#[derive(Debug, Clone)]
pub enum PlanItems {
    /// `SELECT *` → the three always-available builtins.
    Star,
    /// Per-message expressions (no aggregates anywhere).
    Exprs(Vec<Expr>),
    /// Aggregate outputs (each SELECT item was a bare call or `window`).
    Aggs(Vec<AggItem>),
}

/// The validated logical plan.
#[derive(Debug, Clone)]
pub struct Logical {
    pub scan: ScanNode,
    pub join: Option<JoinNode>,
    /// Residual filter (after pushdown it may have moved into the scan).
    pub filter: Option<Expr>,
    pub sample_every: Option<u64>,
    pub agg: Option<AggNode>,
    pub items: PlanItems,
    /// Output column names (aliases or canonical expression text).
    pub columns: Vec<String>,
    pub limit: Option<u64>,
}

fn is_window_path(e: &Expr) -> bool {
    matches!(e, Expr::Path { side: Side::None, parts, .. } if parts.len() == 1 && parts[0] == "window")
}

impl Logical {
    /// Build and validate a plan from a parsed statement. All the
    /// language's semantic rules are enforced here.
    pub fn from_stmt(stmt: &SelectStmt) -> QueryResult<Logical> {
        // FROM topics must be distinct — a duplicate would double every
        // message (the merge reads each lane independently).
        for (i, t) in stmt.from.iter().enumerate() {
            if stmt.from[..i].contains(t) {
                return Err(QueryError::plan(format!("duplicate topic '{t}' in FROM")));
            }
        }
        let join = match &stmt.join {
            None => None,
            Some(j) => {
                if stmt.from.len() != 1 {
                    return Err(QueryError::plan("JOIN requires exactly one FROM topic"));
                }
                if j.topic == stmt.from[0] {
                    return Err(QueryError::plan(format!(
                        "JOIN topic '{}' is the same as the FROM topic",
                        j.topic
                    )));
                }
                if stmt.window_ns.is_some() {
                    return Err(QueryError::plan(
                        "WINDOW aggregation over a JOIN is not supported",
                    ));
                }
                Some(JoinNode {
                    left: stmt.from[0].clone(),
                    right: j.topic.clone(),
                    within_ns: j.within_ns,
                })
            }
        };

        // Path-shape rules, applied uniformly to items and WHERE.
        let check_paths = |e: &Expr, in_where: bool| -> QueryResult<()> {
            let mut err = None;
            e.walk_paths(&mut |side, parts, pos| {
                if err.is_some() {
                    return;
                }
                let windowish = side == Side::None && parts.len() == 1 && parts[0] == "window";
                if join.is_none() && side != Side::None {
                    err = Some(QueryError::plan_at(
                        pos,
                        "left./right. prefixes are only valid with a JOIN",
                    ));
                } else if join.is_some() && side == Side::None {
                    err = Some(QueryError::plan_at(
                        pos,
                        format!(
                            "path `{}` in a JOIN must be prefixed with left. or right.",
                            parts.join(".")
                        ),
                    ));
                } else if windowish && in_where {
                    err = Some(QueryError::plan_at(
                        pos,
                        "`window` is only available in the SELECT list",
                    ));
                } else if windowish && stmt.window_ns.is_none() {
                    err = Some(QueryError::plan_at(pos, "`window` requires a WINDOW clause"));
                }
            });
            match err {
                Some(e) => Err(e),
                None => Ok(()),
            }
        };

        if let Some(w) = &stmt.where_expr {
            if w.has_agg() {
                return Err(QueryError::plan_at(w.pos(), "aggregates are not allowed in WHERE"));
            }
            check_paths(w, true)?;
        }

        let mut agg_specs: Vec<AggSpec> = Vec::new();
        let (items, columns) = match &stmt.items {
            Items::Star => {
                if join.is_some() {
                    return Err(QueryError::plan(
                        "SELECT * cannot be used with JOIN; list columns explicitly",
                    ));
                }
                (PlanItems::Star, vec!["time".into(), "topic".into(), "size".into()])
            }
            Items::List(list) => {
                let any_agg = list.iter().any(|it| it.expr.has_agg());
                let mut columns = Vec::with_capacity(list.len());
                for it in list {
                    check_paths(&it.expr, false)?;
                    columns.push(match &it.alias {
                        Some(a) => a.clone(),
                        None => it.expr.to_string(),
                    });
                }
                if any_agg {
                    let mut out = Vec::with_capacity(list.len());
                    for it in list {
                        match &it.expr {
                            Expr::Agg { func, arg, pos } => {
                                if let Some(a) = arg {
                                    if a.has_agg() {
                                        return Err(QueryError::plan_at(
                                            *pos,
                                            "aggregates cannot be nested",
                                        ));
                                    }
                                } else if *func != AggFunc::Count {
                                    return Err(QueryError::plan_at(
                                        *pos,
                                        format!("{}() needs an argument", func.name()),
                                    ));
                                }
                                out.push(AggItem::Agg(agg_specs.len()));
                                agg_specs
                                    .push(AggSpec { func: *func, arg: arg.as_deref().cloned() });
                            }
                            e if is_window_path(e) => out.push(AggItem::Window),
                            e => {
                                return Err(QueryError::plan_at(
                                    e.pos(),
                                    "cannot mix aggregate and per-message items in one SELECT",
                                ))
                            }
                        }
                    }
                    (PlanItems::Aggs(out), columns)
                } else {
                    (PlanItems::Exprs(list.iter().map(|it| it.expr.clone()).collect()), columns)
                }
            }
        };

        let agg = match &items {
            PlanItems::Aggs(_) => Some(AggNode { specs: agg_specs, window_ns: stmt.window_ns }),
            _ => {
                if stmt.window_ns.is_some() {
                    return Err(QueryError::plan(
                        "WINDOW requires aggregate items (count/min/max/mean)",
                    ));
                }
                None
            }
        };

        let mut topics = stmt.from.clone();
        if let Some(j) = &join {
            topics.push(j.right.clone());
        }

        Ok(Logical {
            scan: ScanNode {
                topics,
                range: None,
                pushed_filter: None,
                pruned: Vec::new(),
                pushdown: false,
            },
            join,
            filter: stmt.where_expr.clone(),
            sample_every: stmt.sample_every,
            agg,
            items,
            columns,
            limit: stmt.limit,
        })
    }

    /// Whether this plan aggregates (its output rows are group rows).
    pub fn is_aggregate(&self) -> bool {
        self.agg.is_some()
    }
}

/// Convenience: parse + plan in one step (no optimization).
pub fn plan_query(q: &Query) -> QueryResult<Logical> {
    Logical::from_stmt(&q.stmt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn plan(sql: &str) -> QueryResult<Logical> {
        Logical::from_stmt(&parse(sql).unwrap().stmt)
    }

    #[test]
    fn plain_select_plans() {
        let p = plan("SELECT time, angular_velocity.x AS wx FROM '/imu' WHERE time < 5.0").unwrap();
        assert_eq!(p.columns, vec!["time", "wx"]);
        assert!(matches!(p.items, PlanItems::Exprs(ref v) if v.len() == 2));
        assert!(p.filter.is_some());
        assert!(p.scan.range.is_none(), "no pushdown before optimize()");
    }

    #[test]
    fn aggregate_select_plans() {
        let p =
            plan("SELECT window, count(), mean(angular_velocity.x) FROM '/imu' WINDOW 1s").unwrap();
        let agg = p.agg.as_ref().unwrap();
        assert_eq!(agg.specs.len(), 2);
        assert_eq!(agg.window_ns, Some(1_000_000_000));
        assert!(matches!(
            p.items,
            PlanItems::Aggs(ref v)
                if v[0] == AggItem::Window && v[1] == AggItem::Agg(0) && v[2] == AggItem::Agg(1)
        ));
    }

    #[test]
    fn join_plans() {
        let p = plan(
            "SELECT left.time, right.time FROM '/imu' JOIN '/cam' WITHIN 10ms \
             WHERE left.angular_velocity.x > 0.5",
        )
        .unwrap();
        let j = p.join.as_ref().unwrap();
        assert_eq!(j.within_ns, 10_000_000);
        assert_eq!(p.scan.topics, vec!["/imu", "/cam"]);
    }

    #[test]
    fn semantic_errors_are_plan_errors() {
        for (sql, needle) in [
            ("SELECT time FROM '/a', '/a'", "duplicate topic"),
            ("SELECT time, count() FROM '/a'", "cannot mix"),
            ("SELECT time FROM '/a' WINDOW 1s", "WINDOW requires aggregate"),
            ("SELECT count() FROM '/a' JOIN '/b' WITHIN 1s WINDOW 1s", "not supported"),
            ("SELECT left.time FROM '/a'", "only valid with a JOIN"),
            ("SELECT time FROM '/a' JOIN '/b' WITHIN 1s", "must be prefixed"),
            ("SELECT window FROM '/a'", "requires a WINDOW clause"),
            ("SELECT count() FROM '/a' WHERE window > 1.0", "SELECT list"),
            ("SELECT count() FROM '/a' WHERE count() > 1", "not allowed in WHERE"),
            ("SELECT count(count()) FROM '/a'", "nested"),
            ("SELECT * FROM '/a' JOIN '/b' WITHIN 1s", "list columns explicitly"),
            ("SELECT count() FROM '/a' JOIN '/a' WITHIN 1s", "same as the FROM topic"),
        ] {
            let e = plan(sql).unwrap_err();
            assert!(
                e.message().contains(needle),
                "{sql}: expected `{needle}` in `{}`",
                e.message()
            );
        }
    }

    #[test]
    fn star_columns_are_builtins() {
        let p = plan("SELECT * FROM '/imu'").unwrap();
        assert_eq!(p.columns, vec!["time", "topic", "size"]);
    }
}
