//! Typed query errors with byte positions.
//!
//! Every failure in the lexer/parser/planner carries the byte offset it
//! was detected at, so callers (the CLI, the serve wire layer) can show
//! a caret under the offending token instead of a bare message. A
//! malformed query must *never* panic — the robustness tests feed the
//! parser truncations and random garbage and assert a typed error comes
//! back each time.

use bora::BoraError;

/// Which stage rejected the query (or its execution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryErrorKind {
    /// Tokenization failed (unterminated string, bad number, stray byte).
    Lex,
    /// The token stream does not match the grammar.
    Parse,
    /// The query parsed but is semantically invalid (mixed aggregate and
    /// plain items, side-prefixed paths outside a join, …).
    Plan,
    /// Runtime failure inside an operator.
    Exec,
    /// A wire row blob failed to decode.
    Wire,
    /// The storage layer failed mid-scan; `source` holds the
    /// [`BoraError`] so servers can map it to their existing transient /
    /// permanent error codes instead of blaming the query text.
    Storage,
}

/// A typed query failure: stage, optional byte position, message.
#[derive(Debug)]
pub struct QueryError {
    kind: QueryErrorKind,
    pos: Option<usize>,
    msg: String,
    /// Set only for [`QueryErrorKind::Storage`].
    source: Option<BoraError>,
}

impl QueryError {
    pub fn lex(pos: usize, msg: impl Into<String>) -> Self {
        QueryError { kind: QueryErrorKind::Lex, pos: Some(pos), msg: msg.into(), source: None }
    }

    pub fn parse(pos: usize, msg: impl Into<String>) -> Self {
        QueryError { kind: QueryErrorKind::Parse, pos: Some(pos), msg: msg.into(), source: None }
    }

    pub fn plan_at(pos: usize, msg: impl Into<String>) -> Self {
        QueryError { kind: QueryErrorKind::Plan, pos: Some(pos), msg: msg.into(), source: None }
    }

    pub fn plan(msg: impl Into<String>) -> Self {
        QueryError { kind: QueryErrorKind::Plan, pos: None, msg: msg.into(), source: None }
    }

    pub fn exec(msg: impl Into<String>) -> Self {
        QueryError { kind: QueryErrorKind::Exec, pos: None, msg: msg.into(), source: None }
    }

    pub fn wire(msg: impl Into<String>) -> Self {
        QueryError { kind: QueryErrorKind::Wire, pos: None, msg: msg.into(), source: None }
    }

    pub fn kind(&self) -> QueryErrorKind {
        self.kind
    }

    /// Byte offset into the query text, when the failure has one (lex,
    /// parse, and some plan errors do; exec/wire errors do not).
    pub fn pos(&self) -> Option<usize> {
        self.pos
    }

    pub fn message(&self) -> &str {
        &self.msg
    }

    /// The underlying storage failure, for [`QueryErrorKind::Storage`].
    pub fn storage_source(&self) -> Option<&BoraError> {
        self.source.as_ref()
    }

    /// Consume, returning the storage failure if that is what this is.
    pub fn into_storage(self) -> Result<BoraError, QueryError> {
        match self.source {
            Some(e) => Ok(e),
            None => Err(self),
        }
    }

    /// Two-line rendering with a caret under the failure position:
    ///
    /// ```text
    /// SELECT time FRM '/imu'
    ///             ^ expected FROM, found identifier `FRM`
    /// ```
    pub fn render_caret(&self, sql: &str) -> String {
        match self.pos {
            Some(pos) => {
                let col = pos.min(sql.len());
                format!("{sql}\n{}^ {}", " ".repeat(col), self.msg)
            }
            None => self.msg.clone(),
        }
    }
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stage = match self.kind {
            QueryErrorKind::Lex => "lex",
            QueryErrorKind::Parse => "parse",
            QueryErrorKind::Plan => "plan",
            QueryErrorKind::Exec => "exec",
            QueryErrorKind::Wire => "wire",
            QueryErrorKind::Storage => "storage",
        };
        match self.pos {
            Some(p) => write!(f, "{stage} error at byte {p}: {}", self.msg),
            None => write!(f, "{stage} error: {}", self.msg),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<BoraError> for QueryError {
    fn from(e: BoraError) -> Self {
        QueryError { kind: QueryErrorKind::Storage, pos: None, msg: e.to_string(), source: Some(e) }
    }
}

pub type QueryResult<T> = Result<T, QueryError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caret_points_at_position() {
        let e = QueryError::parse(12, "expected FROM");
        let r = e.render_caret("SELECT time FRM '/imu'");
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(&lines[1][12..13], "^");
    }

    #[test]
    fn display_carries_stage_and_position() {
        let e = QueryError::lex(3, "unterminated string");
        assert_eq!(e.to_string(), "lex error at byte 3: unterminated string");
        assert_eq!(e.kind(), QueryErrorKind::Lex);
        assert_eq!(e.pos(), Some(3));
    }

    #[test]
    fn storage_errors_unwrap_to_bora() {
        let e = QueryError::from(BoraError::NotAContainer("/x".into()));
        assert_eq!(e.kind(), QueryErrorKind::Storage);
        assert!(e.into_storage().is_ok());
        assert!(QueryError::exec("boom").into_storage().is_err());
    }
}
