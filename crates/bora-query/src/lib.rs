//! **bora-query** — a declarative query layer over BORA containers.
//!
//! A small SELECT language compiled through the classic pipeline:
//!
//! ```text
//! SQL ──lex──▶ tokens ──parse──▶ AST ──plan──▶ Logical ──optimize──▶ Logical ──exec──▶ rows
//!                                                 │                      │
//!                                             EXPLAIN            EXPLAIN ANALYZE
//! ```
//!
//! The language covers the access patterns the paper's analysis
//! workloads need: projection over message fields, WHERE filters on
//! time/topic/fields, per-window aggregation (`count`/`min`/`max`/
//! `mean`), decimation (`SAMPLE EVERY n`), and a time-window join of two
//! topics (`JOIN '/cam' WITHIN 10ms`).
//!
//! The optimizer pushes time predicates into the container's coarse
//! time index (so block-framed topics skip decoding non-candidate
//! blocks), prunes scan lanes from topic predicates, and pushes the
//! residual filter to the zero-copy scan. Pushdown is conservative by
//! construction — the derived range is a superset and the predicate
//! still runs — so `--no-pushdown` changes cost, never results.
//!
//! Execution is pull-based ([`Cursor`]) over the existing k-way merge
//! streams, which is what lets the serve layer stream result rows in
//! bounded chunks, and what makes MVCC snapshots and quarantine checks
//! apply to queries for free.
//!
//! ```
//! use bora::OrganizerOptions;
//! use rosbag::{BagWriter, BagWriterOptions};
//! use ros_msgs::{sensor_msgs::Imu, Time};
//! use simfs::{IoCtx, MemStorage};
//!
//! let fs = MemStorage::new();
//! let mut ctx = IoCtx::new();
//! let mut w = BagWriter::create(&fs, "/a.bag", BagWriterOptions::default(), &mut ctx).unwrap();
//! for i in 0..50u32 {
//!     let mut imu = Imu::default();
//!     imu.angular_velocity.x = i as f64;
//!     w.write_ros_message("/imu", Time::new(i, 0), &imu, &mut ctx).unwrap();
//! }
//! w.close(&mut ctx).unwrap();
//! bora::duplicate(&fs, "/a.bag", &fs, "/c", &OrganizerOptions::default(), &mut ctx).unwrap();
//!
//! let bag = bora::BoraBag::open(&fs, "/c", &mut ctx).unwrap();
//! let p = bora_query::prepare(
//!     "SELECT count() FROM '/imu' WHERE time >= 10.0 AND time < 20.0").unwrap();
//! let mut cur = p.cursor_bag(&bag, false, &mut ctx).unwrap();
//! let rows = cur.collect_rows().unwrap();
//! assert_eq!(rows[0][0], bora_query::Value::Int(10));
//! ```

pub mod ast;
pub mod distrib;
pub mod error;
pub mod exec;
pub mod explain;
pub mod lexer;
pub mod optimize;
pub mod parser;
pub mod plan;
pub mod value;
pub mod wire;

pub use ast::{AggFunc, ExplainMode, Query, SelectStmt};
pub use distrib::{partial_fragment, rowship_fragment, rowship_query};
pub use error::{QueryError, QueryErrorKind, QueryResult};
pub use exec::{
    merge_partials, ns_to_secs, partial_columns, prepare, prepare_with, run_naive, Cursor,
    ExecStats, Prepared, MAX_TIME_NS,
};
pub use explain::{explain_json, explain_text};
pub use optimize::{optimize, PlanOptions};
pub use parser::parse;
pub use plan::Logical;
pub use value::{Row, Value};
pub use wire::{decode_rows, encode_rows};
