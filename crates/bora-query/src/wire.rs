//! Row-blob codec for the serve wire protocol.
//!
//! `OP_QUERY` responses carry result rows as an opaque blob inside the
//! existing chunked-reply frames; this module defines that blob. The
//! serve protocol layer treats it as bytes — the schema stays here so
//! the query crate owns both ends.
//!
//! Layout: `u32 row_count`, then per row `u16 cell_count` followed by
//! tagged cells. Tags: 0 = null, 1 = bool (u8), 2 = int (i64 LE),
//! 3 = float (f64 LE), 4 = string (u32 LE length + UTF-8 bytes).
//! Decoding is fully bounds-checked and rejects trailing bytes — a
//! truncated or oversized blob is a typed [`QueryError`], never a panic.

use crate::error::{QueryError, QueryResult};
use crate::value::{Row, Value};

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_STR: u8 = 4;

/// Encode a batch of rows into one blob.
pub fn encode_rows(rows: &[Row]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + rows.len() * 16);
    out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    for row in rows {
        out.extend_from_slice(&(row.len() as u16).to_le_bytes());
        for v in row {
            match v {
                Value::Null => out.push(TAG_NULL),
                Value::Bool(b) => {
                    out.push(TAG_BOOL);
                    out.push(*b as u8);
                }
                Value::Int(i) => {
                    out.push(TAG_INT);
                    out.extend_from_slice(&i.to_le_bytes());
                }
                Value::Float(f) => {
                    out.push(TAG_FLOAT);
                    out.extend_from_slice(&f.to_le_bytes());
                }
                Value::Str(s) => {
                    out.push(TAG_STR);
                    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                    out.extend_from_slice(s.as_bytes());
                }
            }
        }
    }
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> QueryResult<&'a [u8]> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| QueryError::wire("row blob truncated"))?;
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> QueryResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> QueryResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> QueryResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
}

/// Decode a blob back into rows.
pub fn decode_rows(bytes: &[u8]) -> QueryResult<Vec<Row>> {
    let mut r = Reader { buf: bytes, at: 0 };
    let n = r.u32()? as usize;
    // A row costs at least 2 bytes — reject absurd counts before
    // reserving memory for them.
    if n > bytes.len() / 2 + 1 {
        return Err(QueryError::wire(format!("row count {n} exceeds blob size")));
    }
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let cells = r.u16()? as usize;
        let mut row = Vec::with_capacity(cells);
        for _ in 0..cells {
            let v = match r.u8()? {
                TAG_NULL => Value::Null,
                TAG_BOOL => Value::Bool(r.u8()? != 0),
                TAG_INT => Value::Int(i64::from_le_bytes(r.take(8)?.try_into().unwrap())),
                TAG_FLOAT => Value::Float(f64::from_le_bytes(r.take(8)?.try_into().unwrap())),
                TAG_STR => {
                    let len = r.u32()? as usize;
                    let s = std::str::from_utf8(r.take(len)?)
                        .map_err(|_| QueryError::wire("non-UTF8 string cell"))?;
                    Value::Str(s.to_owned())
                }
                t => return Err(QueryError::wire(format!("unknown cell tag {t}"))),
            };
            row.push(v);
        }
        rows.push(row);
    }
    if r.at != bytes.len() {
        return Err(QueryError::wire("trailing bytes after last row"));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let rows = vec![
            vec![Value::Null, Value::Bool(true), Value::Int(-7)],
            vec![Value::Float(2.5), Value::Str("hello ∞".into())],
            vec![],
        ];
        assert_eq!(decode_rows(&encode_rows(&rows)).unwrap(), rows);
        assert_eq!(decode_rows(&encode_rows(&[])).unwrap(), Vec::<Row>::new());
    }

    #[test]
    fn truncation_and_garbage_are_typed_errors() {
        let blob = encode_rows(&[vec![Value::Str("abcdef".into()), Value::Int(1)]]);
        for cut in 0..blob.len() {
            assert!(decode_rows(&blob[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing junk.
        let mut ext = blob.clone();
        ext.push(0);
        assert!(decode_rows(&ext).is_err());
        // Bad tag.
        let bad = vec![1, 0, 0, 0, 1, 0, 9];
        assert!(decode_rows(&bad).is_err());
        // Absurd row count.
        let absurd = vec![255, 255, 255, 255];
        assert!(decode_rows(&absurd).is_err());
    }
}
