//! `EXPLAIN` / `EXPLAIN ANALYZE` rendering.
//!
//! The linear plan renders as the operator tree the executor actually
//! runs, outermost first. Plain `EXPLAIN` shows the shape (what got
//! pushed down, what stayed residual); `EXPLAIN ANALYZE` appends the
//! per-operator counters from [`ExecStats`] — row counts, bytes, block
//! decodes, pool hits, virtual nanoseconds — so a selective predicate's
//! skipped decodes are visible in the plan itself.

use crate::exec::{ns_to_secs, ExecStats, Prepared};
use crate::plan::{AggItem, PlanItems};

fn fmt_range(range: Option<(u64, u64)>) -> String {
    match range {
        None => "full".to_owned(),
        Some((lo, hi)) => format!("[{:.3}s, {:.3}s)", ns_to_secs(lo), ns_to_secs(hi)),
    }
}

fn fmt_topics(topics: &[String]) -> String {
    let quoted: Vec<String> = topics.iter().map(|t| format!("'{t}'")).collect();
    format!("[{}]", quoted.join(", "))
}

/// One node: label plus optional analyze annotation.
struct Node {
    label: String,
    analyzed: Option<String>,
}

fn nodes(p: &Prepared, stats: Option<&ExecStats>) -> Vec<Node> {
    let plan = &p.plan;
    let mut out = Vec::new();
    if let Some(n) = plan.limit {
        out.push(Node { label: format!("Limit {n}"), analyzed: None });
    }
    match &plan.items {
        PlanItems::Aggs(items) => {
            let agg = plan.agg.as_ref().unwrap();
            let cols: Vec<String> = items
                .iter()
                .map(|it| match it {
                    AggItem::Window => "window".to_owned(),
                    AggItem::Agg(i) => {
                        let s = &agg.specs[*i];
                        match &s.arg {
                            Some(a) => format!("{}({a})", s.func.name()),
                            None => format!("{}()", s.func.name()),
                        }
                    }
                })
                .collect();
            let window = match agg.window_ns {
                Some(w) => format!(" window={:.3}s", ns_to_secs(w)),
                None => String::new(),
            };
            out.push(Node {
                label: format!("Aggregate [{}]{window}", cols.join(", ")),
                analyzed: stats.map(|s| format!("groups={}", s.groups)),
            });
        }
        _ => {
            out.push(Node {
                label: format!("Project [{}]", plan.columns.join(", ")),
                analyzed: stats.map(|s| format!("rows={}", s.rows_out)),
            });
        }
    }
    if let Some(n) = plan.sample_every {
        out.push(Node {
            label: format!("Sample every {n}"),
            analyzed: stats.map(|s| format!("dropped={}", s.sampled_out)),
        });
    }
    if let Some(f) = &plan.filter {
        out.push(Node {
            label: format!("Filter {f}"),
            analyzed: stats.map(|s| format!("dropped={}", s.filtered_out)),
        });
    }
    if let Some(j) = &plan.join {
        out.push(Node {
            label: format!(
                "Join '{}' ⨝ '{}' within {:.3}s",
                j.left,
                j.right,
                ns_to_secs(j.within_ns)
            ),
            analyzed: stats.map(|s| format!("pairs={}", s.joined)),
        });
    }
    let scan = &plan.scan;
    let mut label =
        format!("Scan topics={} range={}", fmt_topics(&scan.topics), fmt_range(scan.range));
    if let Some(pf) = &scan.pushed_filter {
        label.push_str(&format!(" pushed=({pf})"));
    }
    if !scan.pruned.is_empty() {
        label.push_str(&format!(" pruned={}", fmt_topics(&scan.pruned)));
    }
    out.push(Node {
        label,
        analyzed: stats.map(|s| {
            format!(
                "rows={} bytes={} pushed_dropped={} block_decodes={} pool_hits={} virt_ms={:.3}",
                s.scanned,
                s.scan_bytes,
                s.pushed_dropped,
                s.block_decodes,
                s.pool_hits,
                s.virt_ns as f64 / 1e6,
            )
        }),
    });
    out
}

/// Text rendering: one operator per line, indented inner-to-outer.
pub fn explain_text(p: &Prepared, stats: Option<&ExecStats>) -> String {
    let mode = if p.plan.scan.pushdown { "on" } else { "off" };
    let mut out = format!("Query [pushdown={mode}]\n");
    for (depth, n) in nodes(p, stats).iter().enumerate() {
        out.push_str(&"  ".repeat(depth + 1));
        out.push_str(&n.label);
        if let Some(a) = &n.analyzed {
            out.push_str(&format!("  ({a})"));
        }
        out.push('\n');
    }
    out
}

/// JSON rendering, for tooling and the CI artifact check. Schema:
/// `{"pushdown": bool, "columns": [...], "plan": [{"op": ..., "analyze":
/// ...?}, ...innermost last], "stats": {...}?}`.
pub fn explain_json(p: &Prepared, stats: Option<&ExecStats>) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"pushdown\": {}", p.plan.scan.pushdown));
    let cols: Vec<String> = p.plan.columns.iter().map(|c| bora_obs::json_string(c)).collect();
    out.push_str(&format!(", \"columns\": [{}]", cols.join(", ")));
    out.push_str(", \"plan\": [");
    for (i, n) in nodes(p, stats).iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{{\"op\": {}", bora_obs::json_string(&n.label)));
        if let Some(a) = &n.analyzed {
            out.push_str(&format!(", \"analyze\": {}", bora_obs::json_string(a)));
        }
        out.push('}');
    }
    out.push(']');
    if let Some(s) = stats {
        out.push_str(&format!(
            ", \"stats\": {{\"scanned\": {}, \"scan_bytes\": {}, \"pushed_dropped\": {}, \
             \"joined\": {}, \"filtered_out\": {}, \"sampled_out\": {}, \"groups\": {}, \
             \"rows_out\": {}, \"block_decodes\": {}, \"pool_hits\": {}, \"virt_ns\": {}, \
             \"wall_us\": {}}}",
            s.scanned,
            s.scan_bytes,
            s.pushed_dropped,
            s.joined,
            s.filtered_out,
            s.sampled_out,
            s.groups,
            s.rows_out,
            s.block_decodes,
            s.pool_hits,
            s.virt_ns,
            s.wall_us,
        ));
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::prepare;

    #[test]
    fn text_shows_pushdown_and_operators() {
        let p = prepare(
            "EXPLAIN SELECT time FROM '/imu', '/cam' \
             WHERE time >= 1.0 AND time < 2.0 AND topic != '/cam' LIMIT 5",
        )
        .unwrap();
        let t = explain_text(&p, None);
        assert!(t.contains("pushdown=on"), "{t}");
        assert!(t.contains("Limit 5"), "{t}");
        assert!(t.contains("pruned=['/cam']"), "{t}");
        assert!(t.contains("range=[0.999s, 2.000s)") || t.contains("range=[1.000s"), "{t}");
        assert!(!t.contains("Filter "), "filter fully pushed: {t}");
    }

    #[test]
    fn json_is_balanced_and_tagged() {
        let p = prepare("SELECT count() FROM '/imu' WINDOW 1s").unwrap();
        let s = ExecStats { groups: 3, ..Default::default() };
        let j = explain_json(&p, Some(&s));
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"plan\": ["));
        assert!(j.contains("\"groups\": 3"));
        assert!(j.contains("Aggregate [count()] window=1.000s"));
    }
}
