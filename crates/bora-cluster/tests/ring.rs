//! Property tests for the consistent-hash ring: balance and minimal
//! movement, the two claims the serving tier's scaling rests on.

use std::collections::HashMap;

use proptest::prelude::*;

use bora_cluster::{NodeId, Ring, RingConfig};

fn keys(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("/c/mission{:04}/bag{i}", i % 37)).collect()
}

fn owner_loads(ring: &Ring, keys: &[String]) -> HashMap<NodeId, usize> {
    let mut loads: HashMap<NodeId, usize> = ring.nodes().map(|n| (n, 0)).collect();
    for k in keys {
        *loads.get_mut(&ring.owner(k).unwrap()).unwrap() += 1;
    }
    loads
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// With >= 64 vnodes, the most-loaded node owns at most 2x its ideal
    /// share (the balance level replica-spread routing depends on).
    #[test]
    fn owner_balance_within_2x_ideal(
        nodes in 2u32..9,
        vnodes in 64u32..129,
        replication in 1usize..4,
    ) {
        let ring = Ring::with_nodes(RingConfig { vnodes, replication }, nodes);
        let ks = keys(1500);
        let loads = owner_loads(&ring, &ks);
        let ideal = ks.len() as f64 / nodes as f64;
        let max = *loads.values().max().unwrap() as f64;
        prop_assert!(
            max <= 2.0 * ideal,
            "max owner load {max} > 2x ideal {ideal} (n={nodes}, vnodes={vnodes})"
        );
        // Every node owns something (no starved node).
        prop_assert!(loads.values().all(|&l| l > 0), "{loads:?}");
    }

    /// Replica-set load (every holder, not just the owner) stays within
    /// 2x ideal too — this is what bounds per-node cache footprint.
    #[test]
    fn replica_balance_within_2x_ideal(nodes in 3u32..9, replication in 2usize..4) {
        let ring = Ring::with_nodes(RingConfig { vnodes: 64, replication }, nodes);
        let ks = keys(1500);
        let mut loads: HashMap<NodeId, usize> = ring.nodes().map(|n| (n, 0)).collect();
        for k in &ks {
            for n in ring.replicas(k) {
                *loads.get_mut(&n).unwrap() += 1;
            }
        }
        let r = replication.min(nodes as usize);
        let ideal = ks.len() as f64 * r as f64 / nodes as f64;
        let max = *loads.values().max().unwrap() as f64;
        prop_assert!(max <= 2.0 * ideal, "max replica load {max} > 2x ideal {ideal}");
    }

    /// A join moves at most ~R*K/(N+1) keys (2x slack): consistent
    /// hashing's minimal-movement property, measured through the
    /// explicit migration plan.
    #[test]
    fn join_moves_at_most_its_share(nodes in 2u32..9, replication in 1usize..4) {
        let ks = keys(1200);
        let before = Ring::with_nodes(RingConfig { vnodes: 64, replication }, nodes);
        let mut after = before.clone();
        after.add_node(nodes);
        let plan = Ring::reshard(&before, &after, &ks);
        let r = replication.min(nodes as usize + 1) as f64;
        let bound = 2.0 * r * ks.len() as f64 / (nodes as f64 + 1.0) + 8.0;
        prop_assert!(
            (plan.moves.len() as f64) <= bound,
            "join moved {} containers, bound {bound} (n={nodes}, r={replication})",
            plan.moves.len()
        );
        // Untouched keys keep their exact replica sets.
        let moved: std::collections::HashSet<&str> =
            plan.moves.iter().map(|m| m.container.as_str()).collect();
        for k in &ks {
            if !moved.contains(k.as_str()) {
                prop_assert_eq!(before.replicas(k), after.replicas(k));
            }
        }
    }

    /// A leave re-homes only the leaver's share (2x slack). With R >= 2
    /// a surviving holder always exists, so no copy may be sourced from
    /// the node that left (with R = 1 the leaver is the *only* holder —
    /// a graceful decommission must copy off it).
    #[test]
    fn leave_moves_at_most_its_share(nodes in 3u32..9, replication in 1usize..4) {
        let ks = keys(1200);
        let before = Ring::with_nodes(RingConfig { vnodes: 64, replication }, nodes);
        let leaver: NodeId = nodes / 2;
        let mut after = before.clone();
        after.remove_node(leaver);
        let plan = Ring::reshard(&before, &after, &ks);
        let r = replication.min(nodes as usize) as f64;
        let bound = 2.0 * r * ks.len() as f64 / nodes as f64 + 8.0;
        prop_assert!(
            (plan.moves.len() as f64) <= bound,
            "leave moved {} containers, bound {bound}",
            plan.moves.len()
        );
        for m in &plan.moves {
            if replication >= 2 {
                prop_assert!(m.from != leaver, "copy sourced from the departed node");
            }
            prop_assert!(m.to != leaver);
        }
    }

    /// Placement is a pure function of membership: rebuilding the ring
    /// in any insertion order yields identical replica sets.
    #[test]
    fn placement_ignores_join_order(nodes in 2u32..8, seed in any::<u64>()) {
        let cfg = RingConfig { vnodes: 64, replication: 2 };
        let forward = Ring::with_nodes(cfg, nodes);
        let mut shuffled = Ring::new(cfg);
        let mut order: Vec<NodeId> = (0..nodes).collect();
        // Deterministic pseudo-shuffle driven by the seed.
        for i in (1..order.len()).rev() {
            order.swap(i, (seed as usize).wrapping_mul(i + 7) % (i + 1));
        }
        for id in order {
            shuffled.add_node(id);
        }
        for k in keys(200) {
            prop_assert_eq!(forward.replicas(&k), shuffled.replicas(&k));
        }
    }
}
