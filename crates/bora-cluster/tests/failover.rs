//! Failover integration: a node dies **mid-`READ_STREAM`** and the
//! client must deliver a byte-identical result by resuming on a
//! replica, counting the hop in `cluster.failover`; afterwards `heal`
//! re-replicates what the death left under-replicated.
//!
//! `MemTransport` is unbounded, so a server streams its whole answer
//! eagerly — killing the *process* mid-stream would race the buffer.
//! Instead each node runs over a [`GateStorage`] that injects an `Io`
//! fault after a calibrated number of data reads, so the owner fails
//! *while producing* the stream, deterministically.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use bora_cluster::{
    ClusterClientConfig, ClusterTierConfig, LocalCluster, NodeId, RingConfig, RoutePolicy,
};
use ros_msgs::{sensor_msgs::Imu, Time};
use rosbag::{BagWriter, BagWriterOptions};
use simfs::{DirEntry, FsError, FsResult, IoCtx, MemStorage, Metadata, Storage};

/// MemStorage plus a read gate: after `limit` successful data reads,
/// every further `read_at` fails with `Io` — the storage-level fault
/// the router must treat as failover-worthy.
struct GateStorage {
    inner: MemStorage,
    reads: AtomicU64,
    limit: AtomicU64,
}

impl GateStorage {
    fn new() -> Self {
        GateStorage {
            inner: MemStorage::new(),
            reads: AtomicU64::new(0),
            limit: AtomicU64::new(u64::MAX),
        }
    }

    fn reads(&self) -> u64 {
        self.reads.load(Ordering::SeqCst)
    }

    fn set_limit(&self, limit: u64) {
        self.limit.store(limit, Ordering::SeqCst);
    }

    fn gate(&self) -> FsResult<()> {
        if self.reads.fetch_add(1, Ordering::SeqCst) >= self.limit.load(Ordering::SeqCst) {
            return Err(FsError::Io("gate: injected data-read fault".into()));
        }
        Ok(())
    }
}

impl Storage for GateStorage {
    fn create(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.inner.create(path, ctx)
    }
    fn append(&self, path: &str, data: &[u8], ctx: &mut IoCtx) -> FsResult<u64> {
        self.inner.append(path, data, ctx)
    }
    fn write_at(&self, path: &str, offset: u64, data: &[u8], ctx: &mut IoCtx) -> FsResult<()> {
        self.inner.write_at(path, offset, data, ctx)
    }
    fn read_at(&self, path: &str, offset: u64, len: usize, ctx: &mut IoCtx) -> FsResult<Vec<u8>> {
        self.gate()?;
        self.inner.read_at(path, offset, len, ctx)
    }
    fn read_all(&self, path: &str, ctx: &mut IoCtx) -> FsResult<Vec<u8>> {
        self.gate()?;
        self.inner.read_all(path, ctx)
    }
    fn len(&self, path: &str, ctx: &mut IoCtx) -> FsResult<u64> {
        self.inner.len(path, ctx)
    }
    fn exists(&self, path: &str, ctx: &mut IoCtx) -> bool {
        self.inner.exists(path, ctx)
    }
    fn stat(&self, path: &str, ctx: &mut IoCtx) -> FsResult<Metadata> {
        self.inner.stat(path, ctx)
    }
    fn mkdir_all(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.inner.mkdir_all(path, ctx)
    }
    fn read_dir(&self, path: &str, ctx: &mut IoCtx) -> FsResult<Vec<DirEntry>> {
        self.inner.read_dir(path, ctx)
    }
    fn remove_file(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.inner.remove_file(path, ctx)
    }
    fn remove_dir_all(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.inner.remove_dir_all(path, ctx)
    }
    fn rename(&self, from: &str, to: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.inner.rename(from, to, ctx)
    }
    fn flush(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.inner.flush(path, ctx)
    }
}

const ROOT: &str = "/c/failover";
const TOPICS: [&str; 2] = ["/imu", "/odom"];

/// Build a two-topic, 400-message container on a staging filesystem.
fn build_staging() -> MemStorage {
    let staging = MemStorage::new();
    let mut ctx = IoCtx::new();
    let mut w =
        BagWriter::create(&staging, "/stage.bag", BagWriterOptions::default(), &mut ctx).unwrap();
    for i in 0..400u32 {
        let t = Time::new(1 + i / 10, (i % 10) * 1_000_000);
        let mut imu = Imu::default();
        imu.header.stamp = t;
        imu.header.seq = i;
        let topic = TOPICS[(i % 2) as usize];
        w.write_ros_message(topic, t, &imu, &mut ctx).unwrap();
    }
    w.close(&mut ctx).unwrap();
    bora::duplicate(&staging, "/stage.bag", &staging, ROOT, &Default::default(), &mut ctx).unwrap();
    staging
}

type Gates = Arc<Mutex<BTreeMap<NodeId, Arc<GateStorage>>>>;

fn start_gated_cluster(nodes: u32) -> (LocalCluster<Arc<GateStorage>>, Gates) {
    let gates: Gates = Arc::new(Mutex::new(BTreeMap::new()));
    let factory_gates = Arc::clone(&gates);
    let cluster = LocalCluster::start_with(
        ClusterTierConfig {
            nodes,
            ring: RingConfig { vnodes: 64, replication: 2 },
            ..ClusterTierConfig::default()
        },
        move |id| {
            let gs = Arc::new(GateStorage::new());
            factory_gates.lock().unwrap().insert(id, Arc::clone(&gs));
            gs
        },
    );
    (cluster, gates)
}

#[test]
fn mid_stream_node_death_is_byte_identical_and_counted() {
    let staging = build_staging();
    let (cluster, gates) = start_gated_cluster(3);
    cluster.provision(&staging, &[ROOT]).unwrap();

    let client = cluster.client(ClusterClientConfig {
        policy: RoutePolicy::Primary,
        hedge: None,
        ..ClusterClientConfig::default()
    });

    let replicas = client.replicas(ROOT);
    assert_eq!(replicas.len(), 2);
    let owner = replicas[0];
    let owner_gate = Arc::clone(gates.lock().unwrap().get(&owner).unwrap());

    // Warm the owner's handle cache, then measure the steady-state
    // data-read cost of one full query.
    let warm = client.read(ROOT, &TOPICS).unwrap();
    assert_eq!(warm.len(), 400);
    let c0 = owner_gate.reads();
    let baseline = client.read(ROOT, &TOPICS).unwrap();
    assert_eq!(baseline, warm);
    let per_query = owner_gate.reads() - c0;
    assert!(per_query >= 2, "query did only {per_query} data reads; gate can't split it");

    // Arm the gate so the *next* query dies roughly halfway through
    // producing its stream.
    owner_gate.set_limit(owner_gate.reads() + per_query / 2);

    let failovers_before = bora_obs::counter("cluster.failover").get();
    let streamed: Vec<_> = client
        .read_stream(ROOT, &TOPICS)
        .unwrap()
        .collect::<Result<Vec<_>, _>>()
        .expect("stream must survive the owner's mid-stream death");

    // Byte-identical: same messages, same order, same payloads.
    assert_eq!(streamed, baseline);
    let failovers = bora_obs::counter("cluster.failover").get() - failovers_before;
    assert!(failovers >= 1, "owner died mid-stream but cluster.failover did not move");

    // The dead node is now failing storage-side; declare it dead and
    // heal. The container fell to one live holder, so heal must copy it
    // back up to the replication factor.
    cluster.kill(owner);
    let report = cluster.heal().unwrap();
    assert_eq!(report.removed, vec![owner]);
    assert!(report.copies >= 1, "heal made no re-replication copies: {report:?}");
    assert!(report.batches >= 1);

    // Post-heal: a fresh router sees the shrunken ring, the dead node
    // holds nothing, and reads still match byte-for-byte.
    let client2 = cluster.client(ClusterClientConfig::default());
    let replicas2 = client2.replicas(ROOT);
    assert_eq!(replicas2.len(), 2);
    assert!(!replicas2.contains(&owner));
    for (_, holders) in cluster.directory() {
        assert!(!holders.contains(&owner));
    }
    assert_eq!(client2.read(ROOT, &TOPICS).unwrap(), baseline);

    cluster.shutdown();
}

#[test]
fn killed_server_process_fails_over_without_streaming() {
    let staging = build_staging();
    let (cluster, _gates) = start_gated_cluster(3);
    cluster.provision(&staging, &[ROOT]).unwrap();
    let client = cluster.client(ClusterClientConfig::default());

    let baseline = client.read(ROOT, &TOPICS).unwrap();
    let owner = client.replicas(ROOT)[0];
    cluster.kill(owner);

    // Plain (non-streaming) reads route around the shut-down node.
    let failovers_before = bora_obs::counter("cluster.failover").get();
    assert_eq!(client.read(ROOT, &TOPICS).unwrap(), baseline);
    assert!(bora_obs::counter("cluster.failover").get() > failovers_before);

    cluster.shutdown();
}

#[test]
fn total_replica_loss_is_reported_not_healed() {
    let staging = build_staging();
    let (cluster, gates) = start_gated_cluster(2);
    cluster.provision(&staging, &[ROOT]).unwrap();
    // R=2 on a 2-node cluster: killing both nodes loses every replica.
    for id in cluster.node_ids() {
        cluster.kill(id);
        gates.lock().unwrap().get(&id).unwrap().set_limit(0);
    }
    let err = cluster.heal().unwrap_err();
    assert!(err.to_string().contains("lost every replica"), "{err}");
}
