//! Consistent-hash placement: which nodes hold which containers.
//!
//! A [`Ring`] scatters `vnodes` virtual points per node over the u64
//! hash circle; a container's replica set is the first `replication`
//! *distinct* nodes clockwise from the container's own hash point. The
//! two properties the serving tier leans on:
//!
//! * **determinism** — every router and every node computes the same
//!   directory from the same membership list, so there is no directory
//!   service to keep consistent (the membership list is the directory);
//! * **minimal movement** — adding or removing one node only remaps the
//!   arcs adjacent to that node's points: on average `K/N` of `K` keys
//!   move, never a full reshuffle. [`Ring::reshard`] turns the
//!   before/after delta into an explicit [`MigrationPlan`] whose
//!   [`MigrationPlan::batches`] bound how many copies run at once
//!   (migration must not starve serving traffic).

use std::collections::{BTreeSet, HashSet};

/// Cluster-unique node identifier (also the wire `server_id`).
pub type NodeId = u32;

/// Ring shape knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingConfig {
    /// Virtual points per node. More vnodes → smoother balance at the
    /// cost of a larger point table; 64 keeps the max/ideal load ratio
    /// under ~2x (property-tested in `tests/ring.rs`).
    pub vnodes: u32,
    /// Replica count per container (owner + `replication - 1` backups).
    /// Clamped to the live node count when the ring is smaller.
    pub replication: usize,
}

impl Default for RingConfig {
    fn default() -> Self {
        RingConfig { vnodes: 64, replication: 2 }
    }
}

/// SplitMix64 finalizer — cheap, well-distributed, dependency-free.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hash a container root onto the circle (FNV-1a mixed through
/// SplitMix64 so short, similar paths still spread).
pub fn hash_key(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    splitmix64(h)
}

fn vnode_point(node: NodeId, replica: u32) -> u64 {
    splitmix64((u64::from(node) << 32) | u64::from(replica))
}

/// The placement function: membership + config → directory.
#[derive(Debug, Clone)]
pub struct Ring {
    cfg: RingConfig,
    nodes: BTreeSet<NodeId>,
    /// Sorted `(point, node)` pairs — the materialized circle.
    points: Vec<(u64, NodeId)>,
}

impl Ring {
    pub fn new(cfg: RingConfig) -> Self {
        assert!(cfg.vnodes > 0, "ring needs at least one vnode per node");
        assert!(cfg.replication > 0, "replication factor must be >= 1");
        Ring { cfg, nodes: BTreeSet::new(), points: Vec::new() }
    }

    /// A ring over nodes `0..n`.
    pub fn with_nodes(cfg: RingConfig, n: u32) -> Self {
        let mut ring = Ring::new(cfg);
        for id in 0..n {
            ring.add_node(id);
        }
        ring
    }

    pub fn config(&self) -> RingConfig {
        self.cfg
    }

    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn contains(&self, id: NodeId) -> bool {
        self.nodes.contains(&id)
    }

    /// Effective replica count: `replication` clamped to membership.
    pub fn replication(&self) -> usize {
        self.cfg.replication.min(self.nodes.len())
    }

    pub fn add_node(&mut self, id: NodeId) {
        if !self.nodes.insert(id) {
            return;
        }
        for r in 0..self.cfg.vnodes {
            let p = (vnode_point(id, r), id);
            let at = self.points.partition_point(|x| *x < p);
            self.points.insert(at, p);
        }
    }

    pub fn remove_node(&mut self, id: NodeId) {
        if self.nodes.remove(&id) {
            self.points.retain(|(_, n)| *n != id);
        }
    }

    /// The container's replica set, owner first. Deterministic in the
    /// membership list; empty only for an empty ring.
    pub fn replicas(&self, key: &str) -> Vec<NodeId> {
        let want = self.replication();
        let mut out = Vec::with_capacity(want);
        if want == 0 {
            return out;
        }
        let start = self.points.partition_point(|(p, _)| *p < hash_key(key));
        let n = self.points.len();
        for i in 0..n {
            let (_, node) = self.points[(start + i) % n];
            if !out.contains(&node) {
                out.push(node);
                if out.len() == want {
                    break;
                }
            }
        }
        out
    }

    /// The container's primary node.
    pub fn owner(&self, key: &str) -> Option<NodeId> {
        self.replicas(key).first().copied()
    }

    /// Explicit copy plan for a membership change: for every key whose
    /// replica set gained nodes, one [`Move`] per gained node, sourced
    /// from a holder that survives into `after` (falling back to any
    /// `before` holder when the whole old set left). `dropped` lists
    /// `(key, node)` pairs a node may now evict — informational; eviction
    /// is lazy (the LRU cache gets to it) rather than part of the plan.
    pub fn reshard(before: &Ring, after: &Ring, keys: &[String]) -> MigrationPlan {
        let mut moves = Vec::new();
        let mut dropped = Vec::new();
        for key in keys {
            let old = before.replicas(key);
            let new = after.replicas(key);
            let old_set: HashSet<NodeId> = old.iter().copied().collect();
            let new_set: HashSet<NodeId> = new.iter().copied().collect();
            let source = old
                .iter()
                .find(|n| new_set.contains(n) || after.contains(**n))
                .or_else(|| old.first())
                .copied();
            for n in &new {
                if !old_set.contains(n) {
                    if let Some(from) = source {
                        moves.push(Move { container: key.clone(), from, to: *n });
                    }
                }
            }
            for n in &old {
                if !new_set.contains(n) {
                    dropped.push((key.clone(), *n));
                }
            }
        }
        MigrationPlan { moves, dropped }
    }
}

/// One container copy: `from` streams the tree to `to`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Move {
    pub container: String,
    pub from: NodeId,
    pub to: NodeId,
}

/// The copies a membership change requires, plus the replicas it
/// obsoletes.
#[derive(Debug, Clone, Default)]
pub struct MigrationPlan {
    pub moves: Vec<Move>,
    pub dropped: Vec<(String, NodeId)>,
}

impl MigrationPlan {
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// Throttle: at most `max_inflight` copies per batch. Batches run
    /// one after another so a reshard never floods the fabric that is
    /// also carrying query traffic.
    pub fn batches(&self, max_inflight: usize) -> impl Iterator<Item = &[Move]> {
        self.moves.chunks(max_inflight.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicas_are_distinct_and_deterministic() {
        let ring = Ring::with_nodes(RingConfig { vnodes: 64, replication: 3 }, 5);
        for i in 0..200 {
            let key = format!("/c/bag{i}");
            let r = ring.replicas(&key);
            assert_eq!(r.len(), 3);
            let set: HashSet<_> = r.iter().collect();
            assert_eq!(set.len(), 3, "replicas must be distinct nodes");
            assert_eq!(r, ring.replicas(&key), "same ring, same placement");
            assert_eq!(r[0], ring.owner(&key).unwrap());
        }
    }

    #[test]
    fn replication_clamps_to_membership() {
        let ring = Ring::with_nodes(RingConfig { vnodes: 16, replication: 3 }, 2);
        assert_eq!(ring.replication(), 2);
        assert_eq!(ring.replicas("/c/x").len(), 2);
        let empty = Ring::new(RingConfig::default());
        assert!(empty.replicas("/c/x").is_empty());
        assert_eq!(empty.owner("/c/x"), None);
    }

    #[test]
    fn join_only_pulls_keys_it_gains() {
        let keys: Vec<String> = (0..300).map(|i| format!("/c/bag{i}")).collect();
        let before = Ring::with_nodes(RingConfig { vnodes: 64, replication: 2 }, 4);
        let mut after = before.clone();
        after.add_node(4);
        let plan = Ring::reshard(&before, &after, &keys);
        // Every move targets the new node; sources are old holders.
        for m in &plan.moves {
            assert_eq!(m.to, 4);
            assert!(before.replicas(&m.container).contains(&m.from));
        }
        // Keys whose replica set is unchanged appear nowhere.
        let touched: HashSet<&str> = plan.moves.iter().map(|m| m.container.as_str()).collect();
        for k in &keys {
            if before.replicas(k) == after.replicas(k) {
                assert!(!touched.contains(k.as_str()));
            }
        }
    }

    #[test]
    fn leave_sources_copies_from_survivors() {
        let keys: Vec<String> = (0..300).map(|i| format!("/c/bag{i}")).collect();
        let before = Ring::with_nodes(RingConfig { vnodes: 64, replication: 2 }, 4);
        let mut after = before.clone();
        after.remove_node(2);
        let plan = Ring::reshard(&before, &after, &keys);
        for m in &plan.moves {
            assert_ne!(m.from, 2, "dead node cannot source a copy");
            assert_ne!(m.to, 2);
        }
        // Node 2's replicas all show up as dropped.
        assert!(plan.dropped.iter().all(|(_, n)| *n == 2));
    }

    #[test]
    fn batches_respect_throttle() {
        let keys: Vec<String> = (0..200).map(|i| format!("/c/bag{i}")).collect();
        let before = Ring::with_nodes(RingConfig { vnodes: 64, replication: 2 }, 3);
        let mut after = before.clone();
        after.add_node(3);
        let plan = Ring::reshard(&before, &after, &keys);
        assert!(!plan.is_empty());
        let batches: Vec<_> = plan.batches(4).collect();
        assert!(batches.iter().all(|b| b.len() <= 4));
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, plan.moves.len());
    }
}
