//! **bora-cluster** — a sharded, replicated, self-healing serving tier
//! over bora-serve nodes.
//!
//! One bora-serve node amortizes container opens for one machine's worth
//! of queries; a fleet's analysis traffic outgrows that machine. This
//! crate scales the serving layer *out* while keeping every lower layer
//! (wire protocol, handle cache, storage cost models) unchanged:
//!
//! * [`ring`] — consistent-hash placement with virtual nodes and a
//!   replication factor: the membership list *is* the directory, and a
//!   join/leave moves only the minimal set of containers
//!   ([`ring::Ring::reshard`] makes the moves explicit and
//!   [`ring::MigrationPlan::batches`] throttles them);
//! * [`client`] — the router: speaks the bora-serve protocol to owner
//!   nodes, fails over to replicas on transport faults and
//!   `Io`/`ChecksumMismatch` errors, hedges slow reads against a replica
//!   (adaptive EWMA threshold, win rate exported via bora-obs), resumes
//!   broken `READ_STREAM`s on a replica byte-identically, and k-way
//!   heap-merges multi-container streams cluster-wide;
//! * [`health`] — per-node circuit breakers, count-based for
//!   determinism;
//! * [`cluster`] — the in-process control plane: N servers over
//!   independent fault-injectable storage, provisioning, and
//!   re-replication of under-replicated containers after node death;
//! * [`swarm`] — routes `bora::SwarmQuery` fan-outs through the router,
//!   so multi-robot queries survive node loss too;
//! * [`telemetry`] — the observability plane: scrapes every node's
//!   `METRICS` registry snapshot, folds them into one cluster view
//!   (counters summed, histograms merged bucket-wise so cluster
//!   percentiles are exact, gauges kept as min/max spreads), tracks
//!   per-node counter deltas between scrapes, and renders the
//!   `bora-tool top` table and JSON.
//!
//! ```
//! use bora_cluster::{ClusterClientConfig, ClusterTierConfig, LocalCluster};
//! use simfs::{IoCtx, MemStorage};
//!
//! // Build one tiny container on a staging filesystem...
//! let staging = MemStorage::new();
//! let mut ctx = IoCtx::new();
//! # use rosbag::{BagWriter, BagWriterOptions};
//! # use ros_msgs::{sensor_msgs::Imu, Time};
//! # let mut w = BagWriter::create(&staging, "/m.bag", BagWriterOptions::default(), &mut ctx).unwrap();
//! # let mut imu = Imu::default();
//! # imu.header.stamp = Time::new(1, 0);
//! # w.write_ros_message("/imu", Time::new(1, 0), &imu, &mut ctx).unwrap();
//! # w.close(&mut ctx).unwrap();
//! bora::duplicate(&staging, "/m.bag", &staging, "/c/m", &Default::default(), &mut ctx).unwrap();
//!
//! // ...serve it from a 4-node cluster, replicated 2×.
//! let cluster = LocalCluster::start(ClusterTierConfig::default());
//! cluster.provision(&staging, &["/c/m"]).unwrap();
//! let client = cluster.client(ClusterClientConfig::default());
//! assert_eq!(client.topics("/c/m").unwrap(), vec!["/imu"]);
//! assert_eq!(client.replicas("/c/m").len(), 2);
//! cluster.shutdown();
//! ```

pub mod client;
pub mod cluster;
pub mod health;
pub mod ring;
pub mod swarm;
pub mod telemetry;

pub use client::{
    ClusterClient, ClusterClientConfig, ClusterStream, HedgeConfig, MergedStream, NodeEndpoint,
    RoutePolicy,
};
pub use cluster::{ClusterTierConfig, HealReport, LocalCluster, LocalNode};
pub use health::{BreakerConfig, BreakerState, CircuitBreaker};
pub use ring::{hash_key, MigrationPlan, Move, NodeId, Ring, RingConfig};
pub use swarm::{swarm_query, ClusterBackend};
pub use telemetry::{
    aggregate_reports, render_top, scrape_to_json, AggregatedMetrics, ClusterScrape,
    ClusterTelemetry, PoolScrape,
};
