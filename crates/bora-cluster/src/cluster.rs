//! [`LocalCluster`]: the control plane, hosting N bora-serve nodes
//! in-process.
//!
//! Each node is a full [`bora_serve::Server`] over its **own** storage
//! backend (by default a per-node simfs [`simfs::ClusterStorage`], so
//! per-server fault injection reaches each node independently), reached
//! through [`MemTransport`] — the deterministic in-process transport the
//! rest of the workspace tests with. The control plane owns:
//!
//! * the **directory**: the shared [`Ring`] mapping container → replica
//!   set, updated on join/leave;
//! * **provisioning**: copying containers onto their replica nodes
//!   ([`LocalCluster::provision`]) and telling each node which
//!   containers it owns (replica-aware cache eviction);
//! * **self-healing**: after a node death, [`LocalCluster::heal`]
//!   removes it from the ring and re-replicates every container that
//!   fell under its replication factor, throttled to
//!   `migrate_batch` copies per batch.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use bora::organizer::copy_container;
use bora::BoraResult;
use bora_serve::{MemTransport, Server, ServerConfig};
use simfs::{ClusterConfig as SimClusterConfig, ClusterStorage, IoCtx, Storage};

use crate::client::{ClusterClient, ClusterClientConfig};
use crate::ring::{Move, NodeId, Ring, RingConfig};

/// Cluster-tier shape.
#[derive(Debug, Clone)]
pub struct ClusterTierConfig {
    /// Initial node count (ids `0..nodes`).
    pub nodes: u32,
    pub ring: RingConfig,
    /// Per-node server template; `server_id` is overridden per node.
    pub server: ServerConfig,
    /// Per-node storage cost model (each node gets its own instance).
    pub storage: SimClusterConfig,
    /// Migration throttle: container copies in flight per batch during
    /// join/heal resharding.
    pub migrate_batch: usize,
}

impl Default for ClusterTierConfig {
    fn default() -> Self {
        ClusterTierConfig {
            nodes: 4,
            ring: RingConfig::default(),
            server: ServerConfig::default(),
            storage: SimClusterConfig::pvfs4(),
            migrate_batch: 4,
        }
    }
}

/// One hosted node.
pub struct LocalNode<S: Storage + Clone + Send + Sync + 'static> {
    pub id: NodeId,
    pub storage: S,
    pub server: Arc<Server<S>>,
}

/// What a heal pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HealReport {
    /// Dead nodes dropped from the ring.
    pub removed: Vec<NodeId>,
    /// Re-replication copies executed (under-replicated containers).
    pub copies: usize,
    /// Copy batches the throttle split the work into.
    pub batches: usize,
    /// Copies planned but not executed because the source or target was
    /// outside the control plane's reachability view; a later heal (after
    /// the partition lifts) picks them up.
    pub deferred: usize,
}

/// An in-process multi-node serving tier.
pub struct LocalCluster<S: Storage + Clone + Send + Sync + 'static> {
    cfg: ClusterTierConfig,
    ring: Arc<RwLock<Ring>>,
    nodes: Mutex<BTreeMap<NodeId, Arc<LocalNode<S>>>>,
    /// Which nodes hold a copy of each container (ground truth for
    /// sourcing heals; the ring is the *intended* placement).
    holders: Mutex<BTreeMap<String, BTreeSet<NodeId>>>,
    dead: Mutex<BTreeSet<NodeId>>,
    /// The control plane's network reachability view: `None` = full
    /// visibility; `Some(set)` = only these nodes are reachable (a
    /// partition is in effect). Heal consults it so re-replication never
    /// sources from — or is driven by — a minority side.
    reachable: Mutex<Option<BTreeSet<NodeId>>>,
    next_id: AtomicU32,
    factory: Mutex<Box<dyn FnMut(NodeId) -> S + Send>>,
}

impl LocalCluster<Arc<ClusterStorage>> {
    /// Start a cluster whose nodes each run over their own simulated
    /// cluster filesystem (per-node fault injection available via
    /// [`LocalCluster::node`]`.storage`).
    pub fn start(cfg: ClusterTierConfig) -> Self {
        let storage_cfg = cfg.storage;
        Self::start_with(cfg, move |_| Arc::new(ClusterStorage::new(storage_cfg)))
    }

    /// Kill `id`'s storage servers too (data ops fail with `Io`), on top
    /// of shutting the serve process down. The strongest failure mode:
    /// even a stale client that reconnects gets storage-level faults.
    pub fn kill_with_storage(&self, id: NodeId) {
        if let Some(node) = self.node(id) {
            node.storage.fail_all();
        }
        self.kill(id);
    }
}

impl<S: Storage + Clone + Send + Sync + 'static> LocalCluster<S> {
    /// Start with a custom per-node storage factory (benchmarks wrap
    /// storage to pace wall-clock time; tests inject faults).
    pub fn start_with(
        cfg: ClusterTierConfig,
        mut factory: impl FnMut(NodeId) -> S + Send + 'static,
    ) -> Self {
        assert!(cfg.nodes > 0, "cluster needs at least one node");
        let ring = Ring::with_nodes(cfg.ring, cfg.nodes);
        let mut nodes = BTreeMap::new();
        for id in 0..cfg.nodes {
            nodes.insert(id, Arc::new(Self::spawn_node(&cfg, id, &mut factory)));
        }
        LocalCluster {
            next_id: AtomicU32::new(cfg.nodes),
            cfg,
            ring: Arc::new(RwLock::new(ring)),
            nodes: Mutex::new(nodes),
            holders: Mutex::new(BTreeMap::new()),
            dead: Mutex::new(BTreeSet::new()),
            reachable: Mutex::new(None),
            factory: Mutex::new(Box::new(factory)),
        }
    }

    fn spawn_node(
        cfg: &ClusterTierConfig,
        id: NodeId,
        factory: &mut impl FnMut(NodeId) -> S,
    ) -> LocalNode<S> {
        let storage = factory(id);
        let server =
            Server::start(storage.clone(), ServerConfig { server_id: id, ..cfg.server.clone() });
        LocalNode { id, storage, server }
    }

    pub fn ring(&self) -> Arc<RwLock<Ring>> {
        Arc::clone(&self.ring)
    }

    pub fn node(&self, id: NodeId) -> Option<Arc<LocalNode<S>>> {
        self.nodes.lock().unwrap().get(&id).cloned()
    }

    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.lock().unwrap().keys().copied().collect()
    }

    pub fn live_nodes(&self) -> Vec<NodeId> {
        let dead = self.dead.lock().unwrap();
        self.nodes.lock().unwrap().keys().filter(|id| !dead.contains(id)).copied().collect()
    }

    pub fn containers(&self) -> Vec<String> {
        self.holders.lock().unwrap().keys().cloned().collect()
    }

    /// container → current holder set (the *materialized* directory).
    pub fn directory(&self) -> Vec<(String, Vec<NodeId>)> {
        self.holders
            .lock()
            .unwrap()
            .iter()
            .map(|(c, nodes)| (c.clone(), nodes.iter().copied().collect()))
            .collect()
    }

    /// Copy each container from `src` onto every node in its ring
    /// replica set, register it in the directory, and refresh the nodes'
    /// owned-container (cache-eviction preference) lists.
    pub fn provision<SS: Storage>(&self, src: &SS, roots: &[&str]) -> BoraResult<()> {
        let mut ctx = IoCtx::new();
        for root in roots {
            let replicas = self.ring.read().unwrap().replicas(root);
            for id in &replicas {
                let node = self.node(*id).expect("ring node is hosted");
                copy_container(src, root, &node.storage, root, &mut ctx)?;
            }
            self.holders.lock().unwrap().entry((*root).to_owned()).or_default().extend(replicas);
        }
        self.refresh_preferred();
        Ok(())
    }

    /// Push each node's owned-container list into its handle cache, so
    /// eviction prefers dropping containers the node merely borrowed.
    fn refresh_preferred(&self) {
        let holders = self.holders.lock().unwrap();
        for (id, node) in self.nodes.lock().unwrap().iter() {
            let owned: Vec<String> = holders
                .iter()
                .filter(|(_, nodes)| nodes.contains(id))
                .map(|(c, _)| c.clone())
                .collect();
            node.server.set_owned_containers(owned);
        }
    }

    /// A router over every hosted node (dead ones included — the router
    /// discovers death through faults, like a real deployment).
    pub fn client(&self, cfg: ClusterClientConfig) -> ClusterClient<MemTransport<S>> {
        let endpoints: Vec<(NodeId, MemTransport<S>)> = self
            .nodes
            .lock()
            .unwrap()
            .values()
            .map(|n| (n.id, MemTransport::new(Arc::clone(&n.server))))
            .collect();
        ClusterClient::new(Arc::clone(&self.ring), endpoints, cfg)
    }

    /// Kill a node: its serve process stops accepting work, existing
    /// connections see EOF. The ring still lists it (clients fail over
    /// to replicas transparently) until [`LocalCluster::heal`] runs.
    pub fn kill(&self, id: NodeId) {
        if let Some(node) = self.node(id) {
            node.server.shutdown();
        }
        self.dead.lock().unwrap().insert(id);
        bora_obs::counter("cluster.node_killed").inc();
    }

    /// Add a fresh node: extend the ring, then pull every container the
    /// new placement assigns to it from a current holder, throttled to
    /// `migrate_batch` copies per batch (deterministic minimal movement:
    /// only keys whose replica set gained the new node move).
    pub fn join(&self) -> BoraResult<NodeId> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let node = {
            let mut factory = self.factory.lock().unwrap();
            Arc::new(Self::spawn_node(&self.cfg, id, &mut *factory))
        };
        self.nodes.lock().unwrap().insert(id, node);

        let before = self.ring.read().unwrap().clone();
        let mut after = before.clone();
        after.add_node(id);
        let keys = self.containers();
        let plan = Ring::reshard(&before, &after, &keys);
        self.execute_moves(&plan.moves)?;
        *self.ring.write().unwrap() = after;
        self.refresh_preferred();
        Ok(id)
    }

    /// Install (or clear, with `None`) the control plane's reachability
    /// view. While a partition is in effect, [`LocalCluster::heal`]
    /// refuses to run from a minority side, only sources copies from
    /// reachable holders, and defers copies onto unreachable targets.
    pub fn set_reachable(&self, view: Option<BTreeSet<NodeId>>) {
        *self.reachable.lock().unwrap() = view;
    }

    /// Drop dead nodes from the ring and re-replicate every container
    /// left under-replicated, sourcing from surviving holders. Also a
    /// convergence pass: copies a previous heal deferred behind a
    /// partition are planned again, so calling `heal()` after the
    /// partition lifts completes them. Returns what was done.
    pub fn heal(&self) -> BoraResult<HealReport> {
        let removed: Vec<NodeId> = self.dead.lock().unwrap().iter().copied().collect();
        // Partition awareness: a control plane that can only see a
        // minority of the live nodes must not reshape the ring — the
        // majority side may be healthy, serving, and running its own
        // heal; acting on minority knowledge would fork the directory
        // (classic split-brain). Quorum is strictly more than half of
        // the live nodes.
        let view = self.reachable.lock().unwrap().clone();
        if let Some(view) = &view {
            let live = self.live_nodes();
            let visible = live.iter().filter(|id| view.contains(id)).count();
            if 2 * visible <= live.len() {
                return Err(bora::BoraError::Corrupt(format!(
                    "heal refused: reachability view covers {visible} of {} live nodes \
                     (no majority — possible minority side of a partition)",
                    live.len()
                )));
            }
        }
        let in_view = |id: &NodeId| view.as_ref().is_none_or(|v| v.contains(id));
        let before = self.ring.read().unwrap().clone();
        let mut after = before.clone();
        for id in &removed {
            after.remove_node(*id);
        }

        // Plan against *holders*, not the old ring: a dead node may have
        // been holding data the ring no longer assigns it, and a heal
        // must only source from live replicas.
        let mut moves = Vec::new();
        let mut deferred = 0usize;
        {
            let mut holders = self.holders.lock().unwrap();
            for (container, holding) in holders.iter_mut() {
                for id in &removed {
                    holding.remove(id);
                }
                if holding.is_empty() {
                    return Err(bora::BoraError::Corrupt(format!(
                        "container {container} lost every replica"
                    )));
                }
                let missing: Vec<NodeId> = after
                    .replicas(container)
                    .into_iter()
                    .filter(|t| !holding.contains(t))
                    .collect();
                if missing.is_empty() {
                    continue;
                }
                // Only a *reachable* holder may source a copy: bytes on
                // the far side of a partition cannot be read, and a copy
                // that silently raced the partition could resurrect a
                // stale replica as ground truth.
                let Some(source) = holding.iter().find(|n| in_view(n)).copied() else {
                    deferred += missing.len();
                    continue;
                };
                for target in missing {
                    if !in_view(&target) {
                        deferred += 1;
                        continue;
                    }
                    moves.push(Move { container: container.clone(), from: source, to: target });
                }
            }
        }
        if removed.is_empty() && moves.is_empty() && deferred == 0 {
            return Ok(HealReport::default());
        }
        let batches = moves.len().div_ceil(self.cfg.migrate_batch.max(1));
        self.execute_moves(&moves)?;
        *self.ring.write().unwrap() = after;
        {
            let mut dead = self.dead.lock().unwrap();
            let mut nodes = self.nodes.lock().unwrap();
            for id in &removed {
                dead.remove(id);
                nodes.remove(id);
            }
        }
        self.refresh_preferred();
        bora_obs::counter("cluster.heal.copies").add(moves.len() as u64);
        if deferred > 0 {
            bora_obs::counter("cluster.heal.deferred").add(deferred as u64);
        }
        Ok(HealReport { removed, copies: moves.len(), batches, deferred })
    }

    /// Run a migration plan, `migrate_batch` copies at a time. Copies in
    /// a batch run back-to-back (the throttle bounds fabric pressure,
    /// which in virtual time is already serialized per `IoCtx`).
    fn execute_moves(&self, moves: &[Move]) -> BoraResult<()> {
        for batch in moves.chunks(self.cfg.migrate_batch.max(1)) {
            for m in batch {
                let from = self.node(m.from).expect("move source hosted");
                let to = self.node(m.to).expect("move target hosted");
                let mut ctx = IoCtx::new();
                copy_container(&from.storage, &m.container, &to.storage, &m.container, &mut ctx)?;
                self.holders.lock().unwrap().entry(m.container.clone()).or_default().insert(m.to);
                bora_obs::counter("cluster.migrate.copies").inc();
            }
        }
        Ok(())
    }

    /// Shut every node down.
    pub fn shutdown(&self) {
        for node in self.nodes.lock().unwrap().values() {
            node.server.shutdown();
        }
    }
}

impl<S: Storage + Clone + Send + Sync + 'static> Drop for LocalCluster<S> {
    fn drop(&mut self) {
        self.shutdown();
    }
}
