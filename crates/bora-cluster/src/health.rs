//! Per-node health: a count-based circuit breaker.
//!
//! The breaker is deliberately **count-based, not clock-based**: state
//! advances on `allow`/`on_success`/`on_failure` calls, never on
//! wall-clock timers, so every test and experiment that drives it is
//! deterministic. In a cluster client the call rate *is* the request
//! rate, which makes "skip `probe_interval` requests, then probe once"
//! behave like a time-based cooldown under load — without the flake.
//!
//! ```text
//!        failure_threshold consecutive failures
//! Closed ────────────────────────────────────▶ Open
//!   ▲                                            │ probe_interval denials
//!   │ probe succeeds             probe allowed   ▼
//!   └──────────────────────────────────────── HalfOpen
//!                 (probe fails → back to Open)
//! ```

/// Breaker knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip Closed → Open.
    pub failure_threshold: u32,
    /// Requests denied in Open before one probe is let through.
    pub probe_interval: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { failure_threshold: 3, probe_interval: 8 }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: all requests pass.
    Closed,
    /// Tripped: requests are denied (routed to replicas) except a
    /// periodic probe.
    Open,
    /// One probe is in flight; its outcome decides Closed vs Open.
    HalfOpen,
}

/// One node's breaker. Wrap in a `Mutex` for sharing; the methods take
/// `&mut self` and never block.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    denied_since_open: u32,
}

impl CircuitBreaker {
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            denied_since_open: 0,
        }
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// May a request be sent to this node right now? In Open, every
    /// `probe_interval`-th call is converted into a HalfOpen probe.
    pub fn allow(&mut self) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => false, // one probe at a time
            BreakerState::Open => {
                self.denied_since_open += 1;
                if self.denied_since_open >= self.cfg.probe_interval {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    pub fn on_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
        self.denied_since_open = 0;
    }

    pub fn on_failure(&mut self) {
        match self.state {
            BreakerState::HalfOpen => {
                // Failed probe: back to Open, restart the denial count.
                self.state = BreakerState::Open;
                self.denied_since_open = 0;
            }
            BreakerState::Open => {}
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.cfg.failure_threshold {
                    self.state = BreakerState::Open;
                    self.denied_since_open = 0;
                    bora_obs::counter("cluster.breaker_open").inc();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig { failure_threshold: 3, probe_interval: 4 })
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut b = breaker();
        b.on_failure();
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Closed, "below threshold");
        b.on_success(); // success resets the streak
        b.on_failure();
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn open_denies_then_probes() {
        let mut b = breaker();
        for _ in 0..3 {
            b.on_failure();
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow());
        assert!(!b.allow());
        assert!(!b.allow());
        assert!(b.allow(), "4th attempt becomes the probe");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow(), "only one probe in flight");
    }

    #[test]
    fn probe_outcome_decides() {
        let mut b = breaker();
        for _ in 0..3 {
            b.on_failure();
        }
        for _ in 0..4 {
            b.allow();
        }
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open, "failed probe reopens");
        for _ in 0..4 {
            b.allow();
        }
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed, "healed probe closes");
        assert!(b.allow());
    }
}
