//! [`ClusterTelemetry`]: the fleet-wide metrics plane.
//!
//! Every node answers `METRICS` with its full registry (counters, gauges,
//! bucketed histograms) plus its slow-op tail; this module scrapes all
//! nodes through a [`ClusterClient`] and folds the reports into one
//! cluster view:
//!
//! * **counters** are summed — `cluster read count` is the sum of every
//!   node's;
//! * **histograms** are merged **bucket-wise** ([`bora_obs::HistSummary::merge`]),
//!   so a cluster-wide p99 is computed from the combined distribution —
//!   *not* an average of per-node percentiles, which has no statistical
//!   meaning;
//! * **gauges** keep their spread as `(min, max)` across nodes (summing a
//!   queue depth would hide one wedged node behind nine idle ones);
//! * **slow ops** concatenate, worst first.
//!
//! The poller also keeps the previous scrape per node and computes
//! **counter deltas**, so "what happened since the last poll" is a first
//! class answer — cumulative counters alone can't distinguish a busy
//! node from a long-lived one. Reports whose layout version is newer
//! than this poller understands are counted as unreachable rather than
//! misparsed.

use std::collections::BTreeMap;
use std::sync::Mutex;

use bora_obs::HistSummary;
use bora_serve::{MetricsReport, SlowOpEntry, Transport, METRICS_REPORT_VERSION};

use crate::client::ClusterClient;
use crate::ring::NodeId;

/// Fleet-wide fold of per-node [`MetricsReport`]s. See the module docs
/// for the per-kind semantics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AggregatedMetrics {
    /// Reports folded in.
    pub nodes: usize,
    /// Summed across nodes, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(min, max)` across nodes, sorted by name.
    pub gauges: Vec<(String, (i64, i64))>,
    /// Bucket-wise merged, sorted by name.
    pub hists: Vec<(String, HistSummary)>,
    /// Concatenated slow-op tails, slowest first (wall + queue wait).
    pub slow_ops: Vec<SlowOpEntry>,
}

impl AggregatedMetrics {
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v).unwrap_or(0)
    }

    pub fn hist(&self, name: &str) -> Option<&HistSummary> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }
}

/// Fold `reports` into one cluster view. Pure — testable without a
/// cluster, reusable on reports from any source.
pub fn aggregate_reports(reports: &[MetricsReport]) -> AggregatedMetrics {
    let mut counters: BTreeMap<&str, u64> = BTreeMap::new();
    let mut gauges: BTreeMap<&str, (i64, i64)> = BTreeMap::new();
    let mut hists: BTreeMap<&str, HistSummary> = BTreeMap::new();
    let mut slow_ops: Vec<SlowOpEntry> = Vec::new();
    for r in reports {
        for (name, v) in &r.counters {
            *counters.entry(name).or_insert(0) += v;
        }
        for (name, v) in &r.gauges {
            gauges
                .entry(name)
                .and_modify(|(lo, hi)| {
                    *lo = (*lo).min(*v);
                    *hi = (*hi).max(*v);
                })
                .or_insert((*v, *v));
        }
        for (name, h) in &r.hists {
            let acc = hists.entry(name).or_default();
            *acc = acc.merge(h);
        }
        slow_ops.extend(r.slow_ops.iter().cloned());
    }
    slow_ops.sort_by_key(|e| std::cmp::Reverse(e.wall_ns.saturating_add(e.queue_wait_ns)));
    AggregatedMetrics {
        nodes: reports.len(),
        counters: counters.into_iter().map(|(n, v)| (n.to_owned(), v)).collect(),
        gauges: gauges.into_iter().map(|(n, v)| (n.to_owned(), v)).collect(),
        hists: hists.into_iter().map(|(n, h)| (n.to_owned(), h)).collect(),
        slow_ops,
    }
}

/// One telemetry sweep over the fleet.
#[derive(Debug, Clone, Default)]
pub struct ClusterScrape {
    /// Nodes that answered with a report this poller understands.
    pub reports: Vec<(NodeId, MetricsReport)>,
    /// Nodes that did not answer (or answered a newer layout), with why.
    pub unreachable: Vec<(NodeId, String)>,
    /// Per-node counter deltas since the previous scrape of that node
    /// (first scrape: since the node started). Zero-delta counters are
    /// omitted.
    pub deltas: Vec<(NodeId, Vec<(String, u64)>)>,
    /// The fleet-wide fold of `reports`.
    pub aggregate: AggregatedMetrics,
}

/// Polls every node's `METRICS` through a [`ClusterClient`] and keeps
/// enough history for deltas. One instance per observer; scraping is
/// explicit (the caller picks the cadence).
pub struct ClusterTelemetry<T: Transport> {
    client: ClusterClient<T>,
    last: Mutex<BTreeMap<NodeId, MetricsReport>>,
}

impl<T: Transport + Send + Sync + 'static> ClusterTelemetry<T> {
    pub fn new(client: ClusterClient<T>) -> Self {
        ClusterTelemetry { client, last: Mutex::new(BTreeMap::new()) }
    }

    /// Scrape every node once. Unreachable nodes are reported, not
    /// fatal — a telemetry sweep that dies with its first dead node
    /// would be blind exactly when it matters.
    pub fn scrape(&self) -> ClusterScrape {
        let mut out = ClusterScrape::default();
        for (id, res) in self.client.metrics_all() {
            match res {
                Ok(r) if r.version > METRICS_REPORT_VERSION => {
                    out.unreachable
                        .push((id, format!("unsupported metrics report version {}", r.version)));
                }
                Ok(r) => out.reports.push((id, r)),
                Err(e) => out.unreachable.push((id, e.to_string())),
            }
        }
        let mut last = self.last.lock().unwrap();
        for (id, r) in &out.reports {
            let prev = last.get(id);
            let mut delta: Vec<(String, u64)> = Vec::new();
            for (name, v) in &r.counters {
                let before = prev.map(|p| p.counter(name)).unwrap_or(0);
                // A node restart resets counters; saturate instead of
                // reporting a wrapped delta.
                let d = v.saturating_sub(before);
                if d > 0 {
                    delta.push((name.clone(), d));
                }
            }
            // Histogram sample counts delta like counters do, exposed as
            // `<hist>.count` — "how many reads since the last poll" is
            // the question an operator actually asks.
            for (name, h) in &r.hists {
                let before = prev.and_then(|p| p.hist(name)).map(|p| p.count).unwrap_or(0);
                let d = h.count.saturating_sub(before);
                if d > 0 {
                    delta.push((format!("{name}.count"), d));
                }
            }
            out.deltas.push((*id, delta));
            last.insert(*id, r.clone());
        }
        drop(last);
        out.aggregate =
            aggregate_reports(&out.reports.iter().map(|(_, r)| r.clone()).collect::<Vec<_>>());
        out
    }
}

// ------------------------------------------------------------- rendering

fn fmt_dur_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// The op-latency rows (`(label, hist)` per node per op, cluster rows
/// labelled `*`) behind [`render_top`], exposed for tests.
fn op_rows(scrape: &ClusterScrape) -> Vec<(String, String, HistSummary)> {
    const PREFIX: &str = "serve.op.";
    const SUFFIX: &str = ".wall_ns";
    let mut rows = Vec::new();
    let mut push = |label: &str, report_hists: &[(String, HistSummary)]| {
        for (name, h) in report_hists {
            if h.count == 0 {
                continue;
            }
            if let Some(op) = name.strip_prefix(PREFIX).and_then(|rest| rest.strip_suffix(SUFFIX)) {
                rows.push((label.to_owned(), op.to_owned(), *h));
            }
        }
    };
    for (id, r) in &scrape.reports {
        push(&id.to_string(), &r.hists);
    }
    push("*", &scrape.aggregate.hists);
    rows
}

fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2}GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.1}MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1}KiB", b as f64 / 1024.0)
    } else {
        format!("{b}B")
    }
}

/// One node's buffer-pool numbers as scraped from its `pool.*` metrics
/// (`None` when the node reports no pool budget — pre-pool peer or pool
/// disabled). Ratio/rate math lives here so `top` and `ingest-stat`
/// render identical numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolScrape {
    pub budget_bytes: u64,
    pub resident_bytes: u64,
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub uptime_ns: u64,
}

impl PoolScrape {
    pub fn from_report(r: &MetricsReport) -> Option<Self> {
        let gauge =
            |name: &str| r.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v.max(0) as u64);
        let counter =
            |name: &str| r.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v).unwrap_or(0);
        Some(PoolScrape {
            budget_bytes: gauge("pool.budget_bytes")?,
            resident_bytes: gauge("pool.resident_bytes").unwrap_or(0),
            hits: counter("pool.hit"),
            misses: counter("pool.miss"),
            evictions: counter("pool.evict"),
            uptime_ns: r.uptime_ns,
        })
    }

    /// Hit ratio over all lookups so far, 0.0 when the pool is unused.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Evictions per second of uptime.
    pub fn evictions_per_sec(&self) -> f64 {
        if self.uptime_ns == 0 {
            0.0
        } else {
            self.evictions as f64 / (self.uptime_ns as f64 / 1e9)
        }
    }
}

/// Render a scrape as the `bora-tool top` table: one row per node per
/// op (plus cluster-wide `*` rows), the buffer-pool section, then the
/// slow-op tail.
pub fn render_top(scrape: &ClusterScrape) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<5} {:<12} {:>10} {:>10} {:>10} {:>10}\n",
        "node", "op", "count", "mean", "p50", "p99"
    ));
    for (node, op, h) in op_rows(scrape) {
        out.push_str(&format!(
            "{:<5} {:<12} {:>10} {:>10} {:>10} {:>10}\n",
            node,
            op,
            h.count,
            fmt_dur_ns(h.mean()),
            fmt_dur_ns(h.percentile(0.50)),
            fmt_dur_ns(h.percentile(0.99)),
        ));
    }
    let pools: Vec<(NodeId, PoolScrape)> = scrape
        .reports
        .iter()
        .filter_map(|(id, r)| PoolScrape::from_report(r).map(|p| (*id, p)))
        .collect();
    if !pools.is_empty() {
        out.push_str(&format!(
            "\nbuffer pool:\n{:<5} {:>10} {:>10} {:>7} {:>9}\n",
            "node", "budget", "resident", "hit%", "evict/s"
        ));
        for (id, p) in &pools {
            out.push_str(&format!(
                "{:<5} {:>10} {:>10} {:>6.1}% {:>9.2}\n",
                id,
                fmt_bytes(p.budget_bytes),
                fmt_bytes(p.resident_bytes),
                p.hit_ratio() * 100.0,
                p.evictions_per_sec(),
            ));
        }
    }
    for (id, why) in &scrape.unreachable {
        out.push_str(&format!("node {id}: unreachable ({why})\n"));
    }
    let tail = &scrape.aggregate.slow_ops;
    if !tail.is_empty() {
        out.push_str("\nslow ops (worst first):\n");
        for e in tail.iter().take(16) {
            out.push_str(&format!(
                "  node {} {:<12} {:<24} wall {} queue {} trace {:#x}\n",
                e.server_id,
                e.op,
                e.container,
                fmt_dur_ns(e.wall_ns),
                fmt_dur_ns(e.queue_wait_ns),
                e.trace_id,
            ));
        }
        if tail.len() > 16 {
            out.push_str(&format!("  … {} more\n", tail.len() - 16));
        }
    }
    out
}

/// Render a scrape as a JSON document (`bora-tool top --json`): per-node
/// reports plus the cluster aggregate. Hand-rolled like the rest of the
/// workspace's JSON output — no serde in the dependency tree.
pub fn scrape_to_json(scrape: &ClusterScrape) -> String {
    use bora_obs::json_string as js;
    let hist_json = |h: &HistSummary| {
        format!(
            "{{\"count\":{},\"mean_ns\":{},\"p50_ns\":{},\"p99_ns\":{}}}",
            h.count,
            h.mean(),
            h.percentile(0.50),
            h.percentile(0.99)
        )
    };
    let slow_json = |e: &SlowOpEntry| {
        format!(
            "{{\"node\":{},\"op\":{},\"container\":{},\"wall_ns\":{},\"queue_wait_ns\":{},\"trace_id\":{}}}",
            e.server_id,
            js(&e.op),
            js(&e.container),
            e.wall_ns,
            e.queue_wait_ns,
            e.trace_id
        )
    };
    let report_json = |r: &MetricsReport| {
        let counters: Vec<String> =
            r.counters.iter().map(|(n, v)| format!("{}:{}", js(n), v)).collect();
        let gauges: Vec<String> =
            r.gauges.iter().map(|(n, v)| format!("{}:{}", js(n), v)).collect();
        let hists: Vec<String> =
            r.hists.iter().map(|(n, h)| format!("{}:{}", js(n), hist_json(h))).collect();
        let slow: Vec<String> = r.slow_ops.iter().map(slow_json).collect();
        format!(
            "{{\"version\":{},\"server_id\":{},\"uptime_ns\":{},\"counters\":{{{}}},\"gauges\":{{{}}},\"hists\":{{{}}},\"slow_ops\":[{}]}}",
            r.version,
            r.server_id,
            r.uptime_ns,
            counters.join(","),
            gauges.join(","),
            hists.join(","),
            slow.join(",")
        )
    };
    let nodes: Vec<String> = scrape
        .reports
        .iter()
        .map(|(id, r)| format!("{{\"node\":{},\"report\":{}}}", id, report_json(r)))
        .collect();
    let unreachable: Vec<String> = scrape
        .unreachable
        .iter()
        .map(|(id, why)| format!("{{\"node\":{},\"error\":{}}}", id, js(why)))
        .collect();
    let agg = &scrape.aggregate;
    let agg_counters: Vec<String> =
        agg.counters.iter().map(|(n, v)| format!("{}:{}", js(n), v)).collect();
    let agg_gauges: Vec<String> = agg
        .gauges
        .iter()
        .map(|(n, (lo, hi))| format!("{}:{{\"min\":{},\"max\":{}}}", js(n), lo, hi))
        .collect();
    let agg_hists: Vec<String> =
        agg.hists.iter().map(|(n, h)| format!("{}:{}", js(n), hist_json(h))).collect();
    let agg_slow: Vec<String> = agg.slow_ops.iter().map(slow_json).collect();
    format!(
        "{{\"nodes\":[{}],\"unreachable\":[{}],\"aggregate\":{{\"nodes\":{},\"counters\":{{{}}},\"gauges\":{{{}}},\"hists\":{{{}}},\"slow_ops\":[{}]}}}}",
        nodes.join(","),
        unreachable.join(","),
        agg.nodes,
        agg_counters.join(","),
        agg_gauges.join(","),
        agg_hists.join(","),
        agg_slow.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bora_obs::ExpHistogram;

    fn report(
        server_id: u32,
        samples: &[(&str, &[u64])],
        counters: &[(&str, u64)],
    ) -> MetricsReport {
        let hists = samples
            .iter()
            .map(|(name, vs)| {
                let h = ExpHistogram::new();
                for v in *vs {
                    h.record(*v);
                }
                ((*name).to_owned(), h.snapshot())
            })
            .collect();
        MetricsReport {
            version: METRICS_REPORT_VERSION,
            server_id,
            uptime_ns: 1,
            counters: counters.iter().map(|(n, v)| ((*n).to_owned(), *v)).collect(),
            gauges: vec![("q".to_owned(), server_id as i64)],
            hists,
            slow_ops: vec![],
        }
    }

    #[test]
    fn aggregation_is_bucket_exact() {
        // Two nodes' histograms merged must equal the histogram of the
        // combined sample stream — bucket for bucket, not approximately.
        let a_samples: Vec<u64> = (0..100).map(|i| i * 37 + 1).collect();
        let b_samples: Vec<u64> = (0..250).map(|i| i * 91 + 5).collect();
        let a = report(0, &[("serve.op.read.wall_ns", &a_samples)], &[("serve.shed", 3)]);
        let b = report(1, &[("serve.op.read.wall_ns", &b_samples)], &[("serve.shed", 4)]);
        let agg = aggregate_reports(&[a, b]);

        let direct = ExpHistogram::new();
        for v in a_samples.iter().chain(&b_samples) {
            direct.record(*v);
        }
        let merged = agg.hist("serve.op.read.wall_ns").unwrap();
        assert_eq!(*merged, direct.snapshot(), "merge must be bucket-exact");
        assert_eq!(agg.counter("serve.shed"), 7, "counters sum");
        assert_eq!(agg.gauges, vec![("q".to_owned(), (0, 1))], "gauges keep min/max");
        assert_eq!(agg.nodes, 2);
    }

    #[test]
    fn aggregate_percentiles_come_from_combined_distribution() {
        // One fast node, one slow node, same sample count. The cluster
        // p99 must reflect the slow half — an average of per-node p99s
        // would sit far below it; an average of (fast p99, slow p99)
        // equals neither.
        let fast: Vec<u64> = vec![1_000; 100];
        let slow: Vec<u64> = vec![1_000_000; 100];
        let agg = aggregate_reports(&[
            report(0, &[("serve.op.read.wall_ns", &fast)], &[]),
            report(1, &[("serve.op.read.wall_ns", &slow)], &[]),
        ]);
        let h = agg.hist("serve.op.read.wall_ns").unwrap();
        assert_eq!(h.count, 200);
        assert!(h.percentile(0.99) >= 1_000_000, "p99 must see the slow node's samples");
        assert!(h.percentile(0.25) < 2_048, "p25 must see the fast node's samples");
    }

    #[test]
    fn slow_ops_concatenate_worst_first() {
        let mut a = report(0, &[], &[]);
        a.slow_ops.push(SlowOpEntry {
            trace_id: 1,
            op: "read".into(),
            container: "/c/a".into(),
            wall_ns: 5_000_000,
            queue_wait_ns: 0,
            server_id: 0,
        });
        let mut b = report(1, &[], &[]);
        b.slow_ops.push(SlowOpEntry {
            trace_id: 2,
            op: "read".into(),
            container: "/c/b".into(),
            wall_ns: 9_000_000,
            queue_wait_ns: 2_000_000,
            server_id: 1,
        });
        let agg = aggregate_reports(&[a, b]);
        assert_eq!(agg.slow_ops.len(), 2);
        assert_eq!(agg.slow_ops[0].trace_id, 2, "slowest (wall+queue) first");
    }

    #[test]
    fn pool_scrape_reads_the_metrics_and_renders() {
        let mut r = report(0, &[], &[("pool.hit", 300), ("pool.miss", 100), ("pool.evict", 4)]);
        r.uptime_ns = 2_000_000_000; // 2 s up → 2 evictions/s
        r.gauges = vec![
            ("pool.budget_bytes".to_owned(), 64 << 20),
            ("pool.resident_bytes".to_owned(), 10 << 20),
        ];
        let p = PoolScrape::from_report(&r).expect("pool gauges present");
        assert_eq!(p.budget_bytes, 64 << 20);
        assert_eq!(p.resident_bytes, 10 << 20);
        assert!((p.hit_ratio() - 0.75).abs() < 1e-9);
        assert!((p.evictions_per_sec() - 2.0).abs() < 1e-9);

        let scrape = ClusterScrape {
            reports: vec![(0, r.clone())],
            unreachable: vec![],
            deltas: vec![],
            aggregate: aggregate_reports(&[r]),
        };
        let table = render_top(&scrape);
        assert!(table.contains("buffer pool"), "missing pool section:\n{table}");
        assert!(table.contains("64.0MiB"), "missing budget column:\n{table}");
        assert!(table.contains("75.0%"), "missing hit ratio:\n{table}");
        let json = scrape_to_json(&scrape);
        assert!(json.contains("\"pool.hit\":300"), "pool counters must reach the JSON scrape");

        // A pre-pool peer (no pool gauges) contributes no pool row.
        let old = report(1, &[], &[("serve.shed", 1)]);
        assert!(PoolScrape::from_report(&old).is_none());
    }

    #[test]
    fn render_and_json_carry_the_rows() {
        let samples: Vec<u64> = vec![10_000; 5];
        let scrape = ClusterScrape {
            reports: vec![(0, report(0, &[("serve.op.read.wall_ns", &samples)], &[]))],
            unreachable: vec![(3, "connection refused".into())],
            deltas: vec![],
            aggregate: aggregate_reports(&[report(0, &[("serve.op.read.wall_ns", &samples)], &[])]),
        };
        let table = render_top(&scrape);
        assert!(table.contains("read"), "table lists the op:\n{table}");
        assert!(table.contains("node 3: unreachable"), "table lists dead nodes:\n{table}");
        let json = scrape_to_json(&scrape);
        assert!(json.contains("\"serve.op.read.wall_ns\""));
        assert!(json.contains("\"unreachable\":[{\"node\":3"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
