//! [`ClusterClient`]: the router frontend.
//!
//! Speaks the bora-serve wire protocol to every node, routes each
//! container op to the node(s) the [`Ring`] says hold it, and hides
//! node-level faults:
//!
//! * **failover** — a transport fault, `Io`/`ChecksumMismatch` server
//!   error, or shutting-down node moves the request to the next replica
//!   (`cluster.failover` counts every such hop);
//! * **circuit breaking** — consecutive failures open a per-node
//!   [`CircuitBreaker`]; an open node is skipped at routing time and
//!   re-probed after a count-based cooldown;
//! * **hedging** — when the owner's reply exceeds an adaptive threshold
//!   (EWMA of observed read latency × a factor), the same read is issued
//!   to a replica and the first answer wins. `cluster.hedge.issued` /
//!   `cluster.hedge.wins` export the win rate via bora-obs;
//! * **streaming failover** — [`ClusterStream`] resumes a broken
//!   `READ_STREAM` on a replica by re-issuing the query and skipping the
//!   messages already delivered. The server-side merge order is
//!   deterministic (`(time, lane)` tie-break), so the resumed stream is
//!   byte-identical to an unbroken one;
//! * **cluster-wide merge** — [`MergedStream`] k-way heap-merges the
//!   per-container streams of many nodes into one chronological stream,
//!   the same merge shape the server uses per container.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use bora_serve::{
    ClientError, ClientResult, Connection, ErrorCode, MetricsReport, PingInfo, ProtoError,
    QueryReply, Request, Response, RetryBudget, RetryBudgetConfig, ServeClient, StatsSnapshot,
    Transport, WireMessage,
};
use crossbeam::channel::{self, RecvTimeoutError};
use ros_msgs::Time;

use crate::health::{BreakerConfig, BreakerState, CircuitBreaker};
use crate::ring::{NodeId, Ring};

/// How multi-replica reads pick a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutePolicy {
    /// Owner first, replicas only on failover (and as hedge targets).
    /// Maximizes per-node cache locality.
    #[default]
    Primary,
    /// Least-loaded healthy replica holder (in-flight count, round-robin
    /// tie-break). Spreads hot containers over their whole replica set —
    /// the policy that converts replication into read throughput.
    Spread,
}

/// Hedged-request knobs.
#[derive(Debug, Clone, Copy)]
pub struct HedgeConfig {
    /// Floor for the hedge trigger (protects cold-start, when the EWMA
    /// has seen nothing).
    pub min_threshold: Duration,
    /// Trigger = `max(min_threshold, factor × EWMA(read latency))`.
    pub factor: f64,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig { min_threshold: Duration::from_micros(500), factor: 3.0 }
    }
}

/// Router configuration.
#[derive(Debug, Clone)]
pub struct ClusterClientConfig {
    pub policy: RoutePolicy,
    /// `Some` enables hedged reads (only meaningful with ≥ 2 replicas).
    pub hedge: Option<HedgeConfig>,
    pub breaker: BreakerConfig,
    /// Per-request deadline budget stamped on every routed request (the
    /// wire deadline prefix), so servers shed work that expired in their
    /// queues. `None` sends deadline-free requests.
    pub deadline: Option<Duration>,
    /// Token-bucket budget shared by every failover hop and stream
    /// resume this client performs ([`RetryBudgetConfig`]): when a
    /// correlated outage empties the bucket, requests fail fast on their
    /// first error instead of walking the whole replica set. Hedges are
    /// exempt — a hedge fires because the primary is *slow*, not failed,
    /// and throttling it would re-create the tail-latency problem
    /// hedging exists to solve. `None` disables the budget.
    pub retry_budget: Option<RetryBudgetConfig>,
}

impl Default for ClusterClientConfig {
    fn default() -> Self {
        ClusterClientConfig {
            policy: RoutePolicy::default(),
            hedge: None,
            breaker: BreakerConfig::default(),
            deadline: None,
            retry_budget: Some(RetryBudgetConfig::default()),
        }
    }
}

/// One node as the router sees it: a transport, a bounded connection
/// pool, health state, and an in-flight gauge for load-aware routing.
pub struct NodeEndpoint<T: Transport> {
    pub id: NodeId,
    transport: T,
    pool: Mutex<Vec<ServeClient<T::Conn>>>,
    breaker: Mutex<CircuitBreaker>,
    inflight: AtomicUsize,
    /// Deadline budget stamped on every request through this endpoint.
    deadline: Option<Duration>,
}

/// Connections kept per node beyond which returned ones are dropped.
const POOL_MAX: usize = 8;

impl<T: Transport> NodeEndpoint<T> {
    fn new(id: NodeId, transport: T, breaker: BreakerConfig, deadline: Option<Duration>) -> Self {
        NodeEndpoint {
            id,
            transport,
            pool: Mutex::new(Vec::new()),
            breaker: Mutex::new(CircuitBreaker::new(breaker)),
            inflight: AtomicUsize::new(0),
            deadline,
        }
    }

    fn lease(&self) -> ClientResult<ServeClient<T::Conn>> {
        let mut client = match self.pool.lock().unwrap().pop() {
            Some(c) => c,
            None => ServeClient::new(self.transport.connect()?),
        };
        client.set_deadline(self.deadline);
        Ok(client)
    }

    fn release(&self, client: ServeClient<T::Conn>) {
        let mut pool = self.pool.lock().unwrap();
        if pool.len() < POOL_MAX {
            pool.push(client);
        }
    }

    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.lock().unwrap().state()
    }

    /// Run one request against this node, maintaining pool, breaker and
    /// in-flight accounting. A failover-worthy error drops the
    /// connection (it may be desynchronized); an application-level error
    /// keeps it (the node answered correctly — the request was wrong).
    fn attempt<R>(
        &self,
        op: &mut dyn FnMut(&mut ServeClient<T::Conn>) -> ClientResult<R>,
    ) -> ClientResult<R> {
        let mut client = match self.lease() {
            Ok(c) => c,
            Err(e) => {
                self.breaker.lock().unwrap().on_failure();
                return Err(e);
            }
        };
        self.inflight.fetch_add(1, Ordering::Relaxed);
        let res = op(&mut client);
        self.inflight.fetch_sub(1, Ordering::Relaxed);
        match &res {
            Ok(_) => {
                self.breaker.lock().unwrap().on_success();
                self.release(client);
            }
            Err(e) if should_failover(e) => {
                self.breaker.lock().unwrap().on_failure();
            }
            Err(_) => {
                self.breaker.lock().unwrap().on_success();
                self.release(client);
            }
        }
        res
    }
}

/// Should this error move the request to another replica? Transient
/// faults (transport, `Io`, `ChecksumMismatch`, overload, desync) and a
/// node that is shutting down; permanent application errors (unknown
/// topic, not a container, corrupt) answer the same everywhere.
pub fn should_failover(e: &ClientError) -> bool {
    e.is_transient() || matches!(e, ClientError::Server { code: ErrorCode::ShuttingDown, .. })
}

/// A statement the router itself cannot compile maps to the same wire
/// error a node would have answered with — callers see one error shape
/// whether the fault is caught router-side or node-side.
fn bad_query(e: bora_query::QueryError) -> ClientError {
    ClientError::Server { code: ErrorCode::BadQuery, message: e.to_string() }
}

fn no_nodes(container: &str) -> ClientError {
    ClientError::Io(std::io::Error::new(
        std::io::ErrorKind::NotFound,
        format!("no replica holds {container}"),
    ))
}

/// The router. Cheap to share per thread via its own instance — all
/// state (pools, breakers, EWMA) lives behind `Arc`, so `clone` yields a
/// handle onto the same cluster view.
pub struct ClusterClient<T: Transport> {
    ring: Arc<RwLock<Ring>>,
    nodes: BTreeMap<NodeId, Arc<NodeEndpoint<T>>>,
    cfg: ClusterClientConfig,
    /// EWMA of successful read wall latency, nanoseconds.
    ewma_ns: Arc<Mutex<f64>>,
    rr: Arc<AtomicUsize>,
    /// Shared failover/retry token bucket (see
    /// [`ClusterClientConfig::retry_budget`]); shared across clones so
    /// every handle onto the cluster draws from one budget.
    budget: Option<Arc<Mutex<RetryBudget>>>,
}

impl<T: Transport> Clone for ClusterClient<T> {
    fn clone(&self) -> Self {
        ClusterClient {
            ring: Arc::clone(&self.ring),
            nodes: self.nodes.clone(),
            cfg: self.cfg.clone(),
            ewma_ns: Arc::clone(&self.ewma_ns),
            rr: Arc::clone(&self.rr),
            budget: self.budget.clone(),
        }
    }
}

impl<T> ClusterClient<T>
where
    T: Transport + Send + Sync + 'static,
{
    /// Build a router over `(node id, transport)` pairs sharing `ring`.
    /// The ring is shared (not snapshotted) so membership changes made
    /// by the cluster control plane are visible to live clients.
    pub fn new(
        ring: Arc<RwLock<Ring>>,
        endpoints: impl IntoIterator<Item = (NodeId, T)>,
        cfg: ClusterClientConfig,
    ) -> Self {
        let nodes = endpoints
            .into_iter()
            .map(|(id, t)| (id, Arc::new(NodeEndpoint::new(id, t, cfg.breaker, cfg.deadline))))
            .collect();
        let budget = cfg.retry_budget.map(|b| Arc::new(Mutex::new(RetryBudget::new(b))));
        ClusterClient {
            ring,
            nodes,
            cfg,
            ewma_ns: Arc::new(Mutex::new(0.0)),
            rr: Arc::new(AtomicUsize::new(0)),
            budget,
        }
    }

    /// `(tokens banked, retries denied)` of the shared retry budget, if
    /// one is configured.
    pub fn retry_budget_stats(&self) -> Option<(f64, u64)> {
        self.budget.as_ref().map(|b| {
            let b = b.lock().unwrap();
            (b.tokens(), b.denied())
        })
    }

    /// Spend one budget token for a failover hop; `true` when allowed
    /// (or no budget is configured).
    fn try_spend_budget(&self) -> bool {
        match &self.budget {
            None => true,
            Some(b) => b.lock().unwrap().try_spend(),
        }
    }

    fn budget_on_success(&self) {
        if let Some(b) = &self.budget {
            b.lock().unwrap().on_success();
        }
    }

    pub fn ring(&self) -> Arc<RwLock<Ring>> {
        Arc::clone(&self.ring)
    }

    pub fn replicas(&self, container: &str) -> Vec<NodeId> {
        self.ring.read().unwrap().replicas(container)
    }

    pub fn owner(&self, container: &str) -> Option<NodeId> {
        self.ring.read().unwrap().owner(container)
    }

    /// Replica endpoints in attempt order under the configured policy.
    fn ordered(&self, container: &str) -> Vec<Arc<NodeEndpoint<T>>> {
        let replicas = self.ring.read().unwrap().replicas(container);
        let mut eps: Vec<_> =
            replicas.iter().filter_map(|id| self.nodes.get(id)).map(Arc::clone).collect();
        if matches!(self.cfg.policy, RoutePolicy::Spread) && eps.len() > 1 {
            let rr = self.rr.fetch_add(1, Ordering::Relaxed) % eps.len();
            eps.rotate_left(rr);
            // Stable sort: the rotation above breaks in-flight ties
            // round-robin instead of always favouring the lowest id.
            eps.sort_by_key(|ep| ep.inflight.load(Ordering::Relaxed));
        }
        eps
    }

    /// Try `op` on each replica in order until one answers. Nodes whose
    /// breaker denies are skipped — unless every node is denied, in
    /// which case the breakers are overridden (a fully-tripped cluster
    /// must still probe its way back).
    fn with_failover<R>(
        &self,
        container: &str,
        mut op: impl FnMut(&mut ServeClient<T::Conn>) -> ClientResult<R>,
    ) -> ClientResult<R> {
        let eps = self.ordered(container);
        if eps.is_empty() {
            return Err(no_nodes(container));
        }
        let mut last: Option<ClientError> = None;
        for ignore_breaker in [false, true] {
            let mut attempted = false;
            for ep in &eps {
                if !ignore_breaker && !ep.breaker.lock().unwrap().allow() {
                    continue;
                }
                if attempted {
                    // Every hop beyond the first spends a budget token:
                    // with the bucket empty the first error surfaces
                    // instead of every caller walking the replica set.
                    if !self.try_spend_budget() {
                        bora_obs::counter("cluster.retry_budget_denied").inc();
                        return Err(last.unwrap_or_else(|| no_nodes(container)));
                    }
                    bora_obs::counter("cluster.failover").inc();
                }
                attempted = true;
                // One span per attempt: in a merged trace, failover shows
                // up as sibling attempt spans, the abandoned ones marked
                // cancelled. Server-side spans parent under the attempt
                // (roundtrip propagates the innermost open span).
                let sp = bora_obs::span("cluster.attempt");
                match ep.attempt(&mut op) {
                    Ok(v) => {
                        sp.end();
                        self.budget_on_success();
                        return Ok(v);
                    }
                    Err(e) if should_failover(&e) => {
                        sp.cancel();
                        last = Some(e);
                    }
                    Err(e) => {
                        sp.end();
                        return Err(e);
                    }
                }
            }
            if attempted {
                break;
            }
        }
        Err(last.unwrap_or_else(|| no_nodes(container)))
    }

    pub fn open(&self, container: &str) -> ClientResult<bora_serve::ContainerStat> {
        let _sp = bora_obs::span("cluster.open");
        self.with_failover(container, |c| c.open(container).map(|(stat, _)| stat))
    }

    pub fn topics(&self, container: &str) -> ClientResult<Vec<String>> {
        let _sp = bora_obs::span("cluster.topics");
        self.with_failover(container, |c| c.topics(container))
    }

    pub fn meta(&self, container: &str) -> ClientResult<Vec<u8>> {
        let _sp = bora_obs::span("cluster.meta");
        self.with_failover(container, |c| c.meta(container))
    }

    pub fn stat(&self, container: &str) -> ClientResult<bora_serve::ContainerStat> {
        let _sp = bora_obs::span("cluster.stat");
        self.with_failover(container, |c| c.stat(container))
    }

    /// Replica endpoints in *ring order* (owner first, no load-aware
    /// rotation) — the deterministic order write fan-out uses.
    fn ring_ordered(&self, container: &str) -> Vec<Arc<NodeEndpoint<T>>> {
        let replicas = self.ring.read().unwrap().replicas(container);
        replicas.iter().filter_map(|id| self.nodes.get(id)).map(Arc::clone).collect()
    }

    /// Append live messages to `container`'s ingest root on **every**
    /// replica the ring assigns it. Writes do not fail over — replication
    /// *is* writing to all holders — and all must ack before the call
    /// returns: a node that cannot take the batch fails the append, so a
    /// reader served by any replica sees the same data. Returns the
    /// owner's `(appended, epoch)`.
    pub fn append(&self, container: &str, messages: &[WireMessage]) -> ClientResult<(u64, u64)> {
        let _sp = bora_obs::span("cluster.append");
        let eps = self.ring_ordered(container);
        if eps.is_empty() {
            return Err(no_nodes(container));
        }
        let mut owner_ack = None;
        for ep in &eps {
            let ack = ep.attempt(&mut |c| c.append(container, messages.to_vec()))?;
            owner_ack.get_or_insert(ack);
            bora_obs::counter("cluster.append.replica_acks").inc();
        }
        Ok(owner_ack.expect("non-empty replica set acked"))
    }

    /// Seal (and optionally compact) `container`'s ingest root on every
    /// replica. Same all-must-ack contract as [`ClusterClient::append`].
    /// Returns the owner's `(epoch, sealed_segments)`.
    pub fn seal(&self, container: &str, compact: bool) -> ClientResult<(u64, u32)> {
        let _sp = bora_obs::span("cluster.seal");
        let eps = self.ring_ordered(container);
        if eps.is_empty() {
            return Err(no_nodes(container));
        }
        let mut owner_ack = None;
        for ep in &eps {
            let ack = ep.attempt(&mut |c| c.seal(container, compact))?;
            owner_ack.get_or_insert(ack);
        }
        Ok(owner_ack.expect("non-empty replica set acked"))
    }

    pub fn read(&self, container: &str, topics: &[&str]) -> ClientResult<Vec<WireMessage>> {
        self.read_inner(container, topics, None)
    }

    pub fn read_time(
        &self,
        container: &str,
        topics: &[&str],
        start: Time,
        end: Time,
    ) -> ClientResult<Vec<WireMessage>> {
        self.read_inner(container, topics, Some((start, end)))
    }

    fn read_inner(
        &self,
        container: &str,
        topics: &[&str],
        range: Option<(Time, Time)>,
    ) -> ClientResult<Vec<WireMessage>> {
        let _sp = bora_obs::span("cluster.read");
        if self.cfg.hedge.is_some() {
            return self.read_hedged(container, topics, range);
        }
        let started = Instant::now();
        let out = self.with_failover(container, |c| match range {
            Some((s, e)) => c.read_time(container, topics, s, e),
            None => c.read(container, topics),
        });
        if out.is_ok() {
            self.note_read_latency(started.elapsed());
        }
        out
    }

    fn note_read_latency(&self, lat: Duration) {
        let mut ewma = self.ewma_ns.lock().unwrap();
        let ns = lat.as_nanos() as f64;
        *ewma = if *ewma == 0.0 { ns } else { 0.8 * *ewma + 0.2 * ns };
    }

    /// Current hedge trigger.
    pub fn hedge_threshold(&self) -> Duration {
        let h = self.cfg.hedge.unwrap_or_default();
        let ewma = *self.ewma_ns.lock().unwrap();
        h.min_threshold.max(Duration::from_nanos((h.factor * ewma) as u64))
    }

    /// Hedged read: issue to the first candidate; if no answer within
    /// the adaptive threshold, issue the identical read to the second
    /// and take whichever returns first. Replicas hold identical data
    /// and the read path is deterministic, so both answers are equal —
    /// the hedge trades duplicate work for tail latency only.
    fn read_hedged(
        &self,
        container: &str,
        topics: &[&str],
        range: Option<(Time, Time)>,
    ) -> ClientResult<Vec<WireMessage>> {
        let eps = self.ordered(container);
        if eps.len() < 2 {
            let started = Instant::now();
            let out = self.with_failover(container, |c| match range {
                Some((s, e)) => c.read_time(container, topics, s, e),
                None => c.read(container, topics),
            });
            if out.is_ok() {
                self.note_read_latency(started.elapsed());
            }
            return out;
        }

        let (tx, rx) = channel::unbounded();
        // Legs run on their own threads: each adopts the read's context so
        // its spans (and the server's) stay in the trace tree, and the
        // first leg to deliver a usable answer claims `winner` — every
        // other leg records its span cancelled, so hedged losers are
        // visible as abandoned siblings in the merged timeline.
        let winner = Arc::new(AtomicUsize::new(usize::MAX));
        let pctx = bora_obs::current_context();
        let spawn_read = |ep: Arc<NodeEndpoint<T>>, idx: usize| {
            let tx = tx.clone();
            let winner = Arc::clone(&winner);
            let container = container.to_owned();
            let topics: Vec<String> = topics.iter().map(|t| (*t).to_owned()).collect();
            std::thread::spawn(move || {
                let _ctx = bora_obs::adopt_context(pctx);
                let leg = bora_obs::span("cluster.hedge_leg");
                let started = Instant::now();
                let res = ep.attempt(&mut |c: &mut ServeClient<T::Conn>| {
                    let ts: Vec<&str> = topics.iter().map(String::as_str).collect();
                    match range {
                        Some((s, e)) => c.read_time(&container, &ts, s, e),
                        None => c.read(&container, &ts),
                    }
                });
                let won = res.is_ok()
                    && winner
                        .compare_exchange(usize::MAX, idx, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok();
                if won {
                    leg.end();
                } else {
                    leg.cancel();
                }
                // Receiver gone means the other leg already won — the
                // attempt above still ran to completion, keeping its
                // connection aligned and back in the pool.
                let _ = tx.send((idx, started.elapsed(), res));
            });
        };

        spawn_read(Arc::clone(&eps[0]), 0);
        let first = match rx.recv_timeout(self.hedge_threshold()) {
            Ok(msg) => Some(msg),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => unreachable!("tx held by this scope"),
        };

        match first {
            Some((_, lat, Ok(v))) => {
                self.note_read_latency(lat);
                self.budget_on_success();
                Ok(v)
            }
            Some((_, _, Err(e))) if !should_failover(&e) => Err(e),
            Some((_, _, Err(e))) => {
                // Primary failed fast: this is a failover, not a hedge,
                // so it spends a retry-budget token like any other hop.
                if !self.try_spend_budget() {
                    bora_obs::counter("cluster.retry_budget_denied").inc();
                    return Err(e);
                }
                bora_obs::counter("cluster.failover").inc();
                spawn_read(Arc::clone(&eps[1]), 1);
                let (_, lat, res) = rx.recv().expect("hedge leg sender alive");
                if res.is_ok() {
                    self.note_read_latency(lat);
                    self.budget_on_success();
                }
                res
            }
            None => {
                // Primary slow: hedge to the replica, first answer wins.
                // Deliberately budget-exempt — the primary has not
                // failed, and throttling hedges would re-create the tail
                // latency they exist to cut.
                bora_obs::counter("cluster.hedge.issued").inc();
                spawn_read(Arc::clone(&eps[1]), 1);
                let mut errors = 0;
                loop {
                    let (idx, lat, res) = rx.recv().expect("hedge leg sender alive");
                    match res {
                        Ok(v) => {
                            if idx == 1 {
                                bora_obs::counter("cluster.hedge.wins").inc();
                            }
                            self.note_read_latency(lat);
                            self.budget_on_success();
                            return Ok(v);
                        }
                        Err(e) => {
                            errors += 1;
                            if errors == 2 {
                                return Err(e);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Open a streaming read with transparent mid-stream failover.
    pub fn read_stream(&self, container: &str, topics: &[&str]) -> ClientResult<ClusterStream<T>> {
        self.read_stream_inner(container, topics, None)
    }

    /// Time-ranged variant of [`ClusterClient::read_stream`].
    pub fn read_stream_time(
        &self,
        container: &str,
        topics: &[&str],
        start: Time,
        end: Time,
    ) -> ClientResult<ClusterStream<T>> {
        self.read_stream_inner(container, topics, Some((start, end)))
    }

    fn read_stream_inner(
        &self,
        container: &str,
        topics: &[&str],
        range: Option<(Time, Time)>,
    ) -> ClientResult<ClusterStream<T>> {
        let eps = self.ordered(container);
        if eps.is_empty() {
            return Err(no_nodes(container));
        }
        let mut stream = ClusterStream {
            eps,
            cursor: 0,
            current: None,
            container: container.to_owned(),
            topics: topics.iter().map(|t| (*t).to_owned()).collect(),
            range,
            buffer: VecDeque::new(),
            skip: 0,
            fetched: 0,
            yielded: 0,
            done: false,
            deadline: self.cfg.deadline,
            budget: self.budget.clone(),
        };
        stream.connect_next()?;
        Ok(stream)
    }

    /// One chronological stream over many containers: a per-container
    /// [`ClusterStream`] per lane, k-way merged by `(time, lane)` — the
    /// same heap merge the server applies across a container's topic
    /// lanes, lifted to the cluster level.
    pub fn read_stream_multi(
        &self,
        containers: &[&str],
        topics: &[&str],
        range: Option<(Time, Time)>,
    ) -> ClientResult<MergedStream<T>> {
        let mut lanes = Vec::with_capacity(containers.len());
        for c in containers {
            lanes.push(self.read_stream_inner(c, topics, range)?);
        }
        MergedStream::new(lanes)
    }

    /// Run a declarative query against one container, routed to a node
    /// that holds it (with the usual failover/breaker machinery).
    pub fn query(&self, container: &str, sql: &str) -> ClientResult<QueryReply> {
        self.query_multi(&[container], sql)
    }

    /// Run one query across many containers — the distributed plan from
    /// `bora-query`'s `distrib` module:
    ///
    /// * **aggregate** queries ship a partial-aggregate fragment to each
    ///   container's node and merge the flattened per-window states at
    ///   the router in container order
    ///   ([`bora_query::merge_partials`]), then finalize and apply
    ///   LIMIT — so the result bytes are identical whether one node owns
    ///   every container or each lives elsewhere;
    /// * **everything else** ships the statement as-is and concatenates
    ///   rows in container order, re-applying the global LIMIT.
    ///
    /// `EXPLAIN` renders the router's plan without executing anything;
    /// `EXPLAIN ANALYZE` executes and appends one line per fragment
    /// (container, rows shipped, wire bytes). The reply's `wire_bytes`
    /// sums the response payload bytes of every fragment — the number
    /// the `ext_query` experiment compares against a row-shipping plan.
    pub fn query_multi(&self, containers: &[&str], sql: &str) -> ClientResult<QueryReply> {
        let _sp = bora_obs::span("cluster.query");
        let p = bora_query::prepare(sql).map_err(bad_query)?;
        if containers.is_empty() {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "query over an empty container list",
            )));
        }
        if p.explain_mode() == bora_query::ExplainMode::Plan {
            return Ok(QueryReply {
                columns: p.plan.columns.clone(),
                explain: bora_query::explain_text(&p, None),
                ..QueryReply::default()
            });
        }

        let agg = p.plan.agg.is_some();
        let frag = if agg {
            bora_query::partial_fragment(&p.query)
        } else {
            bora_query::rowship_query(&p.query)
        };
        let mut wire_bytes = 0u64;
        let mut frag_lines = String::new();
        let mut per_container: Vec<Vec<bora_query::Row>> = Vec::with_capacity(containers.len());
        for c in containers {
            let reply = self.with_failover(c, |cl| {
                if agg {
                    cl.query_partial(c, &frag)
                } else {
                    cl.query(c, &frag)
                }
            })?;
            wire_bytes += reply.wire_bytes;
            if p.explain_mode() == bora_query::ExplainMode::Analyze {
                frag_lines.push_str(&format!(
                    "fragment '{c}': rows={} bytes={} {}\n",
                    reply.rows_total,
                    reply.wire_bytes,
                    if agg { "partial-aggregate" } else { "row-ship" },
                ));
            }
            per_container.push(reply.rows);
        }

        let rows = if agg {
            bora_query::merge_partials(&p.plan, &per_container).map_err(bad_query)?
        } else {
            let mut rows: Vec<bora_query::Row> = per_container.into_iter().flatten().collect();
            if let Some(n) = p.plan.limit {
                rows.truncate(n as usize);
            }
            rows
        };
        let explain = if p.explain_mode() == bora_query::ExplainMode::Analyze {
            format!("{}{}", bora_query::explain_text(&p, None), frag_lines)
        } else {
            String::new()
        };
        Ok(QueryReply {
            columns: p.plan.columns.clone(),
            rows_total: rows.len() as u64,
            rows,
            explain,
            wire_bytes,
        })
    }

    /// Health-probe one node directly (not routed through the ring).
    pub fn ping(&self, node: NodeId) -> ClientResult<PingInfo> {
        let ep = self.nodes.get(&node).ok_or_else(|| no_nodes(&format!("node {node}")))?;
        ep.attempt(&mut |c| c.ping())
    }

    /// Probe every node; the per-node result doubles as liveness.
    pub fn ping_all(&self) -> Vec<(NodeId, ClientResult<PingInfo>)> {
        self.nodes.iter().map(|(id, ep)| (*id, ep.attempt(&mut |c| c.ping()))).collect()
    }

    /// One node's `STATS` snapshot (virtual-time accounting lives here).
    pub fn node_stats(&self, node: NodeId) -> ClientResult<StatsSnapshot> {
        let ep = self.nodes.get(&node).ok_or_else(|| no_nodes(&format!("node {node}")))?;
        ep.attempt(&mut |c| c.stats())
    }

    /// One node's full `METRICS` scrape (registry + slow-op tail) — what
    /// the telemetry poller aggregates across the fleet.
    pub fn node_metrics(&self, node: NodeId) -> ClientResult<MetricsReport> {
        let ep = self.nodes.get(&node).ok_or_else(|| no_nodes(&format!("node {node}")))?;
        ep.attempt(&mut |c| c.metrics())
    }

    /// Every reachable node's `METRICS` scrape; unreachable nodes report
    /// their error (the poller counts them, it does not fail the sweep).
    pub fn metrics_all(&self) -> Vec<(NodeId, ClientResult<MetricsReport>)> {
        self.nodes
            .iter()
            .map(|(id, ep)| {
                let mut res = ep.attempt(&mut |c| c.metrics());
                // A pooled connection can die while parked: the peer
                // answers its last request, then begins shutting down and
                // closes before the next lease. The failed attempt drops
                // the stale connection, so one retry runs on a fresh one —
                // METRICS is idempotent control-plane, and a node that is
                // *actually* unreachable just fails twice.
                if matches!(res, Err(ClientError::Io(_))) {
                    res = ep.attempt(&mut |c| c.metrics());
                }
                (*id, res)
            })
            .collect()
    }

    /// Breaker state per node, for observability.
    pub fn breaker_states(&self) -> Vec<(NodeId, BreakerState)> {
        self.nodes.iter().map(|(id, ep)| (*id, ep.breaker_state())).collect()
    }
}

// ----------------------------------------------------------------- stream

/// A cluster-routed `READ_STREAM` with mid-stream failover.
///
/// If the serving node dies mid-stream, the identical query is re-issued
/// to the next replica and the first `fetched` messages of the re-issue
/// are skipped. Both nodes merge the same container with the same
/// deterministic `(time, lane)` order, so the resumed tail continues the
/// broken stream byte-for-byte.
pub struct ClusterStream<T: Transport> {
    eps: Vec<Arc<NodeEndpoint<T>>>,
    cursor: usize,
    current: Option<(Arc<NodeEndpoint<T>>, T::Conn)>,
    container: String,
    topics: Vec<String>,
    range: Option<(Time, Time)>,
    buffer: VecDeque<WireMessage>,
    /// Messages of the current (re-issued) stream still to discard.
    skip: u64,
    /// Unique messages pulled into `buffer` over the stream's lifetime.
    fetched: u64,
    /// Messages handed to the consumer.
    yielded: u64,
    done: bool,
    /// Deadline budget stamped on each (re-)issued stream request.
    deadline: Option<Duration>,
    /// The owning client's shared retry budget: each mid-stream failover
    /// spends a token, so a flapping network cannot turn one stream into
    /// an unbounded reconnect storm.
    budget: Option<Arc<Mutex<RetryBudget>>>,
}

impl<T: Transport> ClusterStream<T> {
    pub fn received(&self) -> u64 {
        self.yielded
    }

    fn connect_next(&mut self) -> ClientResult<()> {
        let req = Request::ReadStream {
            container: self.container.clone(),
            topics: self.topics.clone(),
            range: self.range,
        };
        let mut last: Option<ClientError> = None;
        while self.cursor < self.eps.len() {
            let ep = Arc::clone(&self.eps[self.cursor]);
            self.cursor += 1;
            // Propagate whatever span is open at (re)connect time — for a
            // mid-stream failover that is still the caller's span, so the
            // resumed stream stays in the same trace tree.
            let deadline_ns =
                self.deadline.map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
            match ep.transport.connect() {
                Ok(mut conn) => {
                    match conn
                        .send_frame(&req.encode_framed(bora_obs::current_context(), deadline_ns))
                    {
                        Ok(()) => {
                            self.skip = self.fetched;
                            self.current = Some((ep, conn));
                            return Ok(());
                        }
                        Err(e) => {
                            ep.breaker.lock().unwrap().on_failure();
                            last = Some(e.into());
                        }
                    }
                }
                Err(e) => {
                    ep.breaker.lock().unwrap().on_failure();
                    last = Some(e.into());
                }
            }
        }
        Err(last.unwrap_or_else(|| no_nodes(&self.container)))
    }

    fn failover(&mut self) -> Option<ClientError> {
        if let Some((ep, _)) = self.current.take() {
            ep.breaker.lock().unwrap().on_failure();
        }
        // A stream resume is a retry like any other: it spends from the
        // client's shared budget, and an empty bucket ends the stream
        // with an error instead of hammering the surviving replicas.
        if let Some(b) = &self.budget {
            if !b.lock().unwrap().try_spend() {
                bora_obs::counter("cluster.retry_budget_denied").inc();
                return Some(ClientError::Io(std::io::Error::other(format!(
                    "retry budget exhausted resuming stream of {}",
                    self.container
                ))));
            }
        }
        bora_obs::counter("cluster.failover").inc();
        self.connect_next().err()
    }

    /// Pull frames until the buffer has a message, the stream ends, or
    /// an unrecoverable error surfaces.
    fn fill(&mut self) -> Option<ClientError> {
        loop {
            if self.done || !self.buffer.is_empty() {
                return None;
            }
            let Some((_, conn)) = self.current.as_mut() else {
                return Some(no_nodes(&self.container));
            };
            let frame = match conn.recv_frame() {
                Ok(f) => f,
                Err(_) => {
                    if let Some(e) = self.failover() {
                        return Some(e);
                    }
                    continue;
                }
            };
            match Response::decode(&frame) {
                Ok(Response::StreamChunk(msgs)) => {
                    for m in msgs {
                        if self.skip > 0 {
                            self.skip -= 1;
                        } else {
                            self.fetched += 1;
                            self.buffer.push_back(m);
                        }
                    }
                }
                Ok(Response::StreamEnd { .. }) => {
                    if let Some((ep, _)) = self.current.take() {
                        ep.breaker.lock().unwrap().on_success();
                    }
                    if let Some(b) = &self.budget {
                        b.lock().unwrap().on_success();
                    }
                    self.done = true;
                }
                Ok(Response::Overloaded) => {
                    if let Some(e) = self.failover() {
                        return Some(e);
                    }
                }
                Ok(Response::Error { code, message }) => {
                    let err = ClientError::Server { code, message };
                    if should_failover(&err) {
                        if let Some(e) = self.failover() {
                            return Some(e);
                        }
                    } else {
                        self.done = true;
                        return Some(err);
                    }
                }
                Ok(other) => {
                    self.done = true;
                    return Some(ClientError::Proto(ProtoError(format!(
                        "unexpected response in READ_STREAM: {other:?}"
                    ))));
                }
                Err(_) => {
                    // Undecodable frame: treat as a desynchronized
                    // stream, same as a transport fault.
                    if let Some(e) = self.failover() {
                        return Some(e);
                    }
                }
            }
        }
    }
}

impl<T: Transport> Iterator for ClusterStream<T> {
    type Item = ClientResult<WireMessage>;

    fn next(&mut self) -> Option<Self::Item> {
        if let Some(m) = self.buffer.pop_front() {
            self.yielded += 1;
            return Some(Ok(m));
        }
        if self.done {
            return None;
        }
        if let Some(e) = self.fill() {
            self.done = true;
            return Some(Err(e));
        }
        self.buffer.pop_front().map(|m| {
            self.yielded += 1;
            Ok(m)
        })
    }
}

// ------------------------------------------------------------ k-way merge

/// Chronological k-way heap merge over per-container cluster streams.
///
/// Each lane is a [`ClusterStream`] (so lanes fail over independently);
/// the heap orders by `(time, lane index)` — the stable tie-break that
/// makes the merged order deterministic across runs and across node
/// deaths.
pub struct MergedStream<T: Transport> {
    lanes: Vec<ClusterStream<T>>,
    heads: Vec<Option<WireMessage>>,
    heap: BinaryHeap<Reverse<(u64, usize)>>,
    failed: bool,
}

impl<T: Transport> MergedStream<T> {
    fn new(mut lanes: Vec<ClusterStream<T>>) -> ClientResult<Self> {
        let mut heads = Vec::with_capacity(lanes.len());
        let mut heap = BinaryHeap::with_capacity(lanes.len());
        for (i, lane) in lanes.iter_mut().enumerate() {
            match lane.next() {
                Some(Ok(m)) => {
                    heap.push(Reverse((m.time.as_nanos(), i)));
                    heads.push(Some(m));
                }
                Some(Err(e)) => return Err(e),
                None => heads.push(None),
            }
        }
        Ok(MergedStream { lanes, heads, heap, failed: false })
    }
}

impl<T: Transport> Iterator for MergedStream<T> {
    type Item = ClientResult<WireMessage>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        let Reverse((_, lane)) = self.heap.pop()?;
        let out = self.heads[lane].take().expect("heap entry implies a head");
        match self.lanes[lane].next() {
            Some(Ok(m)) => {
                self.heap.push(Reverse((m.time.as_nanos(), lane)));
                self.heads[lane] = Some(m);
            }
            Some(Err(e)) => {
                self.failed = true;
                return Some(Err(e));
            }
            None => {}
        }
        Some(Ok(out))
    }
}
