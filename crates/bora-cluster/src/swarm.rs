//! Swarm queries over the cluster: [`ClusterBackend`] plugs the router
//! into `bora`'s generic swarm fan-out.
//!
//! `bora::SwarmQuery` fans one query per robot over scoped threads; its
//! [`bora::SwarmBackend`] trait decides where each robot's query runs.
//! This backend routes each robot's container to the cluster node(s)
//! holding it — with the router's failover and hedging intact — so a
//! "Bullet Time" extraction keeps working through a node death.

use std::time::Instant;

use bora::{BoraError, BoraResult, SwarmBackend, SwarmSpec};
use bora_serve::{ClientError, Transport, WireMessage};
use rosbag::MessageRecord;

use crate::client::ClusterClient;

/// A [`SwarmBackend`] that answers each robot from the cluster.
pub struct ClusterBackend<'c, T: Transport> {
    pub client: &'c ClusterClient<T>,
}

fn to_record(m: WireMessage) -> MessageRecord {
    MessageRecord { conn_id: 0, topic: m.topic, time: m.time, data: m.data }
}

fn to_bora_error(e: ClientError) -> BoraError {
    match e {
        ClientError::Server { code: bora_serve::ErrorCode::UnknownTopic, message } => {
            BoraError::UnknownTopic(message)
        }
        ClientError::Server { code: bora_serve::ErrorCode::NotAContainer, message } => {
            BoraError::NotAContainer(message)
        }
        other => BoraError::Fs(simfs::FsError::Io(other.to_string())),
    }
}

impl<T> SwarmBackend for ClusterBackend<'_, T>
where
    T: Transport + Send + Sync + 'static,
{
    fn query_robot(
        &self,
        root: &str,
        spec: &SwarmSpec,
        _swarm_size: u32,
    ) -> BoraResult<(Vec<MessageRecord>, u64)> {
        let topics: Vec<&str> = spec.topics.iter().map(String::as_str).collect();
        let started = Instant::now();
        let msgs = match spec.range {
            Some((start, end)) => self.client.read_time(root, &topics, start, end),
            None => self.client.read(root, &topics),
        }
        .map_err(to_bora_error)?;
        // Serving moves the cost model behind the wire, so the robot's
        // clock is the observed wall time of the routed query (which is
        // what hedging/failover actually change).
        let elapsed = started.elapsed().as_nanos() as u64;
        Ok((msgs.into_iter().map(to_record).collect(), elapsed))
    }
}

/// Fan a swarm query over the cluster: one routed query per robot.
pub fn swarm_query<T>(
    client: &ClusterClient<T>,
    roots: &[String],
    spec: &SwarmSpec,
) -> BoraResult<bora::SwarmResult>
where
    T: Transport + Send + Sync + 'static,
{
    bora::swarm_fan_out(&ClusterBackend { client }, roots, spec)
}
