//! Property tests for the block-framed storage format (`bora::block`).
//!
//! The deterministic unit tests in `block.rs` pin known shapes; these
//! sweep randomized payload sets across every codec and odd block sizes
//! to hold the format's core promises:
//!
//! * encode → decode is **byte-identical**, end-to-end and per block;
//! * any single flipped byte surfaces a **typed** error — payload
//!   corruption specifically as [`BoraError::ChecksumMismatch`] — never
//!   a panic and never silently wrong bytes;
//! * torn (truncated) frames fail typed too;
//! * at container level, a corrupt block quarantines its topic: the
//!   first read reports the mismatch, later reads get `TopicDamaged`,
//!   sibling topics keep serving.

use proptest::collection::vec;
use proptest::prelude::*;
use proptest::sample::select;

use bora::block::{decode_frame, decode_frames, FRAME_HEADER_LEN};
use bora::{BlockCodec, BlockMap, BlockParams, BlockWriter, BoraError};
use ros_msgs::Time;
use simfs::IoCtx;

/// Payload mix an ingest shard actually sees: runs of repetitive bytes
/// (compressible), short counters, and PRNG-ish noise (incompressible).
fn arb_payloads() -> impl Strategy<Value = Vec<Vec<u8>>> {
    vec(
        (0u8..4, 0usize..160).prop_map(|(kind, len)| match kind {
            0 => vec![0xAB; len],
            1 => (0..len).map(|i| (i % 7) as u8).collect(),
            2 => {
                let mut x = 0x9E37_79B9u32 ^ len as u32;
                (0..len)
                    .map(|_| {
                        x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                        (x >> 24) as u8
                    })
                    .collect()
            }
            _ => Vec::new(),
        }),
        0..24,
    )
}

fn arb_codec() -> impl Strategy<Value = BlockCodec> {
    select(vec![BlockCodec::None, BlockCodec::Lzss])
}

fn write_blocks(
    codec: BlockCodec,
    block_size: u32,
    payloads: &[Vec<u8>],
) -> (Vec<u8>, BlockMap, Vec<u8>) {
    let mut ctx = IoCtx::new();
    let mut w = BlockWriter::new(BlockParams { codec, block_size });
    let mut logical = Vec::new();
    for (i, p) in payloads.iter().enumerate() {
        w.push(Time::new(i as u32, 0), p, &mut ctx);
        logical.extend_from_slice(p);
    }
    let (frames, map, _phys_len, _crc) = w.finish(&mut ctx);
    (frames, map, logical)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn roundtrip_is_byte_identical(
        payloads in arb_payloads(),
        codec in arb_codec(),
        block_size in select(vec![16u32, 48, 64, 257, 1024]),
    ) {
        let (frames, map, logical) = write_blocks(codec, block_size, &payloads);
        let mut ctx = IoCtx::new();
        prop_assert_eq!(map.logical_len, logical.len() as u64);
        let decoded = decode_frames(&frames, "t/data", &mut ctx).unwrap();
        prop_assert_eq!(&decoded, &logical);
        // Random access through the map agrees with the sequential view.
        for (i, e) in map.entries.iter().enumerate() {
            let (start, len) = map.logical_range(i);
            let frame = &frames[e.phys_off as usize..(e.phys_off + e.frame_len as u64) as usize];
            let (block, used) = decode_frame(frame, "t/data", &mut ctx).unwrap();
            prop_assert_eq!(used as u32, e.frame_len);
            prop_assert_eq!(&block[..], &logical[start as usize..start as usize + len]);
        }
        // The map survives its own wire encoding.
        prop_assert_eq!(BlockMap::decode(&map.encode()).unwrap(), map);
    }

    #[test]
    fn corruption_is_typed_never_silent(
        payloads in arb_payloads(),
        codec in arb_codec(),
        flip_pos in 0usize..4096,
        flip_bit in 0u8..8,
    ) {
        let (frames, map, _logical) = write_blocks(codec, 64, &payloads);
        if map.entries.is_empty() {
            return Err(TestCaseError::reject("all payloads empty"));
        }
        let mut ctx = IoCtx::new();
        // Aim the flip at one frame, wrapping the position into it.
        let e = map.entries[flip_pos % map.entries.len()];
        let lo = e.phys_off as usize;
        let mut frame = frames[lo..lo + e.frame_len as usize].to_vec();
        let pos = flip_pos % frame.len();
        frame[pos] ^= 1 << flip_bit;
        match decode_frame(&frame, "imu/data", &mut ctx) {
            // Payload corruption must be the *typed* mismatch, so the
            // read path can quarantine and the tooling can report it.
            Err(BoraError::ChecksumMismatch { path, .. }) if pos >= FRAME_HEADER_LEN => {
                prop_assert_eq!(path, "imu/data");
            }
            // Header corruption may fail earlier (bad codec tag, bad
            // lengths) — any typed error is fine; silence is not.
            Err(_) => {}
            Ok(_) => prop_assert!(false, "flipped bit {flip_bit} at {pos} decoded Ok"),
        }
    }

    #[test]
    fn torn_frames_fail_typed(
        payloads in arb_payloads(),
        codec in arb_codec(),
        cut_at in 0usize..4096,
    ) {
        let (frames, map, _logical) = write_blocks(codec, 64, &payloads);
        if map.entries.is_empty() {
            return Err(TestCaseError::reject("all payloads empty"));
        }
        let mut ctx = IoCtx::new();
        let e = map.entries[0];
        let frame = &frames[e.phys_off as usize..(e.phys_off + e.frame_len as u64) as usize];
        let cut = cut_at % frame.len();
        prop_assert!(decode_frame(&frame[..cut], "t/data", &mut ctx).is_err());
    }
}

/// Container-level quarantine: a flipped payload byte inside one topic's
/// block file poisons that topic only — typed error first, `TopicDamaged`
/// after, sibling topics unaffected.
#[test]
fn corrupt_block_quarantines_only_its_topic() {
    use ros_msgs::sensor_msgs::Imu;
    use rosbag::{BagWriter, BagWriterOptions};
    use simfs::{MemStorage, Storage};

    let fs = MemStorage::new();
    let mut ctx = IoCtx::new();
    let mut w = BagWriter::create(&fs, "/m.bag", BagWriterOptions::default(), &mut ctx).unwrap();
    for i in 0..50u32 {
        let t = Time::new(100 + i, 0);
        let mut imu = Imu::default();
        imu.header.seq = i;
        imu.header.stamp = t;
        w.write_ros_message("/imu", t, &imu, &mut ctx).unwrap();
        w.write_ros_message("/imu2", t, &imu, &mut ctx).unwrap();
    }
    w.close(&mut ctx).unwrap();
    let opts = bora::OrganizerOptions {
        block: Some(BlockParams { codec: BlockCodec::Lzss, block_size: 4096 }),
        ..Default::default()
    };
    bora::duplicate(&fs, "/m.bag", &fs, "/c", &opts, &mut ctx).unwrap();

    // Flip one payload byte of /imu's block-framed data file.
    let data = "/c/imu/data";
    let off = FRAME_HEADER_LEN as u64 + 3;
    let byte = fs.read_at(data, off, 1, &mut ctx).unwrap()[0];
    fs.write_at(data, off, &[byte ^ 0x40], &mut ctx).unwrap();

    let bag = bora::BoraBag::open(&fs, "/c", &mut ctx).unwrap();
    match bag.read_topic_raw("/imu", &mut ctx) {
        Err(BoraError::ChecksumMismatch { .. }) => {}
        other => panic!("expected ChecksumMismatch, got {:?}", other.map(|_| "Ok(..)")),
    }
    match bag.read_topic_raw("/imu", &mut ctx) {
        Err(BoraError::TopicDamaged(t)) => assert_eq!(t, "/imu"),
        other => panic!("expected TopicDamaged, got {:?}", other.map(|_| "Ok(..)")),
    }
    let (index, _) = bag.read_topic_raw("/imu2", &mut ctx).unwrap();
    assert_eq!(index.len(), 50, "sibling topic must keep serving");
}
