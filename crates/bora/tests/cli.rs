//! End-to-end test of the `bora-tool` binary against real files.

use std::path::PathBuf;
use std::process::Command;

use ros_msgs::sensor_msgs::Imu;
use ros_msgs::tf2_msgs::TfMessage;
use ros_msgs::Time;
use rosbag::{BagWriter, BagWriterOptions};
use simfs::{IoCtx, LocalStorage};

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bora-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_demo_bag(dir: &PathBuf, n: u32) {
    let fs = LocalStorage::new(dir).unwrap();
    let mut ctx = IoCtx::new();
    let mut w = BagWriter::create(
        &fs,
        "/demo.bag",
        BagWriterOptions { chunk_size: 4096, ..Default::default() },
        &mut ctx,
    )
    .unwrap();
    for i in 0..n {
        let t = Time::new(100 + i, 0);
        let mut imu = Imu::default();
        imu.header.seq = i;
        imu.header.stamp = t;
        w.write_ros_message("/imu", t, &imu, &mut ctx).unwrap();
        if i % 4 == 0 {
            w.write_ros_message("/tf", t, &TfMessage::default(), &mut ctx).unwrap();
        }
    }
    w.close(&mut ctx).unwrap();
}

fn tool() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bora-tool"))
}

#[test]
fn full_cli_lifecycle_on_disk() {
    let dir = workdir("life");
    write_demo_bag(&dir, 80);
    let bag = dir.join("demo.bag");
    let container = dir.join("demo_container");

    // import
    let out = tool().arg("import").arg(&bag).arg(&container).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("imported 100 messages"));
    assert!(container.join("imu").join("data").exists());
    assert!(container.join(".bora").exists());

    // info + topics
    let out = tool().arg("info").arg(&container).output().unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("messages:     100"), "{text}");
    assert!(text.contains("/imu"));
    let out = tool().arg("topics").arg(&container).output().unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(text.trim().lines().collect::<Vec<_>>(), vec!["/imu", "/tf"]);

    // query all + windowed
    let out = tool().arg("query").arg(&container).arg("/imu").output().unwrap();
    assert!(String::from_utf8_lossy(&out.stdout).contains("80 messages"));
    let out = tool().arg("query").arg(&container).args(["/imu", "110", "120"]).output().unwrap();
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("10 messages"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );

    // verify
    let out = tool().arg("verify").arg(&container).output().unwrap();
    assert!(String::from_utf8_lossy(&out.stdout).contains("OK: 100 messages"));

    // export, and the exported bag imports again losslessly
    let rebag = dir.join("rebag.bag");
    let out = tool().arg("export").arg(&container).arg(&rebag).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("exported 100 messages"));
    let container2 = dir.join("round2");
    let out = tool().arg("import").arg(&rebag).arg(&container2).output().unwrap();
    assert!(out.status.success());
    let out = tool().arg("verify").arg(&container2).output().unwrap();
    assert!(String::from_utf8_lossy(&out.stdout).contains("OK: 100 messages"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn verify_detects_tampering() {
    let dir = workdir("tamper");
    write_demo_bag(&dir, 20);
    let container = dir.join("c");
    assert!(tool()
        .arg("import")
        .arg(dir.join("demo.bag"))
        .arg(&container)
        .status()
        .unwrap()
        .success());

    // Chop bytes off a topic data file.
    let data = container.join("imu").join("data");
    let bytes = std::fs::read(&data).unwrap();
    std::fs::write(&data, &bytes[..bytes.len() - 8]).unwrap();

    let out = tool().arg("verify").arg(&container).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("CORRUPT"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn import_refuses_garbage() {
    let dir = workdir("garbage");
    std::fs::write(dir.join("junk.bag"), vec![0u8; 9000]).unwrap();
    let out = tool().arg("import").arg(dir.join("junk.bag")).arg(dir.join("c")).output().unwrap();
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}
