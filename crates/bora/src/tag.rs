//! The tag manager: a hash table mapping topic names to back-end paths.
//!
//! BORA does **not** persist this table; it is rebuilt from a directory
//! listing whenever a container is opened (paper §III.B, Table I — the
//! rebuild stays under ~36 ms even at 100,000 topics, negligible next to
//! query time). Keys are topic names, values the per-topic path bundle.

use std::collections::HashMap;
use std::sync::Arc;

use simfs::device::cpu;
use simfs::{EntryKind, IoCtx, Storage};

use crate::error::{BoraError, BoraResult};
use crate::layout::{decode_topic, TopicPaths, META_FILE};

/// Hash table topic → back-end paths for one container.
///
/// Values sit behind `Arc` so queries can hold onto a topic's path bundle
/// (`lookup_arc`) with a reference bump instead of cloning four `String`s
/// per query, and so interned `Arc<str>` topic keys can be shared with the
/// streaming read path.
#[derive(Debug, Clone)]
pub struct TagManager {
    root: String,
    map: HashMap<Arc<str>, Arc<TopicPaths>>,
}

impl TagManager {
    /// Build the table from the container's directory listing — the
    /// entirety of BORA's open-time index work (Fig. 4b).
    pub fn build<S: Storage>(
        storage: &S,
        container_root: &str,
        ctx: &mut IoCtx,
    ) -> BoraResult<Self> {
        let entries = storage.read_dir(container_root, ctx)?;
        let mut map = HashMap::with_capacity(entries.len());
        for e in entries {
            if e.kind != EntryKind::Dir {
                continue; // `.bora` metadata file and any stray files
            }
            let topic = decode_topic(&e.name);
            ctx.charge_ns(cpu::HASH_OP_NS);
            map.insert(Arc::from(topic), Arc::new(TopicPaths::from_dir(container_root, &e.name)));
        }
        if map.is_empty() && !entries_has_meta(storage, container_root, ctx) {
            return Err(BoraError::NotAContainer(container_root.to_owned()));
        }
        Ok(TagManager { root: container_root.to_owned(), map })
    }

    /// Build from an in-memory topic list (used by the organizer right
    /// after it created the container, avoiding a redundant listing).
    pub fn from_topics(container_root: &str, topics: &[String]) -> Self {
        let map = topics
            .iter()
            .map(|t| (Arc::from(t.as_str()), Arc::new(TopicPaths::new(container_root, t))))
            .collect();
        TagManager { root: container_root.to_owned(), map }
    }

    pub fn root(&self) -> &str {
        &self.root
    }

    /// Hash lookup of a topic's back-end paths (charged like a hash op).
    pub fn lookup(&self, topic: &str, ctx: &mut IoCtx) -> BoraResult<&TopicPaths> {
        ctx.charge_ns(cpu::HASH_OP_NS);
        self.map
            .get(topic)
            .map(Arc::as_ref)
            .ok_or_else(|| BoraError::UnknownTopic(topic.to_owned()))
    }

    /// Like [`TagManager::lookup`], but hands out a shared handle — a
    /// reference bump, not four `String` clones. Queries that need the
    /// paths to outlive the lookup borrow (cursors, streams) use this.
    pub fn lookup_arc(&self, topic: &str, ctx: &mut IoCtx) -> BoraResult<Arc<TopicPaths>> {
        ctx.charge_ns(cpu::HASH_OP_NS);
        self.map.get(topic).cloned().ok_or_else(|| BoraError::UnknownTopic(topic.to_owned()))
    }

    /// The interned `Arc<str>` key for a topic, shared with every stream
    /// message so delivery never allocates a topic name.
    pub fn interned_topic(&self, topic: &str) -> Option<Arc<str>> {
        self.map.get_key_value(topic).map(|(k, _)| Arc::clone(k))
    }

    pub fn topics(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.map.keys().map(|k| &**k).collect();
        v.sort_unstable();
        v
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate resident size of the table in bytes (Table I's "Hash
    /// Table Size" column): key + value strings plus per-entry overhead.
    pub fn approx_size_bytes(&self) -> usize {
        self.map
            .iter()
            .map(|(k, v)| {
                k.len() + v.dir.len() + v.data.len() + v.index.len() + v.tindex.len() + 48
            })
            .sum()
    }
}

fn entries_has_meta<S: Storage>(storage: &S, root: &str, ctx: &mut IoCtx) -> bool {
    storage.exists(&crate::layout::meta_path(root), ctx) || {
        // A container with zero topics still has its meta file; anything
        // else is not a container.
        let _ = META_FILE;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simfs::MemStorage;

    fn make_container(fs: &MemStorage, root: &str, topics: &[&str]) {
        let mut ctx = IoCtx::new();
        fs.append(&crate::layout::meta_path(root), b"m", &mut ctx).unwrap();
        for t in topics {
            let p = TopicPaths::new(root, t);
            fs.append(&p.data, b"d", &mut ctx).unwrap();
            fs.append(&p.index, b"i", &mut ctx).unwrap();
        }
    }

    #[test]
    fn build_discovers_topics_from_listing() {
        let fs = MemStorage::new();
        make_container(&fs, "/c", &["/imu", "/camera/rgb/image_color"]);
        let mut ctx = IoCtx::new();
        let tm = TagManager::build(&fs, "/c", &mut ctx).unwrap();
        assert_eq!(tm.len(), 2);
        assert_eq!(tm.topics(), vec!["/camera/rgb/image_color", "/imu"]);
        let p = tm.lookup("/imu", &mut ctx).unwrap();
        assert_eq!(p.data, "/c/imu/data");
    }

    #[test]
    fn lookup_unknown_topic_fails() {
        let fs = MemStorage::new();
        make_container(&fs, "/c", &["/imu"]);
        let mut ctx = IoCtx::new();
        let tm = TagManager::build(&fs, "/c", &mut ctx).unwrap();
        assert!(matches!(tm.lookup("/gps", &mut ctx), Err(BoraError::UnknownTopic(_))));
    }

    #[test]
    fn non_container_rejected() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        fs.mkdir_all("/empty", &mut ctx).unwrap();
        assert!(matches!(
            TagManager::build(&fs, "/empty", &mut ctx),
            Err(BoraError::NotAContainer(_))
        ));
    }

    #[test]
    fn meta_file_ignored_in_listing() {
        let fs = MemStorage::new();
        make_container(&fs, "/c", &["/tf"]);
        let mut ctx = IoCtx::new();
        let tm = TagManager::build(&fs, "/c", &mut ctx).unwrap();
        assert_eq!(tm.topics(), vec!["/tf"]);
    }

    #[test]
    fn from_topics_matches_build() {
        let fs = MemStorage::new();
        make_container(&fs, "/c", &["/a", "/b"]);
        let mut ctx = IoCtx::new();
        let built = TagManager::build(&fs, "/c", &mut ctx).unwrap();
        let direct = TagManager::from_topics("/c", &["/a".to_owned(), "/b".to_owned()]);
        assert_eq!(built.topics(), direct.topics());
        assert_eq!(built.lookup("/a", &mut ctx).unwrap(), direct.lookup("/a", &mut ctx).unwrap());
    }

    #[test]
    fn size_grows_with_topics() {
        let few = TagManager::from_topics("/c", &["/a".to_owned()]);
        let many = TagManager::from_topics(
            "/c",
            &(0..100).map(|i| format!("/topic_{i}")).collect::<Vec<_>>(),
        );
        assert!(many.approx_size_bytes() > few.approx_size_bytes() * 50);
    }
}
