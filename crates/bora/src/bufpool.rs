//! Global byte-budgeted buffer pool.
//!
//! One [`BufferPool`] serves every serve worker, stream cursor, and
//! snapshot read of a process: pages are keyed by `(file path, page
//! number)`, the byte budget is a single knob (`BORA_POOL_BYTES`), and
//! eviction is a per-shard clock sweep (the postgrust-sql
//! `buffer_pool.rs` design the ROADMAP names). A page holds one
//! buffer-pool-sized slice of a raw `data` file, or one *decoded* block
//! of a block-framed topic ([`crate::block`]) — decompression lands
//! directly in the frame that later hits serve it.
//!
//! Concurrency model:
//!
//! * The key map, frame table, clock hand, and resident-byte count live
//!   behind one mutex per **shard** (keys hash to shards), so unrelated
//!   files don't serialize on one lock.
//! * A hit pins the frame (pin count) and returns a [`PageRef`]; the
//!   clock sweep never evicts a pinned frame, and each frame carries an
//!   **epoch** bumped on eviction so a late unpin of a recycled slot is
//!   a no-op instead of corrupting the successor's pin count.
//! * Page bytes are `Arc<[u8]>`: even a page evicted the instant after
//!   its `PageRef` unpins stays valid for whoever still holds the bytes
//!   — use-after-evict is unrepresentable.
//! * A fill (the miss path) runs **outside** the shard lock; if a racing
//!   thread landed the same page first, its copy wins and ours is
//!   dropped (both threads still count one miss each — they both did
//!   the I/O).
//!
//! Metrics flow through `bora_obs` (`pool.hit`, `pool.miss`,
//! `pool.evict`, `pool.resident_bytes`, `pool.budget_bytes`), which the
//! serve layer's OP_METRICS scrape already ships to `bora-tool top`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::BoraResult;

/// Environment variable naming the pool budget in bytes.
pub const POOL_BYTES_ENV: &str = "BORA_POOL_BYTES";
/// Default budget when `BORA_POOL_BYTES` is unset: 64 MiB.
pub const DEFAULT_POOL_BYTES: u64 = 64 * 1024 * 1024;
const SHARDS: usize = 8;

#[derive(Debug)]
struct Frame {
    key: (Arc<str>, u64),
    data: Arc<[u8]>,
    pins: u32,
    /// Clock-sweep reference bit: set on hit, cleared by the hand.
    referenced: bool,
    /// Bumped when the slot is evicted; a stale `PageRef` unpin compares
    /// epochs and walks away.
    epoch: u64,
    live: bool,
}

#[derive(Default)]
struct Shard {
    map: HashMap<(Arc<str>, u64), usize>,
    frames: Vec<Frame>,
    free: Vec<usize>,
    hand: usize,
    resident_bytes: u64,
}

/// Aggregate pool counters (exact — backed by the pool's own atomics,
/// not the global metrics registry, so tests can assert equality).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Fills that could not be cached (every candidate frame pinned).
    pub bypasses: u64,
    pub resident_bytes: u64,
    pub budget_bytes: u64,
}

impl PoolStats {
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The shared, byte-budgeted page cache. Construct once per process (or
/// per test) and attach to handles via [`crate::BoraBag::with_pool`].
pub struct BufferPool {
    shards: Vec<Mutex<Shard>>,
    budget: u64,
    page_size: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    bypasses: AtomicU64,
}

impl BufferPool {
    pub fn new(budget_bytes: u64) -> Arc<Self> {
        Self::with_page_size(budget_bytes, crate::block::DEFAULT_BLOCK_SIZE as usize)
    }

    /// `page_size` is the slice width for *raw* (non-block-framed) data
    /// files; block-framed topics always page at their own block size.
    pub fn with_page_size(budget_bytes: u64, page_size: usize) -> Arc<Self> {
        bora_obs::gauge("pool.budget_bytes").set(budget_bytes as i64);
        Arc::new(BufferPool {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            budget: budget_bytes.max(1),
            page_size: page_size.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
        })
    }

    /// Budget from `BORA_POOL_BYTES` (bytes; falls back to 64 MiB on
    /// unset or unparsable) — the serve layer's one memory knob.
    pub fn from_env() -> Arc<Self> {
        let budget = std::env::var(POOL_BYTES_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(DEFAULT_POOL_BYTES);
        Self::new(budget)
    }

    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }

    pub fn page_size(&self) -> usize {
        self.page_size
    }

    fn shard_of(&self, key: &(Arc<str>, u64)) -> usize {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.0.hash(&mut h);
        key.1.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    /// Look up page `page_no` of `file`, running `fill` on miss. Returns
    /// the pinned page and whether it was a hit. The fill executes
    /// without any pool lock held.
    pub fn get_or_fill<F>(
        self: &Arc<Self>,
        file: &str,
        page_no: u64,
        fill: F,
    ) -> BoraResult<(PageRef, bool)>
    where
        F: FnOnce() -> BoraResult<Vec<u8>>,
    {
        let key: (Arc<str>, u64) = (Arc::from(file), page_no);
        let si = self.shard_of(&key);
        {
            let mut shard = self.shards[si].lock();
            if let Some(&slot) = shard.map.get(&key) {
                let f = &mut shard.frames[slot];
                f.pins += 1;
                f.referenced = true;
                let page = PageRef {
                    pool: Arc::clone(self),
                    shard: si,
                    slot,
                    epoch: f.epoch,
                    data: Arc::clone(&f.data),
                };
                self.hits.fetch_add(1, Ordering::Relaxed);
                bora_obs::counter("pool.hit").inc();
                return Ok((page, true));
            }
        }
        // Miss: do the I/O (and any decode) unlocked, then insert.
        let bytes: Arc<[u8]> = Arc::from(fill()?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        bora_obs::counter("pool.miss").inc();
        let mut shard = self.shards[si].lock();
        if let Some(&slot) = shard.map.get(&key) {
            // A racing fill landed first; serve its copy.
            let f = &mut shard.frames[slot];
            f.pins += 1;
            f.referenced = true;
            let page = PageRef {
                pool: Arc::clone(self),
                shard: si,
                slot,
                epoch: f.epoch,
                data: Arc::clone(&f.data),
            };
            return Ok((page, false));
        }
        let per_shard = self.budget / self.shards.len() as u64;
        let need = bytes.len() as u64;
        if need > per_shard {
            // Oversized page (budget shrunk below the page size): caching
            // it would overrun the budget no matter what gets evicted, so
            // serve it uncached — the budget stays a hard ceiling.
            self.bypasses.fetch_add(1, Ordering::Relaxed);
            bora_obs::counter("pool.bypass").inc();
            return Ok((
                PageRef {
                    pool: Arc::clone(self),
                    shard: si,
                    slot: usize::MAX,
                    epoch: 0,
                    data: bytes,
                },
                false,
            ));
        }
        if !self.make_room(&mut shard, per_shard.saturating_sub(need)) {
            // Every frame pinned: serve the bytes uncached rather than
            // blow the budget.
            self.bypasses.fetch_add(1, Ordering::Relaxed);
            bora_obs::counter("pool.bypass").inc();
            return Ok((
                PageRef {
                    pool: Arc::clone(self),
                    shard: si,
                    slot: usize::MAX,
                    epoch: 0,
                    data: bytes,
                },
                false,
            ));
        }
        shard.resident_bytes += need;
        bora_obs::gauge("pool.resident_bytes").add(need as i64);
        let slot = match shard.free.pop() {
            Some(s) => {
                let epoch = shard.frames[s].epoch;
                shard.frames[s] = Frame {
                    key: key.clone(),
                    data: Arc::clone(&bytes),
                    pins: 1,
                    referenced: true,
                    epoch,
                    live: true,
                };
                s
            }
            None => {
                shard.frames.push(Frame {
                    key: key.clone(),
                    data: Arc::clone(&bytes),
                    pins: 1,
                    referenced: true,
                    epoch: 0,
                    live: true,
                });
                shard.frames.len() - 1
            }
        };
        let epoch = shard.frames[slot].epoch;
        shard.map.insert(key, slot);
        Ok((PageRef { pool: Arc::clone(self), shard: si, slot, epoch, data: bytes }, false))
    }

    /// Clock-sweep shard frames until `resident_bytes <= target`. Pinned
    /// frames are skipped; a referenced frame gets its second chance.
    /// Returns false when the target is unreachable (all pinned).
    fn make_room(&self, shard: &mut Shard, target: u64) -> bool {
        if shard.frames.is_empty() {
            return true;
        }
        let n = shard.frames.len();
        // Two full laps clear every reference bit; a third proves only
        // pinned frames remain.
        let mut steps = 0usize;
        while shard.resident_bytes > target {
            if steps >= 3 * n {
                return false;
            }
            steps += 1;
            let i = shard.hand % n;
            shard.hand = (shard.hand + 1) % n;
            let f = &mut shard.frames[i];
            if !f.live || f.pins > 0 {
                continue;
            }
            if f.referenced {
                f.referenced = false;
                continue;
            }
            let freed = f.data.len() as u64;
            f.live = false;
            f.epoch += 1;
            f.data = Arc::from(Vec::new());
            let key = f.key.clone();
            shard.map.remove(&key);
            shard.free.push(i);
            shard.resident_bytes -= freed;
            bora_obs::gauge("pool.resident_bytes").add(-(freed as i64));
            self.evictions.fetch_add(1, Ordering::Relaxed);
            bora_obs::counter("pool.evict").inc();
        }
        true
    }

    /// Drop every resident page of files under `path_prefix` — the serve
    /// layer calls this when a container is invalidated (healed in
    /// place, re-fetched, or checksum-evicted) so stale pages can't
    /// outlive the handle cache's generation bump.
    pub fn invalidate_prefix(&self, path_prefix: &str) {
        for shard in &self.shards {
            let mut shard = shard.lock();
            let victims: Vec<(Arc<str>, u64)> =
                shard.map.keys().filter(|(p, _)| p.starts_with(path_prefix)).cloned().collect();
            for key in victims {
                if let Some(slot) = shard.map.remove(&key) {
                    let f = &mut shard.frames[slot];
                    let freed = f.data.len() as u64;
                    f.live = false;
                    f.epoch += 1;
                    f.data = Arc::from(Vec::new());
                    shard.free.push(slot);
                    shard.resident_bytes -= freed;
                    bora_obs::gauge("pool.resident_bytes").add(-(freed as i64));
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    bora_obs::counter("pool.evict").inc();
                }
            }
        }
    }

    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
            resident_bytes: self.shards.iter().map(|s| s.lock().resident_bytes).sum(),
            budget_bytes: self.budget,
        }
    }
}

impl Drop for BufferPool {
    /// Return this pool's still-resident bytes to the process gauge so
    /// short-lived pools (tests, sweeps) don't leave `pool.resident_bytes`
    /// drifting upward forever.
    fn drop(&mut self) {
        let resident: u64 = self.shards.iter().map(|s| s.lock().resident_bytes).sum();
        if resident > 0 {
            bora_obs::gauge("pool.resident_bytes").add(-(resident as i64));
        }
    }
}

/// A pinned page. Deref to the page bytes; dropping unpins. The bytes
/// are an `Arc` slice, so cloning them out (`PageRef::bytes`) stays valid
/// even after the frame is recycled.
pub struct PageRef {
    pool: Arc<BufferPool>,
    shard: usize,
    /// `usize::MAX` marks an uncached bypass page (nothing to unpin).
    slot: usize,
    epoch: u64,
    data: Arc<[u8]>,
}

impl PageRef {
    /// Shared handle to the page bytes (outlives the pin).
    pub fn bytes(&self) -> Arc<[u8]> {
        Arc::clone(&self.data)
    }
}

impl std::ops::Deref for PageRef {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl Drop for PageRef {
    fn drop(&mut self) {
        if self.slot == usize::MAX {
            return;
        }
        let mut shard = self.pool.shards[self.shard].lock();
        if let Some(f) = shard.frames.get_mut(self.slot) {
            if f.epoch == self.epoch && f.pins > 0 {
                f.pins -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill_page(tag: u8, len: usize) -> BoraResult<Vec<u8>> {
        Ok(vec![tag; len])
    }

    #[test]
    fn hit_miss_and_budget_eviction() {
        let pool = BufferPool::with_page_size(4 * 1024, 1024);
        // 8 shards × 512 B per shard budget at 4 KiB total: one 256 B
        // page per shard fits, a second in the same shard evicts.
        let (p0, hit) = pool.get_or_fill("/a", 0, || fill_page(1, 256)).unwrap();
        assert!(!hit);
        assert_eq!(&p0[..4], &[1, 1, 1, 1]);
        drop(p0);
        let (_p, hit) = pool.get_or_fill("/a", 0, || panic!("must not refill")).unwrap();
        assert!(hit);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!(s.resident_bytes >= 256);
    }

    #[test]
    fn pinned_pages_survive_pressure() {
        // One shard's budget is 128 bytes; pin a 100-byte page and pour
        // more keys into the pool — the pinned page must stay mapped.
        let pool = BufferPool::with_page_size(8 * 128, 128);
        let (pinned, _) = pool.get_or_fill("/hot", 0, || fill_page(9, 100)).unwrap();
        for i in 0..64u64 {
            let (_p, _) = pool.get_or_fill("/cold", i, || fill_page(2, 100)).unwrap();
        }
        let (again, hit) = pool.get_or_fill("/hot", 0, || fill_page(0, 100)).unwrap();
        assert!(hit, "pinned page was evicted");
        assert_eq!(&again[..1], &[9]);
        drop(pinned);
    }

    #[test]
    fn evicted_bytes_stay_valid() {
        let pool = BufferPool::with_page_size(8 * 64, 64);
        let (p, _) = pool.get_or_fill("/x", 0, || fill_page(5, 60)).unwrap();
        let bytes = p.bytes();
        drop(p);
        pool.invalidate_prefix("/x");
        assert_eq!(&bytes[..3], &[5, 5, 5], "Arc keeps evicted bytes alive");
        let (_p, hit) = pool.get_or_fill("/x", 0, || fill_page(6, 60)).unwrap();
        assert!(!hit, "invalidated page must refill");
    }

    #[test]
    fn invalidate_prefix_scopes_by_path() {
        let pool = BufferPool::new(1 << 20);
        pool.get_or_fill("/c1/t/data", 0, || fill_page(1, 10)).unwrap();
        pool.get_or_fill("/c2/t/data", 0, || fill_page(2, 10)).unwrap();
        pool.invalidate_prefix("/c1");
        let (_p, hit) = pool.get_or_fill("/c2/t/data", 0, || fill_page(0, 10)).unwrap();
        assert!(hit);
        let (_p, hit) = pool.get_or_fill("/c1/t/data", 0, || fill_page(1, 10)).unwrap();
        assert!(!hit);
    }

    #[test]
    fn concurrent_readers_and_evictor_exact_accounting() {
        // Readers hammer a keyspace larger than the budget while an
        // invalidator sweeps: every read must see its own tag (no
        // use-after-evict / no torn page), pinned pages never vanish
        // mid-pin, and hits + misses == lookups exactly.
        let pool = BufferPool::with_page_size(8 * 512, 128);
        let readers = 4usize;
        let per_reader = 400usize;
        crossbeam::thread::scope(|s| {
            for r in 0..readers {
                let pool = Arc::clone(&pool);
                s.spawn(move |_| {
                    for i in 0..per_reader {
                        let key = ((r * per_reader + i) % 23) as u64;
                        let tag = (key as u8) + 1;
                        let (page, _hit) =
                            pool.get_or_fill("/t/data", key, || fill_page(tag, 120)).unwrap();
                        assert!(page.iter().all(|&b| b == tag), "torn or stale page");
                        let held = page.bytes();
                        drop(page);
                        assert!(held.iter().all(|&b| b == tag));
                    }
                });
            }
            let pool2 = Arc::clone(&pool);
            s.spawn(move |_| {
                for _ in 0..50 {
                    pool2.invalidate_prefix("/t");
                    std::thread::yield_now();
                }
            });
        })
        .unwrap();
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, (readers * per_reader) as u64, "lookup accounting drifted");
        assert!(s.resident_bytes <= pool.budget_bytes());
    }

    #[test]
    fn all_pinned_bypasses_instead_of_over_budget() {
        let pool = BufferPool::with_page_size(8 * 128, 128);
        // Hold pins on enough pages to exhaust one shard, then keep
        // asking for new keys: the pool must keep serving (bypass) and
        // resident bytes must not exceed the budget.
        let mut pins = Vec::new();
        for i in 0..64u64 {
            let (p, _) = pool.get_or_fill("/p", i, || fill_page(1, 100)).unwrap();
            pins.push(p);
        }
        let s = pool.stats();
        assert!(s.bypasses > 0, "expected pinned shard to bypass");
        assert!(s.resident_bytes <= pool.budget_bytes());
        drop(pins);
    }
}
