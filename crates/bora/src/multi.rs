//! Multi-bag (swarm) queries — the paper's §IV.E scenario as a library
//! API instead of a hand-rolled harness.
//!
//! A swarm analysis opens one container per robot and pulls the same
//! topic (and often the same time window) from all of them — the paper's
//! "Bullet Time" multi-angle reconstruction. [`SwarmQuery`] opens the
//! containers, fans the per-robot queries out over scoped threads, and
//! returns per-robot results plus the virtual makespan under the declared
//! concurrency.
//!
//! The fan-out is generic over *where* each robot's query executes: a
//! [`SwarmBackend`] answers one robot's [`SwarmSpec`] and reports the
//! virtual time it took. [`LocalBackend`] opens the container on local
//! storage (the original behavior); a serving tier (bora-cluster) can
//! implement the trait to route each robot to the node owning its
//! container, and [`swarm_fan_out`] gives it the same scoped-thread
//! concurrency and makespan accounting for free.

use ros_msgs::Time;
use rosbag::MessageRecord;
use simfs::{IoCtx, Storage};

use crate::container::BoraBag;
use crate::error::{BoraError, BoraResult};

/// What a swarm query asks of every robot: which topics, and optionally
/// which time window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwarmSpec {
    pub topics: Vec<String>,
    /// Half-open `[start, end)` window; `None` reads the whole container.
    pub range: Option<(Time, Time)>,
}

impl SwarmSpec {
    pub fn topics(topics: &[&str]) -> Self {
        SwarmSpec { topics: topics.iter().map(|t| t.to_string()).collect(), range: None }
    }

    pub fn topics_time(topics: &[&str], start: Time, end: Time) -> Self {
        SwarmSpec { range: Some((start, end)), ..SwarmSpec::topics(topics) }
    }
}

/// Executes one robot's share of a swarm query.
///
/// `swarm_size` is the total number of robots queried concurrently —
/// backends that model contention (virtual-time storage) or plan fan-out
/// (a cluster router sizing connection pools) need it; others may ignore
/// it. Returns the robot's messages plus its virtual elapsed nanoseconds.
pub trait SwarmBackend: Sync {
    fn query_robot(
        &self,
        root: &str,
        spec: &SwarmSpec,
        swarm_size: u32,
    ) -> BoraResult<(Vec<MessageRecord>, u64)>;
}

/// The original in-process backend: open the container on `storage` and
/// query it under the swarm's contention regime.
pub struct LocalBackend<'s, S> {
    pub storage: &'s S,
}

impl<S: Storage + Sync> SwarmBackend for LocalBackend<'_, S> {
    fn query_robot(
        &self,
        root: &str,
        spec: &SwarmSpec,
        swarm_size: u32,
    ) -> BoraResult<(Vec<MessageRecord>, u64)> {
        let mut ctx = IoCtx::with_concurrency(swarm_size);
        let bag = BoraBag::open(self.storage, root, &mut ctx)?;
        let topics: Vec<&str> = spec.topics.iter().map(|t| t.as_str()).collect();
        let msgs = match spec.range {
            Some((start, end)) => bag.read_topics_time(&topics, start, end, &mut ctx)?,
            None => bag.read_topics(&topics, &mut ctx)?,
        };
        Ok((msgs, ctx.elapsed_ns()))
    }
}

/// Run `spec` for every root concurrently on `backend` (one scoped thread
/// per robot) and fold the per-robot virtual clocks into makespan/total.
pub fn swarm_fan_out<B: SwarmBackend>(
    backend: &B,
    roots: &[String],
    spec: &SwarmSpec,
) -> BoraResult<SwarmResult> {
    if roots.is_empty() {
        return Err(BoraError::Corrupt("swarm with zero robots".into()));
    }
    let n = roots.len();
    let mut slots: Vec<BoraResult<(Vec<MessageRecord>, u64)>> =
        (0..n).map(|_| Ok((Vec::new(), 0))).collect();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (i, slot) in slots.iter_mut().enumerate() {
            let root = &roots[i];
            handles.push(scope.spawn(move |_| {
                *slot = backend.query_robot(root, spec, n as u32);
            }));
        }
        for h in handles {
            h.join().expect("swarm worker panicked");
        }
    })
    .expect("swarm scope failed");

    let mut per_robot = Vec::with_capacity(n);
    let mut makespan = 0u64;
    let mut total = 0u64;
    for slot in slots {
        let (msgs, ns) = slot?;
        makespan = makespan.max(ns);
        total += ns;
        per_robot.push(msgs);
    }
    Ok(SwarmResult { per_robot, makespan_ns: makespan, total_ns: total })
}

/// Result of one swarm-wide query.
pub struct SwarmResult {
    /// Per-robot messages, indexed like the container list.
    pub per_robot: Vec<Vec<MessageRecord>>,
    /// Virtual makespan across robots (max of per-robot clocks).
    pub makespan_ns: u64,
    /// Sum of all robots' virtual time (aggregate storage seconds).
    pub total_ns: u64,
}

impl SwarmResult {
    pub fn message_count(&self) -> u64 {
        self.per_robot.iter().map(|v| v.len() as u64).sum()
    }
}

/// An opened swarm: one BORA container per robot.
pub struct SwarmQuery<'s, S> {
    storage: &'s S,
    roots: Vec<String>,
}

impl<'s, S: Storage> SwarmQuery<'s, S> {
    /// Validate that every root is an openable container (cheap: tag
    /// listing + metadata) and build the query handle.
    pub fn open(storage: &'s S, roots: &[String], ctx: &mut IoCtx) -> BoraResult<Self> {
        if roots.is_empty() {
            return Err(BoraError::Corrupt("swarm with zero robots".into()));
        }
        for r in roots {
            BoraBag::open(storage, r, ctx)?;
        }
        Ok(SwarmQuery { storage, roots: roots.to_vec() })
    }

    pub fn robots(&self) -> usize {
        self.roots.len()
    }

    /// Same topics from every robot (the multi-angle extraction).
    pub fn read_topics(&self, topics: &[&str]) -> BoraResult<SwarmResult> {
        self.run(&SwarmSpec::topics(topics))
    }

    /// Same topics and time window from every robot ("Bullet Time").
    pub fn read_topics_time(
        &self,
        topics: &[&str],
        start: Time,
        end: Time,
    ) -> BoraResult<SwarmResult> {
        self.run(&SwarmSpec::topics_time(topics, start, end))
    }

    /// Fan an arbitrary [`SwarmSpec`] out over the local backend.
    pub fn run(&self, spec: &SwarmSpec) -> BoraResult<SwarmResult>
    where
        S: Sync,
    {
        swarm_fan_out(&LocalBackend { storage: self.storage }, &self.roots, spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::organizer::{duplicate, OrganizerOptions};
    use ros_msgs::sensor_msgs::Imu;
    use ros_msgs::RosMessage;
    use rosbag::{BagWriter, BagWriterOptions};
    use simfs::MemStorage;

    fn setup_swarm(n: usize) -> (MemStorage, Vec<String>) {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let mut roots = Vec::new();
        for r in 0..n {
            let bag_path = format!("/r{r}.bag");
            let mut w = BagWriter::create(
                &fs,
                &bag_path,
                BagWriterOptions { chunk_size: 2048, ..Default::default() },
                &mut ctx,
            )
            .unwrap();
            for i in 0..100u32 {
                let mut imu = Imu::default();
                imu.header.seq = i;
                imu.header.stamp = Time::new(i, 0);
                imu.linear_acceleration.x = r as f64; // robot signature
                w.write_ros_message("/imu", Time::new(i, 0), &imu, &mut ctx).unwrap();
            }
            w.close(&mut ctx).unwrap();
            let root = format!("/c{r}");
            duplicate(&fs, &bag_path, &fs, &root, &OrganizerOptions::default(), &mut ctx).unwrap();
            roots.push(root);
        }
        (fs, roots)
    }

    #[test]
    fn swarm_reads_every_robot() {
        let (fs, roots) = setup_swarm(5);
        let mut ctx = IoCtx::new();
        let sq = SwarmQuery::open(&fs, &roots, &mut ctx).unwrap();
        assert_eq!(sq.robots(), 5);
        let res = sq.read_topics(&["/imu"]).unwrap();
        assert_eq!(res.message_count(), 500);
        // Robots are distinguishable (each kept its own payload stream).
        for (r, msgs) in res.per_robot.iter().enumerate() {
            let imu = Imu::from_bytes(&msgs[0].data).unwrap();
            assert_eq!(imu.linear_acceleration.x, r as f64);
        }
        assert!(res.makespan_ns <= res.total_ns);
    }

    #[test]
    fn bullet_time_window() {
        let (fs, roots) = setup_swarm(4);
        let mut ctx = IoCtx::new();
        let sq = SwarmQuery::open(&fs, &roots, &mut ctx).unwrap();
        let res = sq.read_topics_time(&["/imu"], Time::new(10, 0), Time::new(20, 0)).unwrap();
        for msgs in &res.per_robot {
            assert_eq!(msgs.len(), 10, "every robot contributes the same instant");
        }
    }

    #[test]
    fn empty_swarm_rejected() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        assert!(SwarmQuery::open(&fs, &[], &mut ctx).is_err());
    }

    #[test]
    fn custom_backend_drives_fan_out() {
        // A backend that fabricates one message per robot and a virtual
        // clock derived from the root name — checks that swarm_fan_out
        // passes the spec/size through and folds clocks correctly.
        struct Fake;
        impl SwarmBackend for Fake {
            fn query_robot(
                &self,
                root: &str,
                spec: &SwarmSpec,
                swarm_size: u32,
            ) -> BoraResult<(Vec<MessageRecord>, u64)> {
                assert_eq!(swarm_size, 3);
                assert_eq!(spec.topics, vec!["/imu".to_string()]);
                let idx: u64 = root.trim_start_matches("/c").parse().unwrap();
                let rec = MessageRecord {
                    conn_id: 0,
                    topic: spec.topics[0].clone(),
                    time: Time::new(idx as u32, 0),
                    data: vec![idx as u8],
                };
                Ok((vec![rec], (idx + 1) * 100))
            }
        }
        let roots: Vec<String> = (0..3).map(|i| format!("/c{i}")).collect();
        let res = swarm_fan_out(&Fake, &roots, &SwarmSpec::topics(&["/imu"])).unwrap();
        assert_eq!(res.message_count(), 3);
        assert_eq!(res.makespan_ns, 300);
        assert_eq!(res.total_ns, 600);
        assert_eq!(res.per_robot[2][0].data, vec![2]);
    }

    #[test]
    fn broken_robot_surfaces_as_error() {
        let (fs, mut roots) = setup_swarm(2);
        roots.push("/missing".to_owned());
        let mut ctx = IoCtx::new();
        assert!(SwarmQuery::open(&fs, &roots, &mut ctx).is_err());
    }
}
